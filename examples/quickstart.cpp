/**
 * @file
 * Quickstart: assemble a tiny SIMT kernel, run it on the simulated GPU,
 * and read the results back — the minimal end-to-end flow of the
 * public API (assemble -> Gpu -> malloc/launch/run -> download).
 */

#include <cstdio>

#include "example_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/gpu.hpp"

using namespace uksim;

int
main()
{
    Program program = assemble(examples::quickstartSource());
    std::printf("assembled %zu instructions, %d registers/thread\n",
                program.size(), program.resources.registers);

    GpuConfig config;           // Table I defaults: 30 SMs, 32-wide warps
    config.numSms = 4;          // keep the demo small
    Gpu gpu(config);
    gpu.loadProgram(std::move(program));
    std::printf("occupancy: %d warps/SM (%s-limited)\n",
                gpu.occupancy().warpsPerSm, gpu.occupancy().limiter);

    const uint32_t threads = 1024;
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, sizeof(params));

    gpu.launch(threads);
    const SimStats &stats = gpu.run();

    std::vector<uint32_t> result(threads);
    gpu.fromGlobal(out, result.data(), threads * 4);
    bool ok = true;
    for (uint32_t i = 0; i < threads; i++)
        ok &= result[i] == i * i;

    std::printf("result %s | %llu cycles, IPC %.1f, SIMT efficiency "
                "%.2f (divergent loop!)\n",
                ok ? "correct" : "WRONG",
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc(), stats.simtEfficiency(config.warpSize));
    return ok ? 0 : 1;
}
