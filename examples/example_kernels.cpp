#include "example_kernels.hpp"

namespace uksim::examples {

const char *
quickstartSource()
{
    // A kernel: out[tid] = tid * tid, computed with a data-dependent
    // loop so some warps diverge.
    return R"(
        .const 4
        main:
            mov.u32 r1, %tid;
            mov.u32 r2, 0;      // acc
            mov.u32 r3, 0;      // i
        loop:
            setp.ge.u32 p0, r3, r1;
            @p0 bra done;
            add.u32 r2, r2, r1;
            add.u32 r3, r3, 1;
            bra loop;
        done:
            ld.param.u32 r4, [0];
            shl.u32 r5, r1, 2;
            add.u32 r4, r4, r5;
            st.global.u32 [r4+0], r2;
            exit;
    )";
}

const char *
collatzSource()
{
    return R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        .const 8
        gen:
            mov.u32 r1, %tid;
            ld.param.u32 r2, [4];
            setp.ge.u32 p0, r1, r2;
            @p0 exit;
            add.u32 r3, r1, 2;          // n = tid + 2
            mov.u32 r4, 0;              // steps
            mov.u32 r5, %spawnaddr;
            st.spawn.u32 [r5+0], r3;
            st.spawn.u32 [r5+4], r4;
            st.spawn.u32 [r5+8], r1;
            spawn step, r5;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+0];    // n
            ld.spawn.u32 r4, [r1+4];    // steps
            setp.eq.u32 p0, r3, 1;
            @p0 bra finish;
            and.u32 r5, r3, 1;
            setp.eq.u32 p1, r5, 0;
            @p1 bra even;
            mul.u32 r3, r3, 3;
            add.u32 r3, r3, 1;
            bra continue_;
        even:
            shr.u32 r3, r3, 1;
        continue_:
            add.u32 r4, r4, 1;
            st.spawn.u32 [r1+0], r3;
            st.spawn.u32 [r1+4], r4;
            spawn step, r1;
            exit;
        finish:
            ld.spawn.u32 r5, [r1+8];    // original tid
            ld.param.u32 r6, [0];
            shl.u32 r7, r5, 2;
            add.u32 r6, r6, r7;
            st.global.u32 [r6+0], r4;
            exit;
    )";
}

std::string
divergenceLoopSource(uint32_t maxIter)
{
    // Each thread loops (tid % maxIter) times — Fig. 2's loop B.
    return R"(
        .const 4
        main:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, )" + std::to_string(maxIter) + R"(;
            mov.u32 r3, 0;
            mov.u32 r5, 0;
        loop:
            setp.ge.u32 p0, r3, r2;
            @p0 bra done;
            mul.u32 r4, r3, 2654435761;
            xor.u32 r5, r5, r4;
            add.u32 r3, r3, 1;
            bra loop;
        done:
            ld.param.u32 r6, [0];
            shl.u32 r7, r1, 2;
            add.u32 r6, r6, r7;
            st.global.u32 [r6+0], r5;
            exit;
    )";
}

std::string
divergenceSpawnSource(uint32_t maxIter)
{
    // The same loop as a micro-kernel: each iteration is a spawned
    // thread; threads at the same iteration pack into fresh warps.
    return R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        .const 4
        gen:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, )" + std::to_string(maxIter) + R"(;
            mov.u32 r3, 0;
            mov.u32 r5, 0;
            mov.u32 r6, %spawnaddr;
            st.spawn.u32 [r6+0], r2;   // remaining
            st.spawn.u32 [r6+4], r5;   // acc
            st.spawn.u32 [r6+8], r3;   // i
            st.spawn.u32 [r6+12], r1;  // tid
            spawn step, r6;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+0];   // remaining
            ld.spawn.u32 r5, [r1+4];   // acc
            ld.spawn.u32 r4, [r1+8];   // i
            setp.ge.u32 p0, r4, r3;
            @p0 bra finish;
            mul.u32 r6, r4, 2654435761;
            xor.u32 r5, r5, r6;
            add.u32 r4, r4, 1;
            st.spawn.u32 [r1+4], r5;
            st.spawn.u32 [r1+8], r4;
            spawn step, r1;
            exit;
        finish:
            ld.spawn.u32 r7, [r1+12];
            ld.param.u32 r6, [0];
            shl.u32 r8, r7, 2;
            add.u32 r6, r6, r8;
            st.global.u32 [r6+0], r5;
            exit;
    )";
}

} // namespace uksim::examples
