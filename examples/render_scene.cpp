/**
 * @file
 * Render a benchmark scene three ways — CPU reference, simulated
 * traditional kernel, simulated dynamic micro-kernels — verify all
 * three agree pixel-for-pixel, write PPM images, and report the
 * simulated performance of both GPU variants.
 *
 * Usage: render_scene [fairyforest|atrium|conference] [out_prefix]
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "rt/image.hpp"

using namespace uksim;
using namespace uksim::harness;

int
main(int argc, char **argv)
{
    const std::string sceneName = argc > 1 ? argv[1] : "conference";
    const std::string prefix = argc > 2 ? argv[2] : sceneName;

    ExperimentConfig cfg;
    cfg.sceneParams.imageWidth = 128;
    cfg.sceneParams.imageHeight = 128;
    cfg.sceneParams.detail = 4;
    cfg.baseConfig.numSms = 8;
    cfg.maxCycles = 200'000'000;    // render the whole frame
    applyEnvOverrides(cfg);

    std::printf("building %s...\n", sceneName.c_str());
    PreparedScene scene = prepareScene(sceneName, cfg.sceneParams);
    std::printf("%zu triangles, %u kd nodes\n",
                scene.scene.triangles.size(),
                scene.tree.stats().nodeCount);

    // CPU reference.
    rt::RenderResult ref =
        rt::renderReference(scene.tree, scene.scene.camera);
    rt::shadeByTriangle(ref).writePpm(prefix + "_cpu.ppm");

    auto check = [&](const std::vector<rt::Hit> &hits) {
        size_t bad = 0;
        for (size_t i = 0; i < hits.size(); i++)
            bad += hits[i].triId != ref.hits[i].triId;
        return bad;
    };

    // Simulated traditional kernel.
    cfg.kernel = KernelKind::Traditional;
    ExperimentResult trad = runExperiment(scene, cfg);
    std::printf("traditional: %llu cycles, IPC %.0f, eff %.2f, %.1f "
                "Mrays/s, %zu pixel mismatches vs CPU\n",
                (unsigned long long)trad.stats.cycles, trad.ipc,
                trad.simtEfficiency, trad.mraysPerSec,
                check(trad.hits));

    // Simulated dynamic micro-kernels.
    cfg.kernel = KernelKind::MicroKernel;
    ExperimentResult uk = runExperiment(scene, cfg);
    std::printf("u-kernels:   %llu cycles, IPC %.0f, eff %.2f, %.1f "
                "Mrays/s, %zu pixel mismatches vs CPU "
                "(%llu dynamic threads spawned)\n",
                (unsigned long long)uk.stats.cycles, uk.ipc,
                uk.simtEfficiency, uk.mraysPerSec, check(uk.hits),
                (unsigned long long)uk.stats.dynamicThreadsSpawned);

    // Images from the simulated runs.
    rt::RenderResult simImg;
    simImg.width = cfg.sceneParams.imageWidth;
    simImg.height = cfg.sceneParams.imageHeight;
    simImg.hits = uk.hits;
    rt::shadeByTriangle(simImg).writePpm(prefix + "_uk.ppm");
    rt::shadeByDepth(simImg).writePpm(prefix + "_depth.ppm");
    std::printf("wrote %s_cpu.ppm, %s_uk.ppm, %s_depth.ppm\n",
                prefix.c_str(), prefix.c_str(), prefix.c_str());

    std::printf("speedup u-kernels vs traditional: %.2fx rays/s, %.2fx "
                "IPC\n",
                uk.mraysPerSec / trad.mraysPerSec, uk.ipc / trad.ipc);
    return 0;
}
