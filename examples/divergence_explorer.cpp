/**
 * @file
 * Reproduce the paper's Figure 2 intuition interactively: a warp runs a
 * data-dependent loop where thread i needs i iterations; PDOM executes
 * all control paths serially so the warp's efficiency collapses, while
 * the same workload expressed as dynamic micro-kernels repacks threads
 * into dense warps.
 *
 * Usage: divergence_explorer [max_iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "example_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/gpu.hpp"

using namespace uksim;

namespace {

SimStats
runPdomLoop(uint32_t threads, uint32_t maxIter)
{
    Program p = assemble(examples::divergenceLoopSource(maxIter));
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 100'000'000;
    Gpu gpu(cfg);
    gpu.loadProgram(std::move(p));
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    return gpu.run();
}

SimStats
runSpawnLoop(uint32_t threads, uint32_t maxIter)
{
    Program p = assemble(examples::divergenceSpawnSource(maxIter));
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 100'000'000;
    Gpu gpu(cfg);
    gpu.loadProgram(std::move(p));
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    return gpu.run();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const uint32_t maxIter = argc > 1 ? std::atoi(argv[1]) : 64;
    const uint32_t threads = 8192;

    std::printf("data-dependent loop, thread i runs i %% %u "
                "iterations, %u threads\n\n",
                maxIter, threads);

    SimStats pdom = runPdomLoop(threads, maxIter);
    std::printf("PDOM:      %8llu cycles  IPC %6.1f  efficiency %.2f\n",
                (unsigned long long)pdom.cycles, pdom.ipc(),
                pdom.simtEfficiency(32));

    SimStats uk = runSpawnLoop(threads, maxIter);
    std::printf("u-kernels: %8llu cycles  IPC %6.1f  efficiency %.2f  "
                "(%llu spawns, %llu warps formed)\n",
                (unsigned long long)uk.cycles, uk.ipc(),
                uk.simtEfficiency(32),
                (unsigned long long)uk.dynamicThreadsSpawned,
                (unsigned long long)uk.dynamicWarpsFormed);

    std::printf("\nefficiency gain %.2fx; with longer, more divergent "
                "loops the gap widens (try %u)\n",
                uk.simtEfficiency(32) / pdom.simtEfficiency(32),
                maxIter * 4);
    return 0;
}
