/**
 * @file
 * Reproduce the paper's Figure 2 intuition interactively: a warp runs a
 * data-dependent loop where thread i needs i iterations; PDOM executes
 * all control paths serially so the warp's efficiency collapses, while
 * the same workload expressed as dynamic micro-kernels repacks threads
 * into dense warps.
 *
 * Usage: divergence_explorer [max_iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"

using namespace uksim;

namespace {

SimStats
runPdomLoop(uint32_t threads, uint32_t maxIter)
{
    // Each thread loops (tid % maxIter) times — Fig. 2's loop B.
    Program p = assemble(R"(
        main:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, )" + std::to_string(maxIter) + R"(;
            mov.u32 r3, 0;
        loop:
            setp.ge.u32 p0, r3, r2;
            @p0 bra done;
            mul.u32 r4, r3, 2654435761;
            xor.u32 r5, r5, r4;
            add.u32 r3, r3, 1;
            bra loop;
        done:
            ld.param.u32 r6, [0];
            shl.u32 r7, r1, 2;
            add.u32 r6, r6, r7;
            st.global.u32 [r6+0], r5;
            exit;
    )");
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 100'000'000;
    Gpu gpu(cfg);
    gpu.loadProgram(std::move(p));
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    return gpu.run();
}

SimStats
runSpawnLoop(uint32_t threads, uint32_t maxIter)
{
    // The same loop as a micro-kernel: each iteration is a spawned
    // thread; threads at the same iteration pack into fresh warps.
    Program p = assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        gen:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, )" + std::to_string(maxIter) + R"(;
            mov.u32 r3, 0;
            mov.u32 r5, 0;
            mov.u32 r6, %spawnaddr;
            st.spawn.u32 [r6+0], r2;   // remaining
            st.spawn.u32 [r6+4], r5;   // acc
            st.spawn.u32 [r6+8], r3;   // i
            st.spawn.u32 [r6+12], r1;  // tid
            spawn step, r6;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+0];   // remaining
            ld.spawn.u32 r5, [r1+4];   // acc
            ld.spawn.u32 r4, [r1+8];   // i
            setp.ge.u32 p0, r4, r3;
            @p0 bra finish;
            mul.u32 r6, r4, 2654435761;
            xor.u32 r5, r5, r6;
            add.u32 r4, r4, 1;
            st.spawn.u32 [r1+4], r5;
            st.spawn.u32 [r1+8], r4;
            spawn step, r1;
            exit;
        finish:
            ld.spawn.u32 r7, [r1+12];
            ld.param.u32 r6, [0];
            shl.u32 r8, r7, 2;
            add.u32 r6, r6, r8;
            st.global.u32 [r6+0], r5;
            exit;
    )");
    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 100'000'000;
    Gpu gpu(cfg);
    gpu.loadProgram(std::move(p));
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    return gpu.run();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const uint32_t maxIter = argc > 1 ? std::atoi(argv[1]) : 64;
    const uint32_t threads = 8192;

    std::printf("data-dependent loop, thread i runs i %% %u "
                "iterations, %u threads\n\n",
                maxIter, threads);

    SimStats pdom = runPdomLoop(threads, maxIter);
    std::printf("PDOM:      %8llu cycles  IPC %6.1f  efficiency %.2f\n",
                (unsigned long long)pdom.cycles, pdom.ipc(),
                pdom.simtEfficiency(32));

    SimStats uk = runSpawnLoop(threads, maxIter);
    std::printf("u-kernels: %8llu cycles  IPC %6.1f  efficiency %.2f  "
                "(%llu spawns, %llu warps formed)\n",
                (unsigned long long)uk.cycles, uk.ipc(),
                uk.simtEfficiency(32),
                (unsigned long long)uk.dynamicThreadsSpawned,
                (unsigned long long)uk.dynamicWarpsFormed);

    std::printf("\nefficiency gain %.2fx; with longer, more divergent "
                "loops the gap widens (try %u)\n",
                uk.simtEfficiency(32) / pdom.simtEfficiency(32),
                maxIter * 4);
    return 0;
}
