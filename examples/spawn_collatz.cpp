/**
 * @file
 * A non-rendering dynamic micro-kernel application (the paper's future
 * work asks for exactly this): Collatz trajectory lengths computed with
 * one spawned thread per step. Demonstrates the spawn API on an
 * irregular, data-dependent workload and prints the warp-formation
 * statistics.
 *
 * Usage: spawn_collatz [count]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "example_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/gpu.hpp"

using namespace uksim;

namespace {

uint32_t
collatzReference(uint64_t n)
{
    uint32_t steps = 0;
    while (n != 1) {
        n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
        steps++;
    }
    return steps;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const uint32_t count = argc > 1 ? std::atoi(argv[1]) : 4096;

    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.maxCycles = 500'000'000;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(examples::collatzSource()));

    uint32_t out = gpu.mallocGlobal(uint64_t(count) * 4);
    uint32_t params[2] = {out, count};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(count);
    const SimStats &stats = gpu.run();

    std::vector<uint32_t> steps(count);
    gpu.fromGlobal(out, steps.data(), count * 4);

    uint32_t worstN = 0, worstSteps = 0, errors = 0;
    for (uint32_t i = 0; i < count; i++) {
        if (steps[i] != collatzReference(i + 2))
            errors++;
        if (steps[i] > worstSteps) {
            worstSteps = steps[i];
            worstN = i + 2;
        }
    }

    std::printf("Collatz trajectories for n = 2..%u: %s\n", count + 1,
                errors ? "ERRORS" : "all correct");
    std::printf("longest: n=%u with %u steps\n", worstN, worstSteps);
    std::printf("%llu cycles, IPC %.1f, SIMT efficiency %.2f\n",
                (unsigned long long)stats.cycles, stats.ipc(),
                stats.simtEfficiency(cfg.warpSize));
    std::printf("dynamic threads %llu, warps formed %llu, partial "
                "flushes %llu\n",
                (unsigned long long)stats.dynamicThreadsSpawned,
                (unsigned long long)stats.dynamicWarpsFormed,
                (unsigned long long)stats.partialWarpFlushes);
    return errors ? 1 : 0;
}
