/**
 * @file
 * Assembly sources shared by the runnable examples, the `ukverify`
 * linter's --builtin mode, and the verify_kernels ctest. Keeping the
 * sources in one library means "example code drifted out of
 * verifier-clean" fails `ctest` instead of rendering garbage.
 */

#ifndef UKSIM_EXAMPLES_EXAMPLE_KERNELS_HPP
#define UKSIM_EXAMPLES_EXAMPLE_KERNELS_HPP

#include <cstdint>
#include <string>

namespace uksim::examples {

/** quickstart's divergent-loop kernel (out[tid] = tid * tid). */
const char *quickstartSource();

/** spawn_collatz's generator + step µ-kernel. */
const char *collatzSource();

/** divergence_explorer's PDOM loop, thread i runs i % maxIter times. */
std::string divergenceLoopSource(uint32_t maxIter);

/** The same loop expressed as a spawned µ-kernel per iteration. */
std::string divergenceSpawnSource(uint32_t maxIter);

} // namespace uksim::examples

#endif // UKSIM_EXAMPLES_EXAMPLE_KERNELS_HPP
