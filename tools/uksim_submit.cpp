/**
 * @file
 * uksim-submit — compose and submit uksim-serve batches.
 *
 * Builds a protocol submit request from command-line job specs and
 * either prints it (--emit, for piping into `uksim-serve --pipe`) or
 * delivers it over TCP (--connect), streaming the server's events to
 * stdout until the batch completes.
 *
 * Usage: uksim-submit (--emit | --connect PORT) [--batch-id ID]
 *                     [--chaos-plan FILE] [--shutdown]
 *                     --job NAME [job modifiers] ...
 *
 *   --emit              print the request line(s) to stdout and exit
 *   --connect PORT      submit to 127.0.0.1:PORT and stream events
 *   --batch-id ID       tag echoed in batch_accepted / batch_done
 *   --chaos-plan FILE   validate a "ukchaos-plan-1" JSON document and
 *                       attach it to the submit (per-batch fault
 *                       injection on the server)
 *   --shutdown          append a shutdown op after the submit
 *   --job NAME          start a new job spec (repeatable)
 *
 * Job modifiers apply to the most recent --job:
 *   --label S --cycles N --detail N --res N --sms N --watchdog N
 *   --policy trap|halt|throw --counters --kill-after-snapshots N
 *
 * Exit status: 0 when every job succeeded (or --emit), 1 for I/O and
 * server errors, 2 for usage errors, 3 when the batch ran but at
 * least one job failed.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/cli_args.hpp"
#include "serve/chaos_plan.hpp"
#include "serve/fdio.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"

using namespace uksim;

namespace {

struct Options {
    bool emit = false;
    bool connect = false;
    bool shutdown = false;
    uint64_t port = 0;
    std::string batchId;
    std::string chaosPlanJson;  ///< canonical plan line ("" = none)
    std::vector<serve::JobSpec> jobs;
};

void
usage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: uksim-submit (--emit | --connect PORT) [--batch-id ID] "
        "[--chaos-plan FILE] [--shutdown]\n"
        "                    --job NAME [--label S] [--cycles N] "
        "[--detail N] [--res N]\n"
        "                    [--sms N] [--watchdog N] "
        "[--policy trap|halt|throw]\n"
        "                    [--counters] [--kill-after-snapshots N] "
        "...\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("uksim-submit", argc, argv);
    auto current = [&]() -> serve::JobSpec & {
        if (opts.jobs.empty()) {
            std::fprintf(stderr,
                         "uksim-submit: job modifier before --job\n");
            std::exit(2);
        }
        return opts.jobs.back();
    };
    while (args.next()) {
        if (args.isHelp()) {
            usage(stdout);
            std::exit(0);
        } else if (args.is("--emit")) {
            opts.emit = true;
        } else if (args.is("--connect")) {
            opts.connect = true;
            opts.port = args.u64();
        } else if (args.is("--batch-id")) {
            opts.batchId = args.value();
        } else if (args.is("--chaos-plan")) {
            const std::string path = args.value();
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::fprintf(stderr,
                             "uksim-submit: --chaos-plan: cannot read "
                             "%s\n",
                             path.c_str());
                std::exit(2);
            }
            std::stringstream buf;
            buf << in.rdbuf();
            try {
                // Validate locally, then forward the canonical
                // re-serialization so the server sees one stable form.
                opts.chaosPlanJson = serve::chaosPlanToJson(
                    serve::chaosPlanFromText(buf.str()));
            } catch (const serve::JsonError &e) {
                std::fprintf(stderr,
                             "uksim-submit: --chaos-plan: %s: %s\n",
                             path.c_str(), e.what());
                std::exit(2);
            }
        } else if (args.is("--shutdown")) {
            opts.shutdown = true;
        } else if (args.is("--job")) {
            serve::JobSpec spec;
            spec.name = args.value();
            spec.label = spec.name;
            opts.jobs.push_back(spec);
        } else if (args.is("--label")) {
            current().label = args.value();
        } else if (args.is("--cycles")) {
            current().cycles = args.u64();
        } else if (args.is("--detail")) {
            current().detail = args.i32();
        } else if (args.is("--res")) {
            current().res = args.i32();
        } else if (args.is("--sms")) {
            current().sms = args.i32();
        } else if (args.is("--watchdog")) {
            current().watchdog = args.u64();
        } else if (args.is("--policy")) {
            current().policy = args.value();
        } else if (args.is("--counters")) {
            current().counters = true;
        } else if (args.is("--kill-after-snapshots")) {
            current().killAfterSnapshots = args.i32();
        } else {
            args.unknown(usage);
        }
    }
    if (opts.jobs.empty() && !opts.shutdown) {
        std::fprintf(stderr, "uksim-submit: no --job given\n");
        usage(stderr);
        std::exit(2);
    }
    if (opts.emit == opts.connect) {
        std::fprintf(stderr,
                     "uksim-submit: pick exactly one of --emit / "
                     "--connect\n");
        std::exit(2);
    }
    if (opts.connect && (opts.port == 0 || opts.port > 65535)) {
        std::fprintf(stderr, "uksim-submit: --connect: bad port\n");
        std::exit(2);
    }
    return opts;
}

std::string
submitLine(const Options &opts)
{
    std::ostringstream os;
    os << "{\"op\": \"submit\", \"batch_id\": \""
       << serve::jsonEscape(opts.batchId) << "\"";
    if (!opts.chaosPlanJson.empty())
        os << ", \"chaos\": " << opts.chaosPlanJson;
    os << ", \"batch\": [";
    for (size_t i = 0; i < opts.jobs.size(); i++)
        os << (i ? ", " : "") << serve::jobSpecToJson(opts.jobs[i]);
    os << "]}";
    return os.str();
}

/** Read server reply lines; returns the number of failed jobs, or -1. */
int
drainEvents(std::istream &in, bool untilShutdown)
{
    int failed = -1;
    std::string line;
    while (std::getline(in, line)) {
        std::printf("%s\n", line.c_str());
        try {
            const serve::JsonValue v = serve::parseJson(line);
            const std::string event = v.stringOr("event", "");
            if (event == "batch_done") {
                if (const serve::JsonValue *m = v.find("manifest"))
                    failed = int(m->u64Or("failed", 0));
                if (!untilShutdown)
                    break;
            } else if (event == "shutdown") {
                break;
            } else if (event == "error" && failed < 0) {
                return -1;
            }
        } catch (const serve::JsonError &) {
            // Not our line; keep streaming.
        }
    }
    return failed;
}

int
runConnect(const Options &opts)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("uksim-submit: socket");
        return 1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(opts.port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::perror("uksim-submit: connect");
        ::close(fd);
        return 1;
    }

    std::string request;
    if (!opts.jobs.empty())
        request += submitLine(opts) + "\n";
    if (opts.shutdown)
        request += "{\"op\": \"shutdown\"}\n";
    if (!serve::writeFull(fd, request.data(), request.size())) {
        std::perror("uksim-submit: write");
        ::close(fd);
        return 1;
    }
    ::shutdown(fd, SHUT_WR);

    // Slurp the reply stream, then scan it line by line.
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = serve::readEintr(fd, buf, sizeof(buf))) > 0)
        reply.append(buf, size_t(n));
    ::close(fd);
    std::istringstream in(reply);
    // With --shutdown the server's confirmation event follows the
    // batch_done line; keep draining so the client echoes it.
    const int failed = drainEvents(in, opts.shutdown);
    if (opts.jobs.empty())
        return 0;
    if (failed < 0)
        return 1;
    return failed == 0 ? 0 : 3;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        if (opts.emit) {
            if (!opts.jobs.empty())
                std::printf("%s\n", submitLine(opts).c_str());
            if (opts.shutdown)
                std::printf("{\"op\": \"shutdown\"}\n");
            return 0;
        }
        return runConnect(opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "uksim-submit: %s\n", e.what());
        return 1;
    }
}
