/**
 * @file
 * ukdump — run one named experiment configuration and write the
 * post-mortem flight-recorder dump (Gpu::dumpState JSON).
 *
 * Meant for debugging misbehaving runs: pick a fault policy, optionally
 * arm the forward-progress watchdog, cap the cycle budget, and inspect
 * the machine state the run ended in — per-SM warp states with
 * SIMT-stack snapshots, spawn LUT / formation-region occupancy, stall
 * attribution, recorded guest faults, and the tail of the event ring.
 *
 * Usage: ukdump [--config <name>] [--cycles N] [--policy trap|halt|throw]
 *               [--watchdog N] [--out <path>] [--list]
 *
 *   --config <name>   configuration to run (default uk_conference)
 *   --cycles N        cap simulated cycles (default: paper's 300000)
 *   --policy <p>      fault policy (default trap — keep simulating)
 *   --watchdog N      arm the deadlock watchdog at N stuck cycles
 *   --out <path>      dump path (default <config>.dump.json)
 *   --list            print the valid --config names and exit
 *
 * Exit status: 0 for any simulated outcome (including Faulted /
 * Deadlock — the dump is the product), 1 for I/O or internal errors,
 * 2 for usage errors.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "harness/cli_args.hpp"
#include "harness/experiment.hpp"

using namespace uksim;

namespace {

struct Options {
    std::string config = "uk_conference";
    std::string outPath;
    uint64_t cycles = 0;        ///< 0 = keep the config default
    uint64_t watchdog = 0;      ///< 0 = watchdog off
    FaultPolicy policy = FaultPolicy::Trap;
    bool list = false;
};

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: ukdump [--config <name>] [--cycles N] "
                 "[--policy trap|halt|throw]\n"
                 "              [--watchdog N] [--out <path>] [--list]\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("ukdump", argc, argv);
    while (args.next()) {
        if (args.is("--config")) {
            opts.config = args.value();
        } else if (args.is("--cycles")) {
            opts.cycles = args.u64();
        } else if (args.is("--watchdog")) {
            opts.watchdog = args.u64();
        } else if (args.is("--out")) {
            opts.outPath = args.value();
        } else if (args.is("--policy")) {
            const char *p = args.value();
            if (std::strcmp(p, "trap") == 0) {
                opts.policy = FaultPolicy::Trap;
            } else if (std::strcmp(p, "halt") == 0) {
                opts.policy = FaultPolicy::HaltGrid;
            } else if (std::strcmp(p, "throw") == 0) {
                opts.policy = FaultPolicy::Throw;
            } else {
                std::fprintf(stderr,
                             "ukdump: unknown policy '%s' "
                             "(trap|halt|throw)\n", p);
                return 2;
            }
        } else if (args.is("--list")) {
            opts.list = true;
        } else if (args.isHelp()) {
            usage(stdout);
            return 0;
        } else {
            args.unknown(&usage);
        }
    }

    if (opts.list) {
        for (const std::string &name : harness::namedExperimentNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    harness::ExperimentConfig config;
    try {
        config = harness::namedExperiment(opts.config);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "ukdump: %s (try --list)\n", e.what());
        return 2;
    }
    try {
        harness::applyEnvOverrides(config);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "ukdump: %s\n", e.what());
        return 2;
    }
    if (opts.cycles)
        config.maxCycles = opts.cycles;
    config.baseConfig.faultPolicy = opts.policy;
    config.baseConfig.watchdogCycles = opts.watchdog;
    config.captureFlightRecord = true;

    try {
        harness::PreparedScene scene =
            harness::prepareScene(config.sceneName, config.sceneParams);
        harness::ExperimentResult r =
            harness::runExperiment(scene, config);

        std::printf("ukdump: %s  outcome %s  cycles %llu  %zu fault(s)\n",
                    opts.config.c_str(), runOutcomeName(r.outcome),
                    (unsigned long long)r.stats.cycles, r.faults.size());
        std::printf("fast-forward: %s  skipped %llu cycle(s) in %llu "
                    "jump(s), largest %llu\n",
                    r.fastForwardEnabled ? "on" : "off",
                    (unsigned long long)r.fastForward.cyclesSkipped,
                    (unsigned long long)r.fastForward.jumps,
                    (unsigned long long)r.fastForward.largestJump);
        for (const SimFault &f : r.faults)
            std::printf("  %s\n", f.describe().c_str());

        const std::string path = opts.outPath.empty()
                                     ? opts.config + ".dump.json"
                                     : opts.outPath;
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "ukdump: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        out << r.flightRecord;
        std::printf("flight record: %s\n", path.c_str());
        return 0;
    } catch (const GuestFault &e) {
        // --policy throw: the fault aborts the run; still one line out.
        std::fprintf(stderr, "ukdump: guest fault: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ukdump: error: %s\n", e.what());
        return 1;
    }
}
