/**
 * @file
 * uksim-serve — batch simulation daemon.
 *
 * Serves the line-delimited JSON protocol (src/serve/protocol.hpp)
 * over stdin/stdout (--pipe, the default: scriptable and what CI
 * smoke-tests) or a loopback TCP socket (--tcp PORT, port 0 picks an
 * ephemeral port and prints it). Jobs are deduplicated by canonical
 * hash, served from the content-addressed result cache when possible,
 * and otherwise executed — optionally in forked worker processes with
 * snapshot/resume crash recovery.
 *
 * Usage: uksim-serve [--pipe | --tcp PORT] [--cache DIR] [--spool DIR]
 *                    [--workers N] [--snapshot-cycles N]
 *                    [--max-attempts N] [--deadline-ms N]
 *                    [--heartbeat-ms N] [--backoff-ms N] [--max-queue N]
 *                    [--degrade-after N] [--chaos SPEC]
 *
 *   --pipe              serve one session on stdin/stdout (default)
 *   --tcp PORT          listen on 127.0.0.1:PORT (0 = ephemeral)
 *   --cache DIR         content-addressed result cache (default: off)
 *   --spool DIR         snapshot/payload spool (default: CACHE/spool)
 *   --workers N         forked worker processes; 0 = in-process (default)
 *   --snapshot-cycles N snapshot cadence in simulated cycles (0 = off)
 *   --max-attempts N    attempts per job before it fails (default 3)
 *   --deadline-ms N     per-attempt wall-clock deadline (0 = off)
 *   --heartbeat-ms N    kill workers silent for N ms (0 = off)
 *   --backoff-ms N      base retry backoff (default 10; max 2000)
 *   --max-queue N       reject compute jobs beyond N per batch (0 = off)
 *   --degrade-after N   consecutive env failures per pool shrink (3)
 *   --chaos SPEC        "<seed>:<rule>,..." fault-injection spec; the
 *                       UKSIM_CHAOS env var is honored when the flag
 *                       is absent
 *
 * Exit status: 0 on clean shutdown or client EOF, 1 on runtime
 * errors, 2 on usage errors.
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "harness/chaos.hpp"
#include "harness/cli_args.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/tcp.hpp"

using namespace uksim;

namespace {

struct Options {
    bool tcp = false;
    uint64_t port = 0;
    std::string chaosSpec;
    serve::EngineOptions engine;
};

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: uksim-serve [--pipe | --tcp PORT] [--cache DIR] "
                 "[--spool DIR]\n"
                 "                   [--workers N] [--snapshot-cycles N] "
                 "[--max-attempts N]\n"
                 "                   [--deadline-ms N] [--heartbeat-ms N] "
                 "[--backoff-ms N]\n"
                 "                   [--max-queue N] [--degrade-after N] "
                 "[--chaos SPEC]\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("uksim-serve", argc, argv);
    while (args.next()) {
        if (args.isHelp()) {
            usage(stdout);
            std::exit(0);
        } else if (args.is("--pipe")) {
            opts.tcp = false;
        } else if (args.is("--tcp")) {
            opts.tcp = true;
            opts.port = args.u64();
            if (opts.port > 65535) {
                std::fprintf(stderr,
                             "uksim-serve: --tcp: port out of range\n");
                std::exit(2);
            }
        } else if (args.is("--cache")) {
            opts.engine.cacheDir = args.value();
        } else if (args.is("--spool")) {
            opts.engine.spoolDir = args.value();
        } else if (args.is("--workers")) {
            opts.engine.workers = args.i32();
        } else if (args.is("--snapshot-cycles")) {
            opts.engine.snapshotCycles = args.u64();
        } else if (args.is("--max-attempts")) {
            opts.engine.maxAttempts = args.i32();
        } else if (args.is("--deadline-ms")) {
            opts.engine.jobDeadlineMs = args.u64();
        } else if (args.is("--heartbeat-ms")) {
            opts.engine.heartbeatMs = args.u64();
        } else if (args.is("--backoff-ms")) {
            opts.engine.backoffBaseMs = args.u64();
        } else if (args.is("--max-queue")) {
            opts.engine.maxQueueDepth = args.i32();
        } else if (args.is("--degrade-after")) {
            opts.engine.degradeAfterFailures = args.i32();
        } else if (args.is("--chaos")) {
            opts.chaosSpec = args.value();
        } else {
            args.unknown(usage);
        }
    }
    return opts;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        if (!opts.chaosSpec.empty())
            chaos::ChaosEngine::instance().configureFromSpec(
                opts.chaosSpec);
        else
            chaos::ChaosEngine::instance().configureFromEnv();
        serve::ServerEngine engine(opts.engine);
        if (opts.tcp) {
            serve::TcpServer server(engine, uint16_t(opts.port));
            // Announce the bound port on stderr so scripts using an
            // ephemeral port can find it without racing the protocol.
            std::fprintf(stderr, "uksim-serve: listening on 127.0.0.1:%u\n",
                         unsigned(server.port()));
            server.serve();
        } else {
            serve::Session session(engine, std::cin, std::cout);
            session.run();
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "uksim-serve: %s\n", e.what());
        return 1;
    }
}
