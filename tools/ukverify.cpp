/**
 * @file
 * ukverify — static lint for uksim assembly.
 *
 * Assembles each `.uk` source file and runs the µ-kernel verifier over
 * it, printing the diagnostic report and exiting nonzero when any input
 * fails. `--builtin` additionally lints every kernel shipped in the
 * repository (the ray-tracing benchmark kernels and the example
 * kernels), which is what the `verify_kernels` ctest runs.
 *
 * Usage: ukverify [--werror] [--lenient] [--builtin] [file.uk ...]
 *
 *   --werror    treat warnings as errors (strict CI gating)
 *   --lenient   print diagnostics but always exit 0
 *   --builtin   lint the kernels compiled into the repository
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "example_kernels.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/verifier.hpp"

using namespace uksim;

namespace {

struct Options {
    bool werror = false;
    bool lenient = false;
    bool builtin = false;
    std::vector<std::string> files;
};

/** Lint one assembled program; returns true when it passes. */
bool
lintProgram(const std::string &name, const Program &program,
            const Options &opts)
{
    VerifyOptions vopts;
    vopts.warningsAsErrors = opts.werror;
    VerifyResult result = verify(program, vopts);
    for (const Diagnostic &d : result.diagnostics)
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     d.format().c_str());
    if (result.failed(vopts)) {
        std::fprintf(stderr, "%s: FAILED (%zu error(s), %zu warning(s))\n",
                     name.c_str(), result.errorCount(),
                     result.warningCount());
        return false;
    }
    std::printf("%s: ok (%zu instructions, %zu warning(s))\n",
                name.c_str(), program.size(), result.warningCount());
    return true;
}

/** Assemble and lint a source string; returns true when it passes. */
bool
lintSource(const std::string &name, const std::string &source,
           const Options &opts)
{
    try {
        return lintProgram(name, assemble(source), opts);
    } catch (const AssemblerError &e) {
        // what() already carries the "line N:" prefix.
        std::fprintf(stderr, "%s: assembly error: %s\n", name.c_str(),
                     e.what());
        return false;
    }
}

bool
lintFile(const std::string &path, const Options &opts)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return false;
    }
    std::ostringstream source;
    source << in.rdbuf();
    return lintSource(path, source.str(), opts);
}

bool
lintBuiltins(const Options &opts)
{
    bool ok = true;
    ok &= lintProgram("kernels/traditional", kernels::buildTraditional(),
                      opts);
    ok &= lintProgram("kernels/microkernel", kernels::buildMicroKernel(),
                      opts);
    ok &= lintProgram("kernels/persistent-threads",
                      kernels::buildPersistentThreads(), opts);
    ok &= lintProgram("kernels/microkernel-adaptive",
                      kernels::buildMicroKernelAdaptive(), opts);
    ok &= lintSource("examples/quickstart",
                     examples::quickstartSource(), opts);
    ok &= lintSource("examples/collatz", examples::collatzSource(), opts);
    ok &= lintSource("examples/divergence-loop",
                     examples::divergenceLoopSource(64), opts);
    ok &= lintSource("examples/divergence-spawn",
                     examples::divergenceSpawnSource(64), opts);
    return ok;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--werror") == 0) {
            opts.werror = true;
        } else if (std::strcmp(argv[i], "--lenient") == 0) {
            opts.lenient = true;
        } else if (std::strcmp(argv[i], "--builtin") == 0) {
            opts.builtin = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: ukverify [--werror] [--lenient] "
                        "[--builtin] [file.uk ...]\n");
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return 2;
        } else {
            opts.files.emplace_back(argv[i]);
        }
    }
    if (!opts.builtin && opts.files.empty()) {
        std::fprintf(stderr, "usage: ukverify [--werror] [--lenient] "
                             "[--builtin] [file.uk ...]\n");
        return 2;
    }

    // Any escaping exception (I/O, bad_alloc, verifier internals) turns
    // into a one-line diagnostic and a nonzero exit, never a raw abort.
    try {
        bool ok = true;
        if (opts.builtin)
            ok &= lintBuiltins(opts);
        for (const std::string &f : opts.files)
            ok &= lintFile(f, opts);
        return (ok || opts.lenient) ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ukverify: error: %s\n", e.what());
        return 1;
    }
}
