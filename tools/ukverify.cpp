/**
 * @file
 * ukverify — static lint and analysis CLI for uksim assembly.
 *
 * Assembles each `.uk` source file and runs the µ-kernel verifier over
 * it, printing the diagnostic report. `--builtin` additionally lints
 * every kernel shipped in the repository (the ray-tracing benchmark
 * kernels and the example kernels), which is what the `verify_kernels`
 * ctest runs. `--analyze` runs the full analysis framework — branch
 * uniformity/divergence classification, range-proven access statistics
 * and the spawn-placement advisor — and `--json` emits everything as
 * one schema-stable JSON document on stdout.
 *
 * Usage: ukverify [--werror] [--lenient] [--builtin] [--analyze]
 *                 [--json] [file.uk ...]
 *
 *   --werror    treat warnings as errors (strict CI gating)
 *   --lenient   print diagnostics but always exit 0
 *   --builtin   lint the kernels compiled into the repository
 *   --analyze   also report branch uniformity, access proofs, advice
 *   --json      machine-readable output (implies --analyze)
 *
 * Exit codes (stable, scripting contract):
 *   0  every input is clean under the selected gating
 *   1  at least one input has findings (or failed to assemble)
 *   2  usage error or unreadable input file
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "example_kernels.hpp"
#include "harness/cli_args.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/analysis/analysis.hpp"
#include "simt/assembler.hpp"
#include "simt/verifier.hpp"

using namespace uksim;

namespace {

struct Options {
    bool werror = false;
    bool lenient = false;
    bool builtin = false;
    bool analyze = false;
    bool json = false;
    std::vector<std::string> files;
};

struct Runner {
    explicit Runner(const Options &o) : opts(o) {}

    const Options &opts;
    std::vector<std::string> jsonPrograms;
    bool sawFindings = false;
    bool sawLoadError = false;

    /** Lint (and optionally analyze) one assembled program. */
    void runProgram(const std::string &name, const Program &program)
    {
        VerifyOptions vopts;
        vopts.warningsAsErrors = opts.werror;

        if (opts.analyze) {
            analysis::ProgramAnalysis a =
                analysis::analyzeProgram(program);
            if (opts.json) {
                jsonPrograms.push_back(
                    analysis::toJson(name, program, a, /*indent=*/1));
            } else {
                for (const Diagnostic &d : a.verify.diagnostics)
                    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                                 d.format().c_str());
                std::printf("%s:\n%s", name.c_str(),
                            analysis::renderReport(program, a).c_str());
            }
            if (a.verify.failed(vopts))
                sawFindings = true;
            return;
        }

        VerifyResult result = verify(program, vopts);
        for (const Diagnostic &d : result.diagnostics)
            std::fprintf(stderr, "%s: %s\n", name.c_str(),
                         d.format().c_str());
        if (result.failed(vopts)) {
            std::fprintf(stderr,
                         "%s: FAILED (%zu error(s), %zu warning(s))\n",
                         name.c_str(), result.errorCount(),
                         result.warningCount());
            sawFindings = true;
            return;
        }
        std::printf("%s: ok (%zu instructions, %zu warning(s))\n",
                    name.c_str(), program.size(),
                    result.warningCount());
    }

    void runSource(const std::string &name, const std::string &source)
    {
        try {
            runProgram(name, assemble(source));
        } catch (const AssemblerError &e) {
            // what() already carries the "line N:" prefix.
            std::fprintf(stderr, "%s: assembly error: %s\n",
                         name.c_str(), e.what());
            sawFindings = true;
        }
    }

    void runFile(const std::string &path)
    {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            sawLoadError = true;
            return;
        }
        std::ostringstream source;
        source << in.rdbuf();
        runSource(path, source.str());
    }

    void runBuiltins()
    {
        runProgram("kernels/traditional", kernels::buildTraditional());
        runProgram("kernels/microkernel", kernels::buildMicroKernel());
        runProgram("kernels/persistent-threads",
                   kernels::buildPersistentThreads());
        runProgram("kernels/microkernel-adaptive",
                   kernels::buildMicroKernelAdaptive());
        runSource("examples/quickstart", examples::quickstartSource());
        runSource("examples/collatz", examples::collatzSource());
        runSource("examples/divergence-loop",
                  examples::divergenceLoopSource(64));
        runSource("examples/divergence-spawn",
                  examples::divergenceSpawnSource(64));
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("ukverify", argc, argv);
    while (args.next()) {
        if (args.is("--werror")) {
            opts.werror = true;
        } else if (args.is("--lenient")) {
            opts.lenient = true;
        } else if (args.is("--builtin")) {
            opts.builtin = true;
        } else if (args.is("--analyze")) {
            opts.analyze = true;
        } else if (args.is("--json")) {
            opts.json = true;
            opts.analyze = true;
        } else if (args.isHelp()) {
            std::printf("usage: ukverify [--werror] [--lenient] "
                        "[--builtin] [--analyze] [--json] "
                        "[file.uk ...]\n");
            return 0;
        } else if (args.looksLikeFlag()) {
            args.unknown();
        } else {
            opts.files.emplace_back(args.arg());
        }
    }
    if (!opts.builtin && opts.files.empty()) {
        std::fprintf(stderr, "usage: ukverify [--werror] [--lenient] "
                             "[--builtin] [--analyze] [--json] "
                             "[file.uk ...]\n");
        return 2;
    }

    // Any escaping exception (I/O, bad_alloc, verifier internals) turns
    // into a one-line diagnostic and a nonzero exit, never a raw abort.
    try {
        Runner runner(opts);
        if (opts.builtin)
            runner.runBuiltins();
        for (const std::string &f : opts.files)
            runner.runFile(f);

        if (opts.json) {
            std::printf("{\n  \"schema\": \"%s\",\n  \"programs\": [\n",
                        analysis::kJsonSchema);
            for (size_t i = 0; i < runner.jsonPrograms.size(); i++)
                std::printf("%s%s\n", runner.jsonPrograms[i].c_str(),
                            i + 1 < runner.jsonPrograms.size() ? ","
                                                               : "");
            std::printf("  ]\n}\n");
        }

        if (runner.sawLoadError)
            return 2;
        if (runner.sawFindings)
            return opts.lenient ? 0 : 1;
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ukverify: error: %s\n", e.what());
        return 2;
    }
}
