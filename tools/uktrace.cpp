/**
 * @file
 * uktrace — run one named experiment configuration under full
 * observability and export what the machine did.
 *
 * Runs "<kernel>_<scene>" (see harness::namedExperiment), prints the
 * chip-wide issue-slot stall breakdown and a run summary, dumps the
 * hierarchical counter registry, and writes the structured event trace
 * as Chrome-trace JSON (load it in chrome://tracing or Perfetto).
 *
 * Usage: uktrace [--config <name>] [--cycles N] [--window N]
 *                [--csv <path>] [--json <path>] [--trace <path>]
 *                [--no-trace] [--list]
 *
 *   --config <name>  configuration to run (default uk_conference)
 *   --cycles N       cap simulated cycles (default: paper's 300000)
 *   --window N       occupancy-series window size in cycles
 *   --csv <path>     write the counter registry as CSV (default stdout)
 *   --json <path>    also write the counter registry as nested JSON
 *   --trace <path>   Chrome-trace output path (default <config>.trace.json)
 *   --no-trace       skip event tracing entirely
 *   --list           print the valid --config names and exit
 *
 * The tool self-checks the attribution invariant — stall reasons must
 * sum to exactly numSms x cycles, chip-wide and per SM — and exits
 * nonzero if the accounting ever leaks a cycle.
 *
 * Environment overrides (UKSIM_CYCLES, UKSIM_DETAIL, UKSIM_RES,
 * UKSIM_SMS) apply as in the bench binaries.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "harness/cli_args.hpp"
#include "harness/experiment.hpp"
#include "trace/stall.hpp"

using namespace uksim;

namespace {

struct Options {
    std::string config = "uk_conference";
    std::string csvPath;
    std::string jsonPath;
    std::string tracePath;
    uint64_t cycles = 0;        ///< 0 = keep the config default
    uint64_t window = 0;        ///< 0 = keep the config default
    bool noTrace = false;
    bool list = false;
};

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: uktrace [--config <name>] [--cycles N] "
                 "[--window N]\n"
                 "               [--csv <path>] [--json <path>] "
                 "[--trace <path>]\n"
                 "               [--no-trace] [--list]\n");
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "uktrace: cannot write %s\n", path.c_str());
        return false;
    }
    out << content;
    return true;
}

/**
 * Verify the attribution invariant: every SM classifies every cycle
 * into exactly one reason.
 */
bool
checkInvariant(const harness::ExperimentResult &r, uint64_t cycles)
{
    bool ok = true;
    const uint64_t numSms = r.smStalls.size();
    if (r.stats.stall.total() != numSms * cycles) {
        std::fprintf(stderr,
                     "uktrace: INVARIANT VIOLATION: chip stall total %llu "
                     "!= %llu SMs x %llu cycles\n",
                     (unsigned long long)r.stats.stall.total(),
                     (unsigned long long)numSms,
                     (unsigned long long)cycles);
        ok = false;
    }
    for (size_t i = 0; i < r.smStalls.size(); i++) {
        if (r.smStalls[i].total() != cycles) {
            std::fprintf(stderr,
                         "uktrace: INVARIANT VIOLATION: sm %zu stall "
                         "total %llu != %llu cycles\n",
                         i, (unsigned long long)r.smStalls[i].total(),
                         (unsigned long long)cycles);
            ok = false;
        }
    }
    return ok;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("uktrace", argc, argv);
    while (args.next()) {
        if (args.is("--config")) {
            opts.config = args.value();
        } else if (args.is("--cycles")) {
            opts.cycles = args.u64();
        } else if (args.is("--window")) {
            opts.window = args.u64();
        } else if (args.is("--csv")) {
            opts.csvPath = args.value();
        } else if (args.is("--json")) {
            opts.jsonPath = args.value();
        } else if (args.is("--trace")) {
            opts.tracePath = args.value();
        } else if (args.is("--no-trace")) {
            opts.noTrace = true;
        } else if (args.is("--list")) {
            opts.list = true;
        } else if (args.isHelp()) {
            usage(stdout);
            return 0;
        } else {
            args.unknown(&usage);
        }
    }

    if (opts.list) {
        for (const std::string &name : harness::namedExperimentNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    harness::ExperimentConfig config;
    try {
        config = harness::namedExperiment(opts.config);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "uktrace: %s (try --list)\n", e.what());
        return 2;
    }
    try {
        harness::applyEnvOverrides(config);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "uktrace: %s\n", e.what());
        return 2;
    }
    try {
    if (opts.cycles)
        config.maxCycles = opts.cycles;
    if (opts.window)
        config.baseConfig.statsWindowCycles = opts.window;
    config.exportCounters = true;
    config.traceEvents = !opts.noTrace;

    std::printf("uktrace: %s (%s, scene %s)\n", opts.config.c_str(),
                config.label().c_str(), config.sceneName.c_str());
    harness::PreparedScene scene =
        harness::prepareScene(config.sceneName, config.sceneParams);
    harness::ExperimentResult r = harness::runExperiment(scene, config);

    std::printf("cycles %llu  IPC %.2f  SIMT eff %.1f%%  %.2f Mrays/s  "
                "%s\n\n",
                (unsigned long long)r.stats.cycles, r.ipc,
                100.0 * r.simtEfficiency, r.mraysPerSec,
                runOutcomeName(r.outcome));
    std::fputs(trace::stallBreakdownTable(r.stats.stall, opts.config)
                   .c_str(),
               stdout);
    std::printf("\n");

    bool ok = checkInvariant(r, r.stats.cycles);

    if (opts.csvPath.empty()) {
        std::fputs(r.counterCsv.c_str(), stdout);
    } else {
        ok &= writeFile(opts.csvPath, r.counterCsv);
        std::printf("counters: %s\n", opts.csvPath.c_str());
    }
    if (!opts.jsonPath.empty()) {
        ok &= writeFile(opts.jsonPath, r.counterJson);
        std::printf("counters (json): %s\n", opts.jsonPath.c_str());
    }
    if (!opts.noTrace) {
        std::string path = opts.tracePath.empty()
                               ? opts.config + ".trace.json"
                               : opts.tracePath;
        ok &= writeFile(path, r.chromeTrace);
        std::printf("event trace: %s (load in chrome://tracing)\n",
                    path.c_str());
    }
    return ok ? 0 : 1;
    } catch (const std::exception &e) {
        // One-line diagnostic and a nonzero exit, never a raw abort.
        std::fprintf(stderr, "uktrace: error: %s\n", e.what());
        return 1;
    }
}
