/**
 * @file
 * Read-only cache implementation.
 */

#include "mem/rocache.hpp"

#include <cassert>

namespace uksim {

ReadOnlyCache::ReadOnlyCache(uint32_t bytes, uint32_t line_bytes, int ways)
    : lineBytes_(line_bytes), ways_(ways)
{
    assert(line_bytes && (line_bytes & (line_bytes - 1)) == 0);
    assert(ways > 0);
    size_t lines = bytes / line_bytes;
    sets_ = lines / ways;
    if (sets_ == 0)
        sets_ = 1;
    lines_.assign(sets_ * ways_, Line{});
}

size_t
ReadOnlyCache::setOf(uint64_t addr) const
{
    return (addr / lineBytes_) % sets_;
}

bool
ReadOnlyCache::probe(uint64_t addr)
{
    const uint64_t tag = addr / lineBytes_;
    Line *set = &lines_[setOf(addr) * ways_];
    tick_++;
    for (int w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = tick_;
            hits_++;
            return true;
        }
    }
    misses_++;
    return false;
}

void
ReadOnlyCache::fill(uint64_t addr)
{
    const uint64_t tag = addr / lineBytes_;
    Line *set = &lines_[setOf(addr) * ways_];
    // Already present (another warp filled it first): refresh.
    for (int w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++tick_;
            return;
        }
    }
    Line *victim = &set[0];
    for (int w = 1; w < ways_; w++) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse && victim->valid)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = ++tick_;
    fills_++;
}

void
ReadOnlyCache::invalidate(uint64_t addr)
{
    const uint64_t tag = addr / lineBytes_;
    Line *set = &lines_[setOf(addr) * ways_];
    for (int w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            invalidations_++;
        }
    }
}

} // namespace uksim
