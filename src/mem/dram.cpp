/**
 * @file
 * DRAM timing model implementation.
 */

#include "mem/dram.hpp"

#include <algorithm>

namespace uksim {

DramModel::DramModel(const GpuConfig &config)
    : config_(config),
      busyUntil_(config.numMemPartitions, 0),
      stats_(config.numMemPartitions)
{
}

int
DramModel::partitionOf(uint64_t addr) const
{
    return static_cast<int>((addr / config_.coalesceSegmentBytes) %
                            config_.numMemPartitions);
}

uint64_t
DramModel::access(const Segment &seg, bool isWrite, uint64_t now)
{
    int p = partitionOf(seg.addr);
    PartitionStats &ps = stats_[p];
    ps.transactions++;
    const uint32_t bytes = seg.touched ? seg.touched : seg.bytes;
    if (isWrite)
        ps.writeBytes += bytes;
    else
        ps.readBytes += bytes;

    uint64_t done;
    if (config_.idealMemory) {
        done = now + 1;
    } else {
        // Byte-granular service: the partition pipe moves
        // bytesPerCyclePerPartition each cycle and small scattered
        // requests share cycles (busyUntil_ is kept in byte-times). This
        // mirrors the paper's byte-granular bandwidth accounting
        // (Table IV).
        const uint64_t bw = config_.bytesPerCyclePerPartition;
        uint64_t arrive =
            (now + config_.interconnectLatencyCycles) * bw;
        uint64_t start = std::max(arrive, busyUntil_[p]);
        busyUntil_[p] = start + bytes;
        ps.busyCycles += (bytes + bw - 1) / bw;
        done = (busyUntil_[p] + bw - 1) / bw + config_.dramLatencyCycles;
    }

    if (trace_) {
        trace_->record(trace::EventKind::MemRequest, now, trackBase_ + p,
                       isWrite ? 1 : 0, 0, bytes,
                       static_cast<uint32_t>(done - now));
        trace_->record(trace::EventKind::MemReply, done, trackBase_ + p,
                       isWrite ? 1 : 0, 0, bytes);
    }
    return done;
}

uint64_t
DramModel::accessAll(const std::vector<Segment> &segments, bool isWrite,
                     uint64_t now)
{
    uint64_t done = now + 1;
    for (const Segment &s : segments)
        done = std::max(done, access(s, isWrite, now));
    return done;
}

uint64_t
DramModel::totalReadBytes() const
{
    uint64_t t = 0;
    for (const auto &s : stats_)
        t += s.readBytes;
    return t;
}

uint64_t
DramModel::totalWriteBytes() const
{
    uint64_t t = 0;
    for (const auto &s : stats_)
        t += s.writeBytes;
    return t;
}

uint64_t
DramModel::totalTransactions() const
{
    uint64_t t = 0;
    for (const auto &s : stats_)
        t += s.transactions;
    return t;
}

} // namespace uksim
