/**
 * @file
 * Bank-conflict model implementation.
 */

#include "mem/bank.hpp"

#include <algorithm>
#include <set>

namespace uksim {

int
bankConflictPasses(const std::vector<uint64_t> &addrs, uint64_t activeMask,
                   int wordsPerLane, int numBanks)
{
    // Distinct words touched per bank; same-word accesses broadcast.
    std::vector<std::set<uint64_t>> words(numBanks);
    bool any = false;
    for (size_t lane = 0; lane < addrs.size(); lane++) {
        if (!(activeMask >> lane & 1))
            continue;
        any = true;
        uint64_t word0 = addrs[lane] / 4;
        for (int w = 0; w < wordsPerLane; w++) {
            uint64_t word = word0 + w;
            words[word % numBanks].insert(word);
        }
    }
    if (!any)
        return 0;
    size_t worst = 1;
    for (const auto &s : words)
        worst = std::max(worst, s.size());
    return static_cast<int>(worst);
}

} // namespace uksim
