/**
 * @file
 * Bank-conflict model implementation.
 */

#include "mem/bank.hpp"

#include <algorithm>
#include <set>

namespace uksim {

BankConflictInfo
bankConflictAnalyze(const std::vector<uint64_t> &addrs, uint64_t activeMask,
                    int wordsPerLane, int numBanks)
{
    // Distinct words touched per bank; same-word accesses broadcast.
    std::vector<std::set<uint64_t>> words(numBanks);
    bool any = false;
    for (size_t lane = 0; lane < addrs.size(); lane++) {
        if (!(activeMask >> lane & 1))
            continue;
        any = true;
        uint64_t word0 = addrs[lane] / 4;
        for (int w = 0; w < wordsPerLane; w++) {
            uint64_t word = word0 + w;
            words[word % numBanks].insert(word);
        }
    }
    BankConflictInfo info;
    if (!any)
        return info;
    size_t worst = 1;
    info.passes = 1;
    for (int b = 0; b < numBanks; b++) {
        if (words[b].size() > worst) {
            worst = words[b].size();
            info.worstBank = b;
        }
    }
    info.passes = static_cast<int>(worst);
    return info;
}

int
bankConflictPasses(const std::vector<uint64_t> &addrs, uint64_t activeMask,
                   int wordsPerLane, int numBanks)
{
    return bankConflictAnalyze(addrs, activeMask, wordsPerLane, numBanks)
        .passes;
}

} // namespace uksim
