/**
 * @file
 * Bank-conflict model implementation.
 *
 * This runs once per on-chip warp access — every shared/spawn memory
 * instruction, every cycle — so the analysis is allocation-free: lane
 * words are deduplicated in a stack array (<= 64 lanes x 4 words) and
 * per-bank degrees counted in a stack table. A set-based fallback keeps
 * exact semantics for configurations outside those bounds.
 */

#include "mem/bank.hpp"

#include <algorithm>
#include <bit>
#include <set>

namespace uksim {

namespace {

constexpr int kMaxStackBanks = 1024;
constexpr int kMaxStackWordsPerLane = 4;    ///< ISA vector widths: 1/2/4

BankConflictInfo
analyzeLarge(const std::vector<uint64_t> &addrs, uint64_t activeMask,
             int wordsPerLane, int numBanks)
{
    // Cold fallback preserving the original set-based semantics for
    // configurations outside the stack-table bounds.
    std::vector<std::set<uint64_t>> words(numBanks);
    bool any = false;
    for (size_t lane = 0; lane < addrs.size(); lane++) {
        if (!(activeMask >> lane & 1))
            continue;
        any = true;
        uint64_t word0 = addrs[lane] / 4;
        for (int w = 0; w < wordsPerLane; w++) {
            uint64_t word = word0 + w;
            words[word % numBanks].insert(word);
        }
    }
    BankConflictInfo info;
    if (!any)
        return info;
    size_t worst = 1;
    info.passes = 1;
    for (int b = 0; b < numBanks; b++) {
        if (words[b].size() > worst) {
            worst = words[b].size();
            info.worstBank = b;
        }
    }
    info.passes = static_cast<int>(worst);
    return info;
}

} // anonymous namespace

BankConflictInfo
bankConflictAnalyze(const std::vector<uint64_t> &addrs, uint64_t activeMask,
                    int wordsPerLane, int numBanks)
{
    if (numBanks > kMaxStackBanks || wordsPerLane > kMaxStackWordsPerLane)
        return analyzeLarge(addrs, activeMask, wordsPerLane, numBanks);

    uint64_t live = activeMask;
    if (addrs.size() < 64)
        live &= (uint64_t{1} << addrs.size()) - 1;

    BankConflictInfo info;
    if (live == 0)
        return info;

    // Distinct words touched by the warp; same-word accesses broadcast.
    uint64_t words[64 * kMaxStackWordsPerLane];
    int numWords = 0;
    for (uint64_t m = live; m; m &= m - 1) {
        const uint64_t word0 = addrs[std::countr_zero(m)] / 4;
        for (int w = 0; w < wordsPerLane; w++) {
            const uint64_t word = word0 + w;
            bool dup = false;
            for (int i = 0; i < numWords; i++) {
                if (words[i] == word) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                words[numWords++] = word;
        }
    }

    uint16_t counts[kMaxStackBanks];
    std::fill(counts, counts + numBanks, uint16_t{0});
    for (int i = 0; i < numWords; i++)
        counts[words[i] % numBanks]++;

    size_t worst = 1;
    info.passes = 1;
    for (int b = 0; b < numBanks; b++) {
        if (counts[b] > worst) {
            worst = counts[b];
            info.worstBank = b;
        }
    }
    info.passes = static_cast<int>(worst);
    return info;
}

int
bankConflictPasses(const std::vector<uint64_t> &addrs, uint64_t activeMask,
                   int wordsPerLane, int numBanks)
{
    return bankConflictAnalyze(addrs, activeMask, wordsPerLane, numBanks)
        .passes;
}

} // namespace uksim
