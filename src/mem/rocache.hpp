/**
 * @file
 * Read-only (texture-path) cache model.
 *
 * The paper's workload, like Radius-CUDA and every GT200-era GPU ray
 * tracer, reads scene data (kd nodes, triangles, index lists) through
 * the texture units, which are cached per SM with a shared second level
 * at the memory partitions — even though the FX5800 has no general
 * L1/L2 for global memory (Table I). We model that path as a simple
 * set-associative LRU cache of read-only lines; stores write through to
 * DRAM and invalidate matching lines.
 */

#ifndef UKSIM_MEM_ROCACHE_HPP
#define UKSIM_MEM_ROCACHE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uksim {

/** Set-associative read-only cache (tags only; data is functional). */
class ReadOnlyCache
{
  public:
    /**
     * @param bytes total capacity.
     * @param line_bytes line size (power of two).
     * @param ways associativity.
     */
    ReadOnlyCache(uint32_t bytes, uint32_t line_bytes, int ways);

    /**
     * Look up the line containing @p addr; updates LRU on hit.
     * @retval true on hit.
     */
    bool probe(uint64_t addr);

    /** Install the line containing @p addr (LRU victim). */
    void fill(uint64_t addr);

    /** Drop the line containing @p addr if present. */
    void invalidate(uint64_t addr);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t fills() const { return fills_; }
    uint64_t invalidations() const { return invalidations_; }
    uint32_t lineBytes() const { return lineBytes_; }

  private:
    struct Line {
        uint64_t tag = ~uint64_t{0};
        uint64_t lastUse = 0;
        bool valid = false;
    };

    size_t setOf(uint64_t addr) const;

    uint32_t lineBytes_;
    int ways_;
    size_t sets_;
    std::vector<Line> lines_;   ///< sets_ x ways_
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t fills_ = 0;
    uint64_t invalidations_ = 0;
};

} // namespace uksim

#endif // UKSIM_MEM_ROCACHE_HPP
