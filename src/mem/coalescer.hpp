/**
 * @file
 * Memory coalescing: collapse one warp's per-lane accesses into the
 * minimal set of aligned DRAM segments, as GPGPU-Sim models for
 * compute-capability-1.x style hardware (the paper's FX5800 target).
 */

#ifndef UKSIM_MEM_COALESCER_HPP
#define UKSIM_MEM_COALESCER_HPP

#include <cstdint>
#include <vector>

namespace uksim {

/** One coalesced DRAM transaction. */
struct Segment {
    uint64_t addr = 0;     ///< segment-aligned base address
    uint32_t bytes = 0;    ///< segment size (cache-line granularity)
    /// Bytes the warp actually requested within the segment. The DRAM
    /// transfers only these (GPGPU-Sim-style: an uncoalesced scalar
    /// access costs its own size, not a whole segment).
    uint32_t touched = 0;
};

/**
 * Coalesce a warp's lane accesses into unique aligned segments.
 *
 * @param addrs per-lane byte addresses (only active lanes inspected).
 * @param activeMask bit i set when lane i issues the access.
 * @param accessBytes bytes accessed per lane (4, 8 or 16).
 * @param segmentBytes coalescing granularity (power of two).
 * @return unique segments, in first-touch order.
 */
std::vector<Segment> coalesce(const std::vector<uint64_t> &addrs,
                              uint64_t activeMask,
                              uint32_t accessBytes,
                              uint32_t segmentBytes);

/**
 * Allocation-free variant for the per-cycle hot path: clears @p out and
 * fills it with the coalesced segments, reusing its capacity. Internal
 * dedup state lives on the stack.
 */
void coalesce(const std::vector<uint64_t> &addrs, uint64_t activeMask,
              uint32_t accessBytes, uint32_t segmentBytes,
              std::vector<Segment> &out);

} // namespace uksim

#endif // UKSIM_MEM_COALESCER_HPP
