/**
 * @file
 * Coalescer implementation.
 */

#include "mem/coalescer.hpp"

#include <algorithm>
#include <cassert>

namespace uksim {

std::vector<Segment>
coalesce(const std::vector<uint64_t> &addrs, uint64_t activeMask,
         uint32_t accessBytes, uint32_t segmentBytes)
{
    assert(segmentBytes && (segmentBytes & (segmentBytes - 1)) == 0);
    std::vector<Segment> out;
    std::vector<uint64_t> seen;     // deduped lane addresses
    auto touch = [&](uint64_t base, uint32_t bytes) {
        for (Segment &s : out) {
            if (s.addr == base) {
                s.touched += bytes;
                return;
            }
        }
        out.push_back({base, segmentBytes, bytes});
    };
    const uint64_t mask = ~uint64_t(segmentBytes - 1);
    for (size_t lane = 0; lane < addrs.size(); lane++) {
        if (!(activeMask >> lane & 1))
            continue;
        const uint64_t addr = addrs[lane];
        bool dup = false;
        for (uint64_t a : seen) {
            if (a == addr) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;   // broadcast: same word served once
        seen.push_back(addr);
        uint64_t first = addr & mask;
        uint64_t last = (addr + accessBytes - 1) & mask;
        if (last == first) {
            touch(first, accessBytes);
        } else {
            uint32_t inFirst =
                static_cast<uint32_t>(first + segmentBytes - addr);
            touch(first, inFirst);
            touch(last, accessBytes - inFirst);
        }
    }
    for (Segment &s : out) {
        if (s.touched > s.bytes)
            s.touched = s.bytes;    // overlapping lanes clamp to the line
    }
    return out;
}

} // namespace uksim
