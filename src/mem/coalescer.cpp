/**
 * @file
 * Coalescer implementation.
 */

#include "mem/coalescer.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace uksim {

void
coalesce(const std::vector<uint64_t> &addrs, uint64_t activeMask,
         uint32_t accessBytes, uint32_t segmentBytes,
         std::vector<Segment> &out)
{
    assert(segmentBytes && (segmentBytes & (segmentBytes - 1)) == 0);
    out.clear();
    // Deduped lane addresses; a warp has at most 64 lanes.
    uint64_t seen[64];
    int numSeen = 0;
    auto touch = [&](uint64_t base, uint32_t bytes) {
        for (Segment &s : out) {
            if (s.addr == base) {
                s.touched += bytes;
                return;
            }
        }
        out.push_back({base, segmentBytes, bytes});
    };
    const uint64_t mask = ~uint64_t(segmentBytes - 1);
    uint64_t live = activeMask;
    if (addrs.size() < 64)
        live &= (uint64_t{1} << addrs.size()) - 1;
    for (uint64_t m = live; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const uint64_t addr = addrs[lane];
        bool dup = false;
        for (int i = 0; i < numSeen; i++) {
            if (seen[i] == addr) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;   // broadcast: same word served once
        seen[numSeen++] = addr;
        uint64_t first = addr & mask;
        uint64_t last = (addr + accessBytes - 1) & mask;
        if (last == first) {
            touch(first, accessBytes);
        } else {
            uint32_t inFirst =
                static_cast<uint32_t>(first + segmentBytes - addr);
            touch(first, inFirst);
            touch(last, accessBytes - inFirst);
        }
    }
    for (Segment &s : out) {
        if (s.touched > s.bytes)
            s.touched = s.bytes;    // overlapping lanes clamp to the line
    }
}

std::vector<Segment>
coalesce(const std::vector<uint64_t> &addrs, uint64_t activeMask,
         uint32_t accessBytes, uint32_t segmentBytes)
{
    std::vector<Segment> out;
    coalesce(addrs, activeMask, accessBytes, segmentBytes, out);
    return out;
}

} // namespace uksim
