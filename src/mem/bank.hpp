/**
 * @file
 * On-chip memory bank-conflict model.
 *
 * Shared memory and (optionally — Fig. 7 vs Fig. 9) the paper's spawn
 * memory are word-interleaved across numBanks banks. A warp access costs
 * as many passes as the most-contended bank requires; lanes reading the
 * exact same word are satisfied by broadcast in one pass.
 */

#ifndef UKSIM_MEM_BANK_HPP
#define UKSIM_MEM_BANK_HPP

#include <cstdint>
#include <vector>

namespace uksim {

/**
 * Number of serialized passes a warp needs to access on-chip memory.
 *
 * @param addrs per-lane byte addresses.
 * @param activeMask bit i set when lane i participates.
 * @param wordsPerLane consecutive 32-bit words each lane touches
 *                     (1 for scalar, 2/4 for vector accesses).
 * @param numBanks bank count (word-interleaved).
 * @return conflict degree >= 1 (0 when no lane is active).
 */
int bankConflictPasses(const std::vector<uint64_t> &addrs,
                       uint64_t activeMask,
                       int wordsPerLane,
                       int numBanks);

} // namespace uksim

#endif // UKSIM_MEM_BANK_HPP
