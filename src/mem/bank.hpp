/**
 * @file
 * On-chip memory bank-conflict model.
 *
 * Shared memory and (optionally — Fig. 7 vs Fig. 9) the paper's spawn
 * memory are word-interleaved across numBanks banks. A warp access costs
 * as many passes as the most-contended bank requires; lanes reading the
 * exact same word are satisfied by broadcast in one pass.
 */

#ifndef UKSIM_MEM_BANK_HPP
#define UKSIM_MEM_BANK_HPP

#include <cstdint>
#include <vector>

namespace uksim {

/** Conflict analysis of one warp access (observability hook). */
struct BankConflictInfo {
    int passes = 0;         ///< serialized passes (0 when no lane active)
    int worstBank = -1;     ///< most-contended bank (-1 when conflict-free)
};

/**
 * Analyze the bank conflicts of one warp access.
 *
 * @param addrs per-lane byte addresses.
 * @param activeMask bit i set when lane i participates.
 * @param wordsPerLane consecutive 32-bit words each lane touches
 *                     (1 for scalar, 2/4 for vector accesses).
 * @param numBanks bank count (word-interleaved).
 */
BankConflictInfo bankConflictAnalyze(const std::vector<uint64_t> &addrs,
                                     uint64_t activeMask,
                                     int wordsPerLane,
                                     int numBanks);

/**
 * Number of serialized passes a warp needs to access on-chip memory:
 * bankConflictAnalyze(...).passes.
 * @return conflict degree >= 1 (0 when no lane is active).
 */
int bankConflictPasses(const std::vector<uint64_t> &addrs,
                       uint64_t activeMask,
                       int wordsPerLane,
                       int numBanks);

} // namespace uksim

#endif // UKSIM_MEM_BANK_HPP
