/**
 * @file
 * Functional backing store for one memory space.
 *
 * The timing model lives elsewhere (dram.hpp, bank.hpp); a Store is just
 * bytes with bounds-checked 32-bit word access, which is the only
 * granularity the ISA reads and writes.
 */

#ifndef UKSIM_MEM_STORE_HPP
#define UKSIM_MEM_STORE_HPP

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace uksim {

/** Thrown on an out-of-bounds device memory access. */
class MemoryFault : public std::runtime_error
{
  public:
    MemoryFault(const std::string &space, uint64_t addr, uint64_t size)
        : std::runtime_error("memory fault: " + space + " address " +
                             std::to_string(addr) + " outside size " +
                             std::to_string(size))
    {
    }
};

/** A flat, bounds-checked byte store for one memory space. */
class Store
{
  public:
    Store() = default;

    /**
     * @param name space name used in fault messages.
     * @param bytes capacity.
     */
    Store(std::string name, uint64_t bytes)
        : name_(std::move(name)), data_(bytes, 0)
    {
    }

    uint64_t size() const { return data_.size(); }

    void resize(uint64_t bytes) { data_.assign(bytes, 0); }

    uint32_t read32(uint64_t addr) const
    {
        check(addr, 4);
        uint32_t v;
        std::memcpy(&v, data_.data() + addr, 4);
        return v;
    }

    void write32(uint64_t addr, uint32_t value)
    {
        check(addr, 4);
        std::memcpy(data_.data() + addr, &value, 4);
    }

    float readF32(uint64_t addr) const
    {
        uint32_t v = read32(addr);
        float f;
        std::memcpy(&f, &v, 4);
        return f;
    }

    void writeF32(uint64_t addr, float value)
    {
        uint32_t v;
        std::memcpy(&v, &value, 4);
        write32(addr, v);
    }

    /** Bulk host-side copy into the store (device upload). */
    void writeBlock(uint64_t addr, const void *src, uint64_t bytes)
    {
        check(addr, bytes);
        std::memcpy(data_.data() + addr, src, bytes);
    }

    /** Bulk host-side copy out of the store (device download). */
    void readBlock(uint64_t addr, void *dst, uint64_t bytes) const
    {
        check(addr, bytes);
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    const std::string &name() const { return name_; }

  private:
    void check(uint64_t addr, uint64_t bytes) const
    {
        if (addr + bytes > data_.size())
            throw MemoryFault(name_, addr, data_.size());
    }

    std::string name_ = "unnamed";
    std::vector<uint8_t> data_;
};

} // namespace uksim

#endif // UKSIM_MEM_STORE_HPP
