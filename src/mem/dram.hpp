/**
 * @file
 * Off-chip memory timing: 8 address-interleaved partitions, each serving
 * a fixed number of bytes per cycle FIFO with a constant access latency
 * plus interconnect traversal (Table I: 8 modules, 8 bytes/cycle, no
 * caches).
 */

#ifndef UKSIM_MEM_DRAM_HPP
#define UKSIM_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "mem/coalescer.hpp"
#include "simt/config.hpp"
#include "trace/events.hpp"

namespace uksim {

/** Per-partition traffic counters. */
struct PartitionStats {
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;
    uint64_t transactions = 0;
    uint64_t busyCycles = 0;
};

/**
 * Timing model for the partitioned DRAM system. Purely a latency
 * calculator: callers pass coalesced segments and get back the cycle at
 * which the whole warp access completes.
 */
class DramModel
{
  public:
    explicit DramModel(const GpuConfig &config);

    /**
     * Attach the structured event sink. Transactions record a
     * mem_request span (request to completion) and a mem_reply instant
     * on track @p track_base + partition.
     */
    void setTrace(trace::EventTrace *trace, int track_base)
    {
        trace_ = trace;
        trackBase_ = track_base;
    }

    /**
     * Issue one coalesced transaction.
     *
     * @param seg segment address/size.
     * @param isWrite write transactions count toward write bandwidth.
     * @param now current cycle.
     * @return completion cycle of this transaction.
     */
    uint64_t access(const Segment &seg, bool isWrite, uint64_t now);

    /**
     * Issue all of a warp's segments; returns the cycle when the last
     * one completes (the warp's wake-up time).
     */
    uint64_t accessAll(const std::vector<Segment> &segments, bool isWrite,
                       uint64_t now);

    /** Partition index for an address (segment-interleaved). */
    int partitionOf(uint64_t addr) const;

    const std::vector<PartitionStats> &partitionStats() const
    {
        return stats_;
    }

    uint64_t totalReadBytes() const;
    uint64_t totalWriteBytes() const;
    uint64_t totalTransactions() const;

  private:
    const GpuConfig &config_;
    std::vector<uint64_t> busyUntil_;
    std::vector<PartitionStats> stats_;
    trace::EventTrace *trace_ = nullptr;
    int trackBase_ = 0;
};

} // namespace uksim

#endif // UKSIM_MEM_DRAM_HPP
