/**
 * @file
 * Functional ALU implementation.
 */

#include "simt/executor.hpp"

#include <cassert>
#include <cmath>

namespace uksim {

namespace {

inline int32_t s(uint32_t v) { return static_cast<int32_t>(v); }
inline uint32_t u(int32_t v) { return static_cast<uint32_t>(v); }
inline float f(uint32_t v) { return bitsToFloat(v); }
inline uint32_t fb(float v) { return floatBits(v); }

} // anonymous namespace

uint32_t
evalAlu(const Instruction &inst, uint32_t a, uint32_t b, uint32_t c)
{
    const DataType t = inst.type;
    switch (inst.op) {
      case Opcode::Add:
        return t == DataType::F32 ? fb(f(a) + f(b)) : a + b;
      case Opcode::Sub:
        return t == DataType::F32 ? fb(f(a) - f(b)) : a - b;
      case Opcode::Mul:
        return t == DataType::F32 ? fb(f(a) * f(b)) : a * b;
      case Opcode::MulHi:
        if (t == DataType::S32) {
            return u(static_cast<int32_t>(
                (int64_t(s(a)) * int64_t(s(b))) >> 32));
        }
        return static_cast<uint32_t>(
            (uint64_t(a) * uint64_t(b)) >> 32);
      case Opcode::Div:
        if (t == DataType::F32)
            return fb(f(a) / f(b));
        if (t == DataType::S32)
            return b ? u(s(a) / s(b)) : 0;
        return b ? a / b : 0;
      case Opcode::Rem:
        if (t == DataType::S32)
            return b ? u(s(a) % s(b)) : 0;
        return b ? a % b : 0;
      case Opcode::Min:
        if (t == DataType::F32)
            return fb(std::fmin(f(a), f(b)));
        if (t == DataType::S32)
            return s(a) < s(b) ? a : b;
        return a < b ? a : b;
      case Opcode::Max:
        if (t == DataType::F32)
            return fb(std::fmax(f(a), f(b)));
        if (t == DataType::S32)
            return s(a) > s(b) ? a : b;
        return a > b ? a : b;
      case Opcode::Abs:
        if (t == DataType::F32)
            return fb(std::fabs(f(a)));
        return s(a) < 0 ? u(-s(a)) : a;
      case Opcode::Neg:
        if (t == DataType::F32)
            return fb(-f(a));
        return u(-s(a));
      case Opcode::And:
        return a & b;
      case Opcode::Or:
        return a | b;
      case Opcode::Xor:
        return a ^ b;
      case Opcode::Not:
        return ~a;
      case Opcode::Shl:
        return a << (b & 31);
      case Opcode::Shr:
        if (t == DataType::S32)
            return u(s(a) >> (b & 31));
        return a >> (b & 31);
      case Opcode::Mad:
        if (t == DataType::F32)
            return fb(f(a) * f(b) + f(c));
        return a * b + c;
      case Opcode::Sqrt:
        return fb(std::sqrt(f(a)));
      case Opcode::Rcp:
        return fb(1.0f / f(a));
      case Opcode::Floor:
        return fb(std::floor(f(a)));
      case Opcode::Mov:
        return a;
      case Opcode::Cvt:
        if (inst.type == DataType::F32 && inst.srcType != DataType::F32) {
            return inst.srcType == DataType::S32
                       ? fb(static_cast<float>(s(a)))
                       : fb(static_cast<float>(a));
        }
        if (inst.type != DataType::F32 && inst.srcType == DataType::F32) {
            return inst.type == DataType::S32
                       ? u(static_cast<int32_t>(f(a)))
                       : static_cast<uint32_t>(
                             f(a) <= 0.0f ? 0.0f : f(a));
        }
        return a;   // same-kind conversion
      default:
        assert(false && "evalAlu called with non-ALU opcode");
        return 0;
    }
}

bool
evalCmp(CmpOp cmp, DataType type, uint32_t a, uint32_t b)
{
    if (type == DataType::F32) {
        float x = f(a), y = f(b);
        switch (cmp) {
          case CmpOp::Eq: return x == y;
          case CmpOp::Ne: return x != y;
          case CmpOp::Lt: return x < y;
          case CmpOp::Le: return x <= y;
          case CmpOp::Gt: return x > y;
          case CmpOp::Ge: return x >= y;
        }
    } else if (type == DataType::S32) {
        int32_t x = s(a), y = s(b);
        switch (cmp) {
          case CmpOp::Eq: return x == y;
          case CmpOp::Ne: return x != y;
          case CmpOp::Lt: return x < y;
          case CmpOp::Le: return x <= y;
          case CmpOp::Gt: return x > y;
          case CmpOp::Ge: return x >= y;
        }
    } else {
        switch (cmp) {
          case CmpOp::Eq: return a == b;
          case CmpOp::Ne: return a != b;
          case CmpOp::Lt: return a < b;
          case CmpOp::Le: return a <= b;
          case CmpOp::Gt: return a > b;
          case CmpOp::Ge: return a >= b;
        }
    }
    return false;
}

} // namespace uksim
