/**
 * @file
 * Name tables and disassembly for the uksim ISA.
 */

#include "simt/isa.hpp"

#include <sstream>

namespace uksim {

Operand
Operand::makeReg(int r)
{
    Operand o;
    o.kind = OperandKind::Reg;
    o.reg = r;
    return o;
}

Operand
Operand::makeImm(uint32_t bits)
{
    Operand o;
    o.kind = OperandKind::Imm;
    o.imm = bits;
    return o;
}

Operand
Operand::makeFloatImm(float f)
{
    return makeImm(floatBits(f));
}

Operand
Operand::makeSpecial(SpecialReg s)
{
    Operand o;
    o.kind = OperandKind::Special;
    o.sreg = s;
    return o;
}

Operand
Operand::makePred(int p)
{
    Operand o;
    o.kind = OperandKind::Pred;
    o.reg = p;
    return o;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::MulHi: return "mulhi";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Abs: return "abs";
      case Opcode::Neg: return "neg";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Mad: return "mad";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Rcp: return "rcp";
      case Opcode::Floor: return "floor";
      case Opcode::Mov: return "mov";
      case Opcode::Cvt: return "cvt";
      case Opcode::SetP: return "setp";
      case Opcode::SelP: return "selp";
      case Opcode::VoteAll: return "vote.all";
      case Opcode::Bra: return "bra";
      case Opcode::Exit: return "exit";
      case Opcode::Bar: return "bar";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::AtomAdd: return "atom.add";
      case Opcode::AtomExch: return "atom.exch";
      case Opcode::AtomCas: return "atom.cas";
      case Opcode::Spawn: return "spawn";
    }
    return "?";
}

const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::U32: return "u32";
      case DataType::S32: return "s32";
      case DataType::F32: return "f32";
    }
    return "?";
}

const char *
cmpOpName(CmpOp c)
{
    switch (c) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    return "?";
}

const char *
memSpaceName(MemSpace s)
{
    switch (s) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Local: return "local";
      case MemSpace::Const: return "const";
      case MemSpace::Spawn: return "spawn";
      case MemSpace::Param: return "param";
    }
    return "?";
}

const char *
specialRegName(SpecialReg s)
{
    switch (s) {
      case SpecialReg::Tid: return "%tid";
      case SpecialReg::NTid: return "%ntid";
      case SpecialReg::CtaId: return "%ctaid";
      case SpecialReg::LaneId: return "%laneid";
      case SpecialReg::WarpId: return "%warpid";
      case SpecialReg::SmId: return "%smid";
      case SpecialReg::Slot: return "%slot";
      case SpecialReg::SpawnMemAddr: return "%spawnaddr";
    }
    return "?";
}

namespace {

void
printOperand(std::ostream &os, const Operand &o, DataType t)
{
    switch (o.kind) {
      case OperandKind::None:
        break;
      case OperandKind::Reg:
        os << "r" << o.reg;
        break;
      case OperandKind::Imm:
        if (t == DataType::F32)
            os << bitsToFloat(o.imm) << "f";
        else
            os << static_cast<int32_t>(o.imm);
        break;
      case OperandKind::Special:
        os << specialRegName(o.sreg);
        break;
      case OperandKind::Pred:
        os << "p" << o.reg;
        break;
    }
}

} // anonymous namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.guardPred >= 0)
        os << "@" << (inst.guardNegated ? "!" : "") << "p"
           << inst.guardPred << " ";

    os << opcodeName(inst.op);

    switch (inst.op) {
      case Opcode::SetP:
        os << "." << cmpOpName(inst.cmp) << "." << dataTypeName(inst.type)
           << " p" << inst.dst << ", ";
        printOperand(os, inst.src[0], inst.type);
        os << ", ";
        printOperand(os, inst.src[1], inst.type);
        break;
      case Opcode::Ld:
      case Opcode::St:
        os << "." << memSpaceName(inst.space);
        if (inst.vecWidth > 1)
            os << ".v" << int(inst.vecWidth);
        os << "." << dataTypeName(inst.type) << " ";
        if (inst.op == Opcode::Ld) {
            os << "r" << inst.dst << ", [";
            printOperand(os, inst.src[0], DataType::U32);
            os << "+" << inst.memOffset << "]";
        } else {
            os << "[";
            printOperand(os, inst.src[0], DataType::U32);
            os << "+" << inst.memOffset << "], ";
            printOperand(os, inst.src[1], inst.type);
        }
        break;
      case Opcode::Bra:
        os << " PC_" << inst.target;
        break;
      case Opcode::Spawn:
        os << " PC_" << inst.target << ", ";
        printOperand(os, inst.src[0], DataType::U32);
        break;
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
        break;
      default:
        os << "." << dataTypeName(inst.type);
        if (inst.dst >= 0)
            os << " r" << inst.dst;
        for (int i = 0; i < 3; i++) {
            if (inst.src[i].kind == OperandKind::None)
                break;
            os << ", ";
            printOperand(os, inst.src[i], inst.type);
        }
        break;
    }
    return os.str();
}

} // namespace uksim
