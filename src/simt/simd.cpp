/**
 * @file
 * AVX2 lane-loop kernels (see simd.hpp for the bit-identity contract).
 *
 * The vector bodies carry function-level target("avx2") attributes so
 * this translation unit still compiles to baseline x86-64 everywhere
 * else; enabled() gates every call on a runtime CPU check, making the
 * binary safe on pre-AVX2 hosts.
 */

#include "simt/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define UKSIM_SIMD_X86 1
#include <immintrin.h>
#else
#define UKSIM_SIMD_X86 0
#endif

namespace uksim::simd {

namespace {

std::atomic<int> forceForTest{-1};

bool
envAllows()
{
    const char *v = std::getenv("UKSIM_SIMD");
    if (v == nullptr)
        return true;
    return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
             std::strcmp(v, "false") == 0);
}

bool
cpuHasAvx2()
{
#if UKSIM_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

} // anonymous namespace

bool
enabled()
{
    static const bool base = cpuHasAvx2() && envAllows();
    const int f = forceForTest.load(std::memory_order_relaxed);
    if (f >= 0)
        return f != 0 && cpuHasAvx2();
    return base;
}

void
setForTest(int force)
{
    forceForTest.store(force, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Predicate lane mask
// ---------------------------------------------------------------------------

namespace {

uint64_t
predLaneMaskScalar(const uint8_t *preds, int baseSlot, int pred, int nLanes)
{
    uint64_t out = 0;
    for (int l = 0; l < nLanes; l++) {
        if (preds[size_t(baseSlot + l) * kNumPredicates + pred] != 0)
            out |= uint64_t{1} << l;
    }
    return out;
}

#if UKSIM_SIMD_X86

// One thread's eight predicate bytes occupy exactly one qword, so four
// consecutive lanes are one 256-bit load; shifting each qword right by
// 8*pred brings the wanted predicate into the low byte.
__attribute__((target("avx2"))) uint64_t
predLaneMaskAvx2(const uint8_t *preds, int baseSlot, int pred, int nLanes)
{
    static_assert(kNumPredicates == 8,
                  "qword-per-thread predicate layout assumed");
    const uint8_t *p = preds + size_t(baseSlot) * kNumPredicates;
    const __m256i byteMask = _mm256_set1_epi64x(0xFF);
    const __m256i zero = _mm256_setzero_si256();
    uint64_t out = 0;
    int l = 0;
    for (; l + 4 <= nLanes; l += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + size_t(l) * 8));
        v = _mm256_and_si256(_mm256_srli_epi64(v, pred * 8), byteMask);
        const __m256i isZero = _mm256_cmpeq_epi64(v, zero);
        const uint64_t zeroBits = static_cast<uint64_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(isZero)));
        out |= (~zeroBits & 0xF) << l;
    }
    for (; l < nLanes; l++) {
        if (p[size_t(l) * 8 + pred] != 0)
            out |= uint64_t{1} << l;
    }
    return out;
}

#endif // UKSIM_SIMD_X86

} // anonymous namespace

uint64_t
predLaneMask(const uint8_t *preds, int baseSlot, int pred, int nLanes)
{
#if UKSIM_SIMD_X86
    if (enabled())
        return predLaneMaskAvx2(preds, baseSlot, pred, nLanes);
#endif
    return predLaneMaskScalar(preds, baseSlot, pred, nLanes);
}

// ---------------------------------------------------------------------------
// Warp ALU
// ---------------------------------------------------------------------------

namespace {

/**
 * Opcode/type/operand combinations with a bit-exact vector form.
 * Excluded on purpose: Min/Max F32 (std::fmin NaN rules differ from
 * vminps), Floor (libm vs roundps may differ on signaling NaNs),
 * integer Div/Rem (scalar has divide-by-zero guards), MulHi (needs
 * 64-bit widening), Cvt (float->int overflow is UB scalar-side), and
 * Special operands (per-lane values with their own code path).
 */
bool
aluShapeSupported(const DecodedInst &d, int warpSize)
{
    if (warpSize % 8 != 0 || warpSize > 64)
        return false;
    const Instruction &inst = *d.inst;
    const auto gatherable = [](const Operand &o) {
        return o.kind == OperandKind::Reg || o.kind == OperandKind::Imm;
    };
    if (!gatherable(inst.src[0]))
        return false;
    if (d.readsB && !gatherable(inst.src[1]))
        return false;
    if (d.readsC && !gatherable(inst.src[2]))
        return false;
    switch (inst.op) {
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Mad:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Neg:
      case Opcode::Abs:
        return true;
      case Opcode::Min:
      case Opcode::Max:
        return inst.type != DataType::F32;
      case Opcode::Div:
        return inst.type == DataType::F32;
      case Opcode::Rcp:
      case Opcode::Sqrt:
        // evalAlu treats these as float regardless of the type field.
        return true;
      default:
        return false;
    }
}

#if UKSIM_SIMD_X86

__attribute__((target("avx2"))) __m256i
gatherOperand(const Operand &op, const uint32_t *regs, int groupSlot)
{
    if (op.kind == OperandKind::Imm)
        return _mm256_set1_epi32(static_cast<int>(op.imm));
    // Slot-major register file: lane stride is kMaxRegisters words.
    const int *base = reinterpret_cast<const int *>(
        regs + size_t(groupSlot) * kMaxRegisters + op.reg);
    const __m256i idx = _mm256_setr_epi32(
        0, kMaxRegisters, 2 * kMaxRegisters, 3 * kMaxRegisters,
        4 * kMaxRegisters, 5 * kMaxRegisters, 6 * kMaxRegisters,
        7 * kMaxRegisters);
    return _mm256_i32gather_epi32(base, idx, 4);
}

__attribute__((target("avx2"))) __m256i
evalAluVector(const Instruction &inst, __m256i a, __m256i b, __m256i c)
{
    const bool isF32 = inst.type == DataType::F32;
    const bool isS32 = inst.type == DataType::S32;
    const __m256 af = _mm256_castsi256_ps(a);
    const __m256 bf = _mm256_castsi256_ps(b);
    const __m256 cf = _mm256_castsi256_ps(c);
    const __m256i shiftMask = _mm256_set1_epi32(31);
    switch (inst.op) {
      case Opcode::Add:
        return isF32 ? _mm256_castps_si256(_mm256_add_ps(af, bf))
                     : _mm256_add_epi32(a, b);
      case Opcode::Sub:
        return isF32 ? _mm256_castps_si256(_mm256_sub_ps(af, bf))
                     : _mm256_sub_epi32(a, b);
      case Opcode::Mul:
        return isF32 ? _mm256_castps_si256(_mm256_mul_ps(af, bf))
                     : _mm256_mullo_epi32(a, b);
      case Opcode::Mad:
        // Two roundings, matching the scalar a*b+c under
        // -ffp-contract=off (no FMA in this target set either).
        return isF32 ? _mm256_castps_si256(
                           _mm256_add_ps(_mm256_mul_ps(af, bf), cf))
                     : _mm256_add_epi32(_mm256_mullo_epi32(a, b), c);
      case Opcode::Min:
        return isS32 ? _mm256_min_epi32(a, b) : _mm256_min_epu32(a, b);
      case Opcode::Max:
        return isS32 ? _mm256_max_epi32(a, b) : _mm256_max_epu32(a, b);
      case Opcode::Abs:
        return isF32 ? _mm256_and_si256(
                           a, _mm256_set1_epi32(0x7fffffff))
                     : _mm256_abs_epi32(a);
      case Opcode::Neg:
        return isF32 ? _mm256_xor_si256(
                           a, _mm256_set1_epi32(
                                  static_cast<int>(0x80000000u)))
                     : _mm256_sub_epi32(_mm256_setzero_si256(), a);
      case Opcode::And:
        return _mm256_and_si256(a, b);
      case Opcode::Or:
        return _mm256_or_si256(a, b);
      case Opcode::Xor:
        return _mm256_xor_si256(a, b);
      case Opcode::Not:
        return _mm256_xor_si256(a, _mm256_set1_epi32(-1));
      case Opcode::Shl:
        return _mm256_sllv_epi32(a, _mm256_and_si256(b, shiftMask));
      case Opcode::Shr:
        return isS32 ? _mm256_srav_epi32(
                           a, _mm256_and_si256(b, shiftMask))
                     : _mm256_srlv_epi32(
                           a, _mm256_and_si256(b, shiftMask));
      case Opcode::Div:
        return _mm256_castps_si256(_mm256_div_ps(af, bf));
      case Opcode::Rcp:
        return _mm256_castps_si256(
            _mm256_div_ps(_mm256_set1_ps(1.0f), af));
      case Opcode::Sqrt:
        // vsqrtps and scalar sqrtss are both correctly rounded.
        return _mm256_castps_si256(_mm256_sqrt_ps(af));
      case Opcode::Mov:
      default:
        return a;
    }
}

__attribute__((target("avx2"))) void
warpAluAvx2(const DecodedInst &d, uint32_t *regs, int baseSlot,
            uint64_t commitMask, int warpSize)
{
    const Instruction &inst = *d.inst;
    const __m256i zero = _mm256_setzero_si256();
    for (int g = 0; g < warpSize; g += 8) {
        const uint32_t gm =
            static_cast<uint32_t>((commitMask >> g) & 0xFF);
        if (gm == 0)
            continue;
        const int groupSlot = baseSlot + g;
        // Inactive lanes are gathered too (always in-bounds: every
        // lane of a resident warp has a register file slot) and their
        // results discarded by the masked scatter below.
        const __m256i a = gatherOperand(inst.src[0], regs, groupSlot);
        const __m256i b =
            d.readsB ? gatherOperand(inst.src[1], regs, groupSlot) : zero;
        const __m256i c =
            d.readsC ? gatherOperand(inst.src[2], regs, groupSlot) : zero;
        alignas(32) uint32_t out[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(out),
                           evalAluVector(inst, a, b, c));
        for (uint32_t m = gm; m; m &= m - 1) {
            const int l = __builtin_ctz(m);
            regs[size_t(groupSlot + l) * kMaxRegisters + inst.dst] =
                out[l];
        }
    }
}

#endif // UKSIM_SIMD_X86

} // anonymous namespace

bool
warpAlu(const DecodedInst &d, uint32_t *regs, int baseSlot,
        uint64_t commitMask, int warpSize)
{
#if UKSIM_SIMD_X86
    if (!aluShapeSupported(d, warpSize))
        return false;
    warpAluAvx2(d, regs, baseSlot, commitMask, warpSize);
    return true;
#else
    (void)d;
    (void)regs;
    (void)baseSlot;
    (void)commitMask;
    (void)warpSize;
    return false;
#endif
}

bool
aluCoverable(const DecodedInst &d, int warpSize)
{
    return aluShapeSupported(d, warpSize);
}

} // namespace uksim::simd
