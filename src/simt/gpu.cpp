/**
 * @file
 * GPU top-level implementation.
 */

#include "simt/gpu.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "simt/verifier.hpp"

namespace uksim {

namespace {

/**
 * Resolve the host thread count. A numeric UKSIM_THREADS is an explicit
 * request honored as-is (the determinism test matrix deliberately
 * oversubscribes small hosts); UKSIM_THREADS=auto asks for one shard
 * per hardware core; with no override the config value is additionally
 * clamped to the core count, since oversubscribing the worker pool only
 * adds contention (results are bit-identical at any count either way).
 * Always clamped to [1, numSms]: more shards than SMs cannot help.
 */
int
resolveHostThreads(const GpuConfig &config)
{
    const unsigned hw = std::thread::hardware_concurrency();
    int threads = config.hostThreads;
    bool explicitCount = false;
    if (const char *env = std::getenv("UKSIM_THREADS")) {
        if (std::string(env) == "auto") {
            if (hw > 0)
                threads = static_cast<int>(hw);
        } else {
            int v = std::atoi(env);
            if (v > 0) {
                threads = v;
                explicitCount = true;
            }
        }
    }
    if (!explicitCount && hw > 0)
        threads = std::min(threads, static_cast<int>(hw));
    return std::clamp(threads, 1, std::max(1, config.numSms));
}

/**
 * Resolve the fast-forward switch: config value, overridden by
 * UKSIM_FASTFWD when set (1/on/true enables, 0/off/false disables;
 * anything else leaves the config value alone).
 */
bool
resolveFastForward(const GpuConfig &config)
{
    bool enabled = config.fastForward;
    if (const char *env = std::getenv("UKSIM_FASTFWD")) {
        std::string v(env);
        if (v == "1" || v == "on" || v == "true")
            enabled = true;
        else if (v == "0" || v == "off" || v == "false")
            enabled = false;
    }
    return enabled;
}

/**
 * Resolve the epoch-engine switch: config value, overridden by
 * UKSIM_EPOCHS when set (same accepted spellings as UKSIM_FASTFWD).
 */
bool
resolveEpochs(const GpuConfig &config)
{
    bool enabled = config.epochEngine;
    if (const char *env = std::getenv("UKSIM_EPOCHS")) {
        std::string v(env);
        if (v == "1" || v == "on" || v == "true")
            enabled = true;
        else if (v == "0" || v == "off" || v == "false")
            enabled = false;
    }
    return enabled;
}

/**
 * Resolve the superblock-engine switch: config value, overridden by
 * UKSIM_BLOCKEXEC when set (same accepted spellings as UKSIM_FASTFWD).
 */
bool
resolveBlockExec(const GpuConfig &config)
{
    bool enabled = config.blockExec;
    if (const char *env = std::getenv("UKSIM_BLOCKEXEC")) {
        std::string v(env);
        if (v == "1" || v == "on" || v == "true")
            enabled = true;
        else if (v == "0" || v == "off" || v == "false")
            enabled = false;
    }
    return enabled;
}

} // anonymous namespace

Gpu::Gpu(GpuConfig config)
    : config_(config),
      global_("global", 0),
      const_("const", 64 * 1024),
      local_("local", 0)
{
    stats_.setWindowCycles(config_.statsWindowCycles);
    dram_ = std::make_unique<DramModel>(config_);
    // Memory-partition event tracks sit after the SM tracks.
    dram_->setTrace(&trace_, config_.numSms);
    if (config_.texL2BytesPerPartition > 0) {
        for (int p = 0; p < config_.numMemPartitions; p++) {
            texL2_.push_back(std::make_unique<ReadOnlyCache>(
                config_.texL2BytesPerPartition,
                config_.coalesceSegmentBytes, config_.texCacheWays));
        }
    }
    hostThreads_ = resolveHostThreads(config_);
    fastForward_ = resolveFastForward(config_);
    // The engine choice must not depend on the host thread count: the
    // epoch engine runs serially at threads=1 too, so runs at different
    // thread counts always agree on every engine-visible decision.
    epochs_ = resolveEpochs(config_);
    blockExec_ = resolveBlockExec(config_);
    wakeups_.resize(std::max(1, config_.numSms));
    if (hostThreads_ > 1) {
        pool_ = std::make_unique<WorkerPool>(hostThreads_);
        stepJob_ = [this](int t) {
            const int n = static_cast<int>(sms_.size());
            const int shards = pool_->threads();
            const int lo = n * t / shards;
            const int hi = n * (t + 1) / shards;
            for (int i = lo; i < hi; i++)
                sms_[i]->step(cycle_);
        };
        epochJob_ = [this](int t) {
            const int n = static_cast<int>(sms_.size());
            const int shards = pool_->threads();
            const int lo = n * t / shards;
            const int hi = n * (t + 1) / shards;
            for (int i = lo; i < hi; i++)
                epochAdvanceLane(i, epochHorizon_);
        };
    }
}

ReadOnlyCache *
Gpu::texL2For(uint64_t addr)
{
    if (texL2_.empty())
        return nullptr;
    return texL2_[dram_->partitionOf(addr)].get();
}

Gpu::~Gpu() = default;

Occupancy
Gpu::computeOccupancy(const GpuConfig &config, const Program &program)
{
    const ResourceDecl &res = program.resources;
    const int regs = std::max(res.registers, 1);
    Occupancy occ;

    int byRegs = config.registersPerSm / (regs * config.warpSize);
    int byThreads = config.maxWarpsPerSm();
    int byShared = byThreads;
    if (res.sharedBytes > 0) {
        byShared = static_cast<int>(
            config.onChipBytesPerSm /
            (uint64_t(res.sharedBytes) * config.warpSize));
    }

    int warps = std::min({byRegs, byThreads, byShared});
    if (warps <= 0)
        throw std::runtime_error("program cannot fit even one warp per SM");
    occ.limiter = (warps == byRegs) ? "registers"
                  : (warps == byThreads) ? "threads" : "shared";

    if (config.scheduling == SchedulingMode::Block) {
        int warpsPerBlock =
            std::max(1, config.blockSizeThreads / config.warpSize);
        int blocks = std::min(config.maxBlocksPerSm, warps / warpsPerBlock);
        if (blocks <= 0)
            throw std::runtime_error("block does not fit on an SM");
        if (blocks == config.maxBlocksPerSm)
            occ.limiter = "blocks";
        occ.blocksPerSm = blocks;
        warps = blocks * warpsPerBlock;
    }

    occ.warpsPerSm = warps;
    occ.threadsPerSm = warps * config.warpSize;
    return occ;
}

void
Gpu::loadProgram(Program program)
{
    if (config_.verifyPrograms != VerifyMode::Off) {
        if (config_.verifyPrograms == VerifyMode::Strict) {
            verifyOrThrow(program);
        } else {
            VerifyResult result = verify(program);
            if (!result.diagnostics.empty())
                std::fputs(result.report().c_str(), stderr);
        }
    }

    program_ = std::move(program);
    decoded_.build(program_, config_);
    occupancy_ = computeOccupancy(config_, program_);

    // Superblock compile: once per program, next to the decode table.
    // With the switch off the table stays empty and the SMs keep a null
    // pointer, so the per-cycle engines never see the feature at all.
    blockTable_.clear();
    if (blockExec_)
        blockTable_.build(program_, decoded_, config_);

    sms_.clear();
    for (int i = 0; i < config_.numSms; i++) {
        sms_.push_back(
            std::make_unique<Sm>(i, config_, program_, decoded_, *this));
        sms_.back()->configureOccupancy(occupancy_.warpsPerSm);
        sms_.back()->setBlockTable(blockTable_.empty() ? nullptr
                                                       : &blockTable_);
    }

    // Local memory is addressed by (sm, hardware thread slot).
    uint64_t localBytes = uint64_t(program_.resources.localBytes) *
                          config_.numSms * config_.maxThreadsPerSm;
    local_.resize(localBytes);

    // Fresh program, fresh fault / watchdog / fast-forward state.
    faults_.clear();
    flushFaulted_.assign(config_.numSms, 0);
    haltRequested_ = false;
    deadlocked_ = false;
    lastWarpIssueTotal_ = 0;
    noProgressCycles_ = 0;
    ffStats_ = FastForwardStats{};

    // Fresh epoch / wake-up state.
    for (auto &q : wakeups_)
        q = WakeQueue{};
    lanes_.assign(config_.numSms, EpochLane{});
    epochStats_ = EpochStats{};
    dramCapture_.clear();

    // Fresh block-exec state.
    blockPlans_.assign(config_.numSms, Sm::BlockSpanPlan{});
    blockExecChip_ = BlockExecStats{};
    blockExecActive_ = false;
}

uint32_t
Gpu::mallocGlobal(uint64_t bytes, uint32_t align)
{
    globalBrk_ = (globalBrk_ + align - 1) / align * align;
    uint32_t addr = static_cast<uint32_t>(globalBrk_);
    globalBrk_ += bytes;
    if (globalBrk_ > global_.size()) {
        // Grow in big steps to keep reallocation rare.
        uint64_t newSize = std::max<uint64_t>(globalBrk_, 1 << 20);
        Store bigger("global", newSize);
        if (global_.size() > 0) {
            std::vector<uint8_t> tmp(global_.size());
            global_.readBlock(0, tmp.data(), tmp.size());
            bigger.writeBlock(0, tmp.data(), tmp.size());
        }
        global_ = std::move(bigger);
    }
    return addr;
}

void
Gpu::toGlobal(uint32_t addr, const void *src, uint64_t bytes)
{
    global_.writeBlock(addr, src, bytes);
}

void
Gpu::fromGlobal(uint32_t addr, void *dst, uint64_t bytes) const
{
    global_.readBlock(addr, dst, bytes);
}

void
Gpu::toConst(uint32_t addr, const void *src, uint64_t bytes)
{
    const_.writeBlock(addr, src, bytes);
}

void
Gpu::launch(uint32_t numThreads)
{
    if (sms_.empty())
        throw std::runtime_error("launch before loadProgram");
    if (numThreads == 0)
        throw std::runtime_error("empty launch grid");
    gridThreads_ = numThreads;
    nextTid_ = 0;
    launched_ = true;
    for (auto &sm : sms_)
        sm->setGridThreads(numThreads);
}

void
Gpu::scheduleMemWakeup(uint64_t cycle, int smId, int warpSlot)
{
    wakeups_[smId].push({cycle, warpSlot});
}

bool
Gpu::fillSm(Sm &sm)
{
    if (sm.freeWarpSlots() == 0)
        return false;

    // 1. Dynamic warps have scheduling priority (Sec. IV-D).
    if (sm.spawnEnabled() && !sm.spawnUnit()->fifoEmpty()) {
        sm.launchDynamicWarp(sm.spawnUnit()->popWarp());
        return true;
    }

    // 2. Launch-grid work.
    if (!gridExhausted()) {
        if (config_.scheduling == SchedulingMode::Block) {
            const uint32_t blockSize = config_.blockSizeThreads;
            uint32_t remaining = gridThreads_ - nextTid_;
            uint32_t blockThreads =
                std::min<uint32_t>(blockSize, remaining);
            int warpsNeeded = static_cast<int>(
                (blockThreads + config_.warpSize - 1) / config_.warpSize);
            if (sm.freeWarpSlots() >= warpsNeeded &&
                (!sm.spawnEnabled() ||
                 sm.freeStateSlots() >= static_cast<int>(blockThreads))) {
                uint32_t blockId = nextTid_ / blockSize;
                uint32_t launchedThreads = 0;
                while (launchedThreads < blockThreads) {
                    uint32_t n = std::min<uint32_t>(
                        config_.warpSize, blockThreads - launchedThreads);
                    launchTids_.resize(n);
                    for (uint32_t i = 0; i < n; i++)
                        launchTids_[i] = nextTid_ + i;
                    bool ok = sm.launchInitialWarp(launchTids_, blockId);
                    assert(ok);
                    (void)ok;
                    nextTid_ += n;
                    launchedThreads += n;
                }
                return true;
            }
        } else {
            uint32_t remaining = gridThreads_ - nextTid_;
            uint32_t n = std::min<uint32_t>(config_.warpSize, remaining);
            if (!sm.spawnEnabled() ||
                sm.freeStateSlots() >= static_cast<int>(n)) {
                launchTids_.resize(n);
                for (uint32_t i = 0; i < n; i++)
                    launchTids_[i] = nextTid_ + i;
                uint32_t blockId = nextTid_ / config_.blockSizeThreads;
                bool ok = sm.launchInitialWarp(launchTids_, blockId);
                assert(ok);
                (void)ok;
                nextTid_ += n;
                return true;
            }
        }
    }

    // 3. Drain: force a partial warp out only when the SM would
    //    otherwise never make progress again.
    if (sm.spawnEnabled() && sm.liveWarps() == 0 &&
        sm.spawnUnit()->fifoEmpty() && sm.spawnUnit()->hasPartialWarps()) {
        if (sm.spawnUnit()->freeRegionCount() == 0) {
            // The flush needs one fresh overflow region and the ring is
            // dry: a chip-level exhaustion fault, not an abort. That
            // mutates machine state (fault list, dropped partials), so
            // it counts as the chip having acted this cycle.
            handleFlushExhaustion(sm);
            return true;
        }
        sm.launchDynamicWarp(sm.spawnUnit()->flushLowestPcPartial(cycle_));
        return true;
    }
    return false;
}

void
Gpu::handleFlushExhaustion(Sm &sm)
{
    const int smId = sm.id();
    if (flushFaulted_[smId])
        return;
    flushFaulted_[smId] = 1;

    SimFault f;
    f.code = FaultCode::SpawnRegionExhausted;
    f.cycle = cycle_;
    f.smId = smId;
    faults_.push_back(f);
    switch (config_.faultPolicy) {
    case FaultPolicy::Throw:
        throw GuestFault(f);
    case FaultPolicy::Trap:
        // Abandon the parked partial warps so the SM reports drained
        // instead of spinning on a flush that can never happen.
        sm.spawnUnit()->dropPartialWarps();
        break;
    case FaultPolicy::HaltGrid:
        haltRequested_ = true;
        break;
    }
}

bool
Gpu::finished() const
{
    if (!launched_)
        return true;
    if (!gridExhausted())
        return false;
    for (const auto &sm : sms_) {
        if (sm->busy())
            return false;
        if (sm->spawnEnabled()) {
            if (!sm->spawnUnit()->fifoEmpty() ||
                sm->spawnUnit()->hasPartialWarps()) {
                return false;
            }
        }
    }
    return true;
}

void
Gpu::stepCycle()
{
    // --- Coordinator: wake-ups and warp placement (serial) -------------------
    bool woke = false;
    for (size_t k = 0; k < sms_.size(); k++) {
        WakeQueue &q = wakeups_[k];
        while (!q.empty() && q.top().cycle <= cycle_) {
            const int slot = q.top().warpSlot;
            q.pop();
            sms_[k]->memWakeup(slot, cycle_);
            woke = true;
        }
    }
    bool filled = false;
    for (auto &sm : sms_) {
        if (fillSm(*sm))
            filled = true;
    }

    // --- Parallel phase: SMs step against SM-local state only ----------------
    if (pool_) {
        pool_->parallelFor(stepJob_);
    } else {
        for (auto &sm : sms_)
            sm->step(cycle_);
    }

    // --- Merge phase: canonical SM-id order --------------------------------
    // Trace buffers drain and deferred global/local accesses replay in
    // ascending SM id, which is exactly the order the serial engine
    // performed them mid-step — so every thread count produces the same
    // bits (stats, memory images, trace content including ring drops).
    bool anyIssued = false;
    for (auto &sm : sms_) {
        sm->drainTrace(trace_);
        sm->serviceDeferredMem(cycle_);
        if (sm->issuedLastStep())
            anyIssued = true;
    }

    // Faults detected this cycle (parallel phase or deferred replay) are
    // applied here, in SM-id order — deterministic at any thread count.
    processFaultsAt(cycle_);

    // --- Forward-progress watchdog (off by default) --------------------------
    if (config_.watchdogCycles > 0) {
        uint64_t issues = 0;
        for (const auto &sm : sms_)
            issues += sm->localStats().warpIssues;
        bool inFlight = false;
        for (const WakeQueue &q : wakeups_) {
            if (!q.empty()) {
                inFlight = true;
                break;
            }
        }
        // An in-flight memory event is pending progress, so long DRAM
        // waits (hundreds of idle cycles) never trip a small watchdog.
        const bool progress =
            woke || issues != lastWarpIssueTotal_ || inFlight;
        lastWarpIssueTotal_ = issues;
        if (progress) {
            noProgressCycles_ = 0;
        } else if (++noProgressCycles_ >= config_.watchdogCycles &&
                   !finished()) {
            deadlocked_ = true;
        }
    }

    cycle_++;

    // --- Idle-cycle fast-forward ---------------------------------------------
    // A cycle that completed with no wake-up, no warp placement and no
    // issue anywhere is inert: the machine state is frozen until the
    // next scheduled event, so the cycles up to it can be skipped in
    // bulk. Detection is end-of-cycle (three flag checks) rather than a
    // prologue scan, so busy cycles pay essentially nothing for it.
    if (fastForward_ && !woke && !filled && !anyIssued)
        fastForwardIdleSpan();
}

void
Gpu::fastForwardIdleSpan()
{
    if (haltRequested_ || deadlocked_ || cycle_ >= config_.maxCycles ||
        finished()) {
        return;
    }

    // Next cycle anything can happen: the earliest queued DRAM wake-up
    // or the earliest SM-local ready time (ALU latency, bank-conflict
    // gate expiry). UINT64_MAX when nothing at all is scheduled.
    uint64_t wake = UINT64_MAX;
    bool inFlight = false;
    for (const WakeQueue &q : wakeups_) {
        if (!q.empty()) {
            inFlight = true;
            wake = std::min(wake, q.top().cycle);
        }
    }
    for (const auto &sm : sms_) {
        wake = std::min(wake, sm->nextEventCycle(cycle_));
        if (wake <= cycle_)
            return;
    }

    uint64_t target = std::min({wake, config_.maxCycles, runStop_});

    // Watchdog fidelity: with no event in flight, naive stepping counts
    // every span cycle as no-progress, so cap the jump at the exact trip
    // cycle and raise the verdict there. With an event in flight the
    // naive loop sees progress every cycle and the counter stays reset.
    bool tripWatchdog = false;
    if (config_.watchdogCycles > 0 && !inFlight) {
        const uint64_t tripAt =
            cycle_ + (config_.watchdogCycles - noProgressCycles_);
        if (tripAt <= target) {
            target = tripAt;
            tripWatchdog = true;
        }
    }
    if (target <= cycle_)
        return;

    const uint64_t span = target - cycle_;
    for (auto &sm : sms_)
        sm->skipCycles(cycle_, span);
    if (config_.watchdogCycles > 0) {
        if (inFlight)
            noProgressCycles_ = 0;
        else
            noProgressCycles_ += span;
        if (tripWatchdog && !finished())
            deadlocked_ = true;
    }

    ffStats_.cyclesSkipped += span;
    ffStats_.jumps++;
    ffStats_.largestJump = std::max(ffStats_.largestJump, span);
    cycle_ = target;
}

bool
Gpu::blockExecEligible() const
{
    // The watchdog's chip-global per-cycle progress count is exact only
    // under per-cycle stepping; an empty table means the program never
    // compiled (switch off or malformed), so there is nothing to fuse.
    return blockExec_ && config_.watchdogCycles == 0 &&
           !blockTable_.empty();
}

bool
Gpu::blockExecSpan(uint64_t stop)
{
    // A wake-up due this cycle must be delivered by the per-cycle
    // coordinator; later ones bound the span (delivery cycles stay
    // outside it, so every warp sleeping on one stays parked throughout).
    uint64_t span = stop - cycle_;
    for (const WakeQueue &q : wakeups_) {
        if (q.empty())
            continue;
        if (q.top().cycle <= cycle_) {
            blockExecChip_
                .fallbacks[size_t(BlockExecFallback::WakeDue)]++;
            return false;
        }
        span = std::min(span, q.top().cycle - cycle_);
    }

    bool anyCarry = false;
    for (size_t k = 0; k < sms_.size(); k++) {
        blockPlans_[k] = sms_[k]->planBlockSpan(cycle_);
        const Sm::BlockSpanPlan &p = blockPlans_[k];
        if (p.kind == Sm::BlockSpanPlan::Kind::Busy) {
            sms_[k]->recordBlockExecFallback(p.fallback);
            return false;
        }
        anyCarry |= p.kind == Sm::BlockSpanPlan::Kind::Carry;
        span = std::min(span, p.limit);
    }
    // Pure-idle spans belong to the fast-forward layer when it is on:
    // taking them here would change its engine counters (and the dumps
    // embedding them) relative to block-exec-off runs. No fallback is
    // recorded — an idle chip has no fusion opportunity to miss.
    if (!anyCarry && fastForward_)
        return false;
    if (span < 2) {
        blockExecChip_.fallbacks[size_t(BlockExecFallback::ShortSpan)]++;
        return false;
    }

    // Commit: carrying SMs execute their fused runs, inert SMs
    // bulk-account the idle span, in SM-id order; the buffered trace
    // events then splice in lockstep (cycle, SM-id) order (the DRAM
    // capture list is empty outside epochs, so the epoch merge routine
    // does exactly the per-cycle drain's work here).
    for (size_t k = 0; k < sms_.size(); k++) {
        if (blockPlans_[k].kind == Sm::BlockSpanPlan::Kind::Carry)
            sms_[k]->runCarrySpan(blockPlans_[k], cycle_, span);
        else
            sms_[k]->skipCycles(cycle_, span);
    }
    mergeEpochTrace();
    cycle_ += span;

    blockExecChip_.spans++;
    blockExecChip_.largestSpan =
        std::max(blockExecChip_.largestSpan, span);
    if (!anyCarry)
        blockExecChip_.idleCyclesSkipped += span;
    return true;
}

const BlockExecStats &
Gpu::blockExecStats() const
{
    BlockExecStats merged = blockExecChip_;
    merged.blocksCompiled = blockTable_.blocksCompiled();
    merged.fusibleBlocks = blockTable_.fusibleBlocks();
    merged.compileWallNs = blockTable_.compileWallNs();
    for (const auto &sm : sms_) {
        const Sm::BlockExecCounters &c = sm->blockExecCounters();
        merged.fusedRuns += c.fusedRuns;
        merged.fusedOps += c.fusedOps;
        for (size_t i = 0; i < kNumBlockExecFallbacks; i++)
            merged.fallbacks[i] += c.fallbacks[i];
    }
    blockExecView_ = merged;
    return blockExecView_;
}

void
Gpu::processFaultsAt(uint64_t cycle)
{
    for (auto &sm : sms_) {
        if (!sm->hasPendingFaults())
            continue;
        for (const SimFault &f : sm->takeFaults()) {
            faults_.push_back(f);
            switch (config_.faultPolicy) {
            case FaultPolicy::Throw:
                throw GuestFault(f);
            case FaultPolicy::Trap:
                if (f.warpSlot >= 0)
                    sm->killWarp(f.warpSlot, cycle);
                break;
            case FaultPolicy::HaltGrid:
                haltRequested_ = true;
                break;
            }
        }
    }
}

const SimStats &
Gpu::run()
{
    return runUntil(config_.maxCycles);
}

const SimStats &
Gpu::runUntil(uint64_t stopCycle)
{
    if (!launched_)
        throw std::runtime_error("run before launch");
    // Bound the fast-forward jump target too: a pause boundary must be
    // hit exactly, or snapshot replay could not land on the recorded
    // cycle. Splitting one idle jump into jump-to-stop + resume leaves
    // every SimStats observable bit-identical (idle-span accounting is
    // additive over any partition of the span); only the engine-side
    // FastForwardStats (jump count, largest jump) can differ, and those
    // are outside the identity contract by design.
    runStop_ = stopCycle;
    const uint64_t stop = std::min(stopCycle, config_.maxCycles);
    // Latched once per runUntil so every engine-visible decision inside
    // the run sees one consistent value (the epoch engine's parallel
    // lanes read it for the per-lane carry shortcut).
    blockExecActive_ = blockExecEligible();
    if (epochEligible()) {
        // Epoch engine: one synchronization per conservative lookahead
        // window instead of three per cycle (epoch.cpp). Bit-identical
        // SimStats on clean runs; the horizon is clamped to @p stop, so
        // pause boundaries are hit exactly just like the lockstep path.
        while (cycle_ < stop && !finished() && !haltRequested_ &&
               !deadlocked_) {
            runOneEpoch(stop);
        }
    } else {
        while (cycle_ < stop && !finished() && !haltRequested_ &&
               !deadlocked_) {
            // Superblock engine first: when the whole chip is provably
            // inert or carrying fused straight-line runs, one call
            // covers a multi-cycle span with identical observables;
            // otherwise fall through to the per-cycle engine.
            if (blockExecActive_ && blockExecSpan(stop))
                continue;
            stepCycle();
        }
    }
    runStop_ = UINT64_MAX;
    if (cycle_ >= config_.maxCycles || finished() || haltRequested_ ||
        deadlocked_) {
        ranToCompletion_ = finished();
    }
    return stats();
}

RunOutcome
Gpu::outcome() const
{
    if (!faults_.empty())
        return RunOutcome::Faulted;
    if (deadlocked_)
        return RunOutcome::Deadlock;
    if (finished())
        return RunOutcome::Completed;
    return RunOutcome::CycleLimit;
}

const SimStats &
Gpu::stats() const
{
    refreshStats();
    return stats_;
}

void
Gpu::refreshStats() const
{
    SimStats merged;
    merged.setWindowCycles(config_.statsWindowCycles);
    for (const auto &sm : sms_)
        merged += sm->localStats();
    merged.cycles = cycle_;
    merged.outcome = outcome();
    merged.dynamicWarpsFormed = 0;
    merged.partialWarpFlushes = 0;
    for (const auto &sm : sms_) {
        if (sm->spawnEnabled()) {
            merged.dynamicWarpsFormed += sm->spawnUnit()->warpsFormed();
            merged.partialWarpFlushes += sm->spawnUnit()->partialFlushes();
        }
    }
    stats_ = std::move(merged);
}

} // namespace uksim
