/**
 * @file
 * Pure functional evaluation of ALU operations and comparisons.
 *
 * Shared by the cycle-level SM model and the MIMD-ideal scalar model so
 * the two can never disagree on semantics.
 */

#ifndef UKSIM_SIMT_EXECUTOR_HPP
#define UKSIM_SIMT_EXECUTOR_HPP

#include <cstdint>

#include "simt/isa.hpp"

namespace uksim {

/**
 * Evaluate an arithmetic / conversion opcode.
 *
 * @param inst instruction (op, type, srcType used).
 * @param a first source bits.
 * @param b second source bits (ignored by unary ops).
 * @param c third source bits (Mad only).
 * @return result bits.
 */
uint32_t evalAlu(const Instruction &inst, uint32_t a, uint32_t b, uint32_t c);

/** Evaluate a SetP comparison. */
bool evalCmp(CmpOp cmp, DataType type, uint32_t a, uint32_t b);

} // namespace uksim

#endif // UKSIM_SIMT_EXECUTOR_HPP
