/**
 * @file
 * Control-flow graph and post-dominator analysis.
 *
 * PDOM reconvergence (Fung et al., MICRO 2007) needs, for every
 * potentially divergent branch, the immediate post-dominator of the
 * branch's basic block: the earliest instruction where all control paths
 * out of the branch are guaranteed to have rejoined. We build a CFG over
 * the flat instruction stream and run the classic iterative dataflow
 *
 *      pdom(b) = {b}  ∪  ⋂ over successors s of pdom(s)
 *
 * on the reverse graph, with a virtual exit node so programs whose only
 * exits are `exit` instructions still converge.
 */

#ifndef UKSIM_SIMT_CFG_HPP
#define UKSIM_SIMT_CFG_HPP

#include <cstdint>
#include <vector>

#include "simt/program.hpp"

namespace uksim {

/** A basic block: [first, last] instruction range plus successor edges. */
struct BasicBlock {
    uint32_t first = 0;             ///< pc of the first instruction
    uint32_t last = 0;              ///< pc of the last instruction
    std::vector<int> successors;    ///< block ids; kVirtualExit allowed
};

/** CFG over an assembled instruction stream. */
class Cfg
{
  public:
    /** Successor id representing the virtual exit node. */
    static constexpr int kVirtualExit = -1;

    /** Build the CFG for @p program (blocks ordered by first pc). */
    explicit Cfg(const Program &program);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block id containing instruction @p pc. */
    int blockOf(uint32_t pc) const { return blockOf_.at(pc); }

    /**
     * Immediate post-dominator block of block @p id, or kVirtualExit when
     * the block only reconverges at program exit.
     */
    int immediatePostDominator(int id) const { return ipdom_.at(id); }

    /**
     * True when block @p a post-dominates block @p b (every path from b
     * to exit passes through a).
     */
    bool postDominates(int a, int b) const;

    /**
     * Reconvergence pc for a branch at @p branchPc: the first instruction
     * of the branch block's immediate post-dominator, or @p exitSentinel
     * when control only rejoins at thread exit.
     */
    uint32_t reconvergencePc(uint32_t branchPc, uint32_t exitSentinel) const;

    /** Predecessor block ids of block @p id (virtual exit excluded). */
    const std::vector<int> &predecessors(int id) const
    {
        return preds_.at(id);
    }

    /**
     * Influence region of the branch terminating block @p branchBlock:
     * every block reachable from the branch's successors without passing
     * through the branch's immediate post-dominator. These are exactly
     * the blocks a warp may execute with a partial lane mask while the
     * branch is diverged; the post-dominator itself (where paths rejoin)
     * is excluded. When the branch only reconverges at thread exit the
     * region spans everything reachable. Returned sorted by block id.
     */
    std::vector<int> influenceRegion(int branchBlock) const;

  private:
    void computePostDominators();

    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;              ///< pc -> block id
    std::vector<std::vector<int>> preds_;   ///< reverse edges
    std::vector<std::vector<uint64_t>> pdom_; ///< bitset per block
    std::vector<int> ipdom_;
    size_t words_ = 0;
};

} // namespace uksim

#endif // UKSIM_SIMT_CFG_HPP
