/**
 * @file
 * Chip-level GPU model and host-side API.
 *
 * The Gpu owns device memory (global / constant / local stores), the
 * partitioned DRAM timing model, and the array of SMs. It computes
 * occupancy from the program's per-thread resources, dispatches the
 * launch grid under block or thread scheduling, gives dynamic warps
 * priority for freed warp slots, and force-flushes partial warps only
 * when an SM would otherwise go idle for good (paper Sec. IV-D).
 *
 * The per-cycle loop is the deterministic parallel engine: SMs step in
 * parallel shards (GpuConfig::hostThreads / UKSIM_THREADS), accumulating
 * into per-SM statistics and trace buffers, and the coordinator then
 * merges buffers and services deferred global/local memory accesses in
 * canonical SM-id order. Results are bit-identical at any thread count.
 */

#ifndef UKSIM_SIMT_GPU_HPP
#define UKSIM_SIMT_GPU_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <vector>

#include "mem/dram.hpp"
#include "mem/store.hpp"
#include "simt/config.hpp"
#include "simt/decode.hpp"
#include "simt/program.hpp"
#include "simt/sm.hpp"
#include "simt/stats.hpp"
#include "simt/worker_pool.hpp"
#include "trace/events.hpp"

namespace uksim {

/**
 * Engine-side counters for the idle-cycle fast-forward layer. These
 * live outside SimStats on purpose: SimStats is the bit-identity
 * contract (fast-forward on and off must produce equal SimStats), while
 * these describe how the engine got there.
 */
struct FastForwardStats {
    uint64_t cyclesSkipped = 0;     ///< total cycles bulk-accounted
    uint64_t jumps = 0;             ///< number of fast-forward jumps
    uint64_t largestJump = 0;       ///< longest single jump, in cycles
};

/**
 * Engine-side counters for the epoch engine. Like FastForwardStats they
 * live outside SimStats: they describe how the engine covered the
 * simulated cycles, not the simulated machine, and are not part of the
 * bit-identity contract (the per-phase wall times are not even
 * deterministic). Exported through the trace counter registry as
 * epoch.* and by bench_simspeed.
 */
struct EpochStats {
    uint64_t epochs = 0;            ///< epochs committed
    uint64_t rounds = 0;            ///< coordinator rounds (fill/fault syncs)
    uint64_t cyclesTotal = 0;       ///< simulated cycles covered by epochs
    uint64_t maxEpochCycles = 0;    ///< longest single epoch, in cycles
    // Horizon-limiter histogram: which bound capped each epoch.
    uint64_t capMemLatency = 0;     ///< epochStart + minimum wake-up delta
    uint64_t capRunStop = 0;        ///< runUntil pause boundary
    uint64_t capMaxCycles = 0;      ///< config.maxCycles
    uint64_t capFinish = 0;         ///< grid drained inside the epoch
    uint64_t capHalt = 0;           ///< fault halt cut the epoch short
    // Per-phase wall time (observability only).
    uint64_t advanceWallNs = 0;     ///< parallel local-advance phase
    uint64_t mergeWallNs = 0;       ///< serial round/replay/commit phase
};

/**
 * Engine-side counters for the superblock execution engine. Same
 * placement rationale as FastForwardStats / EpochStats: these describe
 * how the engine covered the run, not the simulated machine, and are
 * not part of the bit-identity contract — though unlike the wall
 * times in EpochStats, every counter here is deterministic at any host
 * thread count (per-SM counters are SM-local; chip-level counters
 * accumulate in the serial phase). Exported through the trace counter
 * registry as blockexec.* and by bench_simspeed.
 */
struct BlockExecStats {
    // Compile phase (BlockTable::build, once per loadProgram).
    uint64_t blocksCompiled = 0;    ///< basic blocks in the table
    uint64_t fusibleBlocks = 0;     ///< blocks opening with a >=2-op run
    uint64_t compileWallNs = 0;     ///< table build wall time
    // Execution phase.
    uint64_t spans = 0;             ///< chip-level spans committed (lockstep)
    uint64_t largestSpan = 0;       ///< longest chip-level span, in cycles
    uint64_t idleCyclesSkipped = 0; ///< cycles covered by pure-idle spans
    uint64_t fusedRuns = 0;         ///< per-warp fused executions
    uint64_t fusedOps = 0;          ///< ops issued inside fused runs
    /// Probe-failure histogram, indexed by BlockExecFallback.
    std::array<uint64_t, kNumBlockExecFallbacks> fallbacks{};
};

/** Occupancy derived from a program's resource declarations. */
struct Occupancy {
    int warpsPerSm = 0;
    int threadsPerSm = 0;
    int blocksPerSm = 0;    ///< only meaningful under block scheduling
    /// Which resource bound: "registers", "threads", "shared", "blocks".
    const char *limiter = "";
};

/** The simulated GPU. */
class Gpu : public SmServices
{
  public:
    explicit Gpu(GpuConfig config);
    ~Gpu() override;

    /** Load the device program; computes occupancy and builds SMs. */
    void loadProgram(Program program);

    const Program &program() const { return program_; }
    const GpuConfig &config() const { return config_; }
    const Occupancy &occupancy() const { return occupancy_; }

    /** Resolved host thread count (config + UKSIM_THREADS override). */
    int hostThreads() const { return hostThreads_; }

    /** Resolved fast-forward switch (config + UKSIM_FASTFWD override). */
    bool fastForwardEnabled() const { return fastForward_; }

    /** Fast-forward engine counters (zeros when disabled). */
    const FastForwardStats &fastForwardStats() const { return ffStats_; }

    /** Resolved epoch-engine switch (config + UKSIM_EPOCHS override). */
    bool epochEngineEnabled() const { return epochs_; }

    /**
     * The run loop actually uses the epoch engine: the switch is on and
     * the configuration leaves a lookahead window (no watchdog, no ideal
     * memory, memory wake-ups at least two cycles out). Otherwise
     * runUntil falls back to lockstep stepCycle().
     */
    bool epochEligible() const;

    /** Epoch engine counters (zeros when the engine never ran). */
    const EpochStats &epochStats() const { return epochStats_; }

    /** Resolved block-exec switch (config + UKSIM_BLOCKEXEC override). */
    bool blockExecEnabled() const { return blockExec_; }

    /**
     * The run loop actually uses the superblock engine: the switch is
     * on, the watchdog is off (its chip-global per-cycle progress count
     * is exact only under per-cycle stepping), and the loaded program
     * compiled to a non-empty block table. Composes freely with the
     * fast-forward layer and the epoch engine.
     */
    bool blockExecEligible() const;

    /**
     * Superblock engine counters, merged on demand from the compile
     * table, the chip-level span accounting and the per-SM counters.
     * Deterministic at any host thread count (except compileWallNs).
     */
    const BlockExecStats &blockExecStats() const;

    /** Compiled block table of the loaded program (tests / tools). */
    const BlockTable &blockTable() const { return blockTable_; }

    /**
     * Conservative lower bound on the distance (in cycles) between a
     * deferred memory access and its wake-up: the minimum over the
     * enabled texture-cache hit latencies and the uncontended DRAM round
     * trip. Any access issued at cycle c wakes at or after
     * c + minWakeupDelta(), which bounds every cross-epoch interaction.
     */
    uint64_t minWakeupDelta() const;

    // --- Host memory API ---------------------------------------------------
    /** Allocate @p bytes of device global memory; returns the address. */
    uint32_t mallocGlobal(uint64_t bytes, uint32_t align = 256);
    void toGlobal(uint32_t addr, const void *src, uint64_t bytes);
    void fromGlobal(uint32_t addr, void *dst, uint64_t bytes) const;
    void toConst(uint32_t addr, const void *src, uint64_t bytes);

    // --- Launch / run ---------------------------------------------------------
    /** Launch a 1-D grid of @p numThreads threads at the entry point. */
    void launch(uint32_t numThreads);

    /**
     * Simulate until the grid drains or config.maxCycles elapse.
     * @return final statistics.
     */
    const SimStats &run();

    /**
     * Simulate until @p stopCycle (clamped to config.maxCycles), the
     * grid drains, or a halt/deadlock verdict — whichever comes first.
     * The engine lands on @p stopCycle exactly (fast-forward jumps are
     * capped at it), so a caller can pause, snapshot the machine via
     * dumpState, and continue with another runUntil: the interleaving
     * is bit-identical to one uninterrupted run(). This is the
     * chunked-execution primitive behind the serve subsystem's
     * snapshot/resume (src/serve/executor.hpp).
     */
    const SimStats &runUntil(uint64_t stopCycle);

    /** Single-step one cycle (exposed for tests). */
    void stepCycle();

    bool finished() const;
    uint64_t cycle() const { return cycle_; }

    // --- Fault handling and post-mortem (fault.hpp) -------------------------
    /**
     * How the run ended so far: Faulted if any guest fault was recorded,
     * else Deadlock if the watchdog tripped, else Completed when the
     * grid has drained, else CycleLimit.
     */
    RunOutcome outcome() const;

    /** Every guest fault recorded so far, in application order. */
    const std::vector<SimFault> &faults() const { return faults_; }

    /** Watchdog verdict (requires GpuConfig::watchdogCycles > 0). */
    bool deadlocked() const { return deadlocked_; }

    /**
     * Post-mortem flight recorder: write a JSON snapshot of the machine
     * (per-SM warp states with SIMT-stack entries, spawn LUT / region /
     * FIFO occupancy, stall attribution, recorded faults, the last
     * entries of the event ring) to @p os. Valid at any point; meant for
     * fault / deadlock / cycle-limit post-mortems (flight_recorder.cpp).
     */
    void dumpState(std::ostream &os) const;

    /**
     * Chip-wide statistics: the SM-id-ordered sum of the per-SM shards
     * plus the chip counters (cycle count, spawn-unit totals). Merged on
     * demand, so it is valid mid-run as well as after run().
     */
    const SimStats &stats() const;

    Sm &sm(int i) { return *sms_.at(i); }
    int numSms() const { return static_cast<int>(sms_.size()); }

    /** Per-partition read-only L2 by index (nullptr when disabled). */
    const ReadOnlyCache *texL2(int partition) const
    {
        return partition < static_cast<int>(texL2_.size())
                   ? texL2_[partition].get()
                   : nullptr;
    }

    /**
     * Structured event trace. Disabled by default; call
     * eventTrace().enable(capacity) before run() to record. Tracing is
     * observation-only: enabling it changes no simulation statistic.
     */
    trace::EventTrace &eventTrace() override { return trace_; }

    /** Compute occupancy for a program under a config (pure; for tests). */
    static Occupancy computeOccupancy(const GpuConfig &config,
                                      const Program &program);

    // --- SmServices ---------------------------------------------------------------
    Store &globalStore() override { return global_; }
    Store &constStore() override { return const_; }
    Store &localStore() override { return local_; }
    DramModel &dram() override { return *dram_; }
    ReadOnlyCache *texL2For(uint64_t addr) override;
    void scheduleMemWakeup(uint64_t cycle, int smId, int warpSlot) override;
    bool gridExhausted() const override
    {
        return nextTid_ >= gridThreads_;
    }

  private:
    /**
     * One scheduled memory wake-up. The queues are per SM: an SM's
     * deferred accesses only ever wake its own warps, so per-SM queues
     * let the epoch engine's local-advance phase pop them without any
     * cross-SM coordination. Lockstep drains the queues in SM-id order
     * each cycle, which is bit-identical to the old chip-global queue
     * (same-cycle deliveries commute — memWakeup touches only its warp).
     */
    struct WakeEvent {
        uint64_t cycle;
        int warpSlot;
        bool operator>(const WakeEvent &o) const { return cycle > o.cycle; }
    };
    using WakeQueue = std::priority_queue<WakeEvent, std::vector<WakeEvent>,
                                          std::greater<WakeEvent>>;

    /** Why an SM's local clock stopped inside an epoch. */
    enum class LanePark : uint8_t {
        None,       ///< still advancing
        Fill,       ///< needs the coordinator (grid launch / chip fault)
        Fault,      ///< queued guest faults; frozen at the fault cycle
        Horizon,    ///< reached the epoch horizon
        Idle,       ///< nothing scheduled ever (blocked or drained)
    };

    /** Per-SM epoch state: the local clock and park reason. */
    struct EpochLane {
        uint64_t localCycle = 0;
        LanePark park = LanePark::None;
        // Locally skipped idle spans, merged into ffStats_ at commit
        // when fast-forward is on (the engine always skips for speed —
        // SimStats are identical either way by span additivity).
        uint64_t ffSkipped = 0;
        uint64_t ffJumps = 0;
        uint64_t ffLargest = 0;
    };

    /** A DRAM trace record captured during deferred replay, with the
     *  (content cycle, SM id) key the trace merge sorts by. */
    struct TaggedEvent {
        uint64_t cycle;
        int smId;
        trace::Event event;
    };

    /**
     * Place work on @p sm (dynamic FIFO, launch grid, partial flush).
     * @return true when the chip acted — launched a warp, flushed a
     *         partial, or raised the flush-exhaustion fault — i.e. the
     *         cycle cannot be part of a quiescent span.
     */
    bool fillSm(Sm &sm);
    /**
     * Event-driven idle-cycle skip. Called right after an inert cycle
     * (no wake-up, no fill, no SM issued): computes the next cycle at
     * which anything can happen — the earliest DRAM wake-up, the
     * earliest SM-local ready time, the cycle limit, the watchdog trip —
     * bulk-accounts the provably idle span into the per-SM stall /
     * occupancy shards, and advances the clock in one step. Every
     * observable (SimStats, stall sums, faults, traces, memory images)
     * is bit-identical to naive stepping.
     */
    void fastForwardIdleSpan();
    /**
     * Superblock engine probe (lockstep loop only): plan a span over
     * all SMs at cycle_, and when every SM is either provably idle or
     * carrying a fused straight-line run — with no wake-up, fill or
     * multi-warp arbitration inside it — execute the whole span at
     * once (runCarrySpan / skipCycles per SM, trace merged in lockstep
     * order) and advance the clock. Returns false (with the machine
     * untouched) when the per-cycle engine must run instead. Pure-idle
     * spans are taken only when fast-forward is off: the fast-forward
     * layer owns them otherwise, keeping its engine counters (and the
     * dumps that embed them) identical to block-exec-off runs.
     */
    bool blockExecSpan(uint64_t stop);
    void refreshStats() const;
    /**
     * Serial-phase fault pass: collect queued faults in SM-id order and
     * apply the configured policy (throw / kill warp / halt grid).
     * @p cycle stamps warp kills (and is cycle_ in the lockstep engine).
     */
    void processFaultsAt(uint64_t cycle);
    /** Flush path found the formation ring dry: chip-level fault. */
    void handleFlushExhaustion(Sm &sm);

    // --- Epoch engine (epoch.cpp) -------------------------------------------
    /**
     * Run one epoch: advance every SM on its local clock up to the
     * conservative horizon, resolving coordinator rounds (grid fills,
     * fault application) at the minimum parked cycle as needed, then
     * replay all deferred memory in global (cycle, SM-id) order and
     * commit the chip clock. @p stop is the runUntil boundary already
     * clamped to config.maxCycles.
     */
    void runOneEpoch(uint64_t stop);
    /**
     * Worker-side local advance of SM @p k until it parks (horizon,
     * fill request, fault, or nothing scheduled). Touches only SM-local
     * state, lanes_[k], and this SM's wake queue; shared chip state is
     * read-only during this phase.
     */
    void epochAdvanceLane(int k, uint64_t horizon);
    /**
     * Serial coordinator round at parked cycle @p atCycle: replay
     * deferred memory below it, run the real fillSm for fill-parked
     * lanes (consuming the grid cursor in lockstep order), step them
     * inline, replay deferred memory through it, and apply faults.
     */
    void runEpochRound(uint64_t atCycle);
    /** Replay queued deferred accesses with cycle < @p limit (or <= when
     *  @p inclusive) across all SMs in global (cycle, SM-id) order. */
    void replayDeferredBelow(uint64_t limit, bool inclusive);
    /** Replay one SM's front entry, capturing DRAM trace records. */
    void replayOne(Sm &sm);
    /**
     * Splice the epoch's buffered SM events and captured DRAM records
     * into the master ring in lockstep insertion order: for each content
     * cycle, ascending SM id, buffered events before DRAM records.
     */
    void mergeEpochTrace();

    GpuConfig config_;
    Program program_;
    DecodedProgram decoded_;
    Store global_;
    Store const_;
    Store local_;
    trace::EventTrace trace_;
    std::unique_ptr<DramModel> dram_;
    std::vector<std::unique_ptr<ReadOnlyCache>> texL2_;
    std::vector<std::unique_ptr<Sm>> sms_;
    Occupancy occupancy_;
    /// Merged chip-wide view, rebuilt from the shards by stats().
    mutable SimStats stats_;

    int hostThreads_ = 1;
    std::unique_ptr<WorkerPool> pool_;
    /// Persistent parallel-phase job (avoids per-cycle allocation).
    std::function<void(int)> stepJob_;

    /// Per-SM scheduled memory wake-ups (see WakeEvent).
    std::vector<WakeQueue> wakeups_;

    /// Reusable launch-tid scratch for fillSm (no per-launch allocation).
    std::vector<uint32_t> launchTids_;

    uint64_t cycle_ = 0;
    uint64_t globalBrk_ = 0;
    uint32_t gridThreads_ = 0;
    uint32_t nextTid_ = 0;
    bool launched_ = false;
    bool ranToCompletion_ = false;

    // --- Fault handling ------------------------------------------------------
    /// Applied guest faults, in deterministic SM-id / cycle order.
    std::vector<SimFault> faults_;
    /// Per-SM once-latch for the flush-exhaustion chip fault.
    std::vector<uint8_t> flushFaulted_;
    bool haltRequested_ = false;    ///< HaltGrid policy tripped

    // --- Forward-progress watchdog (off when watchdogCycles == 0) ----------
    uint64_t lastWarpIssueTotal_ = 0;
    uint64_t noProgressCycles_ = 0;
    bool deadlocked_ = false;

    // --- Idle-cycle fast-forward (config.fastForward / UKSIM_FASTFWD) ------
    bool fastForward_ = true;
    FastForwardStats ffStats_;
    /// Pause boundary of the active runUntil (UINT64_MAX outside one):
    /// fast-forward jumps may not overshoot it.
    uint64_t runStop_ = UINT64_MAX;

    // --- Superblock engine (config.blockExec / UKSIM_BLOCKEXEC) ------------
    bool blockExec_ = true;         ///< resolved switch
    /// blockExecEligible() latched at runUntil entry; the epoch engine's
    /// parallel lanes read it for the per-lane carry shortcut.
    bool blockExecActive_ = false;
    BlockTable blockTable_;         ///< compiled table of the loaded program
    /// Per-SM plans of the span being probed (reused, no per-probe alloc).
    std::vector<Sm::BlockSpanPlan> blockPlans_;
    /// Chip-level accumulators (serial phase only); the per-SM and
    /// compile-phase fields stay zero here and merge in blockExecStats().
    BlockExecStats blockExecChip_;
    mutable BlockExecStats blockExecView_;

    // --- Epoch engine (config.epochEngine / UKSIM_EPOCHS) ------------------
    bool epochs_ = true;            ///< resolved switch
    EpochStats epochStats_;
    std::vector<EpochLane> lanes_;
    /// Persistent parallel local-advance job (avoids per-epoch allocation).
    std::function<void(int)> epochJob_;
    uint64_t epochHorizon_ = 0;     ///< active epoch's horizon (workers read)
    /// DRAM trace records captured during deferred replay, in global
    /// (cycle, SM-id) replay order.
    std::vector<TaggedEvent> dramCapture_;
    std::vector<trace::Event> captureScratch_;
};

} // namespace uksim

#endif // UKSIM_SIMT_GPU_HPP
