/**
 * @file
 * Chip-level GPU model and host-side API.
 *
 * The Gpu owns device memory (global / constant / local stores), the
 * partitioned DRAM timing model, and the array of SMs. It computes
 * occupancy from the program's per-thread resources, dispatches the
 * launch grid under block or thread scheduling, gives dynamic warps
 * priority for freed warp slots, and force-flushes partial warps only
 * when an SM would otherwise go idle for good (paper Sec. IV-D).
 */

#ifndef UKSIM_SIMT_GPU_HPP
#define UKSIM_SIMT_GPU_HPP

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "mem/dram.hpp"
#include "mem/store.hpp"
#include "simt/config.hpp"
#include "simt/program.hpp"
#include "simt/sm.hpp"
#include "simt/stats.hpp"
#include "trace/events.hpp"

namespace uksim {

/** Occupancy derived from a program's resource declarations. */
struct Occupancy {
    int warpsPerSm = 0;
    int threadsPerSm = 0;
    int blocksPerSm = 0;    ///< only meaningful under block scheduling
    /// Which resource bound: "registers", "threads", "shared", "blocks".
    const char *limiter = "";
};

/** The simulated GPU. */
class Gpu : public SmServices
{
  public:
    explicit Gpu(GpuConfig config);
    ~Gpu() override;

    /** Load the device program; computes occupancy and builds SMs. */
    void loadProgram(Program program);

    const Program &program() const { return program_; }
    const GpuConfig &config() const { return config_; }
    const Occupancy &occupancy() const { return occupancy_; }

    // --- Host memory API ---------------------------------------------------
    /** Allocate @p bytes of device global memory; returns the address. */
    uint32_t mallocGlobal(uint64_t bytes, uint32_t align = 256);
    void toGlobal(uint32_t addr, const void *src, uint64_t bytes);
    void fromGlobal(uint32_t addr, void *dst, uint64_t bytes) const;
    void toConst(uint32_t addr, const void *src, uint64_t bytes);

    // --- Launch / run ---------------------------------------------------------
    /** Launch a 1-D grid of @p numThreads threads at the entry point. */
    void launch(uint32_t numThreads);

    /**
     * Simulate until the grid drains or config.maxCycles elapse.
     * @return final statistics.
     */
    const SimStats &run();

    /** Single-step one cycle (exposed for tests). */
    void stepCycle();

    bool finished() const;
    uint64_t cycle() const { return cycle_; }
    const SimStats &stats() const { return stats_; }
    SimStats &mutableStats() { return stats_; }

    Sm &sm(int i) { return *sms_.at(i); }
    int numSms() const { return static_cast<int>(sms_.size()); }

    /** Per-partition read-only L2 by index (nullptr when disabled). */
    const ReadOnlyCache *texL2(int partition) const
    {
        return partition < static_cast<int>(texL2_.size())
                   ? texL2_[partition].get()
                   : nullptr;
    }

    /**
     * Structured event trace. Disabled by default; call
     * eventTrace().enable(capacity) before run() to record. Tracing is
     * observation-only: enabling it changes no simulation statistic.
     */
    trace::EventTrace &eventTrace() override { return trace_; }

    /** Compute occupancy for a program under a config (pure; for tests). */
    static Occupancy computeOccupancy(const GpuConfig &config,
                                      const Program &program);

    // --- SmServices ---------------------------------------------------------------
    Store &globalStore() override { return global_; }
    Store &constStore() override { return const_; }
    Store &localStore() override { return local_; }
    DramModel &dram() override { return *dram_; }
    ReadOnlyCache *texL2For(uint64_t addr) override;
    void scheduleMemWakeup(uint64_t cycle, int smId, int warpSlot) override;
    SimStats &stats() override { return stats_; }
    bool gridExhausted() const override
    {
        return nextTid_ >= gridThreads_;
    }
    void onItemCompleted() override { stats_.itemsCompleted++; }
    void onInitialThreadExit() override { stats_.threadsCompleted++; }

  private:
    struct MemEvent {
        uint64_t cycle;
        int smId;
        int warpSlot;
        bool operator>(const MemEvent &o) const { return cycle > o.cycle; }
    };

    void fillSm(Sm &sm);
    void finalizeStats();

    GpuConfig config_;
    Program program_;
    Store global_;
    Store const_;
    Store local_;
    trace::EventTrace trace_;
    std::unique_ptr<DramModel> dram_;
    std::vector<std::unique_ptr<ReadOnlyCache>> texL2_;
    std::vector<std::unique_ptr<Sm>> sms_;
    Occupancy occupancy_;
    SimStats stats_;

    std::priority_queue<MemEvent, std::vector<MemEvent>,
                        std::greater<MemEvent>> events_;

    uint64_t cycle_ = 0;
    uint64_t globalBrk_ = 0;
    uint32_t gridThreads_ = 0;
    uint32_t nextTid_ = 0;
    bool launched_ = false;
    bool ranToCompletion_ = false;
};

} // namespace uksim

#endif // UKSIM_SIMT_GPU_HPP
