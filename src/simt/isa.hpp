/**
 * @file
 * Instruction set definition for the uksim SIMT machine.
 *
 * The ISA is PTX-flavored: 32-bit general registers that hold either
 * integer or IEEE-754 float bit patterns (the operation decides the
 * interpretation), a small per-thread predicate register file, guarded
 * (predicated) execution of any instruction, explicit memory-space
 * qualifiers on loads and stores, and the paper's `spawn` instruction
 * for dynamic thread creation (Steffen & Zambreno, MICRO 2010, Sec. IV-B).
 */

#ifndef UKSIM_SIMT_ISA_HPP
#define UKSIM_SIMT_ISA_HPP

#include <cstdint>
#include <string>

namespace uksim {

/** Maximum number of general-purpose 32-bit registers per thread. */
constexpr int kMaxRegisters = 64;
/** Number of 1-bit predicate registers per thread. */
constexpr int kNumPredicates = 8;

/**
 * Operation codes. Arithmetic opcodes are typed by the Instruction's
 * DataType field (e.g. Add works on U32/S32/F32); opcodes that only make
 * sense for one type (Sqrt, Rcp) still carry the type for the assembler's
 * syntax check.
 */
enum class Opcode : uint8_t {
    Nop,
    /// Integer / bitwise / float arithmetic (typed by DataType).
    Add, Sub, Mul, MulHi, Div, Rem,
    Min, Max, Abs, Neg,
    And, Or, Xor, Not, Shl, Shr,
    Mad,        ///< d = a * b + c (integer or float depending on type)
    /// Float-only transcendental / rounding helpers.
    Sqrt, Rcp, Floor,
    /// Data movement and conversion.
    Mov,        ///< d = a (register, immediate, or special register)
    Cvt,        ///< convert between U32/S32 and F32 per (type, srcType)
    /// Predicates.
    SetP,       ///< p = a <cmp> b
    SelP,       ///< d = p ? a : b
    VoteAll,    ///< p = true when p_src holds on every active lane
    /// Control flow.
    Bra,        ///< guarded branch to label (divergence point)
    Exit,       ///< thread terminates
    Bar,        ///< block-wide barrier (block scheduling only)
    /// Memory.
    Ld,         ///< load (vector width 1/2/4) from a memory space
    St,         ///< store (vector width 1/2/4) to a memory space
    AtomAdd,    ///< d = old; [addr] += a   (global space)
    AtomExch,   ///< d = old; [addr] = a    (global space)
    AtomCas,    ///< d = old; if (old == a) [addr] = b
    /// Dynamic micro-kernel support (the paper's contribution).
    Spawn,      ///< spawn $label, rSrc — create a child thread at label
};

/** Operand / operation data types. */
enum class DataType : uint8_t {
    U32, S32, F32,
};

/** Comparison operators for SetP. */
enum class CmpOp : uint8_t {
    Eq, Ne, Lt, Le, Gt, Ge,
};

/**
 * Memory spaces visible to a thread (Sec. IV-A of the paper). Param is an
 * alias view of constant memory used for kernel arguments.
 */
enum class MemSpace : uint8_t {
    Global,     ///< off-chip, shared by all SMs
    Shared,     ///< on-chip, per SM, banked
    Local,      ///< off-chip, private per thread
    Const,      ///< off-chip, read-only, cached (modeled as fast)
    Spawn,      ///< on-chip spawn memory (new space added by the paper)
    Param,      ///< kernel parameters (alias of Const)
};

/** Special (read-only) registers. */
enum class SpecialReg : uint8_t {
    Tid,            ///< global thread id of a launch-time thread
    NTid,           ///< total launched threads
    CtaId,          ///< block id (launch-time threads)
    LaneId,         ///< lane index within the warp [0, warpSize)
    WarpId,         ///< hardware warp slot within the SM
    SmId,           ///< SM index
    Slot,           ///< hardware thread slot within the SM (stable for
                    ///< the thread's lifetime; used to index shared memory)
    SpawnMemAddr,   ///< the paper's spawnMemAddr special register
};

/** Kinds of source operand. */
enum class OperandKind : uint8_t {
    None,
    Reg,        ///< general register rN
    Imm,        ///< 32-bit literal (int or float bit pattern)
    Special,    ///< special register %name
    Pred,       ///< predicate register pN (only for SelP source)
};

/** A single source operand. */
struct Operand {
    OperandKind kind = OperandKind::None;
    int reg = 0;            ///< register / predicate index
    uint32_t imm = 0;       ///< literal bits
    SpecialReg sreg = SpecialReg::Tid;

    static Operand makeReg(int r);
    static Operand makeImm(uint32_t bits);
    static Operand makeFloatImm(float f);
    static Operand makeSpecial(SpecialReg s);
    static Operand makePred(int p);
};

/**
 * One decoded instruction. This is a wide, simulator-friendly decoding;
 * a real encoding would pack it, but the fields below are exactly the
 * information the pipeline needs.
 */
struct Instruction {
    Opcode op = Opcode::Nop;
    DataType type = DataType::U32;
    DataType srcType = DataType::U32;   ///< for Cvt
    CmpOp cmp = CmpOp::Eq;
    MemSpace space = MemSpace::Global;
    uint8_t vecWidth = 1;               ///< 1, 2 or 4 for Ld/St

    int dst = -1;                       ///< destination register (or pred for SetP)
    Operand src[3];

    int guardPred = -1;                 ///< guard predicate register, -1 = always
    bool guardNegated = false;          ///< @!pN guard

    /// Memory addressing: [srcReg + memOffset].
    int32_t memOffset = 0;

    /// Branch / spawn target (instruction index), resolved by the assembler.
    uint32_t target = 0;
    /// Reconvergence point for Bra: immediate post-dominator PC.
    uint32_t reconvergePc = 0;

    /// Source line for diagnostics.
    int line = 0;

    bool isMemory() const
    {
        return op == Opcode::Ld || op == Opcode::St || isAtomic();
    }
    bool isAtomic() const
    {
        return op == Opcode::AtomAdd || op == Opcode::AtomExch ||
               op == Opcode::AtomCas;
    }
    bool isControlFlow() const
    {
        return op == Opcode::Bra || op == Opcode::Exit;
    }
    /** Long-latency special-function ops (div/sqrt/rcp). */
    bool isSfu() const
    {
        return op == Opcode::Div || op == Opcode::Rem ||
               op == Opcode::Sqrt || op == Opcode::Rcp;
    }
};

/** Human-readable names used by the assembler and disassembler. */
const char *opcodeName(Opcode op);
const char *dataTypeName(DataType t);
const char *cmpOpName(CmpOp c);
const char *memSpaceName(MemSpace s);
const char *specialRegName(SpecialReg s);

/** Disassemble one instruction for diagnostics. */
std::string disassemble(const Instruction &inst);

/** Bit-cast helpers shared by the functional model. */
inline uint32_t
floatBits(float f)
{
    union { float f; uint32_t u; } v;
    v.f = f;
    return v.u;
}

inline float
bitsToFloat(uint32_t u)
{
    union { float f; uint32_t u; } v;
    v.u = u;
    return v.f;
}

} // namespace uksim

#endif // UKSIM_SIMT_ISA_HPP
