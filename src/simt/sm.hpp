/**
 * @file
 * Streaming multiprocessor (SM) model.
 *
 * Each SM owns 32 warp contexts at most (1024 threads / 32), a banked
 * register file, on-chip shared memory, the spawn memory space and the
 * spawn unit (when the program declares micro-kernels). One warp
 * instruction issues per cycle; the 8 SPs pipeline its 32 lanes over 4
 * sub-cycles at full throughput, so the per-SM IPC ceiling is warpSize.
 *
 * Threading contract (parallel cycle engine): step() touches only
 * SM-local state — per-SM statistics, the per-SM event buffer, shared /
 * spawn stores, and read-only chip state (program, decode table, const
 * store, grid cursor) — so distinct SMs may step concurrently. Anything
 * that mutates shared chip state (global/local stores, DRAM timing, the
 * texture L2s, the wakeup queue) is deferred into a single PendingMem
 * slot and replayed by the coordinator via serviceDeferredMem() in
 * canonical SM-id order, which reproduces the serial engine bit for bit.
 *
 * The epoch engine extends the contract across multiple cycles: instead
 * of replaying in the same cycle, deferPendingMem() snapshots the access
 * (lane addresses plus every register-sourced input, since the warp may
 * run ahead and overwrite them) into a per-SM queue and applies the
 * warp-local timing effects immediately; the coordinator later replays
 * the queued entries via replayDeferredFront() in global (cycle, SM-id)
 * order, which drives the shared DRAM/cache/store state through the
 * exact same access sequence as the lockstep engine.
 */

#ifndef UKSIM_SIMT_SM_HPP
#define UKSIM_SIMT_SM_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "mem/coalescer.hpp"
#include "mem/dram.hpp"
#include "mem/rocache.hpp"
#include "mem/store.hpp"
#include "simt/blockexec.hpp"
#include "simt/config.hpp"
#include "simt/decode.hpp"
#include "simt/program.hpp"
#include "simt/stats.hpp"
#include "simt/warp.hpp"
#include "spawn/spawn_layout.hpp"
#include "spawn/spawn_unit.hpp"
#include "trace/events.hpp"
#include "trace/stall.hpp"

namespace uksim {

/**
 * Services an SM needs from the chip level (device memory, DRAM timing
 * and wake-up events). Implemented by Gpu. Only eventTrace(),
 * constStore() and gridExhausted() may be used from the parallel phase;
 * the mutating services are coordinator-phase only (serviceDeferredMem).
 */
class SmServices
{
  public:
    virtual ~SmServices() = default;
    virtual Store &globalStore() = 0;
    virtual Store &constStore() = 0;
    virtual Store &localStore() = 0;
    virtual DramModel &dram() = 0;
    /** Per-partition read-only L2, or nullptr when disabled. */
    virtual ReadOnlyCache *texL2For(uint64_t addr) = 0;
    /** Wake warp @p warpSlot of SM @p smId at @p cycle. */
    virtual void scheduleMemWakeup(uint64_t cycle, int smId,
                                   int warpSlot) = 0;
    /** Structured event sink (disabled sinks cost one inlined branch). */
    virtual trace::EventTrace &eventTrace() = 0;
    /** True when the launch grid has no threads left to place. */
    virtual bool gridExhausted() const = 0;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(int id, const GpuConfig &config, const Program &program,
       const DecodedProgram &decoded, SmServices &services);

    /**
     * Size warp contexts and (for micro-kernel programs) the spawn
     * memory for the given occupancy. Must be called before launching.
     *
     * @param resident_warps hardware warp slots to enable.
     */
    void configureOccupancy(int resident_warps);

    int id() const { return id_; }
    int residentWarps() const { return static_cast<int>(warps_.size()); }
    int liveWarps() const;
    int freeWarpSlots() const;
    bool busy() const { return liveWarps() > 0; }

    /** Spawn support is active (program declares micro-kernels). */
    bool spawnEnabled() const { return spawnUnit_ != nullptr; }
    SpawnUnit *spawnUnit() { return spawnUnit_.get(); }
    const SpawnUnit *spawnUnit() const { return spawnUnit_.get(); }
    const SpawnMemoryLayout &spawnLayout() const { return spawnLayout_; }

    /** Free spawn-state slots (gates initial launches in spawn mode). */
    int freeStateSlots() const
    {
        return static_cast<int>(freeStateSlots_.size());
    }

    /**
     * Launch a warp of launch-grid threads.
     *
     * @param tids global thread ids, one per lane (may be shorter than
     *        warpSize for a ragged tail).
     * @param blockId owning thread block.
     * @return false when no warp slot (or, in spawn mode, not enough
     *         spawn-state slots) is available.
     */
    bool launchInitialWarp(std::span<const uint32_t> tids,
                           uint32_t blockId);

    /** Launch a formed dynamic warp from the FIFO / partial flush. */
    bool launchDynamicWarp(const FormedWarp &formed);

    /** Advance one cycle: issue at most one warp instruction. */
    void step(uint64_t now);

    /** True when the last step() call issued a warp instruction. */
    bool issuedLastStep() const { return issuedLastStep_; }

    /**
     * Earliest cycle >= @p now at which this SM could act on its own —
     * the minimum over the ready times of warps that are not parked on
     * an external wake-up (off-chip access, barrier release, fault
     * freeze), each gated by the bank-conflict issue block, plus the
     * gate expiry itself (the stall classification flips from
     * BankConflict when it lapses). Mem-parked warps are excluded: their
     * wake-ups live in the chip-level event queue. Returns @p now when a
     * warp is issuable immediately and UINT64_MAX when nothing is
     * scheduled (the SM only moves again via external events or fills).
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /**
     * Fast-forward bulk accounting: attribute @p count consecutive
     * provably idle cycles starting at @p fromCycle exactly as @p count
     * naive step() calls would have — one stall reason per cycle (the
     * classifier inputs are frozen across the span, so the reason is
     * constant) and the matching idle occupancy-window entries.
     */
    void skipCycles(uint64_t fromCycle, uint64_t count);

    /**
     * Replay this cycle's deferred global/local memory instruction (if
     * any) against the shared stores, DRAM model and texture L2s.
     * Coordinator-phase only; call once per cycle in SM-id order.
     */
    void serviceDeferredMem(uint64_t now);

    // --- Epoch-engine deferred-memory queue ---------------------------------
    // Multi-cycle variant of the PendingMem hand-off: the local-advance
    // loop captures each pending access with deferPendingMem() right
    // after the step() that produced it, and the coordinator replays the
    // queued entries in global (cycle, SM-id) order at the epoch merge.

    /** A deferred memory access is waiting to be captured or replayed. */
    bool hasPendingMem() const { return pendingMem_.inst != nullptr; }

    /**
     * Epoch engine: snapshot the pending access (lane addresses, store
     * data / atomic operands — anything read from registers the warp may
     * overwrite while running ahead) into the deferred queue and apply
     * the warp-local timing effects immediately (outstandingMem for
     * loads/atomics, next-cycle ready for plain stores), exactly as the
     * same-cycle replay would. Returns true when the replay is known to
     * raise a memory fault — the caller must park the SM at @p cycle so
     * the fault applies with the SM in its lockstep-identical state; no
     * timing effect is applied in that case.
     */
    bool deferPendingMem(uint64_t cycle);

    bool hasDeferredMem() const { return !deferredMem_.empty(); }
    /** Capture cycle of the oldest queued access (queue is sorted). */
    uint64_t frontDeferredCycle() const { return deferredMem_.front().cycle; }
    /**
     * Replay (and pop) the oldest queued access against the shared
     * stores, DRAM model and texture L2s. Coordinator-phase only; the
     * caller interleaves SMs in global (cycle, SM-id) order.
     */
    void replayDeferredFront();
    /** Drop queued accesses whose cycles were cancelled (grid halt). */
    void clearDeferredMem() { deferredMem_.clear(); }

    /** Per-SM trace buffer (epoch merge reads it cycle-by-cycle). */
    trace::EventBuffer &traceBuffer() { return traceBuf_; }

    /** Flush this cycle's buffered trace events into the master ring. */
    void drainTrace(trace::EventTrace &master)
    {
        traceBuf_.drainInto(master);
    }

    /** Off-chip access completion callback. */
    void memWakeup(int warpSlot, uint64_t now);

    // --- Superblock execution engine (blockexec.hpp) ------------------------
    // The engine probes each SM for a multi-cycle span during which the
    // per-cycle machinery is provably redundant: either the SM is inert
    // (Idle — skipCycles covers it) or exactly one warp executes a
    // compiled straight-line run of fusible ALU ops while every other
    // warp sleeps past the span (Carry — runCarrySpan covers it).
    // planBlockSpan is const and touches only SM-local plus read-only
    // chip state, so the epoch engine may call it from the parallel
    // phase; runCarrySpan has the same threading contract as step().

    /** Outcome of one block-exec probe (see Gpu::blockExecSpan). */
    struct BlockSpanPlan {
        enum class Kind : uint8_t {
            Busy,   ///< must fall back to per-cycle stepping
            Carry,  ///< one warp runs a fused span, the rest sleep
            Idle,   ///< provably idle until limit (skipCycles territory)
        };
        Kind kind = Kind::Busy;
        int warpSlot = -1;          ///< carrying warp slot (Carry only)
        /// Maximum span length in cycles this SM allows (Carry: also the
        /// number of fused ops — one issues per cycle). UINT64_MAX when
        /// nothing local ever bounds it (chip events still clamp).
        uint64_t limit = UINT64_MAX;
        /// Why the probe failed (Busy only).
        BlockExecFallback fallback = BlockExecFallback::ShortRun;
    };

    /** Compiled block table of the loaded program (nullptr = engine off). */
    void setBlockTable(const BlockTable *table) { blockTable_ = table; }

    /**
     * Probe for a block-exec span starting at @p now. Requires the
     * coordinator state to be drained (no pending faults or same-cycle
     * memory hand-off) and a block table to be set when it returns
     * Carry. Read-only: never mutates SM state.
     */
    BlockSpanPlan planBlockSpan(uint64_t now) const;

    /**
     * Execute @p span cycles of the planned carry run: issue one fused
     * ALU op of the carrying warp per cycle with exactly the per-cycle
     * engine's bookkeeping (stall attribution, occupancy windows, trace
     * Issue events, per-op guard evaluation), then bulk-advance the
     * SIMT stack. @p span must be at most plan.limit.
     */
    void runCarrySpan(const BlockSpanPlan &plan, uint64_t now,
                      uint64_t span);

    /** Per-SM engine counters (deterministic at any thread count). */
    struct BlockExecCounters {
        uint64_t fusedRuns = 0;     ///< carry spans executed
        uint64_t fusedOps = 0;      ///< ops issued inside carry spans
        std::array<uint64_t, kNumBlockExecFallbacks> fallbacks{};
    };
    const BlockExecCounters &blockExecCounters() const
    {
        return blockExecCounters_;
    }
    /** Attribute one failed probe (coordinator or own-lane phase only). */
    void recordBlockExecFallback(BlockExecFallback f)
    {
        blockExecCounters_.fallbacks[static_cast<size_t>(f)]++;
    }

    // --- Guest-fault trap path (fault.hpp) ----------------------------------
    // Faults detected during step() are queued SM-locally (the faulting
    // warp is frozen via Warp::faulted) and collected by the coordinator
    // in SM-id order during the serial merge phase, which applies the
    // configured FaultPolicy. Deterministic at any host thread count.
    bool hasPendingFaults() const { return !pendingFaults_.empty(); }
    /** Move out (and clear) this cycle's queued faults. */
    std::vector<SimFault> takeFaults();
    /**
     * Trap policy: tear down a faulted warp without retiring its work.
     * Releases the dead threads' spawn-state slots (spawned lanes handed
     * theirs to the child) and the block bookkeeping, releasing barrier
     * partners that can now never be joined.
     */
    void killWarp(int warpSlot, uint64_t now);

    /** Total launch-grid size, for the %ntid special register. */
    void setGridThreads(uint32_t n) { gridThreads_ = n; }

    Store &sharedStore() { return shared_; }
    Store &spawnStore() { return spawnStore_; }
    const Warp &warp(int slot) const { return warps_.at(slot); }

    /**
     * This SM's shard of the simulation statistics. The chip-wide view
     * is the SM-id-ordered sum of all shards (Gpu::stats()).
     */
    const SimStats &localStats() const { return localStats_; }

    /** Per-SM issue-slot attribution (one reason recorded per cycle). */
    const trace::StallCounters &stallCounters() const
    {
        return localStats_.stall;
    }

    /** Per-SM read-only texture L1, or nullptr when disabled. */
    const ReadOnlyCache *texL1() const { return texL1_.get(); }

    // Register file access (exposed for tests).
    uint32_t readReg(int threadSlot, int reg) const;
    void writeReg(int threadSlot, int reg, uint32_t value);
    bool readPred(int threadSlot, int pred) const;
    void writePred(int threadSlot, int pred, bool value);

  private:
    struct ResidentBlock {
        uint32_t blockId = 0;
        int warpsLive = 0;
        int warpsAtBarrier = 0;
    };

    /** This cycle's deferred global/local memory instruction. */
    struct PendingMem {
        const DecodedInst *inst = nullptr;  ///< null = nothing pending
        int warpSlot = 0;
        uint64_t commitMask = 0;
        uint32_t pc = 0;        ///< issuing pc, for fault attribution
    };

    /**
     * Epoch-engine queued access: PendingMem plus the capture cycle and
     * snapshots of every register-sourced input (the issuing warp may
     * run ahead and overwrite laneAddrs_ / its registers before the
     * merge replays this entry).
     */
    struct DeferredMem {
        const DecodedInst *inst = nullptr;
        int warpSlot = 0;
        uint64_t commitMask = 0;
        uint32_t pc = 0;
        uint64_t cycle = 0;     ///< local cycle the access issued
        bool timed = false;     ///< outstandingMem was pre-incremented
        std::vector<uint64_t> addrs;    ///< per-lane effective addresses
        std::vector<uint32_t> data;     ///< store words / atomic operands
    };

    /** Per-lane hardware thread slot. */
    int threadSlot(const Warp &w, int lane) const
    {
        return w.hwSlot * config_.warpSize + lane;
    }

    uint32_t readOperand(const Operand &op, const Warp &w, int lane);
    uint32_t specialValue(SpecialReg sreg, const Warp &w, int lane) const;

    /**
     * Queue a guest fault (code + attribution from faultCycle_/faultPc_)
     * and freeze the faulting warp until the coordinator applies the
     * fault policy. @p warpSlot may be -1 for SM-wide faults.
     */
    void raiseFault(FaultCode code, int warpSlot, int lane, uint64_t addr);

    /**
     * Shared body of serviceDeferredMem() and replayDeferredFront():
     * run the functional + timing model of one global/local memory
     * instruction. In replay mode the register-sourced inputs come from
     * @p snap instead of the register file and the warp-local timing
     * effects (outstandingMem, readyAt) are skipped — they were applied
     * at capture time; wake-ups are still scheduled and faults raised.
     */
    void serviceMem(const DecodedInst &d, int warpSlot, uint64_t commitMask,
                    uint32_t pc, const std::vector<uint64_t> &addrs,
                    const uint32_t *snap, uint64_t now, bool replay);

    void issue(Warp &w, uint64_t now);
    void execAlu(Warp &w, const DecodedInst &d, uint64_t commitMask);
    /** Scalar lane loop of the default (register-writing) ALU class. */
    void scalarAlu(Warp &w, const DecodedInst &d, uint64_t commitMask);
    void execMemory(Warp &w, const DecodedInst &d, uint64_t commitMask,
                    uint64_t now);
    void execOnChipMemory(Warp &w, const Instruction &inst,
                          uint64_t commitMask, uint64_t now);
    void execSpawn(Warp &w, const Instruction &inst, uint64_t commitMask,
                   uint64_t now);
    void execExit(Warp &w, uint64_t commitMask);
    void execBarrier(Warp &w, uint64_t now);
    void retireWarp(Warp &w);
    void retireLane(Warp &w, int lane);

    /** Record this cycle's issue-slot outcome into the local shard. */
    void recordStall(trace::StallReason reason);
    /** Why no warp could issue this cycle (some warp context exists). */
    trace::StallReason classifyIdle() const;
    /** Invalidate the memoized classifyIdle warp scan. */
    void touchIdleScan() { idleScanValid_ = false; }

    ResidentBlock *findBlock(uint32_t blockId);

    const int id_;
    const GpuConfig &config_;
    const Program &program_;
    const DecodedProgram &decoded_;
    SmServices &services_;

    std::vector<Warp> warps_;
    std::vector<uint32_t> regs_;
    std::vector<uint8_t> preds_;
    Store shared_;
    Store spawnStore_;
    std::unique_ptr<ReadOnlyCache> texL1_;
    SpawnMemoryLayout spawnLayout_;
    std::unique_ptr<SpawnUnit> spawnUnit_;
    std::vector<uint32_t> freeStateSlots_;
    std::vector<ResidentBlock> blocks_;

    /// This SM's statistics shard (includes the stall attribution).
    SimStats localStats_;
    /// Per-SM event buffer, drained by the coordinator each cycle.
    trace::EventBuffer traceBuf_;
    PendingMem pendingMem_;
    /// Epoch engine: captured accesses awaiting merge replay (sorted by
    /// capture cycle — local time is monotone).
    std::deque<DeferredMem> deferredMem_;

    /// Faults queued this cycle, collected by the coordinator.
    std::vector<SimFault> pendingFaults_;
    uint64_t faultCycle_ = 0;   ///< cycle stamped on raised faults
    uint32_t faultPc_ = 0;      ///< pc stamped on raised faults

    int rrCursor_ = 0;
    uint64_t issueBlockedUntil_ = 0;
    bool issuedLastStep_ = false;

    /// Compiled block table (chip-owned, read-only; nullptr = engine off).
    const BlockTable *blockTable_ = nullptr;
    BlockExecCounters blockExecCounters_;

    /**
     * Memoized classifyIdle warp scan. The (anyValid, anyMem,
     * anyBarrier) triple only changes when warp state mutates — launch,
     * issue, wake-up, deferred-memory replay, warp kill — so idle
     * stretches reuse one scan instead of walking all warp slots every
     * cycle. The cheap inputs (grid cursor, spawn FIFO) are read fresh
     * on every call.
     */
    struct IdleScan {
        bool anyValid = false;
        bool anyMem = false;
        bool anyBarrier = false;
    };
    mutable IdleScan idleScan_;
    mutable bool idleScanValid_ = false;
    uint32_t nextDynamicTid_ = 0;
    uint32_t gridThreads_ = 0;

    // Scratch buffers reused every issue to avoid per-cycle allocation.
    std::vector<uint64_t> laneAddrs_;
    std::vector<uint32_t> laneData_;
    std::vector<Segment> segScratch_;
};

} // namespace uksim

#endif // UKSIM_SIMT_SM_HPP
