/**
 * @file
 * Shared structured diagnostics for the verifier and the analysis
 * framework.
 *
 * Every static-analysis finding — verifier lint, range proof failure,
 * liveness lint — is reported through the same Diagnostic struct so the
 * CLI, the JSON emitter and the tests see one shape: a stable catalogue
 * id, the anchoring pc, the basic-block id in the program CFG, the
 * 1-based source line recorded by the assembler's line table, the entry
 * point under analysis, and a human-readable message.
 *
 * DiagnosticSink centralizes the (pc, id) deduplication policy: a
 * program point reachable from several entry points (or re-visited by
 * several passes) reports each finding class once.
 */

#ifndef UKSIM_SIMT_DIAG_HPP
#define UKSIM_SIMT_DIAG_HPP

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace uksim {

/** Diagnostic severity. Errors indicate rendering-garbage-class bugs. */
enum class Severity : uint8_t {
    Warning,
    Error,
};

/** One static-analysis finding, attributed to a pc and its source line. */
struct Diagnostic {
    Severity severity = Severity::Error;
    std::string id;         ///< stable catalogue id, e.g. "reg-uninit"
    uint32_t pc = 0;        ///< instruction the finding anchors to
    int block = -1;         ///< basic-block id in the CFG (-1 synthetic)
    int line = 0;           ///< 1-based source line (0 when synthetic)
    std::string entry;      ///< entry point analyzed ("" for global checks)
    std::string message;

    /** "error[reg-uninit] line 12 (pc 3, entry 'uk_trav'): ..." */
    std::string format() const;
};

/**
 * Appends diagnostics to a caller-owned vector, deduplicating repeated
 * findings of the same id on the same pc (the same program point is
 * commonly revisited once per entry point that reaches it).
 */
class DiagnosticSink
{
  public:
    explicit DiagnosticSink(std::vector<Diagnostic> &out) : out_(out) {}

    /** Append unconditionally. */
    void add(Diagnostic d) { out_.push_back(std::move(d)); }

    /** Append unless (pc, id) was already reported; true when kept. */
    bool addOnce(Diagnostic d)
    {
        if (!seen_.insert({d.pc, d.id}).second)
            return false;
        out_.push_back(std::move(d));
        return true;
    }

  private:
    std::vector<Diagnostic> &out_;
    std::set<std::pair<uint32_t, std::string>> seen_;
};

/** Stable report order: by source line (synthetic last), then pc. */
void sortDiagnostics(std::vector<Diagnostic> &diags);

} // namespace uksim

#endif // UKSIM_SIMT_DIAG_HPP
