/**
 * @file
 * Static µ-kernel program verifier (dataflow lints).
 *
 * The paper's spawn mechanism (Sec. IV-A/IV-B) relies on hand-written
 * assembly getting an unchecked contract right: the parent stores its
 * continuation state into its `.spawn_state` record, `spawn`s a declared
 * `.microkernel`, and the child reads back exactly what was stored
 * through the warp-formation word `%spawnaddr` points at. The assembler
 * only checks syntax and label resolution, so a kernel that reads an
 * uninitialized register or overruns its state record silently renders
 * garbage or corrupts the formation region.
 *
 * verify() runs iterative dataflow over the program's CFG (via the
 * engine in analysis/dataflow.hpp), separately from each entry point
 * (the launch entry and every `.microkernel`). Addresses resolve
 * through the interval abstract domain (analysis/absdom.hpp), so bounds
 * checks are range-powered: an access indexed by `tid & 3` or
 * `%slot * stride + off` is proven or refuted, not just skipped, and
 * result.accesses reports how every memory instruction classified.
 *
 *   reg-uninit / pred-uninit   register or predicate possibly read
 *                              before any unguarded definition
 *                              (a predicated `@p0 mov r1, ...` does NOT
 *                              fully define r1)
 *   reg-range / pred-range     index outside the `.reg` declaration or
 *                              the architectural register files
 *   spawn-state-oob            `ld.spawn`/`st.spawn` whose whole offset
 *                              range lies outside the `.spawn_state`
 *                              record
 *   spawn-formation-store      µ-kernel store through the raw
 *                              `%spawnaddr` formation word
 *   spawn-formation-offset     µ-kernel dereferences `%spawnaddr` at a
 *                              possibly-nonzero offset (a neighbour
 *                              lane's word)
 *   spawn-state-undeclared     spawn memory used with `.spawn_state 0`
 *   spawn-target               spawn of a pc that is not a `.microkernel`
 *   spawn-handoff              µ-kernel loads a spawn-state word that no
 *                              reachable spawner stores
 *   spawn-state-unused         a spawn-state word is stored but no
 *                              reachable code ever loads it (the record
 *                              is spawn-memory capacity, Sec. VI)
 *   never-spawned              `.microkernel` no reachable code spawns
 *   const-oob                  `const`/`param` offset range beyond `.const`
 *   shared-undeclared          shared access with `.shared_per_thread 0`
 *   shared-oob                 `%slot * stride + off` access provably
 *                              overruns the thread's declared slice
 *   local-undeclared           local access with `.local_per_thread 0`
 *   local-oob                  local offset range beyond `.local_per_thread`
 *   dead-def                   side-effect-free result never read on any
 *                              path from any entry (analysis/liveness)
 *   unreachable                code no entry point reaches
 *   entry-overlap              control flow from one entry point reaches
 *                              another entry point (fall-through past a
 *                              guarded exit, usually)
 *   fall-off-end               control may run past the last instruction
 *   bar-guarded                `bar` under a guard predicate
 *   bar-divergent              `bar` inside a divergent region of a
 *                              guarded branch (deadlock risk)
 *   bar-in-microkernel         `bar` reachable from a spawned µ-kernel
 *                              (dynamic threads have no thread block)
 *
 * Out-of-bounds diagnostics fire only when *every* value in the
 * resolved range is out of bounds; an access that merely might overrun
 * stays silent (and is counted as unproven in result.accesses).
 *
 * The pass is pure static analysis on an assembled Program; it never
 * executes code and is safe to run on hand-constructed programs too.
 */

#ifndef UKSIM_SIMT_VERIFIER_HPP
#define UKSIM_SIMT_VERIFIER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "simt/analysis/range.hpp"
#include "simt/diag.hpp"
#include "simt/program.hpp"

namespace uksim {

/** Verification knobs. */
struct VerifyOptions {
    /**
     * Lenient mode keeps analyzing after errors and never throws; this
     * struct exists so callers can promote warnings when gating CI.
     */
    bool warningsAsErrors = false;
};

/** All findings for one program. */
struct VerifyResult {
    std::vector<Diagnostic> diagnostics;
    /** How every reachable memory access classified under the range
     *  domain (merged across entry points, weakest claim wins). */
    analysis::AccessStats accesses;

    size_t errorCount() const;
    size_t warningCount() const;

    /** True when the program must not be launched under strict mode. */
    bool failed(const VerifyOptions &opts = {}) const
    {
        return errorCount() > 0 ||
               (opts.warningsAsErrors && warningCount() > 0);
    }

    /** Multi-line human-readable report ("" when clean). */
    std::string report() const;
};

/**
 * Statically verify @p program. Diagnostics come back sorted by source
 * line then pc; every finding carries the instruction's source line as
 * recorded by the assembler and the basic-block id in the program CFG.
 */
VerifyResult verify(const Program &program, const VerifyOptions &opts = {});

/**
 * Convenience for launch paths: verify and throw std::runtime_error
 * carrying the full report when @p program fails under @p opts.
 */
void verifyOrThrow(const Program &program, const VerifyOptions &opts = {});

} // namespace uksim

#endif // UKSIM_SIMT_VERIFIER_HPP
