/**
 * @file
 * Static µ-kernel program verifier (dataflow lints).
 *
 * The paper's spawn mechanism (Sec. IV-A/IV-B) relies on hand-written
 * assembly getting an unchecked contract right: the parent stores its
 * continuation state into its `.spawn_state` record, `spawn`s a declared
 * `.microkernel`, and the child reads back exactly what was stored
 * through the warp-formation word `%spawnaddr` points at. The assembler
 * only checks syntax and label resolution, so a kernel that reads an
 * uninitialized register or overruns its state record silently renders
 * garbage or corrupts the formation region.
 *
 * verify() runs classic iterative dataflow over the program's CFG,
 * separately from each entry point (the launch entry and every
 * `.microkernel`), and reports structured diagnostics:
 *
 *   reg-uninit / pred-uninit   register or predicate possibly read
 *                              before any unguarded definition
 *                              (a predicated `@p0 mov r1, ...` does NOT
 *                              fully define r1)
 *   reg-range / pred-range     index outside the `.reg` declaration or
 *                              the architectural register files
 *   spawn-state-oob            statically resolvable `ld.spawn`/`st.spawn`
 *                              outside the `.spawn_state` record
 *   spawn-formation-store      µ-kernel store through the raw
 *                              `%spawnaddr` formation word
 *   spawn-formation-offset     µ-kernel dereferences `%spawnaddr` at a
 *                              nonzero offset (a neighbour lane's word)
 *   spawn-state-undeclared     spawn memory used with `.spawn_state 0`
 *   spawn-target               spawn of a pc that is not a `.microkernel`
 *   spawn-handoff              µ-kernel loads a spawn-state word that no
 *                              reachable spawner stores
 *   never-spawned              `.microkernel` no reachable code spawns
 *   const-oob                  static `const`/`param` address beyond `.const`
 *   shared-undeclared          shared access with `.shared_per_thread 0`
 *   local-undeclared           local access with `.local_per_thread 0`
 *   local-oob                  static local address beyond `.local_per_thread`
 *   unreachable                code no entry point reaches
 *   entry-overlap              control flow from one entry point reaches
 *                              another entry point (fall-through past a
 *                              guarded exit, usually)
 *   fall-off-end               control may run past the last instruction
 *   bar-guarded                `bar` under a guard predicate
 *   bar-divergent              `bar` inside a divergent region of a
 *                              guarded branch (deadlock risk)
 *   bar-in-microkernel         `bar` reachable from a spawned µ-kernel
 *                              (dynamic threads have no thread block)
 *
 * The pass is pure static analysis on an assembled Program; it never
 * executes code and is safe to run on hand-constructed programs too.
 */

#ifndef UKSIM_SIMT_VERIFIER_HPP
#define UKSIM_SIMT_VERIFIER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "simt/program.hpp"

namespace uksim {

/** Diagnostic severity. Errors indicate rendering-garbage-class bugs. */
enum class Severity : uint8_t {
    Warning,
    Error,
};

/** One verifier finding, attributed to a pc and its source line. */
struct Diagnostic {
    Severity severity = Severity::Error;
    std::string id;         ///< stable catalogue id, e.g. "reg-uninit"
    uint32_t pc = 0;        ///< instruction the finding anchors to
    int line = 0;           ///< 1-based source line (0 when synthetic)
    std::string entry;      ///< entry point analyzed ("" for global checks)
    std::string message;

    /** "error[reg-uninit] line 12 (pc 3, entry 'uk_trav'): ..." */
    std::string format() const;
};

/** Verification knobs. */
struct VerifyOptions {
    /**
     * Lenient mode keeps analyzing after errors and never throws; this
     * struct exists so callers can promote warnings when gating CI.
     */
    bool warningsAsErrors = false;
};

/** All findings for one program. */
struct VerifyResult {
    std::vector<Diagnostic> diagnostics;

    size_t errorCount() const;
    size_t warningCount() const;

    /** True when the program must not be launched under strict mode. */
    bool failed(const VerifyOptions &opts = {}) const
    {
        return errorCount() > 0 ||
               (opts.warningsAsErrors && warningCount() > 0);
    }

    /** Multi-line human-readable report ("" when clean). */
    std::string report() const;
};

/**
 * Statically verify @p program. Diagnostics come back sorted by source
 * line then pc; every finding carries the instruction's source line as
 * recorded by the assembler.
 */
VerifyResult verify(const Program &program, const VerifyOptions &opts = {});

/**
 * Convenience for launch paths: verify and throw std::runtime_error
 * carrying the full report when @p program fails under @p opts.
 */
void verifyOrThrow(const Program &program, const VerifyOptions &opts = {});

} // namespace uksim

#endif // UKSIM_SIMT_VERIFIER_HPP
