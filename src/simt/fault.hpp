/**
 * @file
 * Structured guest-fault model.
 *
 * Guest misbehavior at runtime — a warp running off the end of the
 * program, a spawn to a PC with no LUT line, spawn formation-region
 * exhaustion, an out-of-bounds device memory access, or a corrupt
 * operand/space encoding — is reported as a typed SimFault record
 * (fault code, cycle, SM/warp/lane, PC, faulting address) instead of a
 * bare std::runtime_error with no machine state attached.
 *
 * Faults are detected inside the parallel phase of the cycle engine but
 * only *applied* by the coordinator in canonical SM-id order during the
 * serial merge phase, so fault handling is deterministic and
 * bit-identical at any host thread count. GpuConfig::faultPolicy picks
 * what applying a fault means:
 *
 *  - Throw:    raise a GuestFault exception (legacy behavior, default);
 *  - Trap:     kill the faulting warp, mark the run Faulted, keep
 *              simulating — the rest of the grid still drains;
 *  - HaltGrid: stop the simulation cleanly at the end of the faulting
 *              cycle with all machine state intact for post-mortem.
 */

#ifndef UKSIM_SIMT_FAULT_HPP
#define UKSIM_SIMT_FAULT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace uksim {

/** What went wrong inside the guest program. */
enum class FaultCode : uint8_t {
    None = 0,
    /// A warp's PC reached or passed the end of the program (fall off
    /// the end, or a poisoned branch/reconvergence target).
    PcOutOfRange,
    /// An instruction carried an operand kind the decoder does not
    /// recognize (corrupt or hand-mutated program image).
    BadOperandKind,
    /// A memory instruction named a space the machine does not model.
    BadMemSpace,
    /// A load/store/atomic address fell outside its backing store.
    MemOutOfBounds,
    /// The spawn-memory formation-region ring had no free region for a
    /// forming warp (Sec. IV-A2 sizing violated, or injected).
    SpawnRegionExhausted,
    /// `spawn` targeted a PC with no spawn-LUT line (not a declared
    /// micro-kernel entry).
    SpawnNoLutLine,
    /// The program declares more micro-kernels than the spawn LUT holds
    /// (load-time fault: raised by loadProgram, cycle 0).
    SpawnLutOverflow,
};

constexpr int kNumFaultCodes = 8;

/** Stable lowercase identifier ("pc_out_of_range", ...). */
const char *faultCodeName(FaultCode code);

/** One-line likely-cause hint for diagnostics and the README table. */
const char *faultCodeHint(FaultCode code);

/** What applying a guest fault does (GpuConfig::faultPolicy). */
enum class FaultPolicy : uint8_t {
    Throw,      ///< raise GuestFault (legacy, default)
    Trap,       ///< kill the faulting warp, mark run Faulted, continue
    HaltGrid,   ///< stop cleanly at end of the faulting cycle
};

const char *faultPolicyName(FaultPolicy policy);

/**
 * How a simulation ended. Ordered by severity so merged views
 * (SimStats::operator+=) keep the worst outcome.
 */
enum class RunOutcome : uint8_t {
    Completed = 0,  ///< grid drained inside maxCycles, no faults
    CycleLimit,     ///< maxCycles elapsed with work still in flight
    Deadlock,       ///< watchdog: no forward progress for N cycles
    Faulted,        ///< at least one guest fault was recorded
};

const char *runOutcomeName(RunOutcome outcome);

/** One recorded guest fault, with full attribution. */
struct SimFault {
    FaultCode code = FaultCode::None;
    uint64_t cycle = 0;
    int smId = -1;
    int warpSlot = -1;      ///< -1 when not warp-specific (chip level)
    int lane = -1;          ///< -1 when warp-wide
    uint32_t pc = 0;        ///< PC of the faulting instruction
    uint64_t addr = 0;      ///< faulting address / spawn target / raw kind

    /** Human-readable one-line description with attribution. */
    std::string describe() const;

    bool operator==(const SimFault &other) const = default;
};

/**
 * Exception carrying a SimFault. Derives from std::runtime_error so
 * pre-fault-model call sites catching the legacy type keep working.
 */
class GuestFault : public std::runtime_error
{
  public:
    explicit GuestFault(const SimFault &fault)
        : std::runtime_error(fault.describe()), fault_(fault)
    {
    }

    const SimFault &fault() const { return fault_; }

  private:
    SimFault fault_;
};

} // namespace uksim

#endif // UKSIM_SIMT_FAULT_HPP
