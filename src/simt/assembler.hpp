/**
 * @file
 * Two-pass assembler for the uksim ISA.
 *
 * The source syntax is PTX-flavored; one statement per ';' or newline:
 *
 *     .entry main                 // launch entry point
 *     .microkernel uk_trav       // spawnable micro-kernel entry
 *     .reg 24                    // architectural registers per thread
 *     .shared_per_thread 60      // bytes of shared memory per thread
 *     .local_per_thread 388      // bytes of off-chip private memory
 *     .const 128                 // bytes of constant memory referenced
 *     .spawn_state 48            // bytes of spawn-memory state per thread
 *
 *     main:
 *         mov.u32  r1, %tid;
 *         mov.f32  r2, 1.5;
 *         setp.lt.f32 p0, r2, r3;
 *         @p0 bra  loop;
 *         ld.global.v4.f32 r4, [r8+16];
 *         st.spawn.u32 [r8], r1;
 *         spawn uk_trav, r8;
 *         exit;
 *
 * Assembly errors throw AssemblerError carrying the 1-based line number.
 */

#ifndef UKSIM_SIMT_ASSEMBLER_HPP
#define UKSIM_SIMT_ASSEMBLER_HPP

#include <stdexcept>
#include <string>

#include "simt/program.hpp"

namespace uksim {

/** Error raised on malformed assembly; what() includes the line number. */
class AssemblerError : public std::runtime_error
{
  public:
    AssemblerError(int line, const std::string &message);

    int line() const { return line_; }

  private:
    int line_;
};

/**
 * Assemble @p source into a Program. Labels are resolved, spawn targets
 * validated against `.microkernel` declarations, and PDOM reconvergence
 * points computed for every branch.
 */
Program assemble(const std::string &source);

} // namespace uksim

#endif // UKSIM_SIMT_ASSEMBLER_HPP
