/**
 * @file
 * Statistics implementation.
 */

#include "simt/stats.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace uksim {

void
SimStats::setWindowCycles(uint64_t window_cycles)
{
    assert(window_cycles > 0);
    assert((windows.empty() || window_cycles == windowCycles_) &&
           "window size must not change once the series exists");
    windowCycles_ = window_cycles;
}

OccupancyWindow &
SimStats::windowFor(uint64_t cycle)
{
    assert(windowCycles_ > 0);
    size_t idx = cycle / windowCycles_;
    while (windows.size() <= idx) {
        OccupancyWindow w;
        w.startCycle = windows.size() * windowCycles_;
        w.cycles = windowCycles_;
        windows.push_back(w);
    }
    return windows[idx];
}

void
SimStats::recordIssue(uint64_t cycle, int activeLanes)
{
    warpIssues++;
    laneInstructions += activeLanes;
    if (activeLanes <= 0)
        return;
    int bin = (activeLanes - 1) / 4;
    if (bin >= kOccupancyBins)
        bin = kOccupancyBins - 1;
    windowFor(cycle).bins[bin]++;
}

void
SimStats::recordIdle(uint64_t cycle)
{
    idleIssueSlots++;
    windowFor(cycle).idleIssueSlots++;
}

void
SimStats::recordIdleSpan(uint64_t startCycle, uint64_t count)
{
    idleIssueSlots += count;
    while (count > 0) {
        OccupancyWindow &w = windowFor(startCycle);
        const uint64_t windowEnd =
            (startCycle / windowCycles_ + 1) * windowCycles_;
        const uint64_t n = std::min(count, windowEnd - startCycle);
        w.idleIssueSlots += n;
        startCycle += n;
        count -= n;
    }
}

SimStats &
SimStats::operator+=(const SimStats &other)
{
    cycles += other.cycles;
    if (other.outcome > outcome)
        outcome = other.outcome;
    warpIssues += other.warpIssues;
    laneInstructions += other.laneInstructions;
    committedLaneInstructions += other.committedLaneInstructions;
    idleIssueSlots += other.idleIssueSlots;

    threadsLaunched += other.threadsLaunched;
    threadsCompleted += other.threadsCompleted;
    itemsCompleted += other.itemsCompleted;
    dynamicThreadsSpawned += other.dynamicThreadsSpawned;
    dynamicWarpsFormed += other.dynamicWarpsFormed;
    partialWarpFlushes += other.partialWarpFlushes;

    dramReadBytes += other.dramReadBytes;
    dramWriteBytes += other.dramWriteBytes;
    dramTransactions += other.dramTransactions;
    onChipReadBytes += other.onChipReadBytes;
    onChipWriteBytes += other.onChipWriteBytes;
    spawnMemReadBytes += other.spawnMemReadBytes;
    spawnMemWriteBytes += other.spawnMemWriteBytes;
    bankConflictExtraCycles += other.bankConflictExtraCycles;
    texL1Hits += other.texL1Hits;
    texL1Misses += other.texL1Misses;
    texL2Hits += other.texL2Hits;
    texL2Misses += other.texL2Misses;

    stall += other.stall;

    if (!other.windows.empty()) {
        assert((windows.empty() ||
                windowCycles_ == other.windowCycles_) &&
               "cannot merge occupancy series with different window sizes");
        if (windows.empty())
            windowCycles_ = other.windowCycles_;
        if (windows.size() < other.windows.size())
            windows.resize(other.windows.size());
        for (size_t i = 0; i < other.windows.size(); i++) {
            OccupancyWindow &dst = windows[i];
            const OccupancyWindow &src = other.windows[i];
            dst.startCycle = src.startCycle;
            dst.cycles = src.cycles;
            for (int b = 0; b < kOccupancyBins; b++)
                dst.bins[b] += src.bins[b];
            dst.idleIssueSlots += src.idleIssueSlots;
        }
    }
    return *this;
}

std::string
SimStats::occupancyCsv() const
{
    std::ostringstream os;
    os << "start_cycle,idle";
    for (int b = 0; b < kOccupancyBins; b++)
        os << ",W" << (b * 4 + 1) << ":" << (b * 4 + 4);
    os << "\n";
    for (const auto &w : windows) {
        os << w.startCycle << "," << w.idleIssueSlots;
        for (int b = 0; b < kOccupancyBins; b++)
            os << "," << w.bins[b];
        os << "\n";
    }
    return os.str();
}

} // namespace uksim
