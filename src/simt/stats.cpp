/**
 * @file
 * Statistics implementation.
 */

#include "simt/stats.hpp"

#include <cassert>
#include <sstream>

namespace uksim {

OccupancyWindow &
SimStats::windowFor(uint64_t cycle, uint64_t windowCycles)
{
    assert(windowCycles > 0);
    size_t idx = cycle / windowCycles;
    while (windows.size() <= idx) {
        OccupancyWindow w;
        w.startCycle = windows.size() * windowCycles;
        w.cycles = windowCycles;
        windows.push_back(w);
    }
    return windows[idx];
}

void
SimStats::recordIssue(uint64_t cycle, int activeLanes, uint64_t windowCycles)
{
    warpIssues++;
    laneInstructions += activeLanes;
    if (activeLanes <= 0)
        return;
    int bin = (activeLanes - 1) / 4;
    if (bin >= kOccupancyBins)
        bin = kOccupancyBins - 1;
    windowFor(cycle, windowCycles).bins[bin]++;
}

void
SimStats::recordIdle(uint64_t cycle, uint64_t windowCycles)
{
    idleIssueSlots++;
    windowFor(cycle, windowCycles).idleIssueSlots++;
}

std::string
SimStats::occupancyCsv() const
{
    std::ostringstream os;
    os << "start_cycle,idle";
    for (int b = 0; b < kOccupancyBins; b++)
        os << ",W" << (b * 4 + 1) << ":" << (b * 4 + 4);
    os << "\n";
    for (const auto &w : windows) {
        os << w.startCycle << "," << w.idleIssueSlots;
        for (int b = 0; b < kOccupancyBins; b++)
            os << "," << w.bins[b];
        os << "\n";
    }
    return os.str();
}

} // namespace uksim
