/**
 * @file
 * A fully assembled device program plus its static metadata.
 *
 * A Program contains one flat instruction stream. Multiple entry points
 * may be declared: the launch entry (`.entry`) and any number of
 * micro-kernel entries (`.microkernel`), which are the only legal spawn
 * targets. Per-thread resource declarations drive both the occupancy
 * model (Sec. VI-A, Table II of the paper) and the Table II resource
 * report.
 */

#ifndef UKSIM_SIMT_PROGRAM_HPP
#define UKSIM_SIMT_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simt/isa.hpp"

namespace uksim {

/** Per-thread resource declaration for a program (Table II categories). */
struct ResourceDecl {
    int registers = 0;          ///< architectural registers per thread
    uint32_t sharedBytes = 0;   ///< shared memory bytes per thread
    uint32_t localBytes = 0;    ///< off-chip private bytes per thread
    uint32_t globalBytes = 0;   ///< per-thread global working set (Table II)
    uint32_t constBytes = 0;    ///< constant memory bytes used by the kernel
    uint32_t spawnStateBytes = 0; ///< spawn-memory state record per thread
};

/** One spawnable micro-kernel entry point. */
struct MicroKernelEntry {
    std::string name;
    uint32_t pc = 0;
};

/** An assembled program. */
class Program
{
  public:
    std::vector<Instruction> code;

    /// label -> pc
    std::map<std::string, uint32_t> labels;

    /// Launch entry point (default 0).
    uint32_t entryPc = 0;
    std::string entryName;

    /// Spawnable micro-kernel entries, in declaration order. The index in
    /// this vector is the LUT way used by the spawn unit.
    std::vector<MicroKernelEntry> microKernels;

    ResourceDecl resources;

    /** Number of instructions. */
    size_t size() const { return code.size(); }

    const Instruction &at(uint32_t pc) const { return code.at(pc); }

    /**
     * Index of the micro-kernel whose entry pc matches, or -1.
     * @param pc entry program counter to look up.
     */
    int microKernelIndex(uint32_t pc) const;

    /** Highest register index actually referenced, plus one. */
    int measuredRegisterCount() const;

    /** Total dynamic spawn targets declared (SpawnLocations in Sec. IV-A2). */
    int spawnLocationCount() const
    {
        return static_cast<int>(microKernels.size());
    }

    /**
     * Compute reconvergence PCs for every branch using immediate
     * post-dominator analysis of the control-flow graph. Called by the
     * assembler; exposed for tests.
     */
    void computeReconvergencePoints();

    /** Pretty listing with PCs and labels, for debugging. */
    std::string listing() const;
};

} // namespace uksim

#endif // UKSIM_SIMT_PROGRAM_HPP
