/**
 * @file
 * CFG construction and iterative post-dominator dataflow.
 */

#include "simt/cfg.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace uksim {

namespace {

/** True when the instruction unconditionally leaves the fall-through path. */
bool
endsBlockNoFallThrough(const Instruction &inst)
{
    if (inst.guardPred >= 0)
        return false;   // predicated: some lanes may fall through
    return inst.op == Opcode::Bra || inst.op == Opcode::Exit;
}

} // anonymous namespace

Cfg::Cfg(const Program &program)
{
    const auto &code = program.code;
    const size_t n = code.size();
    assert(n > 0);

    // --- Find leaders -----------------------------------------------------
    std::set<uint32_t> leaders;
    leaders.insert(0);
    for (const auto &e : program.microKernels)
        leaders.insert(e.pc);
    leaders.insert(program.entryPc);
    for (uint32_t pc = 0; pc < n; pc++) {
        const Instruction &inst = code[pc];
        if (inst.op == Opcode::Bra) {
            leaders.insert(inst.target);
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        } else if (inst.op == Opcode::Exit && pc + 1 < n) {
            leaders.insert(pc + 1);
        }
        // Spawn targets are thread entry points, not intra-thread edges;
        // they are already leaders via microKernels above.
    }

    // --- Build blocks ------------------------------------------------------
    std::vector<uint32_t> starts(leaders.begin(), leaders.end());
    blockOf_.assign(n, 0);
    for (size_t i = 0; i < starts.size(); i++) {
        BasicBlock bb;
        bb.first = starts[i];
        bb.last = (i + 1 < starts.size()) ? starts[i + 1] - 1
                                          : static_cast<uint32_t>(n - 1);
        for (uint32_t pc = bb.first; pc <= bb.last; pc++)
            blockOf_[pc] = static_cast<int>(i);
        blocks_.push_back(bb);
    }

    // --- Edges --------------------------------------------------------------
    for (size_t i = 0; i < blocks_.size(); i++) {
        BasicBlock &bb = blocks_[i];
        const Instruction &lastInst = code[bb.last];
        auto addSucc = [&](int s) {
            if (std::find(bb.successors.begin(), bb.successors.end(), s) ==
                bb.successors.end()) {
                bb.successors.push_back(s);
            }
        };

        if (lastInst.op == Opcode::Bra) {
            addSucc(blockOf_[lastInst.target]);
            if (!endsBlockNoFallThrough(lastInst)) {
                if (bb.last + 1 < n)
                    addSucc(blockOf_[bb.last + 1]);
                else
                    addSucc(kVirtualExit);
            }
        } else if (lastInst.op == Opcode::Exit) {
            addSucc(kVirtualExit);
            if (lastInst.guardPred >= 0) {
                if (bb.last + 1 < n)
                    addSucc(blockOf_[bb.last + 1]);
            }
        } else {
            if (bb.last + 1 < n)
                addSucc(blockOf_[bb.last + 1]);
            else
                addSucc(kVirtualExit);
        }
    }

    preds_.assign(blocks_.size(), {});
    for (size_t i = 0; i < blocks_.size(); i++) {
        for (int s : blocks_[i].successors) {
            if (s != kVirtualExit)
                preds_[s].push_back(static_cast<int>(i));
        }
    }

    computePostDominators();
}

std::vector<int>
Cfg::influenceRegion(int branchBlock) const
{
    const int rejoin = ipdom_.at(branchBlock);
    std::set<int> region;
    std::vector<int> work;
    for (int s : blocks_[branchBlock].successors) {
        if (s != kVirtualExit && s != rejoin && region.insert(s).second)
            work.push_back(s);
    }
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (int s : blocks_[b].successors) {
            if (s != kVirtualExit && s != rejoin &&
                region.insert(s).second) {
                work.push_back(s);
            }
        }
    }
    return {region.begin(), region.end()};
}

void
Cfg::computePostDominators()
{
    const size_t nb = blocks_.size();
    words_ = (nb + 63) / 64;

    // pdom sets; the virtual exit is implicit (it post-dominates nothing we
    // track but terminates every path).
    std::vector<uint64_t> full(words_, ~uint64_t{0});
    if (nb % 64)
        full[words_ - 1] = (uint64_t{1} << (nb % 64)) - 1;

    pdom_.assign(nb, full);
    for (size_t b = 0; b < nb; b++) {
        if (std::find(blocks_[b].successors.begin(),
                      blocks_[b].successors.end(),
                      kVirtualExit) != blocks_[b].successors.end()) {
            // Blocks feeding the virtual exit start with pdom = {b}.
            pdom_[b].assign(words_, 0);
            pdom_[b][b / 64] |= uint64_t{1} << (b % 64);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            std::vector<uint64_t> meet(words_, ~uint64_t{0});
            bool any = false;
            bool exitEdge = false;
            for (int s : blocks_[b].successors) {
                if (s == kVirtualExit) {
                    exitEdge = true;
                    continue;
                }
                for (size_t w = 0; w < words_; w++)
                    meet[w] &= pdom_[s][w];
                any = true;
            }
            if (exitEdge) {
                // Meet with pdom(virtual exit) = {} (over real blocks).
                meet.assign(words_, 0);
            } else if (!any) {
                meet.assign(words_, 0);
            }
            meet[b / 64] |= uint64_t{1} << (b % 64);
            if (meet != pdom_[b]) {
                pdom_[b] = std::move(meet);
                changed = true;
            }
        }
    }

    // Immediate post-dominator: among strict post-dominators of b, the one
    // with the largest pdom set (sets along the chain to exit shrink, so
    // the nearest one is the largest).
    auto popcount = [&](const std::vector<uint64_t> &s) {
        size_t c = 0;
        for (uint64_t w : s)
            c += __builtin_popcountll(w);
        return c;
    };

    ipdom_.assign(nb, kVirtualExit);
    for (size_t b = 0; b < nb; b++) {
        int best = kVirtualExit;
        size_t bestSize = 0;
        for (size_t p = 0; p < nb; p++) {
            if (p == b)
                continue;
            if (!(pdom_[b][p / 64] >> (p % 64) & 1))
                continue;
            size_t sz = popcount(pdom_[p]);
            if (sz > bestSize) {
                bestSize = sz;
                best = static_cast<int>(p);
            }
        }
        ipdom_[b] = best;
    }
}

bool
Cfg::postDominates(int a, int b) const
{
    if (a == kVirtualExit)
        return true;
    if (b == kVirtualExit)
        return false;
    return pdom_[b][a / 64] >> (a % 64) & 1;
}

uint32_t
Cfg::reconvergencePc(uint32_t branchPc, uint32_t exitSentinel) const
{
    int b = blockOf_[branchPc];
    int ip = ipdom_[b];
    if (ip == kVirtualExit)
        return exitSentinel;
    return blocks_[ip].first;
}

} // namespace uksim
