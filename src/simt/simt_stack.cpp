/**
 * @file
 * PDOM reconvergence stack implementation.
 */

#include "simt/simt_stack.hpp"

#include <cassert>

namespace uksim {

void
SimtStack::reset(uint32_t startPc, uint64_t mask)
{
    entries_.clear();
    if (mask)
        entries_.push_back({startPc, kNoReconverge, mask});
}

void
SimtStack::normalize()
{
    while (!entries_.empty()) {
        const StackEntry &top = entries_.back();
        if (top.mask == 0 ||
            (top.rpc != kNoReconverge && top.pc == top.rpc)) {
            entries_.pop_back();
        } else {
            break;
        }
    }
}

void
SimtStack::advance()
{
    assert(!entries_.empty());
    entries_.back().pc++;
    normalize();
}

void
SimtStack::advanceBy(uint32_t n)
{
    assert(!entries_.empty());
    StackEntry &top = entries_.back();
    // No intermediate pc may hit the reconvergence point: the caller
    // proved pc + n stays strictly below rpc (or pc is already past it).
    assert(top.rpc == kNoReconverge || top.pc >= top.rpc ||
           top.pc + n < top.rpc);
    top.pc += n;
    normalize();
}

void
SimtStack::branch(uint64_t takenMask, uint32_t targetPc,
                  uint32_t reconvergePc)
{
    assert(!entries_.empty());
    StackEntry &top = entries_.back();
    const uint64_t active = top.mask;
    assert((takenMask & ~active) == 0);
    const uint64_t notTaken = active & ~takenMask;
    const uint32_t fallPc = top.pc + 1;

    if (notTaken == 0) {
        // Uniform taken.
        top.pc = targetPc;
    } else if (takenMask == 0) {
        // Uniform not-taken.
        top.pc = fallPc;
    } else {
        // Divergence: current entry becomes the reconvergence entry.
        top.pc = reconvergePc;  // may be kNoReconverge: entry empties via exits
        entries_.push_back({fallPc, reconvergePc, notTaken});
        entries_.push_back({targetPc, reconvergePc, takenMask});
    }
    normalize();
}

void
SimtStack::exitLanes(uint64_t exitingLanes)
{
    assert(!entries_.empty());
    const bool topSurvives = (entries_.back().mask & ~exitingLanes) != 0;
    for (StackEntry &e : entries_)
        e.mask &= ~exitingLanes;
    if (topSurvives) {
        // Guard-false lanes continue past the exit instruction.
        advance();
    } else {
        normalize();
    }
}

} // namespace uksim
