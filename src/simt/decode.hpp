/**
 * @file
 * Pre-resolved per-program decode table.
 *
 * Built once when a program is loaded: every instruction is classified
 * into an execution class and the fields the per-cycle issue loop needs
 * (guard, operand shape, issue latency, pre-clamped reconvergence pc)
 * are flattened into one dense record per pc. The SM's inner loop then
 * dispatches on the class and does index arithmetic instead of
 * re-interrogating the wide Instruction struct every cycle.
 *
 * The table is immutable after build() and shared read-only by all SMs,
 * so it is safe to consult from the parallel phase of the cycle engine.
 */

#ifndef UKSIM_SIMT_DECODE_HPP
#define UKSIM_SIMT_DECODE_HPP

#include <cstdint>
#include <vector>

#include "simt/config.hpp"
#include "simt/program.hpp"

namespace uksim {

/** Issue-loop dispatch class of one instruction. */
enum class ExecClass : uint8_t {
    Alu,        ///< arithmetic / moves / conversions (incl. SFU ops)
    SetP,       ///< predicate compare
    SelP,       ///< predicated select
    VoteAll,    ///< warp-wide predicate AND
    Bra,        ///< branch (divergence point)
    Exit,       ///< thread exit
    Bar,        ///< block barrier
    Mem,        ///< Ld / St / atomics (any space)
    Spawn,      ///< dynamic thread creation
    Nop,
};

/** Dense pre-decoded record for one instruction. */
struct DecodedInst {
    const Instruction *inst = nullptr;  ///< original wide decoding
    ExecClass cls = ExecClass::Nop;
    int8_t guardPred = -1;              ///< guard predicate, -1 = always
    bool guardNegated = false;
    bool readsB = false;    ///< src[1] feeds the ALU (not None / Pred)
    bool readsC = false;    ///< src[2] feeds the ALU (Reg / Imm / Special)
    uint16_t issueLatency = 1;  ///< cycles until the warp may issue again
    uint32_t target = 0;        ///< branch / spawn target pc
    uint32_t reconvergePc = 0;  ///< pre-clamped to SimtStack::kNoReconverge
};

/** The decode table of one loaded program. */
class DecodedProgram
{
  public:
    /**
     * Build the table. @p program must outlive this object and must not
     * be mutated afterwards (records point into program.code).
     */
    void build(const Program &program, const GpuConfig &config);

    const DecodedInst &at(uint32_t pc) const { return insts_[pc]; }
    size_t size() const { return insts_.size(); }

  private:
    std::vector<DecodedInst> insts_;
};

} // namespace uksim

#endif // UKSIM_SIMT_DECODE_HPP
