/**
 * @file
 * Streaming multiprocessor implementation.
 */

#include "simt/sm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "mem/bank.hpp"
#include "simt/executor.hpp"
#include "simt/simd.hpp"

namespace uksim {

namespace {

inline int
popcount(uint64_t v)
{
    return std::popcount(v);
}

} // anonymous namespace

Sm::Sm(int id, const GpuConfig &config, const Program &program,
       const DecodedProgram &decoded, SmServices &services)
    : id_(id), config_(config), program_(program), decoded_(decoded),
      services_(services), shared_("shared", config.onChipBytesPerSm)
{
    localStats_.setWindowCycles(config.statsWindowCycles);
    traceBuf_.bind(&services_.eventTrace());
    if (config_.texL1BytesPerSm > 0) {
        texL1_ = std::make_unique<ReadOnlyCache>(
            config_.texL1BytesPerSm, config_.coalesceSegmentBytes,
            config_.texCacheWays);
    }
}

void
Sm::configureOccupancy(int resident_warps)
{
    assert(resident_warps > 0 &&
           resident_warps <= config_.maxWarpsPerSm());
    warps_.assign(resident_warps, Warp{});
    for (int i = 0; i < resident_warps; i++) {
        warps_[i].hwSlot = i;
        warps_[i].lanes.resize(config_.warpSize);
    }
    const int threads = resident_warps * config_.warpSize;
    regs_.assign(size_t(threads) * kMaxRegisters, 0);
    preds_.assign(size_t(threads) * kNumPredicates, 0);
    touchIdleScan();

    if (!program_.microKernels.empty()) {
        uint32_t state = program_.resources.spawnStateBytes;
        if (state == 0)
            throw std::runtime_error("micro-kernel program must declare "
                                     ".spawn_state");
        spawnLayout_ = SpawnMemoryLayout::compute(
            state, threads, program_.spawnLocationCount(),
            config_.warpSize);
        spawnStore_ = Store("spawn", spawnLayout_.totalBytes);
        spawnUnit_ = std::make_unique<SpawnUnit>(
            config_, program_, spawnLayout_, &traceBuf_, id_);
        freeStateSlots_.clear();
        for (int s = threads - 1; s >= 0; s--)
            freeStateSlots_.push_back(static_cast<uint32_t>(s));
    }
}

int
Sm::liveWarps() const
{
    int n = 0;
    for (const Warp &w : warps_)
        n += w.valid ? 1 : 0;
    return n;
}

int
Sm::freeWarpSlots() const
{
    return residentWarps() - liveWarps();
}

uint32_t
Sm::readReg(int threadSlot, int reg) const
{
    return regs_[size_t(threadSlot) * kMaxRegisters + reg];
}

void
Sm::writeReg(int threadSlot, int reg, uint32_t value)
{
    regs_[size_t(threadSlot) * kMaxRegisters + reg] = value;
}

bool
Sm::readPred(int threadSlot, int pred) const
{
    return preds_[size_t(threadSlot) * kNumPredicates + pred] != 0;
}

void
Sm::writePred(int threadSlot, int pred, bool value)
{
    preds_[size_t(threadSlot) * kNumPredicates + pred] = value ? 1 : 0;
}

Sm::ResidentBlock *
Sm::findBlock(uint32_t blockId)
{
    for (ResidentBlock &b : blocks_) {
        if (b.blockId == blockId)
            return &b;
    }
    return nullptr;
}

bool
Sm::launchInitialWarp(std::span<const uint32_t> tids, uint32_t blockId)
{
    assert(!tids.empty() &&
           tids.size() <= static_cast<size_t>(config_.warpSize));
    Warp *slot = nullptr;
    for (Warp &w : warps_) {
        if (!w.valid) {
            slot = &w;
            break;
        }
    }
    if (!slot)
        return false;
    if (spawnEnabled() && freeStateSlots_.size() < tids.size())
        return false;

    touchIdleScan();
    slot->valid = true;
    slot->blockId = blockId;
    slot->dynamic = false;
    slot->readyAt = 0;
    slot->outstandingMem = 0;
    slot->waitingBarrier = false;
    slot->faulted = false;

    uint64_t mask = 0;
    for (size_t lane = 0; lane < tids.size(); lane++) {
        LaneInfo &li = slot->lanes[lane];
        li = LaneInfo{};
        li.tid = tids[lane];
        li.ctaid = blockId;
        if (spawnEnabled()) {
            li.stateSlot = freeStateSlots_.back();
            freeStateSlots_.pop_back();
            li.spawnMemAddr = spawnLayout_.stateAddr(li.stateSlot);
        }
        mask |= uint64_t{1} << lane;
    }
    slot->stack.reset(program_.entryPc, mask);

    ResidentBlock *blk = findBlock(blockId);
    if (!blk) {
        blocks_.push_back({blockId, 0, 0});
        blk = &blocks_.back();
    }
    blk->warpsLive++;

    localStats_.threadsLaunched += tids.size();
    return true;
}

bool
Sm::launchDynamicWarp(const FormedWarp &formed)
{
    assert(spawnEnabled());
    Warp *slot = nullptr;
    for (Warp &w : warps_) {
        if (!w.valid) {
            slot = &w;
            break;
        }
    }
    if (!slot)
        return false;

    touchIdleScan();
    slot->valid = true;
    slot->blockId = 0xffffffffu;
    slot->dynamic = true;
    slot->readyAt = 0;
    slot->outstandingMem = 0;
    slot->waitingBarrier = false;
    slot->faulted = false;

    uint64_t mask = 0;
    for (int lane = 0; lane < formed.threadCount; lane++) {
        LaneInfo &li = slot->lanes[lane];
        li = LaneInfo{};
        li.dynamic = true;
        li.tid = nextDynamicTid_++;
        // spawnMemAddr points at this thread's warp-formation word; the
        // micro-kernel prologue loads the parent's state pointer through
        // it (paper Fig. 6 / Example 2 lines 3-5).
        li.spawnMemAddr = formed.regionAddr + lane * 4;
        li.dataPtr = spawnStore_.read32(li.spawnMemAddr);
        li.stateSlot = spawnLayout_.slotOf(li.dataPtr);
        mask |= uint64_t{1} << lane;
    }
    spawnUnit_->releaseRegion(formed.regionAddr);
    slot->stack.reset(formed.pc, mask);
    return true;
}

uint32_t
Sm::specialValue(SpecialReg sreg, const Warp &w, int lane) const
{
    const LaneInfo &li = w.lanes[lane];
    switch (sreg) {
      case SpecialReg::Tid: return li.tid;
      case SpecialReg::NTid: return gridThreads_;
      case SpecialReg::CtaId: return li.ctaid;
      case SpecialReg::LaneId: return static_cast<uint32_t>(lane);
      case SpecialReg::WarpId: return static_cast<uint32_t>(w.hwSlot);
      case SpecialReg::SmId: return static_cast<uint32_t>(id_);
      case SpecialReg::Slot:
        return static_cast<uint32_t>(w.hwSlot * config_.warpSize + lane);
      case SpecialReg::SpawnMemAddr: return li.spawnMemAddr;
    }
    return 0;
}

uint32_t
Sm::readOperand(const Operand &op, const Warp &w, int lane)
{
    switch (op.kind) {
      case OperandKind::Reg:
        return readReg(w.hwSlot * config_.warpSize + lane, op.reg);
      case OperandKind::Imm:
        return op.imm;
      case OperandKind::Special:
        return specialValue(op.sreg, w, lane);
      default:
        // Corrupt instruction image: a guest fault, never a silent zero
        // (this used to be a release-unsafe assert).
        raiseFault(FaultCode::BadOperandKind, w.hwSlot, lane,
                   uint64_t(static_cast<uint8_t>(op.kind)));
        return 0;
    }
}

void
Sm::raiseFault(FaultCode code, int warpSlot, int lane, uint64_t addr)
{
    SimFault f;
    f.code = code;
    f.cycle = faultCycle_;
    f.smId = id_;
    f.warpSlot = warpSlot;
    f.lane = lane;
    f.pc = faultPc_;
    f.addr = addr;
    pendingFaults_.push_back(f);
    if (warpSlot >= 0)
        warps_[warpSlot].faulted = true;
}

std::vector<SimFault>
Sm::takeFaults()
{
    std::vector<SimFault> out = std::move(pendingFaults_);
    pendingFaults_.clear();
    return out;
}

void
Sm::killWarp(int warpSlot, uint64_t now)
{
    Warp &w = warps_.at(warpSlot);
    if (!w.valid)
        return;
    // A warp faults while issuing (or replaying its own deferred memory
    // access), so it can never be parked on an off-chip wait.
    assert(w.outstandingMem == 0);
    touchIdleScan();

    if (spawnEnabled()) {
        // Dead threads that still own a spawn-state slot release it;
        // lanes that already spawned handed ownership to the child.
        // (Lanes that exited earlier hold the sentinel.)
        for (LaneInfo &li : w.lanes) {
            if (!li.spawned && li.stateSlot != 0xffffffffu) {
                freeStateSlots_.push_back(li.stateSlot);
                li.stateSlot = 0xffffffffu;
            }
        }
    }

    const bool wasAtBarrier = w.waitingBarrier;
    w.valid = false;
    w.faulted = false;
    w.waitingBarrier = false;
    w.stack.reset(0, 0);

    if (!w.dynamic) {
        ResidentBlock *blk = findBlock(w.blockId);
        if (blk) {
            blk->warpsLive--;
            if (wasAtBarrier)
                blk->warpsAtBarrier--;
            if (blk->warpsLive <= 0) {
                for (size_t i = 0; i < blocks_.size(); i++) {
                    if (&blocks_[i] == blk) {
                        blocks_.erase(blocks_.begin() + i);
                        blk = nullptr;
                        break;
                    }
                }
            } else if (blk->warpsAtBarrier >= blk->warpsLive) {
                // The dead warp can never reach the barrier its block
                // partners are parked at: release them so the grid
                // drains instead of hanging.
                for (Warp &other : warps_) {
                    if (other.valid && other.blockId == w.blockId &&
                        other.waitingBarrier) {
                        other.waitingBarrier = false;
                        other.readyAt = now + 1;
                    }
                }
                blk->warpsAtBarrier = 0;
            }
        }
    }
}

void
Sm::recordStall(trace::StallReason reason)
{
    localStats_.stall.record(reason);
}

trace::StallReason
Sm::classifyIdle() const
{
    if (!idleScanValid_) {
        idleScan_ = IdleScan{};
        for (const Warp &w : warps_) {
            if (!w.valid)
                continue;
            idleScan_.anyValid = true;
            if (w.outstandingMem > 0)
                idleScan_.anyMem = true;
            else if (w.waitingBarrier)
                idleScan_.anyBarrier = true;
        }
        idleScanValid_ = true;
    }
    if (idleScan_.anyValid) {
        // Memory waits dominate the attribution: a mem-stalled warp is
        // what keeps barrier partners (and the issue slot) waiting.
        if (idleScan_.anyMem)
            return trace::StallReason::Scoreboard;
        if (idleScan_.anyBarrier)
            return trace::StallReason::Barrier;
        // Every live warp is waiting on an in-flight ALU/SFU result
        // (readyAt > now): a scoreboard wait on the result register.
        return trace::StallReason::Scoreboard;
    }
    if (!services_.gridExhausted())
        return trace::StallReason::NoWarps;
    if (spawnEnabled() && (!spawnUnit_->fifoEmpty() ||
                           spawnUnit_->hasPartialWarps())) {
        return trace::StallReason::FifoEmpty;
    }
    return trace::StallReason::Drained;
}

void
Sm::step(uint64_t now)
{
    faultCycle_ = now;
    issuedLastStep_ = false;
    if (warps_.empty()) {
        recordStall(trace::StallReason::NoWarps);
        return;
    }
    if (issueBlockedUntil_ > now) {
        localStats_.recordIdle(now);
        recordStall(trace::StallReason::BankConflict);
        return;
    }
    const int n = residentWarps();
    for (int i = 0; i < n; i++) {
        int slot = (rrCursor_ + i) % n;
        Warp &w = warps_[slot];
        if (w.issuable(now)) {
            rrCursor_ = (slot + 1) % n;
            recordStall(trace::StallReason::Issued);
            issuedLastStep_ = true;
            issue(w, now);
            return;
        }
    }
    localStats_.recordIdle(now);
    recordStall(classifyIdle());
}

void
Sm::issue(Warp &w, uint64_t now)
{
    touchIdleScan();
    const uint32_t pc = w.stack.pc();
    faultPc_ = pc;
    if (pc >= decoded_.size()) {
        // Fall off the end of the program or a poisoned branch target:
        // freeze the warp and let the coordinator apply the policy.
        raiseFault(FaultCode::PcOutOfRange, w.hwSlot, -1, pc);
        return;
    }
    const DecodedInst &d = decoded_.at(pc);
    const uint64_t mask = w.stack.activeMask();

    localStats_.recordIssue(now, popcount(mask));
    traceBuf_.record(trace::EventKind::Issue, now, id_, w.hwSlot, pc,
                     uint64_t(popcount(mask)), 1);
    const size_t depthBefore = w.stack.depth();

    uint64_t commitMask = mask;
    if (d.guardPred >= 0) {
        const int base = w.hwSlot * config_.warpSize;
        if (simd::enabled()) {
            const uint64_t pm = simd::predLaneMask(
                preds_.data(), base, d.guardPred, config_.warpSize);
            commitMask = mask & (d.guardNegated ? ~pm : pm);
        } else {
            commitMask = 0;
            for (uint64_t m = mask; m; m &= m - 1) {
                const int lane = std::countr_zero(m);
                bool p = readPred(base + lane, d.guardPred);
                if (p != d.guardNegated)
                    commitMask |= uint64_t{1} << lane;
            }
        }
    }
    localStats_.committedLaneInstructions += popcount(commitMask);

    w.readyAt = now + d.issueLatency;

    switch (d.cls) {
      case ExecClass::Bra:
        w.stack.branch(commitMask, d.target, d.reconvergePc);
        break;
      case ExecClass::Exit:
        execExit(w, commitMask);
        break;
      case ExecClass::Bar:
        execBarrier(w, now);
        break;
      case ExecClass::Mem:
        execMemory(w, d, commitMask, now);
        w.stack.advance();
        break;
      case ExecClass::Spawn:
        execSpawn(w, *d.inst, commitMask, now);
        w.stack.advance();
        break;
      case ExecClass::VoteAll: {
        // Warp-wide AND over the active lanes' source predicate; every
        // active lane receives the result.
        const int base = w.hwSlot * config_.warpSize;
        const int srcPred = d.inst->src[0].reg;
        bool all = true;
        if (simd::enabled()) {
            const uint64_t pm = simd::predLaneMask(
                preds_.data(), base, srcPred, config_.warpSize);
            all = (mask & pm) == mask;
        } else {
            for (uint64_t m = mask; m; m &= m - 1) {
                if (!readPred(base + std::countr_zero(m), srcPred)) {
                    all = false;
                    break;
                }
            }
        }
        for (uint64_t m = mask; m; m &= m - 1)
            writePred(base + std::countr_zero(m), d.inst->dst, all);
        w.stack.advance();
        break;
      }
      case ExecClass::Nop:
        w.stack.advance();
        break;
      default:
        execAlu(w, d, commitMask);
        w.stack.advance();
        break;
    }

    if (w.valid && !w.stack.empty()) {
        const size_t depthAfter = w.stack.depth();
        if (depthAfter > depthBefore) {
            traceBuf_.record(trace::EventKind::Diverge, now, id_,
                             w.hwSlot, pc, depthAfter);
        } else if (depthAfter < depthBefore) {
            traceBuf_.record(trace::EventKind::Reconverge, now, id_,
                             w.hwSlot, pc, depthAfter);
        }
    }

    if (w.valid && w.stack.empty())
        retireWarp(w);
}

void
Sm::execAlu(Warp &w, const DecodedInst &d, uint64_t commitMask)
{
    const Instruction &inst = *d.inst;
    const int base = w.hwSlot * config_.warpSize;
    switch (d.cls) {
      case ExecClass::SetP:
        for (uint64_t m = commitMask; m; m &= m - 1) {
            const int lane = std::countr_zero(m);
            const uint32_t a = readOperand(inst.src[0], w, lane);
            const uint32_t b =
                d.readsB ? readOperand(inst.src[1], w, lane) : 0;
            writePred(base + lane, inst.dst,
                      evalCmp(inst.cmp, inst.type, a, b));
        }
        break;
      case ExecClass::SelP:
        for (uint64_t m = commitMask; m; m &= m - 1) {
            const int lane = std::countr_zero(m);
            const int slot = base + lane;
            const uint32_t a = readOperand(inst.src[0], w, lane);
            const uint32_t b =
                d.readsB ? readOperand(inst.src[1], w, lane) : 0;
            bool p = readPred(slot, inst.src[2].reg);
            writeReg(slot, inst.dst, p ? a : b);
        }
        break;
      default:
        if (simd::enabled() &&
            simd::warpAlu(d, regs_.data(), base, commitMask,
                          config_.warpSize)) {
            break;
        }
        scalarAlu(w, d, commitMask);
        break;
    }
}

void
Sm::scalarAlu(Warp &w, const DecodedInst &d, uint64_t commitMask)
{
    const Instruction &inst = *d.inst;
    const int base = w.hwSlot * config_.warpSize;
    for (uint64_t m = commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        const uint32_t a = readOperand(inst.src[0], w, lane);
        const uint32_t b =
            d.readsB ? readOperand(inst.src[1], w, lane) : 0;
        const uint32_t c =
            d.readsC ? readOperand(inst.src[2], w, lane) : 0;
        writeReg(base + lane, inst.dst, evalAlu(inst, a, b, c));
    }
}

void
Sm::execMemory(Warp &w, const DecodedInst &d, uint64_t commitMask,
               uint64_t now)
{
    const Instruction &inst = *d.inst;
    if (commitMask == 0)
        return;

    laneAddrs_.assign(config_.warpSize, 0);
    for (uint64_t m = commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        uint64_t addr = readOperand(inst.src[0], w, lane);
        addr = uint64_t(int64_t(addr) + inst.memOffset);
        if (inst.space == MemSpace::Local) {
            // CUDA-style interleaving: word i of every thread's local
            // space is laid out contiguously across all hardware thread
            // slots, so lock-step accesses at the same local offset
            // coalesce perfectly.
            const uint64_t globalSlot =
                uint64_t(id_) * config_.maxThreadsPerSm +
                threadSlot(w, lane);
            const uint64_t totalSlots =
                uint64_t(config_.numSms) * config_.maxThreadsPerSm;
            addr = (addr / 4) * totalSlots * 4 + globalSlot * 4;
        }
        laneAddrs_[lane] = addr;
    }

    if (inst.space == MemSpace::Global || inst.space == MemSpace::Local) {
        // Global and local accesses touch chip-shared state (the backing
        // stores, DRAM timing, the texture L2s). Defer the whole access
        // to the coordinator phase so it executes in SM-id order; the
        // warp already issued and cannot issue again this cycle, so the
        // lane addresses captured above stay valid.
        assert(pendingMem_.inst == nullptr &&
               "one memory instruction per SM per cycle");
        pendingMem_ = {&d, w.hwSlot, commitMask, w.stack.pc()};
        return;
    }

    execOnChipMemory(w, inst, commitMask, now);
}

/// Const / shared / spawn accesses: all state touched is SM-local (the
/// const store is read-only during simulation), so these execute
/// immediately inside the parallel phase.
void
Sm::execOnChipMemory(Warp &w, const Instruction &inst, uint64_t commitMask,
                     uint64_t now)
{
    const int width = inst.vecWidth;
    const uint32_t accessBytes = 4u * width;
    const bool isStore = inst.op == Opcode::St;
    const bool isAtomic = inst.isAtomic();

    Store *store = nullptr;
    switch (inst.space) {
      case MemSpace::Const:
      case MemSpace::Param: store = &services_.constStore(); break;
      case MemSpace::Shared: store = &shared_; break;
      case MemSpace::Spawn: store = &spawnStore_; break;
      default:
        // Corrupt space encoding: a guest fault, never a silent no-op
        // (this used to be a release-unsafe assert).
        raiseFault(FaultCode::BadMemSpace, w.hwSlot, -1,
                   uint64_t(static_cast<uint8_t>(inst.space)));
        return;
    }

    int curLane = -1;
    try {
    for (uint64_t m = commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        curLane = lane;
        const int slot = threadSlot(w, lane);
        const uint64_t addr = laneAddrs_[lane];
        if (isAtomic) {
            uint32_t old = store->read32(addr);
            uint32_t operand = readOperand(inst.src[1], w, lane);
            uint32_t next = old;
            if (inst.op == Opcode::AtomAdd) {
                next = (inst.type == DataType::F32)
                           ? floatBits(bitsToFloat(old) +
                                       bitsToFloat(operand))
                           : old + operand;
            } else if (inst.op == Opcode::AtomExch) {
                next = operand;
            } else {    // AtomCas
                uint32_t expected = operand;
                uint32_t newval = readOperand(inst.src[2], w, lane);
                next = (old == expected) ? newval : old;
            }
            store->write32(addr, next);
            writeReg(slot, inst.dst, old);
        } else if (isStore) {
            for (int e = 0; e < width; e++) {
                store->write32(addr + 4u * e,
                               readReg(slot, inst.src[1].reg + e));
            }
        } else {
            for (int e = 0; e < width; e++) {
                uint32_t value;
                // Dynamic threads read their formation word through
                // spawnMemAddr; forward the launch-time snapshot so ring
                // reuse of formation regions can never be observed.
                if (inst.space == MemSpace::Spawn && width == 1 &&
                    w.lanes[lane].dynamic &&
                    addr == w.lanes[lane].spawnMemAddr) {
                    value = w.lanes[lane].dataPtr;
                } else {
                    value = store->read32(addr + 4u * e);
                }
                writeReg(slot, inst.dst + e, value);
            }
        }
    }
    } catch (const MemoryFault &) {
        // Lanes before the faulting one already committed; the warp is
        // frozen here and the coordinator applies the policy.
        raiseFault(FaultCode::MemOutOfBounds, w.hwSlot, curLane,
                   curLane >= 0 ? laneAddrs_[curLane] : 0);
        return;
    }

    // --- Timing ---------------------------------------------------------------
    const int activeLanes = popcount(commitMask);
    const uint64_t bytes = uint64_t(activeLanes) * accessBytes;

    switch (inst.space) {
      case MemSpace::Const:
      case MemSpace::Param:
        // Constant memory is cached on chip (Sec. IV-A).
        w.readyAt = now + config_.onChipLatencyCycles;
        break;
      default: {
        bool model = inst.space == MemSpace::Shared
                         ? config_.modelSharedBankConflicts
                         : config_.modelSpawnBankConflicts;
        int passes = 1;
        if (model && !config_.idealMemory) {
            passes = bankConflictPasses(laneAddrs_, commitMask, width,
                                        config_.numOnChipBanks);
        }
        w.readyAt = now + config_.onChipLatencyCycles + passes - 1;
        if (passes > 1) {
            issueBlockedUntil_ = now + passes;
            localStats_.bankConflictExtraCycles += passes - 1;
            traceBuf_.record(trace::EventKind::BankConflict, now, id_,
                             w.hwSlot, w.stack.pc(),
                             uint64_t(passes - 1), uint32_t(passes - 1));
        }
        if (isStore)
            localStats_.onChipWriteBytes += bytes;
        else
            localStats_.onChipReadBytes += bytes;
        if (inst.space == MemSpace::Spawn) {
            if (isStore)
                localStats_.spawnMemWriteBytes += bytes;
            else
                localStats_.spawnMemReadBytes += bytes;
        }
        break;
      }
    }
}

void
Sm::serviceDeferredMem(uint64_t now)
{
    if (pendingMem_.inst == nullptr)
        return;
    touchIdleScan();
    const DecodedInst &d = *pendingMem_.inst;
    const int warpSlot = pendingMem_.warpSlot;
    const uint64_t commitMask = pendingMem_.commitMask;
    const uint32_t pc = pendingMem_.pc;
    pendingMem_.inst = nullptr;
    serviceMem(d, warpSlot, commitMask, pc, laneAddrs_, nullptr, now,
               /*replay=*/false);
}

bool
Sm::deferPendingMem(uint64_t cycle)
{
    assert(pendingMem_.inst != nullptr &&
           "deferPendingMem with nothing pending");
    const DecodedInst &d = *pendingMem_.inst;
    const Instruction &inst = *d.inst;
    Warp &w = warps_[pendingMem_.warpSlot];

    DeferredMem entry;
    entry.inst = &d;
    entry.warpSlot = pendingMem_.warpSlot;
    entry.commitMask = pendingMem_.commitMask;
    entry.pc = pendingMem_.pc;
    entry.cycle = cycle;
    entry.addrs.assign(laneAddrs_.begin(), laneAddrs_.end());
    pendingMem_.inst = nullptr;

    const int width = inst.vecWidth;
    const bool isStore = inst.op == Opcode::St;
    const bool isAtomic = inst.isAtomic();

    // Exact fault prediction: Store::read32/write32 throw iff the word
    // runs past the backing store, and elements are accessed in
    // ascending address order, so the first faulting lane (if any) is
    // computable here. Replay then faults with the SM parked at the
    // capture cycle, exactly like the lockstep merge would.
    Store *store = inst.space == MemSpace::Global
                       ? &services_.globalStore()
                       : &services_.localStore();
    const uint64_t storeSize = store->size();
    const uint32_t need = isAtomic ? 4u : 4u * uint32_t(width);
    int faultLane = -1;
    for (uint64_t m = entry.commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        if (entry.addrs[lane] + need > storeSize) {
            faultLane = lane;
            break;
        }
    }

    // Snapshot every register-sourced input the replay will need.
    // readOperand may raise BadOperandKind exactly where the lockstep
    // service would (it raises, yields 0 and the access continues), so
    // for atomics only the lanes the lockstep loop would reach are read.
    faultCycle_ = cycle;
    faultPc_ = entry.pc;
    if (isAtomic) {
        for (uint64_t m = entry.commitMask; m; m &= m - 1) {
            const int lane = std::countr_zero(m);
            if (faultLane >= 0 && lane >= faultLane) {
                // Replay throws at this lane's initial read; the
                // operands are never consumed (nor read by lockstep).
                entry.data.push_back(0);
                entry.data.push_back(0);
                continue;
            }
            entry.data.push_back(readOperand(inst.src[1], w, lane));
            entry.data.push_back(inst.op == Opcode::AtomCas
                                     ? readOperand(inst.src[2], w, lane)
                                     : 0);
        }
    } else if (isStore) {
        for (uint64_t m = entry.commitMask; m; m &= m - 1) {
            const int lane = std::countr_zero(m);
            const int slot = threadSlot(w, lane);
            for (int e = 0; e < width; e++)
                entry.data.push_back(readReg(slot, inst.src[1].reg + e));
        }
    }

    if (faultLane < 0) {
        // Apply the warp-local timing effects now, exactly as the
        // same-cycle replay would. Under epoch eligibility every load
        // and atomic completes strictly after cycle + 1, so the
        // pre-increment is always matched by a wake-up at replay.
        if (isStore) {
            w.readyAt = cycle + 1;
        } else {
            w.outstandingMem++;
            entry.timed = true;
        }
    }
    touchIdleScan();
    deferredMem_.push_back(std::move(entry));
    return faultLane >= 0;
}

void
Sm::replayDeferredFront()
{
    assert(!deferredMem_.empty() && "replay with empty deferred queue");
    DeferredMem entry = std::move(deferredMem_.front());
    deferredMem_.pop_front();
    touchIdleScan();
    const size_t faultsBefore = pendingFaults_.size();
    serviceMem(*entry.inst, entry.warpSlot, entry.commitMask, entry.pc,
               entry.addrs, entry.data.data(), entry.cycle,
               /*replay=*/true);
    if (entry.timed && pendingFaults_.size() > faultsBefore) {
        // Defensive: the pre-check said this access completes, so a
        // replay fault should be impossible — but if one fires anyway,
        // the pre-increment would never be matched by a wake-up.
        Warp &w = warps_[entry.warpSlot];
        assert(w.outstandingMem > 0);
        w.outstandingMem--;
    }
}

void
Sm::serviceMem(const DecodedInst &d, int warpSlot, uint64_t commitMask,
               uint32_t pc, const std::vector<uint64_t> &addrs,
               const uint32_t *snap, uint64_t now, bool replay)
{
    const Instruction &inst = *d.inst;
    Warp &w = warps_[warpSlot];
    faultCycle_ = now;
    faultPc_ = pc;

    const int width = inst.vecWidth;
    const uint32_t accessBytes = 4u * width;
    const bool isStore = inst.op == Opcode::St;
    const bool isAtomic = inst.isAtomic();

    // --- Functional access ---------------------------------------------------
    Store *store = inst.space == MemSpace::Global
                       ? &services_.globalStore()
                       : &services_.localStore();
    int curLane = -1;
    size_t snapIdx = 0;
    try {
    for (uint64_t m = commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        curLane = lane;
        const int slot = threadSlot(w, lane);
        const uint64_t addr = addrs[lane];
        if (isAtomic) {
            uint32_t old = store->read32(addr);
            uint32_t operand = replay ? snap[snapIdx]
                                      : readOperand(inst.src[1], w, lane);
            uint32_t next = old;
            if (inst.op == Opcode::AtomAdd) {
                next = (inst.type == DataType::F32)
                           ? floatBits(bitsToFloat(old) +
                                       bitsToFloat(operand))
                           : old + operand;
            } else if (inst.op == Opcode::AtomExch) {
                next = operand;
            } else {    // AtomCas
                uint32_t expected = operand;
                uint32_t newval =
                    replay ? snap[snapIdx + 1]
                           : readOperand(inst.src[2], w, lane);
                next = (old == expected) ? newval : old;
            }
            snapIdx += 2;
            store->write32(addr, next);
            writeReg(slot, inst.dst, old);
        } else if (isStore) {
            for (int e = 0; e < width; e++) {
                store->write32(addr + 4u * e,
                               replay ? snap[snapIdx + size_t(e)]
                                      : readReg(slot, inst.src[1].reg + e));
            }
            snapIdx += size_t(width);
        } else {
            for (int e = 0; e < width; e++)
                writeReg(slot, inst.dst + e, store->read32(addr + 4u * e));
        }
    }
    } catch (const MemoryFault &) {
        // Raised in the serial merge phase; the coordinator's fault pass
        // applies the policy. No wake-up has been scheduled, so the warp
        // carries no outstanding access (the epoch engine undoes its
        // capture-time pre-increment in replayDeferredFront).
        raiseFault(FaultCode::MemOutOfBounds, w.hwSlot, curLane,
                   curLane >= 0 ? addrs[curLane] : 0);
        return;
    }

    // --- Timing ---------------------------------------------------------------
    // In replay mode the warp-local effects (outstandingMem, readyAt)
    // were applied at capture time and are skipped here; the shared
    // state evolution (DRAM queues, texture caches, statistics) and the
    // wake-up scheduling run identically to the lockstep merge.
    coalesce(addrs, commitMask, accessBytes,
             config_.coalesceSegmentBytes, segScratch_);
    const std::vector<Segment> &segments = segScratch_;

    if (config_.idealMemory) {
        assert(!replay && "epoch engine is ineligible under idealMemory");
        uint64_t segBytes = 0;
        for (const Segment &s : segments)
            segBytes += s.touched;
        if (isStore)
            localStats_.dramWriteBytes += segBytes;
        else
            localStats_.dramReadBytes += segBytes;
        localStats_.dramTransactions += segments.size();
        w.readyAt = now + 1;
        return;
    }

    if (isStore || isAtomic) {
        // Write-through, no-allocate: stores and atomics go to
        // DRAM and invalidate any cached copies of the lines.
        uint64_t segBytes = 0;
        for (const Segment &s : segments) {
            segBytes += s.touched;
            if (texL1_)
                texL1_->invalidate(s.addr);
            if (ReadOnlyCache *l2 = services_.texL2For(s.addr))
                l2->invalidate(s.addr);
        }
        localStats_.dramWriteBytes += segBytes;
        if (isAtomic)
            localStats_.dramReadBytes += segBytes;
        localStats_.dramTransactions += segments.size();
        uint64_t done = services_.dram().accessAll(segments, true, now);
        if (isAtomic) {
            // Atomics return the old value: the warp must wait for
            // the full read-modify-write round trip.
            done = services_.dram().accessAll(segments, true, done);
            if (!replay)
                w.outstandingMem++;
            services_.scheduleMemWakeup(done, id_, w.hwSlot);
        } else if (!replay) {
            // Plain stores retire through the write queue with no
            // register dependence: the warp continues immediately
            // while the partitions absorb the bandwidth.
            w.readyAt = now + 1;
        }
        return;
    }

    // Loads probe the read-only texture-path hierarchy.
    uint64_t done = now + 1;
    bool waited = false;
    for (const Segment &s : segments) {
        if (texL1_ && texL1_->probe(s.addr)) {
            localStats_.texL1Hits++;
            done = std::max(done, now + config_.texL1HitLatencyCycles);
            continue;
        }
        if (texL1_)
            localStats_.texL1Misses++;
        ReadOnlyCache *l2 = services_.texL2For(s.addr);
        if (l2 && l2->probe(s.addr)) {
            localStats_.texL2Hits++;
            done = std::max(done, now + config_.texL2HitLatencyCycles);
            if (texL1_)
                texL1_->fill(s.addr);
            continue;
        }
        if (l2)
            localStats_.texL2Misses++;
        localStats_.dramReadBytes += s.touched;
        localStats_.dramTransactions++;
        done = std::max(done, services_.dram().access(s, false, now));
        if (texL1_)
            texL1_->fill(s.addr);
        if (l2)
            l2->fill(s.addr);
    }
    if (done > now + 1) {
        waited = true;
        if (!replay)
            w.outstandingMem++;
        services_.scheduleMemWakeup(done, id_, w.hwSlot);
    }
    assert((!replay || waited) &&
           "epoch eligibility guarantees every deferred load waits");
    if (!waited && !replay)
        w.readyAt = now + 1;
}

void
Sm::execSpawn(Warp &w, const Instruction &inst, uint64_t commitMask,
              uint64_t now)
{
    assert(spawnEnabled() && "spawn executed without micro-kernel support");
    if (commitMask == 0)
        return;

    laneData_.assign(config_.warpSize, 0);
    for (uint64_t m = commitMask; m; m &= m - 1) {
        const int lane = std::countr_zero(m);
        laneData_[lane] = readReg(threadSlot(w, lane), inst.src[0].reg);
    }

    SpawnIssue issue = spawnUnit_->spawn(inst.target, commitMask, laneData_,
                                         spawnStore_, now);
    if (issue.fault != FaultCode::None) {
        // The unit mutated nothing (all-or-nothing), and the lanes'
        // spawned flags are still clear, so their state slots stay owned
        // by these threads until the policy decides their fate.
        raiseFault(issue.fault, w.hwSlot, -1, inst.target);
        return;
    }
    for (uint64_t m = commitMask; m; m &= m - 1)
        w.lanes[std::countr_zero(m)].spawned = true;
    const int n = popcount(commitMask);
    localStats_.dynamicThreadsSpawned += n;
    localStats_.spawnMemWriteBytes += 4u * n;
    localStats_.onChipWriteBytes += 4u * n;

    int passes = 1;
    if (config_.modelSpawnBankConflicts && !config_.idealMemory) {
        passes = bankConflictPasses(issue.storeAddrs, commitMask, 1,
                                    config_.numOnChipBanks);
    }
    w.readyAt = now + config_.onChipLatencyCycles + passes - 1;
    if (passes > 1) {
        issueBlockedUntil_ = now + passes;
        localStats_.bankConflictExtraCycles += passes - 1;
        traceBuf_.record(trace::EventKind::BankConflict, now, id_,
                         w.hwSlot, w.stack.pc(), uint64_t(passes - 1),
                         uint32_t(passes - 1));
    }
}

void
Sm::retireLane(Warp &w, int lane)
{
    LaneInfo &li = w.lanes[lane];
    if (!li.dynamic)
        localStats_.threadsCompleted++;
    if (spawnEnabled()) {
        // A thread exiting from the last micro-kernel of its chain (no
        // child spawned) releases the ray's state slot (Sec. IV-A1).
        if (!li.spawned && li.stateSlot != 0xffffffffu) {
            freeStateSlots_.push_back(li.stateSlot);
            li.stateSlot = 0xffffffffu;
            localStats_.itemsCompleted++;
        }
    } else {
        localStats_.itemsCompleted++;
    }
}

void
Sm::execExit(Warp &w, uint64_t commitMask)
{
    for (uint64_t m = commitMask; m; m &= m - 1)
        retireLane(w, std::countr_zero(m));
    w.stack.exitLanes(commitMask);
}

void
Sm::execBarrier(Warp &w, uint64_t now)
{
    w.stack.advance();
    if (config_.scheduling != SchedulingMode::Block || w.dynamic)
        return;     // barriers are a block-scheduling concept
    ResidentBlock *blk = findBlock(w.blockId);
    assert(blk);
    w.waitingBarrier = true;
    blk->warpsAtBarrier++;
    if (blk->warpsAtBarrier >= blk->warpsLive) {
        for (Warp &other : warps_) {
            if (other.valid && other.blockId == w.blockId &&
                other.waitingBarrier) {
                other.waitingBarrier = false;
                other.readyAt = now + 1;
            }
        }
        blk->warpsAtBarrier = 0;
    }
}

void
Sm::retireWarp(Warp &w)
{
    assert(w.valid && w.stack.empty());
    w.valid = false;
    if (!w.dynamic) {
        ResidentBlock *blk = findBlock(w.blockId);
        if (blk) {
            blk->warpsLive--;
            if (blk->warpsLive == 0) {
                for (size_t i = 0; i < blocks_.size(); i++) {
                    if (&blocks_[i] == blk) {
                        blocks_.erase(blocks_.begin() + i);
                        break;
                    }
                }
            }
        }
    }
}

void
Sm::memWakeup(int warpSlot, uint64_t now)
{
    Warp &w = warps_.at(warpSlot);
    assert(w.outstandingMem > 0);
    touchIdleScan();
    w.outstandingMem--;
    if (w.outstandingMem == 0 && w.readyAt < now)
        w.readyAt = now;
}

uint64_t
Sm::nextEventCycle(uint64_t now) const
{
    uint64_t next = UINT64_MAX;
    // The bank-conflict gate is itself an event: the cycle it lapses,
    // the stall classification flips away from BankConflict, so a skip
    // must never jump across it.
    if (issueBlockedUntil_ > now)
        next = issueBlockedUntil_;
    for (const Warp &w : warps_) {
        // Warps parked on an off-chip access, a barrier or a fault
        // freeze wake via external events (the chip wakeup queue, a
        // barrier partner's issue, the fault policy) — never by the
        // clock alone — so they contribute nothing here.
        if (!w.valid || w.faulted || w.waitingBarrier ||
            w.outstandingMem > 0 || w.stack.empty()) {
            continue;
        }
        uint64_t ready = std::max(w.readyAt, issueBlockedUntil_);
        if (ready < next)
            next = ready;
        if (next <= now)
            return now;
    }
    return std::max(next, now);
}

void
Sm::skipCycles(uint64_t fromCycle, uint64_t count)
{
    // Mirror step()'s per-cycle bookkeeping for a span where every
    // input to it is frozen: same stall reason each cycle, and the
    // no-resident-warp-contexts case records no idle slot (step()
    // returns before recordIdle there).
    if (warps_.empty()) {
        localStats_.stall.record(trace::StallReason::NoWarps, count);
        return;
    }
    trace::StallReason reason = issueBlockedUntil_ > fromCycle
                                    ? trace::StallReason::BankConflict
                                    : classifyIdle();
    localStats_.stall.record(reason, count);
    localStats_.recordIdleSpan(fromCycle, count);
}

Sm::BlockSpanPlan
Sm::planBlockSpan(uint64_t now) const
{
    // The probe runs between cycles: the same-cycle memory hand-off and
    // this cycle's faults are always drained by then (the epoch engine
    // parks before probing otherwise).
    assert(pendingMem_.inst == nullptr && pendingFaults_.empty());
    BlockSpanPlan plan;

    // Mirror fillSm's priority chain: any placement the chip could make
    // this cycle (FIFO pop, grid launch, drain flush) voids the span.
    // The grid-launch arm over-approximates — a launch still gated on
    // spawn-state slots reports FillOpen too — which only costs a
    // fallback, never correctness.
    if (freeWarpSlots() > 0) {
        const bool fifoPop = spawnEnabled() && !spawnUnit_->fifoEmpty();
        const bool drainFlush = spawnEnabled() && liveWarps() == 0 &&
                                spawnUnit_->hasPartialWarps();
        if (fifoPop || !services_.gridExhausted() || drainFlush) {
            plan.fallback = BlockExecFallback::FillOpen;
            return plan;
        }
    }

    if (warps_.empty()) {
        plan.kind = BlockSpanPlan::Kind::Idle;
        return plan;
    }
    if (issueBlockedUntil_ > now) {
        // Bank-conflict gate: idle with a constant stall reason until it
        // lapses (the classification flips at expiry — never skip past).
        plan.kind = BlockSpanPlan::Kind::Idle;
        plan.limit = issueBlockedUntil_ - now;
        return plan;
    }

    // Round-robin scan, mirroring step(): the first issuable warp in
    // cursor order is the one the per-cycle engine would pick.
    const int n = residentWarps();
    int carrySlot = -1;
    for (int i = 0; i < n && carrySlot < 0; i++) {
        const int slot = (rrCursor_ + i) % n;
        if (warps_[slot].issuable(now))
            carrySlot = slot;
    }
    if (carrySlot < 0) {
        // Nothing issuable: provably idle until the next local event
        // (nextEventCycle > now here — an at-now ready time would have
        // made the warp issuable, and the gate already lapsed).
        plan.kind = BlockSpanPlan::Kind::Idle;
        const uint64_t next = nextEventCycle(now);
        plan.limit = next == UINT64_MAX ? UINT64_MAX : next - now;
        return plan;
    }

    const Warp &w = warps_[carrySlot];
    const uint32_t pc = w.stack.pc();
    if (pc >= decoded_.size()) {
        // Poisoned pc: the per-cycle path raises PcOutOfRange.
        plan.fallback = BlockExecFallback::ShortRun;
        return plan;
    }
    uint64_t run = blockTable_->fusibleLen(pc);
    if (run < 2) {
        plan.fallback = BlockExecFallback::ShortRun;
        return plan;
    }
    // Clamp strictly below the reconvergence pc: the pop at pc == rpc
    // widens the active mask and must go through the per-cycle path.
    // When rpc <= pc the pc only moves away from it — no clamp needed.
    const uint32_t rpc = w.stack.entries().back().rpc;
    if (rpc != SimtStack::kNoReconverge && rpc > pc) {
        run = std::min(run, uint64_t(rpc - 1 - pc));
        if (run < 2) {
            plan.fallback = BlockExecFallback::Reconverge;
            return plan;
        }
    }

    // Every other non-parked warp must sleep past the whole span, or
    // the round-robin arbitration becomes cycle-accurate work again.
    // Parked warps (fault freeze, barrier, off-chip wait) wake only via
    // external events, which the chip-level planner bounds separately.
    uint64_t limit = run;
    for (int slot = 0; slot < n; slot++) {
        if (slot == carrySlot)
            continue;
        const Warp &o = warps_[slot];
        if (!o.valid || o.faulted || o.waitingBarrier ||
            o.outstandingMem > 0 || o.stack.empty()) {
            continue;
        }
        if (o.readyAt <= now + 1) {
            plan.fallback = BlockExecFallback::MultiIssue;
            return plan;
        }
        limit = std::min(limit, o.readyAt - now);
    }
    if (limit < 2) {
        plan.fallback = BlockExecFallback::MultiIssue;
        return plan;
    }

    plan.kind = BlockSpanPlan::Kind::Carry;
    plan.warpSlot = carrySlot;
    plan.limit = limit;
    return plan;
}

void
Sm::runCarrySpan(const BlockSpanPlan &plan, uint64_t now, uint64_t span)
{
    assert(plan.kind == BlockSpanPlan::Kind::Carry);
    assert(span >= 1 && span <= plan.limit);
    assert(blockTable_ != nullptr);
    Warp &w = warps_[plan.warpSlot];
    assert(w.issuable(now));

    touchIdleScan();
    const int base = w.hwSlot * config_.warpSize;
    const uint64_t mask = w.stack.activeMask();
    const int active = popcount(mask);
    uint32_t pc = w.stack.pc();

    for (uint64_t k = 0; k < span; k++, pc++) {
        const uint64_t c = now + k;
        const DecodedInst &d = *blockTable_->op(pc).d;

        // Per-cycle bookkeeping, exactly as step() + issue() would do
        // it. The active mask is span-constant (no stack pops inside a
        // fused run), but guard predicates are not — a SetP may write a
        // later op's guard — so the commit mask is evaluated per op.
        recordStall(trace::StallReason::Issued);
        localStats_.recordIssue(c, active);
        traceBuf_.record(trace::EventKind::Issue, c, id_, w.hwSlot, pc,
                         uint64_t(active), 1);

        uint64_t commitMask = mask;
        if (d.guardPred >= 0) {
            if (simd::enabled()) {
                const uint64_t pm = simd::predLaneMask(
                    preds_.data(), base, d.guardPred, config_.warpSize);
                commitMask = mask & (d.guardNegated ? ~pm : pm);
            } else {
                commitMask = 0;
                for (uint64_t m = mask; m; m &= m - 1) {
                    const int lane = std::countr_zero(m);
                    bool p = readPred(base + lane, d.guardPred);
                    if (p != d.guardNegated)
                        commitMask |= uint64_t{1} << lane;
                }
            }
        }
        localStats_.committedLaneInstructions += popcount(commitMask);

        switch (d.cls) {
          case ExecClass::VoteAll: {
            // Same warp-wide AND as issue(): over the *active* lanes.
            const int srcPred = d.inst->src[0].reg;
            bool all = true;
            if (simd::enabled()) {
                const uint64_t pm = simd::predLaneMask(
                    preds_.data(), base, srcPred, config_.warpSize);
                all = (mask & pm) == mask;
            } else {
                for (uint64_t m = mask; m; m &= m - 1) {
                    if (!readPred(base + std::countr_zero(m), srcPred)) {
                        all = false;
                        break;
                    }
                }
            }
            for (uint64_t m = mask; m; m &= m - 1)
                writePred(base + std::countr_zero(m), d.inst->dst, all);
            break;
          }
          case ExecClass::Nop:
            break;
          case ExecClass::SetP:
          case ExecClass::SelP:
            execAlu(w, d, commitMask);
            break;
          default:
            // The compile-time whitelist replaces warpAlu's per-issue
            // shape walk; a rejected shape goes straight to the scalar
            // lane loop.
            if (!(simd::enabled() && blockTable_->op(pc).simdOk &&
                  simd::warpAlu(d, regs_.data(), base, commitMask,
                                config_.warpSize))) {
                scalarAlu(w, d, commitMask);
            }
            break;
        }
    }

    // Span epilogue: the per-op effects the loop did not need. Every
    // fused op has issueLatency 1, so readyAt lands one past the last
    // issue; the stack pops no entries mid-span (plan clamped below the
    // rpc), so one bulk advance is exact; the cursor ends one past the
    // carrying slot, as the last per-cycle issue would have left it.
    w.readyAt = now + span;
    w.stack.advanceBy(static_cast<uint32_t>(span));
    rrCursor_ = (plan.warpSlot + 1) % residentWarps();
    issuedLastStep_ = true;

    blockExecCounters_.fusedRuns++;
    blockExecCounters_.fusedOps += span;
}

} // namespace uksim
