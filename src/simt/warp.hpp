/**
 * @file
 * Hardware warp state: one SIMT stack plus per-lane thread metadata.
 */

#ifndef UKSIM_SIMT_WARP_HPP
#define UKSIM_SIMT_WARP_HPP

#include <cstdint>
#include <vector>

#include "simt/simt_stack.hpp"

namespace uksim {

/** Per-lane thread metadata (thread identity, not register state). */
struct LaneInfo {
    uint32_t tid = 0;           ///< launch-grid thread id (initial threads)
    uint32_t ctaid = 0;         ///< block id (initial threads)
    uint32_t spawnMemAddr = 0;  ///< the spawnMemAddr special register
    uint32_t dataPtr = 0;       ///< snapshot of the formation-word pointer
    uint32_t stateSlot = 0xffffffffu; ///< spawn state slot this ray occupies
    bool dynamic = false;       ///< created by a spawn instruction
    bool spawned = false;       ///< executed spawn since (re)birth
};

/** One hardware warp slot of an SM. */
struct Warp {
    bool valid = false;
    int hwSlot = 0;             ///< slot index within the SM
    uint32_t blockId = 0;       ///< resident block (block scheduling)
    bool dynamic = false;       ///< launched from the new-warp FIFO
    SimtStack stack;
    std::vector<LaneInfo> lanes;
    uint64_t readyAt = 0;       ///< earliest cycle the warp may issue
    int outstandingMem = 0;     ///< in-flight off-chip accesses
    bool waitingBarrier = false;
    /// Raised a guest fault this cycle; frozen until the coordinator
    /// applies the fault policy in the serial merge phase.
    bool faulted = false;

    /** True when the warp can issue at @p now. */
    bool issuable(uint64_t now) const
    {
        return valid && !faulted && !waitingBarrier &&
               outstandingMem == 0 && readyAt <= now && !stack.empty();
    }
};

} // namespace uksim

#endif // UKSIM_SIMT_WARP_HPP
