/**
 * @file
 * Post-dominator (PDOM) reconvergence stack.
 *
 * Each warp owns one stack of (pc, reconvergence pc, active mask)
 * entries. Divergent branches push one entry per control path, with the
 * branch's immediate post-dominator as the reconvergence pc; when a
 * path's pc reaches its reconvergence pc the entry pops and execution
 * resumes with the wider mask below (Fung et al., MICRO 2007 — the
 * baseline branching hardware in the paper's Sec. II, Fig. 2).
 */

#ifndef UKSIM_SIMT_SIMT_STACK_HPP
#define UKSIM_SIMT_SIMT_STACK_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uksim {

/** One reconvergence stack entry. */
struct StackEntry {
    uint32_t pc = 0;
    uint32_t rpc = 0;       ///< reconvergence pc (kNoReconverge at bottom)
    uint64_t mask = 0;      ///< lanes active on this path
};

/** PDOM reconvergence stack for one warp. */
class SimtStack
{
  public:
    /** Sentinel meaning "this path only ends at thread exit". */
    static constexpr uint32_t kNoReconverge = 0xffffffffu;

    /** (Re)initialize for a fresh warp starting at @p startPc. */
    void reset(uint32_t startPc, uint64_t mask);

    bool empty() const { return entries_.empty(); }
    size_t depth() const { return entries_.size(); }

    /** Next pc to execute. */
    uint32_t pc() const { return entries_.back().pc; }
    /** Lanes executing at pc(). */
    uint64_t activeMask() const { return entries_.back().mask; }

    /**
     * Step past a non-control-flow instruction: pc advances and any
     * reconvergence points reached are popped.
     */
    void advance();

    /**
     * Bulk advance: step past @p n non-control-flow instructions in one
     * call. Only legal when the caller has proven no intermediate pc
     * lands on the top entry's reconvergence point (the block-exec
     * engine clamps fused runs below the rpc for exactly this reason) —
     * then the result is identical to @p n advance() calls.
     */
    void advanceBy(uint32_t n);

    /**
     * Resolve a (possibly divergent) branch executed at pc().
     *
     * @param takenMask subset of activeMask() whose predicate held.
     * @param targetPc branch target.
     * @param reconvergePc immediate post-dominator of the branch
     *        (kNoReconverge when paths only rejoin at exit).
     */
    void branch(uint64_t takenMask, uint32_t targetPc, uint32_t reconvergePc);

    /**
     * Retire lanes that executed `exit`. Removes them from every entry;
     * surviving guard-false lanes at the top entry continue after the
     * exit instruction.
     *
     * @param exitingLanes lanes retiring (subset of activeMask()).
     */
    void exitLanes(uint64_t exitingLanes);

    const std::vector<StackEntry> &entries() const { return entries_; }

  private:
    /** Pop entries that are empty or have reached their rpc. */
    void normalize();

    std::vector<StackEntry> entries_;
};

} // namespace uksim

#endif // UKSIM_SIMT_SIMT_STACK_HPP
