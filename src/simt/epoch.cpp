/**
 * @file
 * Epoch-based decoupled cycle engine (DESIGN.md "Epoch engine").
 *
 * Instead of synchronizing every SM every cycle (stepCycle's serial
 * fill -> parallel step -> serial merge), each SM advances on a local
 * clock up to a conservative horizon: the earliest cycle at which any
 * cross-SM interaction is possible. The only cross-SM channels in this
 * machine are
 *
 *   - deferred global/local memory (DRAM timing, texture L2s, backing
 *     stores) — bounded below by minWakeupDelta(): an access issued at
 *     cycle c cannot wake its warp before c + delta;
 *   - the launch-grid cursor and chip-level faults — handled by parking
 *     the SM and running a serial coordinator round at the exact cycle;
 *   - the runUntil pause boundary and config.maxCycles — folded into
 *     the horizon so pauses land exactly.
 *
 * Deferred accesses are captured with register snapshots at issue time
 * and replayed in global (cycle, SM-id) order — precisely the order the
 * lockstep engine performs them — so the shared-state evolution (DRAM
 * busy times, cache contents, memory images, trace records) is bit-
 * identical on fault-free runs, at any host thread count. Documented
 * divergences from lockstep (all deterministic, all identical across
 * thread counts): after a Throw/HaltGrid fault, SMs that ran ahead of
 * the fault cycle keep their run-ahead statistics; and engine-side
 * FastForwardStats describe different (equivalent) jump patterns.
 */

#include "simt/gpu.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace uksim {

namespace {

uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // anonymous namespace

uint64_t
Gpu::minWakeupDelta() const
{
    // Uncontended DRAM round trip: done >= now + interconnect +
    // ceil(bytes/bandwidth) + dramLatency, with at least one transfer
    // cycle. Texture-cache hits complete faster when the caches exist.
    uint64_t d = uint64_t(config_.interconnectLatencyCycles) +
                 uint64_t(config_.dramLatencyCycles) + 1;
    if (config_.texL1BytesPerSm > 0)
        d = std::min(d, uint64_t(config_.texL1HitLatencyCycles));
    if (config_.texL2BytesPerPartition > 0)
        d = std::min(d, uint64_t(config_.texL2HitLatencyCycles));
    return d;
}

bool
Gpu::epochEligible() const
{
    // Lockstep fallbacks: the watchdog counts chip-global per-cycle
    // progress (exact only in lockstep), ideal memory completes every
    // access next cycle (no lookahead window), and a wake-up delta
    // under two cycles would let a deferred access wake inside its own
    // issue cycle's epoch.
    return epochs_ && config_.watchdogCycles == 0 &&
           !config_.idealMemory && minWakeupDelta() >= 2;
}

void
Gpu::epochAdvanceLane(int k, uint64_t horizon)
{
    EpochLane &lane = lanes_[k];
    if (lane.park != LanePark::None)
        return;
    Sm &sm = *sms_[k];
    WakeQueue &wake = wakeups_[k];

    for (;;) {
        const uint64_t c = lane.localCycle;
        if (c >= horizon) {
            lane.park = LanePark::Horizon;
            return;
        }

        // (a) Deliver this SM's own due wake-ups. Replays only schedule
        // wake-ups at least minWakeupDelta past their issue cycle, so
        // everything deliverable inside this epoch is already queued.
        bool delivered = false;
        while (!wake.empty() && wake.top().cycle <= c) {
            const int slot = wake.top().warpSlot;
            wake.pop();
            sm.memWakeup(slot, c);
            delivered = true;
        }

        // (b) Warp placement, mirroring fillSm's priority order with
        // frozen shared inputs. FIFO pops and happy-path partial
        // flushes are SM-local and self-service; anything that needs
        // the chip-shared grid cursor or raises a chip-level fault
        // parks for a coordinator round at this exact cycle.
        bool filled = false;
        if (sm.freeWarpSlots() > 0) {
            if (sm.spawnEnabled() && !sm.spawnUnit()->fifoEmpty()) {
                sm.launchDynamicWarp(sm.spawnUnit()->popWarp());
                filled = true;
            } else if (!gridExhausted()) {
                // Monotone-safe frozen read: the cursor only moves in
                // coordinator rounds, and exhaustion never un-happens.
                lane.park = LanePark::Fill;
                return;
            } else if (sm.spawnEnabled() && sm.liveWarps() == 0 &&
                       sm.spawnUnit()->hasPartialWarps()) {
                if (sm.spawnUnit()->freeRegionCount() == 0) {
                    // Drain-flush found the formation ring dry: the
                    // chip-level exhaustion fault is coordinator work.
                    lane.park = LanePark::Fill;
                    return;
                }
                sm.launchDynamicWarp(
                    sm.spawnUnit()->flushLowestPcPartial(c));
                filled = true;
            }
        }

        // (c) Local fast-forward. With no wake-up and no fill this
        // cycle, the fill inputs are frozen (slots and the FIFO only
        // change by stepping; grid exhaustion is monotone), so if no
        // warp is issuable either, every cycle up to the next local
        // event is provably idle and skipCycles() accounts the span
        // exactly like naive steps. The engine always skips — SimStats
        // are identical either way by span additivity — but the spans
        // count as fast-forward jumps only when fast-forward is on.
        if (!delivered && !filled) {
            uint64_t next = sm.nextEventCycle(c);
            if (!wake.empty())
                next = std::min(next, wake.top().cycle);
            if (next == UINT64_MAX) {
                // Nothing scheduled ever: inert until a future epoch's
                // wake-up or the end of the run. Park *before* stepping
                // this cycle so the commit top-up attributes exactly
                // the cycles the lockstep engine would have stepped.
                lane.park = LanePark::Idle;
                return;
            }
            if (next > c) {
                const uint64_t target = std::min(next, horizon);
                const uint64_t span = target - c;
                sm.skipCycles(c, span);
                lane.ffSkipped += span;
                lane.ffJumps++;
                lane.ffLargest = std::max(lane.ffLargest, span);
                lane.localCycle = target;
                continue;
            }

            // (c2) Superblock carry: something is issuable right now.
            // When exactly one warp runs a fused straight-line span and
            // every other warp sleeps past it, execute the whole run in
            // one call — same frozen-fill-inputs argument as the idle
            // skip above, and the SM's own wake-ups bound the span so
            // parked warps stay parked throughout. SM-local through
            // and through, so the parallel phase may do it.
            if (blockExecActive_) {
                const Sm::BlockSpanPlan plan = sm.planBlockSpan(c);
                if (plan.kind == Sm::BlockSpanPlan::Kind::Carry) {
                    uint64_t lim = std::min(plan.limit, horizon - c);
                    if (!wake.empty())
                        lim = std::min(lim, wake.top().cycle - c);
                    if (lim >= 2) {
                        sm.runCarrySpan(plan, c, lim);
                        lane.localCycle = c + lim;
                        continue;
                    }
                    sm.recordBlockExecFallback(
                        BlockExecFallback::ShortSpan);
                } else if (plan.kind == Sm::BlockSpanPlan::Kind::Busy) {
                    sm.recordBlockExecFallback(plan.fallback);
                }
            }
        }

        // (d) Step this cycle, then capture any deferred global/local
        // access while the issuing registers are still live.
        sm.step(c);
        if (sm.hasPendingMem() && sm.deferPendingMem(c)) {
            // The replay will raise a memory fault: freeze the SM at
            // this cycle so the policy applies to lockstep-identical
            // machine state at the coordinator round.
            lane.park = LanePark::Fault;
            return;
        }
        if (sm.hasPendingFaults()) {
            lane.park = LanePark::Fault;
            return;
        }
        lane.localCycle = c + 1;
    }
}

void
Gpu::replayOne(Sm &sm)
{
    if (!trace_.enabled()) {
        sm.replayDeferredFront();
        return;
    }
    // Capture the DRAM model's direct trace records so mergeEpochTrace
    // can splice them at the lockstep insertion point (right after this
    // SM's buffered events for this cycle).
    const uint64_t c = sm.frontDeferredCycle();
    captureScratch_.clear();
    trace_.setCapture(&captureScratch_);
    sm.replayDeferredFront();
    trace_.setCapture(nullptr);
    for (const trace::Event &e : captureScratch_)
        dramCapture_.push_back({c, sm.id(), e});
}

void
Gpu::replayDeferredBelow(uint64_t limit, bool inclusive)
{
    // k-way min scan over the per-SM queues (each is sorted: local time
    // is monotone), yielding global (cycle, SM-id) ascending order —
    // exactly the order the lockstep merge phase drove the shared DRAM
    // and cache state.
    for (;;) {
        uint64_t best = UINT64_MAX;
        int bestK = -1;
        for (size_t k = 0; k < sms_.size(); k++) {
            if (!sms_[k]->hasDeferredMem())
                continue;
            const uint64_t c = sms_[k]->frontDeferredCycle();
            if (c < best) {
                best = c;
                bestK = static_cast<int>(k);
            }
        }
        if (bestK < 0)
            return;
        if (inclusive ? best > limit : best >= limit)
            return;
        replayOne(*sms_[bestK]);
    }
}

void
Gpu::runEpochRound(uint64_t atCycle)
{
    epochStats_.rounds++;
    // Chip clock tracks the round cycle: fillSm and fault application
    // stamp events and kills with cycle_, and a Throw must surface with
    // the clock parked on the fault cycle like the lockstep engine.
    cycle_ = atCycle;

    // Shared-state replays strictly before the round cycle, so the
    // fills and inline steps below observe the same DRAM/cache/store
    // state as the lockstep engine entering this cycle.
    replayDeferredBelow(atCycle, /*inclusive=*/false);

    try {
        // Grid fills for fill-parked lanes, ascending SM id. Only
        // grid-wanting SMs park for fills and rounds run in ascending
        // cycle order, so the grid cursor is consumed in exactly the
        // lockstep (cycle, SM-id) order. May raise the chip-level
        // flush-exhaustion fault (handleFlushExhaustion).
        for (size_t k = 0; k < sms_.size(); k++) {
            const EpochLane &lane = lanes_[k];
            if (lane.park == LanePark::Fill && lane.localCycle == atCycle)
                fillSm(*sms_[k]);
        }
        // Fill-parked lanes have not stepped this cycle yet: step them
        // inline (ascending SM id) and capture any deferred access. A
        // predicted replay fault needs no park here — its entry replays
        // below and the fault pass right after applies it.
        for (size_t k = 0; k < sms_.size(); k++) {
            const EpochLane &lane = lanes_[k];
            if (lane.park != LanePark::Fill || lane.localCycle != atCycle)
                continue;
            Sm &sm = *sms_[k];
            sm.step(atCycle);
            if (sm.hasPendingMem())
                sm.deferPendingMem(atCycle);
        }
        // Every (atCycle, *) deferred entry now exists (run-ahead lanes
        // contributed theirs at capture time), so this inclusive sweep
        // replays them in canonical SM-id order.
        replayDeferredBelow(atCycle, /*inclusive=*/true);
        // Lockstep phase order within a cycle: services, then faults.
        processFaultsAt(atCycle);
    } catch (...) {
        // Throw policy (or a wrapped chip fault): surface the guest
        // fault with the trace merged, mirroring the lockstep engine's
        // mid-cycle unwind.
        mergeEpochTrace();
        throw;
    }

    // Resume every lane parked at this cycle.
    for (size_t k = 0; k < sms_.size(); k++) {
        EpochLane &lane = lanes_[k];
        if ((lane.park == LanePark::Fill ||
             lane.park == LanePark::Fault) &&
            lane.localCycle == atCycle) {
            lane.park = LanePark::None;
            lane.localCycle = atCycle + 1;
        }
    }
}

void
Gpu::mergeEpochTrace()
{
    if (!trace_.enabled()) {
        dramCapture_.clear();
        return;
    }
    const size_t n = sms_.size();
    std::vector<size_t> idx(n, 0);
    size_t di = 0;
    for (;;) {
        // Next content cycle with anything left to splice.
        uint64_t c = UINT64_MAX;
        for (size_t k = 0; k < n; k++) {
            const auto &pend = sms_[k]->traceBuffer().pending();
            if (idx[k] < pend.size())
                c = std::min(c, pend[idx[k]].cycle);
        }
        if (di < dramCapture_.size())
            c = std::min(c, dramCapture_[di].cycle);
        if (c == UINT64_MAX)
            break;
        // Lockstep insertion order within a cycle: ascending SM id,
        // each SM's buffered events then its DRAM records — that is the
        // order stepCycle's merge loop (drainTrace; serviceDeferredMem)
        // produced, so ring wrap drops fall on the same records.
        for (size_t k = 0; k < n; k++) {
            const auto &pend = sms_[k]->traceBuffer().pending();
            while (idx[k] < pend.size() && pend[idx[k]].cycle == c)
                trace_.append(pend[idx[k]++]);
            while (di < dramCapture_.size() &&
                   dramCapture_[di].cycle == c &&
                   dramCapture_[di].smId == static_cast<int>(k)) {
                trace_.append(dramCapture_[di++].event);
            }
        }
    }
    for (size_t k = 0; k < n; k++)
        sms_[k]->traceBuffer().clearPending();
    dramCapture_.clear();
}

void
Gpu::runOneEpoch(uint64_t stop)
{
    using clock = std::chrono::steady_clock;
    const uint64_t epochStart = cycle_;
    const uint64_t delta = minWakeupDelta();
    uint64_t horizon = epochStart + delta;
    bool cappedByStop = false;
    if (horizon >= stop) {
        horizon = stop;
        cappedByStop = true;
    }
    epochHorizon_ = horizon;

    for (auto &lane : lanes_) {
        lane = EpochLane{};
        lane.localCycle = epochStart;
    }

    uint64_t advanceNs = 0;
    uint64_t mergeNs = 0;
    bool halted = false;
    uint64_t haltCycle = 0;

    for (;;) {
        // --- Parallel phase: advance every lane until it parks ----------
        auto t0 = clock::now();
        if (pool_) {
            pool_->parallelFor(epochJob_);
        } else {
            for (size_t k = 0; k < sms_.size(); k++)
                epochAdvanceLane(static_cast<int>(k), horizon);
        }
        advanceNs += nsSince(t0);

        // --- Coordinator round at the minimum parked cycle --------------
        t0 = clock::now();
        uint64_t roundAt = UINT64_MAX;
        for (const EpochLane &lane : lanes_) {
            if (lane.park == LanePark::Fill ||
                lane.park == LanePark::Fault) {
                roundAt = std::min(roundAt, lane.localCycle);
            }
        }
        if (roundAt == UINT64_MAX) {
            mergeNs += nsSince(t0);
            break;
        }
        runEpochRound(roundAt);
        mergeNs += nsSince(t0);
        if (haltRequested_) {
            halted = true;
            haltCycle = roundAt;
            break;
        }
    }

    auto t0 = clock::now();
    if (halted) {
        // HaltGrid stopped the run mid-epoch. Cycles past the halt were
        // never simulated by the lockstep oracle: drop the run-ahead
        // lanes' queued accesses and stop the chip clock right after
        // the halt cycle, like stepCycle's trailing increment.
        for (auto &sm : sms_)
            sm->clearDeferredMem();
        mergeEpochTrace();
        cycle_ = haltCycle + 1;
        if (fastForward_) {
            for (const EpochLane &lane : lanes_) {
                ffStats_.cyclesSkipped += lane.ffSkipped;
                ffStats_.jumps += lane.ffJumps;
                ffStats_.largestJump =
                    std::max(ffStats_.largestJump, lane.ffLargest);
            }
        }
        const uint64_t covered = cycle_ - epochStart;
        epochStats_.epochs++;
        epochStats_.capHalt++;
        epochStats_.cyclesTotal += covered;
        epochStats_.maxEpochCycles =
            std::max(epochStats_.maxEpochCycles, covered);
        epochStats_.advanceWallNs += advanceNs;
        epochStats_.mergeWallNs += mergeNs + nsSince(t0);
        return;
    }

    // All lanes parked at the horizon or idle: replay every remaining
    // deferred access in global (cycle, SM-id) order. The wake-ups this
    // schedules all land at or past the horizon, i.e. in later epochs.
    replayDeferredBelow(UINT64_MAX, /*inclusive=*/true);
    // The capture-time pre-check makes replay faults here impossible;
    // if one fires anyway, apply it at the end of the epoch rather than
    // dropping it (documented corner — replayDeferredFront already
    // rebalanced the warp's outstanding count).
    for (const auto &sm : sms_) {
        if (sm->hasPendingFaults()) {
            processFaultsAt(horizon > 0 ? horizon - 1 : 0);
            break;
        }
    }

    // Commit cycle. A frozen machine — every lane inert, no wake-up
    // queued anywhere — either finished (the chip clock stops at the
    // last retire + 1, exactly where the lockstep loop exits) or can
    // never act again, and the clock jumps straight to the stop
    // boundary in one span (the lockstep fast-forward does the same).
    bool allIdle = true;
    for (const EpochLane &lane : lanes_) {
        if (lane.park != LanePark::Idle) {
            allIdle = false;
            break;
        }
    }
    bool wakesEmpty = true;
    for (const WakeQueue &q : wakeups_) {
        if (!q.empty()) {
            wakesEmpty = false;
            break;
        }
    }

    uint64_t commit;
    if (allIdle && wakesEmpty && !haltRequested_) {
        if (finished()) {
            commit = epochStart;
            for (const EpochLane &lane : lanes_)
                commit = std::max(commit, lane.localCycle);
            epochStats_.capFinish++;
        } else {
            commit = stop;
            if (stop == config_.maxCycles)
                epochStats_.capMaxCycles++;
            else
                epochStats_.capRunStop++;
        }
    } else {
        commit = horizon;
        if (!cappedByStop)
            epochStats_.capMemLatency++;
        else if (stop == config_.maxCycles)
            epochStats_.capMaxCycles++;
        else
            epochStats_.capRunStop++;
    }

    // Top up lanes that parked early: their state is frozen across the
    // remaining span (that is what the park proved), so the bulk idle
    // accounting is exact.
    for (size_t k = 0; k < sms_.size(); k++) {
        EpochLane &lane = lanes_[k];
        if (lane.localCycle < commit) {
            const uint64_t span = commit - lane.localCycle;
            sms_[k]->skipCycles(lane.localCycle, span);
            lane.ffSkipped += span;
            lane.ffJumps++;
            lane.ffLargest = std::max(lane.ffLargest, span);
            lane.localCycle = commit;
        }
    }

    mergeEpochTrace();
    if (fastForward_) {
        for (const EpochLane &lane : lanes_) {
            ffStats_.cyclesSkipped += lane.ffSkipped;
            ffStats_.jumps += lane.ffJumps;
            ffStats_.largestJump =
                std::max(ffStats_.largestJump, lane.ffLargest);
        }
    }
    cycle_ = commit;

    const uint64_t covered = commit - epochStart;
    epochStats_.epochs++;
    epochStats_.cyclesTotal += covered;
    epochStats_.maxEpochCycles =
        std::max(epochStats_.maxEpochCycles, covered);
    epochStats_.advanceWallNs += advanceNs;
    epochStats_.mergeWallNs += mergeNs + nsSince(t0);
}

} // namespace uksim
