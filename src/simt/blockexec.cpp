/**
 * @file
 * Superblock block-table compiler.
 */

#include "simt/blockexec.hpp"

#include <algorithm>
#include <chrono>

#include "simt/analysis/fusion.hpp"
#include "simt/cfg.hpp"
#include "simt/simd.hpp"

namespace uksim {

const char *
blockExecFallbackName(BlockExecFallback f)
{
    switch (f) {
      case BlockExecFallback::ShortRun:   return "short_run";
      case BlockExecFallback::Reconverge: return "reconverge";
      case BlockExecFallback::MultiIssue: return "multi_issue";
      case BlockExecFallback::FillOpen:   return "fill_open";
      case BlockExecFallback::WakeDue:    return "wake_due";
      case BlockExecFallback::ShortSpan:  return "short_span";
      case BlockExecFallback::Count_:     break;
    }
    return "?";
}

namespace {

/** Mirror of the analysis façade's malformed-program gate: the Cfg
 *  constructor asserts targets are in range, so never feed it junk. */
bool
cfgBuildable(const Program &prog)
{
    if (prog.code.empty() || prog.entryPc >= prog.code.size())
        return false;
    for (const MicroKernelEntry &mk : prog.microKernels)
        if (mk.pc >= prog.code.size())
            return false;
    for (const Instruction &inst : prog.code) {
        if ((inst.op == Opcode::Bra || inst.op == Opcode::Spawn) &&
            inst.target >= prog.code.size()) {
            return false;
        }
    }
    return true;
}

} // anonymous namespace

void
BlockTable::clear()
{
    ops_.clear();
    fusibleLen_.clear();
    blocks_.clear();
    fusibleBlocks_ = 0;
    compileWallNs_ = 0;
}

void
BlockTable::build(const Program &program, const DecodedProgram &decoded,
                  const GpuConfig &config)
{
    clear();
    const auto t0 = std::chrono::steady_clock::now();
    if (!cfgBuildable(program))
        return;

    const Cfg cfg(program);
    const analysis::UniformityResult uniformity =
        analysis::analyzeUniformity(program, cfg);
    // Dead-def counts are tooling-only; skip the liveness solve here.
    const analysis::FusionResult fusion = analysis::analyzeFusion(
        program, cfg, uniformity, analysis::LivenessResult{});

    const size_t n = program.size();
    ops_.resize(n);
    fusibleLen_.assign(n, 0);

    // Bind every op once: decode record plus the AVX2 shape whitelist.
    for (uint32_t pc = 0; pc < n; pc++) {
        const DecodedInst &d = decoded.at(pc);
        ops_[pc].d = &d;
        ops_[pc].simdOk = d.cls == ExecClass::Alu &&
                          simd::aluCoverable(d, config.warpSize);
    }

    // Per-pc fusible run lengths, computed backward within each block
    // so a warp entering mid-block (a branch target inside the block
    // never splits blocks; entering after a reconvergence pop does
    // happen) still gets its maximal straight-line run.
    blocks_.reserve(cfg.blocks().size());
    for (const analysis::BlockFusion &bf : fusion.blocks) {
        const uint32_t first = bf.first;
        const uint32_t last = bf.last;
        for (uint32_t pc = last + 1; pc-- > first;) {
            const DecodedInst &d = decoded.at(pc);
            const bool eligible = d.issueLatency == 1 &&
                                  analysis::fusibleOp(program.at(pc));
            if (!eligible) {
                fusibleLen_[pc] = 0;
            } else {
                const uint32_t run =
                    pc == last ? 1u : 1u + fusibleLen_[pc + 1];
                fusibleLen_[pc] =
                    static_cast<uint16_t>(std::min(run, 0xffffu));
            }
        }
        CompiledBlock cb;
        cb.first = first;
        cb.last = last;
        cb.fusibleOps = fusibleLen_[first];
        cb.uniform = bf.uniform;
        blocks_.push_back(cb);
        fusibleBlocks_ += fusibleLen_[first] >= 2 ? 1 : 0;
    }

    compileWallNs_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace uksim
