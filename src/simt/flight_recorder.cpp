/**
 * @file
 * Post-mortem flight recorder: Gpu::dumpState.
 *
 * Serializes the full machine state as JSON for fault / deadlock /
 * cycle-limit post-mortems: run outcome and recorded faults, chip-wide
 * stall attribution, per-SM warp states with SIMT-stack snapshots, spawn
 * LUT / formation-region / FIFO occupancy, and the tail of the event
 * ring (when tracing was enabled). Consumed by tools/ukdump and the
 * harness; schema documented in DESIGN.md ("Fault handling").
 */

#include <ostream>

#include "simt/gpu.hpp"

namespace uksim {

namespace {

/**
 * Versioned schema tag, mirroring ukverify's "ukverify-json-1": any
 * field addition, removal or rename must bump this string (and the
 * numeric version), because the snapshot/resume layer fingerprints
 * whole dumps and the ukdump golden ctest pins the byte layout.
 */
constexpr const char *kDumpSchema = "ukdump-json-1";
constexpr int kDumpVersion = 1;
/// Tail of the event ring included in the dump.
constexpr size_t kDumpLastEvents = 256;

/// Lowercase hex with 0x prefix (lane masks).
void
hexMask(std::ostream &os, uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    char buf[16];
    int n = 0;
    do {
        buf[n++] = digits[v & 0xf];
        v >>= 4;
    } while (v);
    os << "\"0x";
    while (n)
        os << buf[--n];
    os << "\"";
}

} // anonymous namespace

void
Gpu::dumpState(std::ostream &os) const
{
    const SimStats &chip = stats();

    os << "{\n";
    os << "  \"schema\": \"" << kDumpSchema << "\",\n";
    os << "  \"version\": " << kDumpVersion << ",\n";
    os << "  \"cycle\": " << cycle_ << ",\n";
    os << "  \"outcome\": \"" << runOutcomeName(outcome()) << "\",\n";
    os << "  \"config\": {\n";
    os << "    \"num_sms\": " << config_.numSms << ",\n";
    os << "    \"warp_size\": " << config_.warpSize << ",\n";
    os << "    \"max_cycles\": " << config_.maxCycles << ",\n";
    os << "    \"fault_policy\": \""
       << faultPolicyName(config_.faultPolicy) << "\",\n";
    os << "    \"watchdog_cycles\": " << config_.watchdogCycles << "\n";
    os << "  },\n";
    os << "  \"occupancy\": {\n";
    os << "    \"warps_per_sm\": " << occupancy_.warpsPerSm << ",\n";
    os << "    \"threads_per_sm\": " << occupancy_.threadsPerSm << ",\n";
    os << "    \"limiter\": \"" << occupancy_.limiter << "\"\n";
    os << "  },\n";

    os << "  \"faults\": [";
    for (size_t i = 0; i < faults_.size(); i++) {
        const SimFault &f = faults_[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"code\": \"" << faultCodeName(f.code)
           << "\", \"cycle\": " << f.cycle << ", \"sm\": " << f.smId
           << ", \"warp\": " << f.warpSlot << ", \"lane\": " << f.lane
           << ", \"pc\": " << f.pc << ", \"addr\": " << f.addr
           << ", \"hint\": \"" << faultCodeHint(f.code) << "\"}";
    }
    os << (faults_.empty() ? "],\n" : "\n  ],\n");

    os << "  \"stall\": {";
    for (int r = 0; r < trace::kNumStallReasons; r++) {
        os << (r ? ", " : "") << "\""
           << trace::stallReasonName(static_cast<trace::StallReason>(r))
           << "\": " << chip.stall.counts[r];
    }
    os << "},\n";

    // Engine observability, not simulation state: strip this block when
    // comparing dumps across fast-forward settings.
    os << "  \"fast_forward\": {\"enabled\": "
       << (fastForward_ ? "true" : "false")
       << ", \"cycles_skipped\": " << ffStats_.cyclesSkipped
       << ", \"jumps\": " << ffStats_.jumps
       << ", \"largest_jump\": " << ffStats_.largestJump << "},\n";

    os << "  \"sms\": [";
    for (size_t s = 0; s < sms_.size(); s++) {
        const Sm &sm = *sms_[s];
        os << (s ? ",\n    " : "\n    ") << "{\"id\": " << sm.id()
           << ", \"live_warps\": " << sm.liveWarps();
        if (sm.spawnEnabled())
            os << ", \"free_state_slots\": " << sm.freeStateSlots();
        os << ", \"warps\": [";
        bool firstWarp = true;
        for (int wslot = 0; wslot < sm.residentWarps(); wslot++) {
            const Warp &w = sm.warp(wslot);
            if (!w.valid)
                continue;
            os << (firstWarp ? "\n      " : ",\n      ");
            firstWarp = false;
            os << "{\"slot\": " << w.hwSlot << ", \"dynamic\": "
               << (w.dynamic ? "true" : "false")
               << ", \"block\": " << w.blockId
               << ", \"ready_at\": " << w.readyAt
               << ", \"outstanding_mem\": " << w.outstandingMem
               << ", \"waiting_barrier\": "
               << (w.waitingBarrier ? "true" : "false")
               << ", \"faulted\": " << (w.faulted ? "true" : "false")
               << ", \"stack\": [";
            const auto &entries = w.stack.entries();
            for (size_t e = 0; e < entries.size(); e++) {
                os << (e ? ", " : "") << "{\"pc\": " << entries[e].pc
                   << ", \"rpc\": " << entries[e].rpc << ", \"mask\": ";
                hexMask(os, entries[e].mask);
                os << "}";
            }
            os << "]}";
        }
        os << (firstWarp ? "]" : "\n    ]");
        if (sm.spawnEnabled()) {
            const SpawnUnit &unit = *sm.spawnUnit();
            os << ", \"spawn\": {\"fifo_warps\": " << unit.fifoSize()
               << ", \"partial_threads\": " << unit.partialThreadCount()
               << ", \"free_regions\": " << unit.freeRegionCount()
               << ", \"num_regions\": " << unit.numRegions()
               << ", \"lut\": [";
            const int lines =
                static_cast<int>(program_.microKernels.size());
            for (int l = 0; l < lines; l++) {
                const SpawnUnit::LutLine &line = unit.lutLine(l);
                os << (l ? ", " : "") << "{\"pc\": " << line.pc
                   << ", \"count\": " << line.count << "}";
            }
            os << "]}";
        }
        os << "}";
    }
    os << (sms_.empty() ? "],\n" : "\n  ],\n");

    // Tail of the event ring (empty unless tracing was enabled).
    os << "  \"events\": [";
    const std::vector<trace::Event> events = trace_.ordered();
    const size_t first =
        events.size() > kDumpLastEvents ? events.size() - kDumpLastEvents
                                        : 0;
    for (size_t i = first; i < events.size(); i++) {
        const trace::Event &e = events[i];
        os << (i > first ? ",\n    " : "\n    ");
        os << "{\"kind\": \"" << trace::eventKindName(e.kind)
           << "\", \"cycle\": " << e.cycle << ", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid << ", \"pc\": " << e.pc
           << ", \"arg\": " << e.arg << "}";
    }
    os << (events.size() == first ? "]\n" : "\n  ]\n");
    os << "}\n";
}

} // namespace uksim
