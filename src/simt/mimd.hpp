/**
 * @file
 * MIMD-theoretical performance model (paper Fig. 10).
 *
 * Executes every thread of the grid as an independent scalar program
 * with ideal memory, counts the dynamic instructions each thread needs,
 * and charges them to numSms x warpSize ideal lanes retiring one
 * instruction per cycle each. This is the upper bound the paper
 * normalizes branching performance against.
 */

#ifndef UKSIM_SIMT_MIMD_HPP
#define UKSIM_SIMT_MIMD_HPP

#include <cstdint>

#include "simt/config.hpp"
#include "simt/gpu.hpp"
#include "simt/program.hpp"

namespace uksim {

/** Result of a MIMD-theoretical run. */
struct MimdResult {
    uint64_t totalInstructions = 0; ///< dynamic scalar instructions
    uint64_t maxThreadInstructions = 0;
    uint64_t cycles = 0;            ///< total / (numSms * warpSize)
    uint64_t itemsCompleted = 0;

    double ipc(const GpuConfig &config) const
    {
        return cycles ? double(totalInstructions) / double(cycles)
                      : double(config.numSms) * config.warpSize;
    }

    double itemsPerSecond(double clock_ghz) const
    {
        return cycles ? double(itemsCompleted) * clock_ghz * 1e9 /
                        double(cycles)
                      : 0.0;
    }
};

/**
 * Run @p numThreads scalar threads of the program loaded in @p gpu
 * against the gpu's (already initialized) device memory. The grid's
 * side effects are applied to global memory exactly as a real run.
 *
 * @param gpu device whose program + memory to execute.
 * @param numThreads grid size.
 * @param perThreadCap runaway guard on instructions per thread.
 */
MimdResult runMimdIdeal(Gpu &gpu, uint32_t numThreads,
                        uint64_t perThreadCap = 50'000'000);

} // namespace uksim

#endif // UKSIM_SIMT_MIMD_HPP
