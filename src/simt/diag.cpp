/**
 * @file
 * Diagnostic formatting and ordering shared by verifier and analysis.
 */

#include "simt/diag.hpp"

#include <algorithm>
#include <sstream>

namespace uksim {

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << (severity == Severity::Error ? "error[" : "warning[") << id
       << "] ";
    if (line > 0)
        os << "line " << line << " ";
    os << "(pc " << pc;
    if (!entry.empty())
        os << ", entry '" << entry << "'";
    os << "): " << message;
    return os.str();
}

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.line != b.line) {
                             if (a.line == 0 || b.line == 0)
                                 return b.line == 0;
                             return a.line < b.line;
                         }
                         return a.pc < b.pc;
                     });
}

} // namespace uksim
