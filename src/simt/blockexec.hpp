/**
 * @file
 * Superblock execution engine: compiled block table.
 *
 * Built once per loaded program, next to the dense decode table: every
 * CFG basic block is compiled into a linear run of pre-bound host
 * operations (BoundOp) — the decode record resolved once, the AVX2
 * lane-kernel whitelist consulted once, and every memory / spawn /
 * barrier / branch / exit / SFU instruction marked as a trace-exit
 * point by ending the fusible run. At issue time the SM consults
 * fusibleLen(pc): the number of consecutive fusible ops starting at pc
 * (capped at the enclosing basic block's end), which is what
 * Sm::planBlockSpan() uses to execute a whole straight-line run for one
 * warp in a single call (see Sm::runCarrySpan and DESIGN.md
 * "Superblock execution engine").
 *
 * The table is immutable after build() and shared read-only by all SMs,
 * so it is safe to consult from the parallel phase of the cycle engine.
 */

#ifndef UKSIM_SIMT_BLOCKEXEC_HPP
#define UKSIM_SIMT_BLOCKEXEC_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simt/config.hpp"
#include "simt/decode.hpp"
#include "simt/program.hpp"

namespace uksim {

/**
 * Why a block-exec span could not start (or was cut short) at a cycle
 * where the engine probed for one. Exposed as the blockexec.fallback.*
 * trace counters; purely diagnostic, never part of SimStats.
 */
enum class BlockExecFallback : uint8_t {
    ShortRun,   ///< fusible run at the warp's pc shorter than 2 ops
    Reconverge, ///< a reconvergence pop would land inside the run
    MultiIssue, ///< another warp could issue the same cycle (round-robin)
    FillOpen,   ///< a warp placement (grid / FIFO / flush) is possible
    WakeDue,    ///< a memory wake-up is due before 2 cycles pass
    ShortSpan,  ///< chip-wide span clamped below 2 cycles
    Count_,
};
constexpr size_t kNumBlockExecFallbacks =
    static_cast<size_t>(BlockExecFallback::Count_);

const char *blockExecFallbackName(BlockExecFallback f);

/** One pre-bound host operation of a compiled superblock trace. */
struct BoundOp {
    const DecodedInst *d = nullptr;
    bool simdOk = false;    ///< simd::warpAlu covers this shape
};

/** Compile-time summary of one basic block (stats / tooling). */
struct CompiledBlock {
    uint32_t first = 0;
    uint32_t last = 0;
    uint16_t fusibleOps = 0;    ///< maximal fusible prefix length
    bool uniform = false;       ///< in no divergent influence region
};

/** The compiled block table of one loaded program. */
class BlockTable
{
  public:
    /**
     * Compile @p program. @p program and @p decoded must outlive this
     * object and must not be mutated afterwards. Malformed programs
     * (out-of-range branch targets, empty code) leave the table empty —
     * the engine then falls back to per-instruction stepping.
     */
    void build(const Program &program, const DecodedProgram &decoded,
               const GpuConfig &config);

    void clear();

    bool empty() const { return ops_.empty(); }

    /**
     * Number of consecutive fusible ops starting at @p pc, capped at
     * the enclosing basic block's last instruction. 0 when the op at
     * @p pc cannot run inside a fused span.
     */
    uint16_t fusibleLen(uint32_t pc) const { return fusibleLen_[pc]; }

    const BoundOp &op(uint32_t pc) const { return ops_[pc]; }

    const std::vector<CompiledBlock> &blocks() const { return blocks_; }

    // Compile statistics (engine-side: never part of SimStats).
    uint64_t blocksCompiled() const { return blocks_.size(); }
    uint64_t fusibleBlocks() const { return fusibleBlocks_; }
    uint64_t compileWallNs() const { return compileWallNs_; }

  private:
    std::vector<BoundOp> ops_;          ///< dense, one per pc
    std::vector<uint16_t> fusibleLen_;  ///< dense, one per pc
    std::vector<CompiledBlock> blocks_;
    uint64_t fusibleBlocks_ = 0;
    uint64_t compileWallNs_ = 0;
};

} // namespace uksim

#endif // UKSIM_SIMT_BLOCKEXEC_HPP
