/**
 * @file
 * Program metadata queries and reconvergence-point computation.
 */

#include "simt/program.hpp"

#include <algorithm>
#include <sstream>

#include "simt/cfg.hpp"

namespace uksim {

int
Program::microKernelIndex(uint32_t pc) const
{
    for (size_t i = 0; i < microKernels.size(); i++) {
        if (microKernels[i].pc == pc)
            return static_cast<int>(i);
    }
    return -1;
}

int
Program::measuredRegisterCount() const
{
    int maxReg = -1;
    auto track = [&](const Operand &o) {
        if (o.kind == OperandKind::Reg)
            maxReg = std::max(maxReg, o.reg);
    };
    for (const Instruction &inst : code) {
        if (inst.dst >= 0 && inst.op != Opcode::SetP &&
            inst.op != Opcode::VoteAll) {
            // Destination registers; vector loads write a register range.
            int width = (inst.op == Opcode::Ld) ? inst.vecWidth : 1;
            maxReg = std::max(maxReg, inst.dst + width - 1);
        }
        for (const auto &s : inst.src)
            track(s);
        if (inst.op == Opcode::St && inst.src[1].kind == OperandKind::Reg) {
            maxReg = std::max(maxReg,
                              inst.src[1].reg + int(inst.vecWidth) - 1);
        }
    }
    return maxReg + 1;
}

void
Program::computeReconvergencePoints()
{
    if (code.empty())
        return;
    Cfg cfg(*this);
    const uint32_t sentinel = static_cast<uint32_t>(code.size());
    for (uint32_t pc = 0; pc < code.size(); pc++) {
        if (code[pc].op == Opcode::Bra)
            code[pc].reconvergePc = cfg.reconvergencePc(pc, sentinel);
    }
}

std::string
Program::listing() const
{
    std::ostringstream os;
    std::map<uint32_t, std::string> byPc;
    for (const auto &[name, pc] : labels)
        byPc[pc] = name;
    for (uint32_t pc = 0; pc < code.size(); pc++) {
        auto it = byPc.find(pc);
        if (it != byPc.end())
            os << it->second << ":\n";
        os << "  " << pc << ":\t" << disassemble(code[pc]) << "\n";
    }
    return os.str();
}

} // namespace uksim
