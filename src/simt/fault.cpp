#include "simt/fault.hpp"

#include <sstream>

namespace uksim {

const char *faultCodeName(FaultCode code)
{
    switch (code) {
    case FaultCode::None: return "none";
    case FaultCode::PcOutOfRange: return "pc_out_of_range";
    case FaultCode::BadOperandKind: return "bad_operand_kind";
    case FaultCode::BadMemSpace: return "bad_mem_space";
    case FaultCode::MemOutOfBounds: return "mem_out_of_bounds";
    case FaultCode::SpawnRegionExhausted: return "spawn_region_exhausted";
    case FaultCode::SpawnNoLutLine: return "spawn_no_lut_line";
    case FaultCode::SpawnLutOverflow: return "spawn_lut_overflow";
    }
    return "unknown";
}

const char *faultCodeHint(FaultCode code)
{
    switch (code) {
    case FaultCode::None:
        return "no fault";
    case FaultCode::PcOutOfRange:
        return "warp ran off the end of the program; check for a missing "
               "exit or a branch to a label outside the kernel";
    case FaultCode::BadOperandKind:
        return "corrupt instruction image: operand kind is not one the "
               "machine decodes";
    case FaultCode::BadMemSpace:
        return "memory instruction names a space the machine does not "
               "model on this path";
    case FaultCode::MemOutOfBounds:
        return "device memory access outside its backing store; check "
               "buffer sizes and address arithmetic";
    case FaultCode::SpawnRegionExhausted:
        return "spawn memory formation region exhausted; shrink "
               ".spawn_state, spawn fewer threads, or grow "
               "spawnMemFormationEntries";
    case FaultCode::SpawnNoLutLine:
        return "spawn to pc without a LUT line; spawn targets must be "
               "declared .microkernel entries";
    case FaultCode::SpawnLutOverflow:
        return "more micro-kernels than the spawn LUT can hold; grow "
               "spawnLutBytes or merge micro-kernels";
    }
    return "unknown fault";
}

const char *faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
    case FaultPolicy::Throw: return "throw";
    case FaultPolicy::Trap: return "trap";
    case FaultPolicy::HaltGrid: return "halt_grid";
    }
    return "unknown";
}

const char *runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
    case RunOutcome::Completed: return "completed";
    case RunOutcome::CycleLimit: return "cycle_limit";
    case RunOutcome::Deadlock: return "deadlock";
    case RunOutcome::Faulted: return "faulted";
    }
    return "unknown";
}

std::string SimFault::describe() const
{
    std::ostringstream os;
    // Keep the legacy message phrases first so call sites (and tests)
    // matching on the old std::runtime_error text keep working.
    switch (code) {
    case FaultCode::None:
        os << "no fault";
        break;
    case FaultCode::PcOutOfRange:
        os << "warp ran off the end of the program";
        break;
    case FaultCode::BadOperandKind:
        os << "bad operand kind " << addr;
        break;
    case FaultCode::BadMemSpace:
        os << "bad memory space " << addr;
        break;
    case FaultCode::MemOutOfBounds:
        os << "memory access out of bounds at addr " << addr;
        break;
    case FaultCode::SpawnRegionExhausted:
        os << "spawn memory formation region exhausted";
        break;
    case FaultCode::SpawnNoLutLine:
        os << "spawn to pc without a LUT line";
        break;
    case FaultCode::SpawnLutOverflow:
        os << "more micro-kernels than the spawn LUT can hold";
        break;
    }
    os << " [" << faultCodeName(code) << " cycle=" << cycle;
    if (smId >= 0)
        os << " sm=" << smId;
    if (warpSlot >= 0)
        os << " warp=" << warpSlot;
    if (lane >= 0)
        os << " lane=" << lane;
    os << " pc=" << pc << "]";
    return os.str();
}

} // namespace uksim
