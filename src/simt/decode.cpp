/**
 * @file
 * Decode-table construction.
 */

#include "simt/decode.hpp"

#include "simt/simt_stack.hpp"

namespace uksim {

namespace {

ExecClass
classify(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Bra: return ExecClass::Bra;
      case Opcode::Exit: return ExecClass::Exit;
      case Opcode::Bar: return ExecClass::Bar;
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomAdd:
      case Opcode::AtomExch:
      case Opcode::AtomCas: return ExecClass::Mem;
      case Opcode::Spawn: return ExecClass::Spawn;
      case Opcode::VoteAll: return ExecClass::VoteAll;
      case Opcode::Nop: return ExecClass::Nop;
      case Opcode::SetP: return ExecClass::SetP;
      case Opcode::SelP: return ExecClass::SelP;
      default: return ExecClass::Alu;
    }
}

} // anonymous namespace

void
DecodedProgram::build(const Program &program, const GpuConfig &config)
{
    insts_.clear();
    insts_.reserve(program.size());
    for (uint32_t pc = 0; pc < program.size(); pc++) {
        const Instruction &inst = program.code[pc];
        DecodedInst d;
        d.inst = &inst;
        d.cls = classify(inst);
        d.guardPred = static_cast<int8_t>(inst.guardPred);
        d.guardNegated = inst.guardNegated;
        d.readsB = inst.src[1].kind != OperandKind::None &&
                   inst.src[1].kind != OperandKind::Pred;
        d.readsC = inst.src[2].kind == OperandKind::Reg ||
                   inst.src[2].kind == OperandKind::Imm ||
                   inst.src[2].kind == OperandKind::Special;
        d.issueLatency = inst.isSfu()
                             ? static_cast<uint16_t>(config.sfuLatencyCycles)
                             : uint16_t{1};
        d.target = inst.target;
        d.reconvergePc = inst.reconvergePc >= program.size()
                             ? SimtStack::kNoReconverge
                             : inst.reconvergePc;
        insts_.push_back(d);
    }
}

} // namespace uksim
