/**
 * @file
 * Simulation statistics, including the AerialVision-style warp-occupancy
 * time series used for the paper's Figures 3, 7 and 9, and the chip-wide
 * issue-slot stall attribution (trace/stall.hpp).
 */

#ifndef UKSIM_SIMT_STATS_HPP
#define UKSIM_SIMT_STATS_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simt/fault.hpp"
#include "trace/stall.hpp"

namespace uksim {

/**
 * Warp occupancy bins: W1:4, W5:8, ..., W29:32 (8 bins, as in the
 * paper's divergence-breakdown plots).
 */
constexpr int kOccupancyBins = 8;

/** One time window of the divergence-breakdown series. */
struct OccupancyWindow {
    uint64_t startCycle = 0;
    uint64_t cycles = 0;
    /// warp issues whose active mask fell in bin i (bin = (n-1)/4).
    std::array<uint64_t, kOccupancyBins> bins{};
    /// SM-cycles with no warp issued at all.
    uint64_t idleIssueSlots = 0;

    bool operator==(const OccupancyWindow &other) const = default;
};

/** Counters for one complete simulation. */
struct SimStats {
    uint64_t cycles = 0;
    /// How the run ended (fault.hpp); merged views keep the worst.
    RunOutcome outcome = RunOutcome::Completed;
    uint64_t warpIssues = 0;
    /// Sum over issues of popcount(active mask) — thread instructions.
    uint64_t laneInstructions = 0;
    /// Lanes whose guard predicate also held (committed results).
    uint64_t committedLaneInstructions = 0;
    uint64_t idleIssueSlots = 0;

    // Work-completion counters.
    uint64_t threadsLaunched = 0;       ///< launch-grid threads started
    uint64_t threadsCompleted = 0;      ///< launch-grid threads finished
    uint64_t itemsCompleted = 0;        ///< work items (rays) fully done
    uint64_t dynamicThreadsSpawned = 0;
    uint64_t dynamicWarpsFormed = 0;
    uint64_t partialWarpFlushes = 0;

    // Memory traffic (functional byte counts).
    uint64_t dramReadBytes = 0;
    uint64_t dramWriteBytes = 0;
    uint64_t dramTransactions = 0;
    uint64_t onChipReadBytes = 0;       ///< shared + spawn reads
    uint64_t onChipWriteBytes = 0;
    uint64_t spawnMemReadBytes = 0;
    uint64_t spawnMemWriteBytes = 0;
    uint64_t bankConflictExtraCycles = 0;
    uint64_t texL1Hits = 0;
    uint64_t texL1Misses = 0;
    uint64_t texL2Hits = 0;
    uint64_t texL2Misses = 0;

    /**
     * Chip-wide issue-slot attribution: every SM classifies each cycle
     * into exactly one reason, so stall.total() == numSms * cycles.
     */
    trace::StallCounters stall;

    /// Divergence-breakdown time series.
    std::vector<OccupancyWindow> windows;

    /** Thread instructions per cycle over the whole run. */
    double ipc() const
    {
        return cycles ? double(laneInstructions) / double(cycles) : 0.0;
    }

    /**
     * SIMT efficiency: fraction of issued lane slots (warpSize per issue)
     * that held an active thread.
     */
    double simtEfficiency(int warp_size) const
    {
        uint64_t slots = warpIssues * uint64_t(warp_size);
        return slots ? double(laneInstructions) / double(slots) : 0.0;
    }

    /**
     * Work items completed per second at @p clock_ghz.
     * @param clock_ghz shader clock in GHz.
     */
    double itemsPerSecond(double clock_ghz) const
    {
        return cycles ? double(itemsCompleted) * clock_ghz * 1e9 /
                        double(cycles)
                      : 0.0;
    }

    /**
     * Fix the occupancy-series window size. Set once at run start (the
     * Gpu does this from GpuConfig::statsWindowCycles) — changing it
     * after windows exist would corrupt the series, so that asserts.
     */
    void setWindowCycles(uint64_t window_cycles);
    uint64_t windowCycles() const { return windowCycles_; }

    /** Merge occupancy of one warp issue into the time series. */
    void recordIssue(uint64_t cycle, int activeLanes);
    /** Record an SM issue slot that went idle. */
    void recordIdle(uint64_t cycle);
    /**
     * Bulk recordIdle for @p count consecutive idle cycles starting at
     * @p startCycle (fast-forwarded span). Extends the occupancy series
     * exactly as @p count recordIdle calls would — same windows, same
     * per-window idle counts — just without the per-cycle loop.
     */
    void recordIdleSpan(uint64_t startCycle, uint64_t count);

    /** CSV of the divergence-breakdown series (one row per window). */
    std::string occupancyCsv() const;

    /**
     * Accumulate another run's counters (bench aggregation across
     * configurations). Occupancy windows merge index-aligned, which
     * requires both series to use the same window size.
     */
    SimStats &operator+=(const SimStats &other);

    bool operator==(const SimStats &other) const = default;

  private:
    OccupancyWindow &windowFor(uint64_t cycle);

    /// Occupancy-series bucket width in cycles (see setWindowCycles).
    uint64_t windowCycles_ = 5000;
};

} // namespace uksim

#endif // UKSIM_SIMT_STATS_HPP
