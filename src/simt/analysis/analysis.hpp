/**
 * @file
 * One-call façade over the analysis framework.
 *
 * analyzeProgram() builds the CFG once and runs every client pass —
 * verifier lints (range-powered bounds + liveness lints), uniformity /
 * divergence classification, and the spawn-placement advisor — then
 * renderReport() / toJson() turn the combined result into the
 * human-readable and machine-readable forms `ukverify --analyze`
 * surfaces.
 *
 * The JSON schema is versioned ("ukverify-json-1.1") and covered by a
 * golden-file test; extend it by adding fields (bumping the minor
 * version), never by renaming or reordering existing ones.
 */

#ifndef UKSIM_ANALYSIS_ANALYSIS_HPP
#define UKSIM_ANALYSIS_ANALYSIS_HPP

#include <string>

#include "simt/analysis/advisor.hpp"
#include "simt/analysis/fusion.hpp"
#include "simt/analysis/liveness.hpp"
#include "simt/analysis/uniformity.hpp"
#include "simt/program.hpp"
#include "simt/verifier.hpp"

namespace uksim::analysis {

/** JSON schema identifier emitted by toJson(). */
inline constexpr const char *kJsonSchema = "ukverify-json-1.1";

/** Combined result of every pass over one program. */
struct ProgramAnalysis {
    VerifyResult verify;            ///< diagnostics + access stats
    UniformityResult uniformity;    ///< only when the CFG was buildable
    AdvisorResult advisor;
    FusionResult fusion;            ///< per-block fusion legality
    bool analyzed = false;          ///< false when malformed (no CFG)
};

/** Run verifier + uniformity + fusion + advisor over @p program. */
ProgramAnalysis analyzeProgram(const Program &program);

/**
 * Human-readable analysis report (branch table, access summary,
 * advice); diagnostics are NOT included — callers print
 * verify.report() separately.
 */
std::string renderReport(const Program &program, const ProgramAnalysis &a);

/**
 * Stable-schema JSON object for one analyzed program, as one element
 * of ukverify's "programs" array. @p name is the caller-chosen program
 * name (file path or builtin id).
 */
std::string toJson(const std::string &name, const Program &program,
                   const ProgramAnalysis &a, int indent = 2);

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_ANALYSIS_HPP
