/**
 * @file
 * Spawn-placement advisor.
 *
 * The paper's thesis is that warp divergence from *irregular* control
 * flow is best attacked by spawning the divergent continuation as a
 * dynamic µ-kernel so the hardware can re-form dense warps. This pass
 * turns the uniformity classification into concrete placement advice:
 *
 *   spawn-candidate    a divergent, rejoining branch guards a
 *                      non-trivial region that contains no `spawn`:
 *                      restructuring the region as a µ-kernel would let
 *                      the spawn unit reform warps (paper Sec. IV-B);
 *   spawn-on-uniform   a `spawn` guarded by a warp-uniform predicate:
 *                      every lane takes it together, so it pays the
 *                      spawn overhead without any divergence to remove;
 *   meld-candidate     a divergent branch whose then/else regions are
 *                      disjoint, self-contained and spawn/barrier-free:
 *                      the regions could be melded DARM-style (see
 *                      PAPERS.md) instead of spawned — useful where
 *                      spawn-memory capacity is the bottleneck.
 *
 * Advice is *not* a diagnostic: it never fails verification and is
 * surfaced only through `ukverify --analyze`.
 */

#ifndef UKSIM_ANALYSIS_ADVISOR_HPP
#define UKSIM_ANALYSIS_ADVISOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "simt/analysis/uniformity.hpp"
#include "simt/cfg.hpp"
#include "simt/program.hpp"

namespace uksim::analysis {

/** Branch regions below this instruction count are not worth a spawn. */
constexpr size_t kSpawnAdviceMinInsts = 4;

/** One piece of placement advice. */
struct Advice {
    std::string kind;       ///< "spawn-candidate" / "spawn-on-uniform" /
                            ///< "meld-candidate"
    uint32_t pc = 0;
    int line = 0;
    int block = -1;
    std::string message;
};

struct AdvisorResult {
    std::vector<Advice> advice;     ///< pc order, kind order within a pc
};

/** Derive placement advice from @p uniformity over @p program. */
AdvisorResult advise(const Program &program, const Cfg &cfg,
                     const UniformityResult &uniformity);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_ADVISOR_HPP
