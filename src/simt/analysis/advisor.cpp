/**
 * @file
 * Spawn-placement advice derived from the uniformity classification.
 */

#include "simt/analysis/advisor.hpp"

#include <algorithm>
#include <set>

namespace uksim::analysis {

namespace {

/** Blocks reachable from @p start without passing through @p stop. */
std::set<int>
regionFrom(const Cfg &cfg, int start, int stop)
{
    std::set<int> region;
    if (start == Cfg::kVirtualExit || start == stop)
        return region;
    std::vector<int> work{start};
    region.insert(start);
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        for (int s : cfg.blocks()[b].successors) {
            if (s != Cfg::kVirtualExit && s != stop &&
                region.insert(s).second) {
                work.push_back(s);
            }
        }
    }
    return region;
}

size_t
countInsts(const Cfg &cfg, const std::set<int> &region)
{
    size_t n = 0;
    for (int b : region) {
        const BasicBlock &bb = cfg.blocks()[b];
        n += bb.last - bb.first + 1;
    }
    return n;
}

bool
containsOp(const Program &prog, const Cfg &cfg, const std::set<int> &region,
           Opcode op)
{
    for (int b : region) {
        const BasicBlock &bb = cfg.blocks()[b];
        for (uint32_t pc = bb.first; pc <= bb.last; pc++)
            if (prog.code[pc].op == op)
                return true;
    }
    return false;
}

/** Region leaves only into itself or @p rejoin (no side exits). */
bool
selfContained(const Cfg &cfg, const std::set<int> &region, int rejoin)
{
    for (int b : region) {
        for (int s : cfg.blocks()[b].successors) {
            if (s == Cfg::kVirtualExit || s == rejoin)
                continue;
            if (!region.count(s))
                return false;
        }
    }
    return true;
}

} // anonymous namespace

AdvisorResult
advise(const Program &program, const Cfg &cfg,
       const UniformityResult &uniformity)
{
    AdvisorResult result;
    auto add = [&](const char *kind, uint32_t pc, int block,
                   std::string msg) {
        Advice a;
        a.kind = kind;
        a.pc = pc;
        a.line = pc < program.code.size() ? program.code[pc].line : 0;
        a.block = block;
        a.message = std::move(msg);
        result.advice.push_back(std::move(a));
    };

    for (const BranchInfo &br : uniformity.branches) {
        if (!br.divergent || br.isExit)
            continue;
        const int rejoin = cfg.immediatePostDominator(br.block);
        if (rejoin == Cfg::kVirtualExit)
            continue;   // no rejoin point to spawn a continuation for

        const std::vector<int> regionVec = cfg.influenceRegion(br.block);
        const std::set<int> region(regionVec.begin(), regionVec.end());
        const size_t insts = countInsts(cfg, region);

        if (!containsOp(program, cfg, region, Opcode::Spawn) &&
            insts >= kSpawnAdviceMinInsts) {
            add("spawn-candidate", br.pc, br.block,
                "divergent branch (sources: " +
                    divergenceSourceNames(br.sources) + ") guards " +
                    std::to_string(insts) +
                    " instructions with no spawn; a µ-kernel "
                    "continuation here would let the hardware re-form "
                    "dense warps");
        }

        // DARM-style melding: both arms exist, never touch each other,
        // rejoin only at the post-dominator, and carry no spawn/bar.
        const Instruction &inst = program.code[br.pc];
        const BasicBlock &bb = cfg.blocks()[br.block];
        const int taken = cfg.blockOf(inst.target);
        int fall = Cfg::kVirtualExit;
        for (int s : bb.successors)
            if (s != taken)
                fall = s;
        const std::set<int> thenR = regionFrom(cfg, fall, rejoin);
        const std::set<int> elseR = regionFrom(cfg, taken, rejoin);
        bool disjoint = !thenR.empty() && !elseR.empty();
        for (int b : thenR)
            disjoint = disjoint && !elseR.count(b);
        if (disjoint && selfContained(cfg, thenR, rejoin) &&
            selfContained(cfg, elseR, rejoin) &&
            !containsOp(program, cfg, thenR, Opcode::Spawn) &&
            !containsOp(program, cfg, elseR, Opcode::Spawn) &&
            !containsOp(program, cfg, thenR, Opcode::Bar) &&
            !containsOp(program, cfg, elseR, Opcode::Bar)) {
            add("meld-candidate", br.pc, br.block,
                "then/else regions (" +
                    std::to_string(countInsts(cfg, thenR)) + "/" +
                    std::to_string(countInsts(cfg, elseR)) +
                    " instructions) are disjoint and self-contained; "
                    "they could be melded into one lane-predicated "
                    "region instead of diverging");
        }
    }

    for (const auto &[pc, guardTaint] : uniformity.spawnGuards) {
        const Instruction &inst = program.code[pc];
        if (inst.guardPred >= 0 && guardTaint == 0) {
            add("spawn-on-uniform", pc, cfg.blockOf(pc),
                "spawn guarded by a warp-uniform predicate: all lanes "
                "take it together, paying spawn overhead without any "
                "divergence to remove (branch around it instead, or "
                "drop the guard)");
        }
    }

    std::stable_sort(result.advice.begin(), result.advice.end(),
                     [](const Advice &a, const Advice &b) {
                         return a.pc < b.pc;
                     });
    return result;
}

} // namespace uksim::analysis
