/**
 * @file
 * Fusion-legality analysis for the superblock execution engine.
 *
 * The block-exec engine (simt/blockexec.hpp) executes straight-line
 * instruction runs for one warp in a single call, so an instruction may
 * only live inside a fused run when it is provably warp-private and
 * single-cycle: pure ALU / predicate work that touches nothing but the
 * issuing warp's registers, raises no guest fault, and parks no warp.
 * Memory accesses, branches, barriers, spawns, thread exits and
 * long-latency SFU ops all end a run — they interact with shared chip
 * state or the SIMT stack and must go through the per-instruction path.
 *
 * This pass classifies every CFG basic block: the length of its maximal
 * fusible prefix, why the prefix ends, whether the block is proven
 * warp-uniform (it lies in no divergent branch's influence region from
 * any entry — the uniformity pass), and how many of its definitions are
 * dead on every path (the liveness pass). The per-op predicate
 * fusibleOp() is shared with the engine's block-table compiler so the
 * advisory numbers here and the executable table always agree.
 */

#ifndef UKSIM_ANALYSIS_FUSION_HPP
#define UKSIM_ANALYSIS_FUSION_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simt/analysis/liveness.hpp"
#include "simt/analysis/uniformity.hpp"
#include "simt/cfg.hpp"
#include "simt/program.hpp"

namespace uksim::analysis {

/** Why a block's fusible prefix ends. */
enum class FusionExit : uint8_t {
    BlockEnd,   ///< every instruction in the block is fusible
    Branch,     ///< Bra terminator (SIMT-stack interaction)
    ThreadExit, ///< exit (retires lanes / warps)
    Barrier,    ///< bar (parks the warp, releases partners)
    Memory,     ///< Ld / St / atomic (shared state, wake-ups, faults)
    Spawn,      ///< spawn (FIFO push, chip-level warp formation)
    Sfu,        ///< div / rem / sqrt / rcp (multi-cycle issue latency)
    Operand,    ///< operand shape the fused ALU path cannot prove safe
};

const char *fusionExitName(FusionExit exit);

/** Fusion classification of one basic block. */
struct BlockFusion {
    int block = -1;
    uint32_t first = 0;         ///< pc of the first instruction
    uint32_t last = 0;          ///< pc of the last instruction
    uint32_t fusibleOps = 0;    ///< maximal fusible prefix length
    FusionExit exit = FusionExit::BlockEnd;
    bool fusible = false;       ///< prefix long enough to fuse (>= 2 ops)
    bool uniform = false;       ///< in no divergent influence region
    uint32_t deadDefs = 0;      ///< dead definitions inside the block
};

struct FusionResult {
    std::vector<BlockFusion> blocks;    ///< block-id order
    size_t fusibleBlockCount() const;
    size_t fusibleOpCount() const;
};

/**
 * May this single instruction execute inside a fused run? True only for
 * single-cycle ALU / predicate / nop work whose operand shape the
 * per-instruction engine is guaranteed to execute without raising a
 * guest fault or touching shared chip state.
 */
bool fusibleOp(const Instruction &inst);

/** Classify every basic block of @p program. */
FusionResult analyzeFusion(const Program &program, const Cfg &cfg,
                           const UniformityResult &uniformity,
                           const LivenessResult &liveness);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_FUSION_HPP
