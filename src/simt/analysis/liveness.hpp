/**
 * @file
 * Backward liveness analysis and the dead-definition lint.
 *
 * Classic may-liveness over the CFG, per entry point, using the shared
 * dataflow engine in backward mode: a register / predicate is live at a
 * point when some path from that point reads it before an unguarded
 * redefinition (a guarded `@p mov` does not kill — lanes with the guard
 * false keep the old value).
 *
 * The client lint reports *dead definitions*: side-effect-free
 * instructions (ALU, mov/cvt/selp, scalar loads, setp/vote) whose
 * result is live on no path. A pc reachable from several entry points
 * is only reported when the definition is dead from every one of them —
 * a helper block shared by a launch kernel and a µ-kernel often feeds a
 * use that exists in only one of the two.
 */

#ifndef UKSIM_ANALYSIS_LIVENESS_HPP
#define UKSIM_ANALYSIS_LIVENESS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "simt/cfg.hpp"
#include "simt/program.hpp"

namespace uksim::analysis {

/** A definition whose result is never read on any path. */
struct DeadDef {
    uint32_t pc = 0;
    int line = 0;
    int block = -1;
    bool isPred = false;    ///< predicate (pN) vs general register (rN)
    int index = 0;          ///< register / predicate number
    std::vector<std::string> entries;   ///< entries it is dead from
};

struct LivenessResult {
    std::vector<DeadDef> deadDefs;      ///< pc order
};

/** Solve liveness from every entry and collect dead definitions. */
LivenessResult analyzeLiveness(const Program &program, const Cfg &cfg);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_LIVENESS_HPP
