/**
 * @file
 * Uniformity taint fixpoint (see uniformity.hpp for the model).
 */

#include "simt/analysis/uniformity.hpp"

#include <algorithm>
#include <array>

#include "simt/analysis/dataflow.hpp"
#include "simt/analysis/entries.hpp"

namespace uksim::analysis {

namespace {

/** Per-point taint state: a provenance mask per register / predicate. */
struct TaintState {
    std::array<uint16_t, kMaxRegisters> regs{};
    std::array<uint16_t, kNumPredicates> preds{};
};

struct TaintDomain {
    using State = TaintState;

    const Cfg *cfg = nullptr;
    /** Blocks currently known to run under divergent control. */
    const std::set<int> *divBlocks = nullptr;

    State boundary() const { return {}; }

    bool merge(State &into, const State &from, bool /*widen*/) const
    {
        bool changed = false;
        for (int r = 0; r < kMaxRegisters; r++) {
            const uint16_t m = into.regs[r] | from.regs[r];
            changed |= m != into.regs[r];
            into.regs[r] = m;
        }
        for (int p = 0; p < kNumPredicates; p++) {
            const uint16_t m = into.preds[p] | from.preds[p];
            changed |= m != into.preds[p];
            into.preds[p] = m;
        }
        return changed;
    }

    uint16_t operandTaint(const Operand &o, const State &s) const
    {
        switch (o.kind) {
          case OperandKind::Reg:
            return o.reg >= 0 && o.reg < kMaxRegisters ? s.regs[o.reg]
                                                       : 0;
          case OperandKind::Pred:
            return o.reg >= 0 && o.reg < kNumPredicates ? s.preds[o.reg]
                                                        : 0;
          case OperandKind::Special:
            switch (o.sreg) {
              case SpecialReg::Tid:          return kDivTid;
              case SpecialReg::LaneId:       return kDivLane;
              case SpecialReg::Slot:         return kDivSlot;
              case SpecialReg::SpawnMemAddr: return kDivSpawnAddr;
              // %ntid, %ctaid, %warpid, %smid are identical on every
              // lane of a warp (blocks are warp-multiples).
              default:                       return 0;
            }
          default:
            return 0;
        }
    }

    void transfer(uint32_t pc, const Instruction &inst, State &s) const
    {
        // Any definition inside a divergent branch's influence region
        // mixes per-path values at the rejoin point.
        const uint16_t ctl =
            divBlocks->count(cfg->blockOf(pc)) ? kDivControl : 0;
        // A guarded def keeps the old value on lanes whose guard is
        // false, so the result also depends on the guard predicate.
        uint16_t guard = 0;
        if (inst.guardPred >= 0 && inst.guardPred < kNumPredicates)
            guard = s.preds[inst.guardPred];

        auto defReg = [&](int r, int width, uint16_t taint) {
            for (int i = r; i < r + width && i >= 0 && i < kMaxRegisters;
                 i++) {
                uint16_t t = taint | ctl | guard;
                if (inst.guardPred >= 0)
                    t |= s.regs[i];     // old value may survive
                s.regs[i] = t;
            }
        };
        auto defPred = [&](int p, uint16_t taint) {
            if (p < 0 || p >= kNumPredicates)
                return;
            uint16_t t = taint | ctl | guard;
            if (inst.guardPred >= 0)
                t |= s.preds[p];
            s.preds[p] = t;
        };

        switch (inst.op) {
          case Opcode::SetP:
            defPred(inst.dst, operandTaint(inst.src[0], s) |
                                  operandTaint(inst.src[1], s));
            break;
          case Opcode::VoteAll:
            // The vote result is identical on every lane that executes
            // it: the operand's lane-variance is voted away.
            defPred(inst.dst, 0);
            break;
          case Opcode::SelP:
            if (inst.dst >= 0) {
                defReg(inst.dst, 1,
                       operandTaint(inst.src[0], s) |
                           operandTaint(inst.src[1], s) |
                           operandTaint(inst.src[2], s));
            }
            break;
          case Opcode::Ld: {
            const uint16_t addr = operandTaint(inst.src[0], s);
            uint16_t taint;
            if (inst.space == MemSpace::Local ||
                inst.space == MemSpace::Spawn) {
                taint = kDivMemory;     // per-thread backing store
            } else if (addr != 0) {
                taint = addr | kDivMemory;  // lane-varying address
            } else {
                taint = 0;  // same address on every lane -> same value
            }
            defReg(inst.dst, inst.vecWidth, taint);
            break;
          }
          case Opcode::AtomAdd:
          case Opcode::AtomExch:
          case Opcode::AtomCas:
            // Returns the pre-op value: distinct per lane by design.
            defReg(inst.dst, 1, kDivAtomic);
            break;
          case Opcode::St:
          case Opcode::Bra:
          case Opcode::Exit:
          case Opcode::Bar:
          case Opcode::Nop:
          case Opcode::Spawn:
            break;
          default:
            if (inst.dst >= 0) {
                uint16_t t = 0;
                for (const Operand &o : inst.src)
                    t |= operandTaint(o, s);
                defReg(inst.dst, 1, t);
            }
            break;
        }
    }
};

/** Guard-predicate taint at each branch point of one solved entry. */
struct EntrySolve {
    const Program &prog;
    const Cfg &cfg;
    const EntryPoint &entry;
    std::set<int> divBlocks;
    TaintDomain dom;
    DataflowSolver<TaintDomain> solver;

    EntrySolve(const Program &p, const Cfg &c, const EntryPoint &e)
        : prog(p), cfg(c), entry(e), dom{&c, &divBlocks},
          solver(p, c, dom)
    {
    }

    /**
     * Visit every conditional branch / guarded exit reachable from the
     * entry with the taint of its guard predicate at that point.
     */
    template <typename Fn>
    void forEachBranch(Fn &&fn)
    {
        for (int b : solver.reachable()) {
            TaintState s = solver.stateAt(b);
            const BasicBlock &bb = cfg.blocks()[b];
            for (uint32_t pc = solver.firstPc(b); pc <= bb.last; pc++) {
                const Instruction &inst = prog.code[pc];
                const bool isBranch =
                    inst.op == Opcode::Bra || inst.op == Opcode::Exit ||
                    inst.op == Opcode::Spawn;
                if (isBranch) {
                    uint16_t taint = 0;
                    if (inst.guardPred >= 0 &&
                        inst.guardPred < kNumPredicates) {
                        taint = s.preds[inst.guardPred];
                    }
                    fn(pc, b, inst, taint);
                }
                dom.transfer(pc, inst, s);
            }
        }
    }

    void run()
    {
        // Two-level fixpoint: solving taint can prove more branches
        // divergent, whose influence regions add control taint, which
        // can make further branches divergent. The region set only
        // grows, so this converges in at most |blocks| rounds.
        for (;;) {
            solver.solveForward(entry.pc);
            std::set<int> next = divBlocks;
            forEachBranch([&](uint32_t, int b, const Instruction &inst,
                              uint16_t taint) {
                if (inst.op != Opcode::Bra || inst.guardPred < 0 ||
                    taint == 0) {
                    return;
                }
                // Only rejoining branches mix values (see header).
                if (cfg.immediatePostDominator(b) == Cfg::kVirtualExit)
                    return;
                for (int r : cfg.influenceRegion(b))
                    next.insert(r);
            });
            if (next == divBlocks)
                break;
            divBlocks.swap(next);
        }
    }
};

} // anonymous namespace

std::string
divergenceSourceNames(uint16_t mask)
{
    static const std::pair<uint16_t, const char *> kNames[] = {
        {kDivTid, "tid"},           {kDivLane, "laneid"},
        {kDivSlot, "slot"},         {kDivSpawnAddr, "spawnaddr"},
        {kDivMemory, "memory"},     {kDivAtomic, "atomic"},
        {kDivControl, "control"},
    };
    std::string out;
    for (const auto &[bit, name] : kNames) {
        if (mask & bit) {
            if (!out.empty())
                out += ",";
            out += name;
        }
    }
    return out;
}

size_t
UniformityResult::divergentBranchCount() const
{
    size_t n = 0;
    for (const BranchInfo &b : branches)
        n += b.divergent ? 1 : 0;
    return n;
}

size_t
UniformityResult::uniformBranchCount() const
{
    size_t n = 0;
    for (const BranchInfo &b : branches)
        n += (b.conditional && !b.divergent) ? 1 : 0;
    return n;
}

const BranchInfo *
UniformityResult::branchAt(uint32_t pc) const
{
    for (const BranchInfo &b : branches)
        if (b.pc == pc)
            return &b;
    return nullptr;
}

UniformityResult
analyzeUniformity(const Program &program, const Cfg &cfg)
{
    UniformityResult result;
    std::map<uint32_t, BranchInfo> byPc;

    for (const EntryPoint &entry : entryPoints(program)) {
        EntrySolve solve(program, cfg, entry);
        solve.run();
        result.divergentBlocks[entry.name] = solve.divBlocks;

        solve.forEachBranch([&](uint32_t pc, int b,
                                const Instruction &inst, uint16_t taint) {
            if (inst.op == Opcode::Spawn) {
                result.spawnGuards[pc] |= taint;
                return;
            }
            BranchInfo &info = byPc[pc];
            info.pc = pc;
            info.line = inst.line;
            info.block = b;
            info.conditional = inst.guardPred >= 0;
            info.isExit = inst.op == Opcode::Exit;
            if (std::find(info.entries.begin(), info.entries.end(),
                          entry.name) == info.entries.end()) {
                info.entries.push_back(entry.name);
            }
            if (info.conditional && taint != 0) {
                info.divergent = true;
                info.sources |= taint;
            }
        });
    }

    // Unguarded exits are not branch points; everything else is
    // reported, including unconditional bra (trivially uniform).
    for (auto &[pc, info] : byPc) {
        if (info.isExit && !info.conditional)
            continue;
        result.branches.push_back(std::move(info));
    }
    return result;
}

} // namespace uksim::analysis
