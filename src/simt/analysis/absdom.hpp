/**
 * @file
 * Abstract value domain shared by the verifier and the analysis passes.
 *
 * PR 1's verifier resolved addresses with a constant-only lattice
 * (Top | Const | SpawnRaw+c | StatePtr+c); this generalizes the offset
 * to a u32 *interval* and adds a fourth symbolic base for the canonical
 * per-thread shared-memory addressing pattern `%slot * stride + off`:
 *
 *     value =  base  +  [lo, hi]
 *     base  ∈  { Num, SpawnRaw, StatePtr, Slot·scale }
 *
 * - Num:      a plain number; [lo, hi] bounds the 32-bit value itself.
 *   A singleton interval is exactly the old Const.
 * - SpawnRaw: the raw %spawnaddr value — the state-record base in a
 *   launch thread's view, the warp-formation word in a µ-kernel.
 * - StatePtr: the parent's spawn-state record base (what `.spawn_state`
 *   bounds are checked against).
 * - Slot:     %slot * scale; when scale equals the program's declared
 *   .shared_per_thread stride, offsets within [0, stride) are provably
 *   inside the thread's own shared slice.
 *
 * Arithmetic folds intervals through the integer ALU ops the assembler
 * emits for addressing (add/sub/mul/div/rem/min/max/and/or/xor/shl/shr/
 * mad/selp). Offsets are treated as non-wrapping: any computation that
 * could exceed 32 bits degrades to Top rather than modelling wraparound
 * (a kernel relying on address wraparound is beyond lint scope).
 *
 * The interval join has unbounded ascending chains under loop-carried
 * increments, so fixpoints over this domain must widen: widenValue()
 * pushes any grown bound to the lattice extreme (see dataflow.hpp).
 */

#ifndef UKSIM_ANALYSIS_ABSDOM_HPP
#define UKSIM_ANALYSIS_ABSDOM_HPP

#include <array>
#include <cstdint>
#include <string>

#include "simt/isa.hpp"

namespace uksim::analysis {

/** Inclusive u32 interval [lo, hi], kept in u64 to simplify overflow. */
struct Interval {
    static constexpr uint64_t kMaxU32 = 0xffffffffULL;

    uint64_t lo = 0;
    uint64_t hi = kMaxU32;

    static Interval full() { return {0, kMaxU32}; }
    static Interval konst(uint32_t v) { return {v, v}; }
    static Interval range(uint64_t lo, uint64_t hi) { return {lo, hi}; }

    bool isFull() const { return lo == 0 && hi == kMaxU32; }
    bool isConst() const { return lo == hi; }

    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Interval &o) const { return !(*this == o); }
};

/** Convex hull of two intervals. */
Interval joinInterval(const Interval &a, const Interval &b);

/** An abstract register value: symbolic base plus interval offset. */
struct AbsValue {
    enum class Base : uint8_t {
        Num,        ///< plain number, interval bounds the value
        SpawnRaw,   ///< raw %spawnaddr + interval
        StatePtr,   ///< spawn-state record base + interval
        Slot,       ///< %slot * scale + interval
    };

    Base base = Base::Num;
    uint32_t scale = 0;     ///< Slot base only: the %slot multiplier
    Interval iv = Interval::full();

    static AbsValue top() { return {}; }
    static AbsValue konst(uint32_t v)
    {
        return {Base::Num, 0, Interval::konst(v)};
    }
    static AbsValue make(Base b, Interval iv, uint32_t scale = 0)
    {
        return {b, scale, iv};
    }

    bool isTop() const { return base == Base::Num && iv.isFull(); }
    bool isConst() const { return base == Base::Num && iv.isConst(); }
    /** True for the pointer-like bases checked against declared sizes. */
    bool isPointer() const
    {
        return base == Base::SpawnRaw || base == Base::StatePtr;
    }

    bool operator==(const AbsValue &o) const
    {
        return base == o.base && scale == o.scale && iv == o.iv;
    }
    bool operator!=(const AbsValue &o) const { return !(*this == o); }

    /** Debug rendering, e.g. "state+[0,12]" or "[64,64]". */
    std::string str() const;
};

/** Lattice join: same base joins intervals, mixed bases degrade to Top. */
AbsValue joinValue(const AbsValue &a, const AbsValue &b);

/**
 * Widening join for loop fixpoints: like joinValue, but any bound of
 * @p next that grew past @p prev jumps to the lattice extreme so chains
 * like i0=0, i1=[0,1], i2=[0,2], ... terminate.
 */
AbsValue widenValue(const AbsValue &prev, const AbsValue &next);

/** Per-lane abstract register file. */
using AbsRegFile = std::array<AbsValue, kMaxRegisters>;

/**
 * Abstract value of @p o under register file @p regs. %spawnaddr
 * evaluates to StatePtr in a launch thread and SpawnRaw in a µ-kernel
 * (@p microKernel); %slot evaluates to Slot·1.
 */
AbsValue evalOperand(const Operand &o, const AbsRegFile &regs,
                     bool microKernel);

/**
 * Abstract value written to @p inst's (first) destination register, for
 * ALU / mov / cvt / selp instructions. Returns Top for anything the
 * domain does not fold.
 */
AbsValue evalArith(const Instruction &inst, const AbsRegFile &regs,
                   bool microKernel);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_ABSDOM_HPP
