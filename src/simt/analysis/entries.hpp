/**
 * @file
 * Entry-point enumeration shared by the analysis passes.
 *
 * Every pass runs once per entry point: the launch entry plus each
 * declared `.microkernel` (spawned threads start there with a fresh
 * register file, so dataflow facts never cross an entry boundary).
 */

#ifndef UKSIM_ANALYSIS_ENTRIES_HPP
#define UKSIM_ANALYSIS_ENTRIES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "simt/program.hpp"

namespace uksim::analysis {

/** One analysis entry point (launch entry or a .microkernel). */
struct EntryPoint {
    uint32_t pc = 0;
    std::string name;
    bool isMicroKernel = false;
    int mkIndex = -1;   ///< index in program.microKernels, -1 for launch
};

/** Launch entry first, then µ-kernels in declaration order. */
inline std::vector<EntryPoint>
entryPoints(const Program &prog)
{
    std::vector<EntryPoint> out;
    EntryPoint launch;
    launch.pc = prog.entryPc;
    launch.name = prog.entryName.empty() ? "<entry>" : prog.entryName;
    out.push_back(std::move(launch));
    for (size_t i = 0; i < prog.microKernels.size(); i++) {
        EntryPoint mk;
        mk.pc = prog.microKernels[i].pc;
        mk.name = prog.microKernels[i].name;
        mk.isMicroKernel = true;
        mk.mkIndex = static_cast<int>(i);
        out.push_back(std::move(mk));
    }
    return out;
}

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_ENTRIES_HPP
