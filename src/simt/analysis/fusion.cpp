/**
 * @file
 * Fusion-legality analysis implementation.
 */

#include "simt/analysis/fusion.hpp"

#include "simt/isa.hpp"

namespace uksim::analysis {

const char *
fusionExitName(FusionExit exit)
{
    switch (exit) {
      case FusionExit::BlockEnd:   return "block_end";
      case FusionExit::Branch:     return "branch";
      case FusionExit::ThreadExit: return "exit";
      case FusionExit::Barrier:    return "barrier";
      case FusionExit::Memory:     return "memory";
      case FusionExit::Spawn:      return "spawn";
      case FusionExit::Sfu:        return "sfu";
      case FusionExit::Operand:    return "operand";
    }
    return "?";
}

size_t
FusionResult::fusibleBlockCount() const
{
    size_t n = 0;
    for (const BlockFusion &b : blocks)
        n += b.fusible ? 1 : 0;
    return n;
}

size_t
FusionResult::fusibleOpCount() const
{
    size_t n = 0;
    for (const BlockFusion &b : blocks)
        n += b.fusibleOps;
    return n;
}

namespace {

/** Operand the scalar ALU path reads without raising BadOperandKind. */
bool
readableOperand(const Operand &op)
{
    switch (op.kind) {
      case OperandKind::Reg:
        return op.reg >= 0 && op.reg < kMaxRegisters;
      case OperandKind::Imm:
      case OperandKind::Special:
        return true;
      default:
        return false;
    }
}

bool
validPredIndex(int p)
{
    return p >= 0 && p < kNumPredicates;
}

/** Why this non-fusible instruction ends the run. */
FusionExit
classifyExit(const Instruction &inst)
{
    if (inst.op == Opcode::Bra)
        return FusionExit::Branch;
    if (inst.op == Opcode::Exit)
        return FusionExit::ThreadExit;
    if (inst.op == Opcode::Bar)
        return FusionExit::Barrier;
    if (inst.isMemory())
        return FusionExit::Memory;
    if (inst.op == Opcode::Spawn)
        return FusionExit::Spawn;
    if (inst.isSfu())
        return FusionExit::Sfu;
    return FusionExit::Operand;
}

} // anonymous namespace

bool
fusibleOp(const Instruction &inst)
{
    // A fused run issues one op per cycle with no SIMT-stack pops, so
    // only single-cycle (issueLatency == 1) warp-private work qualifies.
    if (inst.isControlFlow() || inst.isMemory() || inst.isSfu() ||
        inst.op == Opcode::Bar || inst.op == Opcode::Spawn) {
        return false;
    }
    if (inst.guardPred >= 0 && !validPredIndex(inst.guardPred))
        return false;
    switch (inst.op) {
      case Opcode::Nop:
        return true;
      case Opcode::SetP:
        // execAlu reads src[0] and src[1] and writes predicate dst.
        return readableOperand(inst.src[0]) &&
               readableOperand(inst.src[1]) && validPredIndex(inst.dst);
      case Opcode::SelP:
        // Reads src[0]/src[1], selects on predicate src[2].
        return readableOperand(inst.src[0]) &&
               readableOperand(inst.src[1]) &&
               inst.src[2].kind == OperandKind::Pred &&
               validPredIndex(inst.src[2].reg) && inst.dst >= 0 &&
               inst.dst < kMaxRegisters;
      case Opcode::VoteAll:
        // Warp-AND over predicate src[0] into predicate dst.
        return inst.src[0].kind == OperandKind::Pred &&
               validPredIndex(inst.src[0].reg) && validPredIndex(inst.dst);
      default: {
        // Plain ALU / mov / cvt: src[0] is always read; src[1]/src[2]
        // only when the decode table marks them readable, and a
        // non-readable kind there simply means "unused" (never a fault).
        if (!readableOperand(inst.src[0]))
            return false;
        const Operand &b = inst.src[1];
        if (b.kind == OperandKind::Reg &&
            (b.reg < 0 || b.reg >= kMaxRegisters)) {
            return false;
        }
        const Operand &c = inst.src[2];
        if (c.kind == OperandKind::Reg &&
            (c.reg < 0 || c.reg >= kMaxRegisters)) {
            return false;
        }
        return inst.dst >= 0 && inst.dst < kMaxRegisters;
      }
    }
}

FusionResult
analyzeFusion(const Program &program, const Cfg &cfg,
              const UniformityResult &uniformity,
              const LivenessResult &liveness)
{
    FusionResult result;
    const std::vector<BasicBlock> &blocks = cfg.blocks();
    result.blocks.reserve(blocks.size());
    for (size_t id = 0; id < blocks.size(); id++) {
        const BasicBlock &bb = blocks[id];
        BlockFusion f;
        f.block = static_cast<int>(id);
        f.first = bb.first;
        f.last = bb.last;
        f.exit = FusionExit::BlockEnd;
        for (uint32_t pc = bb.first; pc <= bb.last; pc++) {
            if (!fusibleOp(program.at(pc))) {
                f.exit = classifyExit(program.at(pc));
                break;
            }
            f.fusibleOps++;
        }
        // A fused execution replaces >= 2 per-instruction issues;
        // anything shorter gains nothing over the per-cycle path.
        f.fusible = f.fusibleOps >= 2;
        f.uniform = true;
        for (const auto &[entry, divergent] : uniformity.divergentBlocks) {
            if (divergent.count(f.block) > 0) {
                f.uniform = false;
                break;
            }
        }
        for (const DeadDef &dd : liveness.deadDefs)
            f.deadDefs += dd.block == f.block ? 1 : 0;
        result.blocks.push_back(f);
    }
    return result;
}

} // namespace uksim::analysis
