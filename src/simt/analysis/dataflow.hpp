/**
 * @file
 * Reusable iterative dataflow engine over the program CFG.
 *
 * The verifier (PR 1) and the post-dominator solver (cfg.cpp) each
 * hand-rolled a worklist fixpoint; this factors the engine out so new
 * client passes — uniformity, value-range, liveness — are just a
 * lattice plus transfer functions. A Domain supplies:
 *
 *     struct Domain {
 *         struct State;                       // the lattice element
 *         State boundary() const;             // entry (fwd) / exit (bwd)
 *         // Join `from` into `into`; true when `into` changed. When
 *         // `widen` is set the merge must accelerate (jump grown bounds
 *         // to lattice extremes) so infinite-height domains terminate.
 *         bool merge(State &into, const State &from, bool widen) const;
 *         // Apply one instruction. Forward solves call this in pc
 *         // order, backward solves in reverse pc order.
 *         void transfer(uint32_t pc, const Instruction &inst,
 *                       State &state) const;
 *     };
 *
 * The solver runs per entry point (launch entry or a `.microkernel`):
 * only blocks reachable from the entry participate, and the entry block
 * is walked from the entry pc itself (the CFG partitions the whole
 * instruction stream, so an entry in mid-stream can share a block with
 * preceding foreign instructions).
 *
 * Termination: the worklist converges for any monotone transfer over a
 * finite-height lattice, including self-loop blocks and irreducible
 * regions (the engine is order-insensitive, not structural). For
 * infinite-height domains (intervals) the engine invokes merge with
 * widen=true once a block's input has changed kWidenAfter times.
 */

#ifndef UKSIM_ANALYSIS_DATAFLOW_HPP
#define UKSIM_ANALYSIS_DATAFLOW_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "simt/cfg.hpp"
#include "simt/program.hpp"

namespace uksim::analysis {

/** Block-input changes tolerated before merges start widening. */
constexpr int kWidenAfter = 8;

template <typename Domain>
class DataflowSolver
{
  public:
    using State = typename Domain::State;

    DataflowSolver(const Program &program, const Cfg &cfg,
                   const Domain &domain)
        : prog_(program), cfg_(cfg), dom_(domain)
    {
    }

    /** Blocks reachable from the entry passed to the last solve. */
    const std::set<int> &reachable() const { return reachable_; }

    /** True when block @p b received a state during the last solve. */
    bool hasState(int b) const { return state_.count(b) != 0; }

    /**
     * Fixpoint state at block @p b: the IN state (before the first
     * instruction) after a forward solve, the OUT state (after the last
     * instruction, i.e. live-out for liveness) after a backward solve.
     */
    const State &stateAt(int b) const { return state_.at(b); }

    /**
     * First pc the solver considers inside block @p b: the entry pc for
     * the entry block, the block's first instruction otherwise.
     */
    uint32_t firstPc(int b) const
    {
        const BasicBlock &bb = cfg_.blocks()[b];
        if (b == startBlock_ && entryPc_ > bb.first)
            return entryPc_;
        return bb.first;
    }

    /** Forward fixpoint from @p entryPc. */
    void solveForward(uint32_t entryPc)
    {
        begin(entryPc);
        reachable_.insert(startBlock_);
        state_[startBlock_] = dom_.boundary();
        std::deque<int> work{startBlock_};
        std::set<int> queued{startBlock_};
        while (!work.empty()) {
            const int b = work.front();
            work.pop_front();
            queued.erase(b);

            State s = state_.at(b);
            const BasicBlock &bb = cfg_.blocks()[b];
            for (uint32_t pc = firstPc(b); pc <= bb.last; pc++)
                dom_.transfer(pc, prog_.code[pc], s);

            for (int succ : bb.successors) {
                if (succ == Cfg::kVirtualExit)
                    continue;
                if (propagate(succ, s) && queued.insert(succ).second)
                    work.push_back(succ);
            }
        }
    }

    /**
     * Backward fixpoint over the blocks reachable from @p entryPc. All
     * reachable blocks are seeded with the boundary state (a block with
     * no reachable successor — a virtual-exit block, or a cycle with no
     * exit — takes the boundary as its OUT), then states propagate
     * along reverse edges until fixpoint.
     */
    void solveBackward(uint32_t entryPc)
    {
        begin(entryPc);
        computeReachable();
        std::deque<int> work;
        std::set<int> queued;
        for (int b : reachable_) {
            state_[b] = dom_.boundary();
            work.push_back(b);
            queued.insert(b);
        }
        while (!work.empty()) {
            const int b = work.front();
            work.pop_front();
            queued.erase(b);

            State s = state_.at(b);
            const BasicBlock &bb = cfg_.blocks()[b];
            const uint32_t first = firstPc(b);
            for (uint32_t pc = bb.last + 1; pc-- > first;)
                dom_.transfer(pc, prog_.code[pc], s);

            for (int pred : cfg_.predecessors(b)) {
                if (!reachable_.count(pred))
                    continue;
                // The entry block's pre-entry instructions belong to a
                // different entry point; edges into mid-block entry pcs
                // do not exist, so a predecessor of the entry block
                // jumps to its first pc — only propagate when the walk
                // covers the whole block.
                if (b == startBlock_ &&
                    first != cfg_.blocks()[b].first) {
                    continue;
                }
                if (propagate(pred, s) && queued.insert(pred).second)
                    work.push_back(pred);
            }
        }
    }

  private:
    void begin(uint32_t entryPc)
    {
        entryPc_ = entryPc;
        startBlock_ = cfg_.blockOf(entryPc);
        state_.clear();
        reachable_.clear();
        mergeCount_.clear();
    }

    void computeReachable()
    {
        std::deque<int> work{startBlock_};
        reachable_.insert(startBlock_);
        while (!work.empty()) {
            const int b = work.front();
            work.pop_front();
            for (int s : cfg_.blocks()[b].successors) {
                if (s != Cfg::kVirtualExit &&
                    reachable_.insert(s).second) {
                    work.push_back(s);
                }
            }
        }
    }

    /** Merge @p s into block @p b's stored state; true when changed. */
    bool propagate(int b, const State &s)
    {
        reachable_.insert(b);
        auto it = state_.find(b);
        if (it == state_.end()) {
            state_.emplace(b, s);
            return true;
        }
        const bool widen = ++mergeCount_[b] > kWidenAfter;
        return dom_.merge(it->second, s, widen);
    }

    const Program &prog_;
    const Cfg &cfg_;
    const Domain &dom_;
    uint32_t entryPc_ = 0;
    int startBlock_ = 0;
    std::set<int> reachable_;
    std::map<int, State> state_;
    std::map<int, int> mergeCount_;
};

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_DATAFLOW_HPP
