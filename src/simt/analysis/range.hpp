/**
 * @file
 * Value-range bounds checking for memory accesses.
 *
 * PR 1's verifier could only check an access when its address resolved
 * to a single constant. With the interval domain (absdom.hpp) an access
 * is classified by the *range* of byte offsets it may touch:
 *
 *   - ProvedConst:  in bounds, offset is a single constant (what the
 *                   old constant-only checker could already do);
 *   - ProvedRange:  in bounds for every value of a non-trivial interval
 *                   or a symbolic %slot-stride pattern — the new power;
 *   - OutOfBounds:  *every* value in the range overruns the segment
 *                   (a definite bug, reported as a diagnostic);
 *   - Unproven:     the range straddles the bound or the base did not
 *                   resolve; possible-but-unproven overruns stay silent
 *                   to keep the lint usable on real kernels;
 *   - Unbounded:    the space has no declared size to check against
 *                   (global memory / atomics).
 *
 * Definite-OOB claims are deliberately conservative about 32-bit
 * wraparound: when the top of the range could wrap past 2^32 the access
 * is left Unproven rather than flagged.
 */

#ifndef UKSIM_ANALYSIS_RANGE_HPP
#define UKSIM_ANALYSIS_RANGE_HPP

#include <cstddef>
#include <cstdint>

#include "simt/analysis/absdom.hpp"

namespace uksim::analysis {

/** Static classification of one memory access. */
enum class AccessProof : uint8_t {
    Unbounded,
    ProvedConst,
    ProvedRange,
    Unproven,
    OutOfBounds,
};

/** Human-readable proof name ("const", "range", ...). */
const char *accessProofName(AccessProof p);

/** Outcome of checking one access against a segment bound. */
struct AccessCheck {
    AccessProof proof = AccessProof::Unproven;
    int64_t lo = 0;         ///< lowest possible starting byte offset
    int64_t hi = 0;         ///< highest possible starting byte offset
    uint32_t limit = 0;     ///< segment size the access was checked against
};

/**
 * Check an access of @p bytes at offset `iv + memOffset` against a
 * segment of @p limit bytes. @p iv is the interval part of the resolved
 * base (the symbolic base — StatePtr, Slot·stride — is the segment
 * start and is the caller's concern).
 */
AccessCheck checkOffsetRange(const Interval &iv, int32_t memOffset,
                             uint32_t bytes, uint32_t limit);

/** Per-program access statistics (one entry per memory instruction). */
struct AccessStats {
    size_t total = 0;
    size_t unbounded = 0;
    size_t provedConst = 0;
    size_t provedRange = 0;
    size_t unproven = 0;
    size_t outOfBounds = 0;
};

/**
 * Fold one per-entry classification into the per-pc summary: a pc
 * reachable from several entries keeps the weakest claim (OutOfBounds >
 * Unproven > ProvedRange > ProvedConst > Unbounded).
 */
AccessProof mergeProof(AccessProof a, AccessProof b);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_RANGE_HPP
