/**
 * @file
 * Backward liveness solve and dead-definition collection.
 */

#include "simt/analysis/liveness.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "simt/analysis/dataflow.hpp"
#include "simt/analysis/entries.hpp"

namespace uksim::analysis {

namespace {

/** Live sets as bitmasks: bit r of regs / bit p of preds. */
struct LiveState {
    uint64_t regs = 0;
    uint16_t preds = 0;
};

struct LiveDomain {
    using State = LiveState;

    /** Exit boundary: nothing is live after the program ends. */
    State boundary() const { return {}; }

    bool merge(State &into, const State &from, bool /*widen*/) const
    {
        const State before = into;
        into.regs |= from.regs;
        into.preds |= from.preds;
        return into.regs != before.regs || into.preds != before.preds;
    }

    static void useReg(State &s, int r, int width = 1)
    {
        for (int i = r; i < r + width; i++)
            if (i >= 0 && i < kMaxRegisters)
                s.regs |= uint64_t{1} << i;
    }
    static void usePred(State &s, int p)
    {
        if (p >= 0 && p < kNumPredicates)
            s.preds |= uint16_t(1) << p;
    }

    void transfer(uint32_t /*pc*/, const Instruction &inst,
                  State &s) const
    {
        // live-before = (live-after \ unguarded defs) ∪ uses. A guarded
        // def is not a kill: lanes with the guard false keep the value.
        const bool kills = inst.guardPred < 0;
        switch (inst.op) {
          case Opcode::SetP:
          case Opcode::VoteAll:
            if (kills && inst.dst >= 0 && inst.dst < kNumPredicates)
                s.preds &= uint16_t(~(uint16_t(1) << inst.dst));
            break;
          case Opcode::Ld:
          case Opcode::AtomAdd:
          case Opcode::AtomExch:
          case Opcode::AtomCas: {
            const int w = inst.op == Opcode::Ld ? inst.vecWidth : 1;
            if (kills) {
                for (int i = inst.dst; i < inst.dst + w; i++)
                    if (i >= 0 && i < kMaxRegisters)
                        s.regs &= ~(uint64_t{1} << i);
            }
            break;
          }
          case Opcode::St:
          case Opcode::Bra:
          case Opcode::Exit:
          case Opcode::Bar:
          case Opcode::Nop:
          case Opcode::Spawn:
            break;
          default:
            if (kills && inst.dst >= 0 && inst.dst < kMaxRegisters)
                s.regs &= ~(uint64_t{1} << inst.dst);
            break;
        }

        usePred(s, inst.guardPred);
        for (int i = 0; i < 3; i++) {
            const Operand &o = inst.src[i];
            if (o.kind == OperandKind::Reg) {
                const int width = (inst.op == Opcode::St && i == 1)
                                      ? inst.vecWidth
                                      : 1;
                useReg(s, o.reg, width);
            } else if (o.kind == OperandKind::Pred) {
                usePred(s, o.reg);
            }
        }
    }
};

/** The (isPred, index) a pure instruction defines, if its result is
 *  fully dead given the live-after state; nullopt otherwise. */
std::optional<std::pair<bool, int>>
deadDefinition(const Instruction &inst, const LiveState &after)
{
    switch (inst.op) {
      case Opcode::SetP:
      case Opcode::VoteAll:
        if (inst.dst >= 0 && inst.dst < kNumPredicates &&
            !(after.preds >> inst.dst & 1)) {
            return std::make_pair(true, inst.dst);
        }
        return std::nullopt;
      case Opcode::Ld: {
        // A load has no side effect; dead only when every loaded
        // register is dead.
        if (inst.dst < 0 ||
            inst.dst + inst.vecWidth > kMaxRegisters) {
            return std::nullopt;
        }
        for (int i = inst.dst; i < inst.dst + inst.vecWidth; i++)
            if (after.regs >> i & 1)
                return std::nullopt;
        return std::make_pair(false, inst.dst);
      }
      case Opcode::AtomAdd:
      case Opcode::AtomExch:
      case Opcode::AtomCas:     // memory side effect: never dead
      case Opcode::St:
      case Opcode::Bra:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
      case Opcode::Spawn:
        return std::nullopt;
      default:
        if (inst.dst >= 0 && inst.dst < kMaxRegisters &&
            !(after.regs >> inst.dst & 1)) {
            return std::make_pair(false, inst.dst);
        }
        return std::nullopt;
    }
}

} // anonymous namespace

LivenessResult
analyzeLiveness(const Program &program, const Cfg &cfg)
{
    struct PcFacts {
        std::set<std::string> reachedFrom;
        std::set<std::string> deadFrom;
        bool isPred = false;
        int index = 0;
        int block = -1;
    };
    std::map<uint32_t, PcFacts> facts;

    LiveDomain dom;
    DataflowSolver<LiveDomain> solver(program, cfg, dom);
    for (const EntryPoint &entry : entryPoints(program)) {
        solver.solveBackward(entry.pc);
        for (int b : solver.reachable()) {
            LiveState s = solver.stateAt(b);   // live-OUT of the block
            const BasicBlock &bb = cfg.blocks()[b];
            const uint32_t first = solver.firstPc(b);
            for (uint32_t pc = bb.last + 1; pc-- > first;) {
                const Instruction &inst = program.code[pc];
                auto &f = facts[pc];
                f.reachedFrom.insert(entry.name);
                if (auto dead = deadDefinition(inst, s)) {
                    f.deadFrom.insert(entry.name);
                    f.isPred = dead->first;
                    f.index = dead->second;
                    f.block = b;
                }
                dom.transfer(pc, inst, s);
            }
        }
    }

    LivenessResult result;
    for (const auto &[pc, f] : facts) {
        if (f.deadFrom.empty() || f.deadFrom != f.reachedFrom)
            continue;
        DeadDef d;
        d.pc = pc;
        d.line = program.code[pc].line;
        d.block = f.block;
        d.isPred = f.isPred;
        d.index = f.index;
        d.entries.assign(f.deadFrom.begin(), f.deadFrom.end());
        result.deadDefs.push_back(std::move(d));
    }
    return result;
}

} // namespace uksim::analysis
