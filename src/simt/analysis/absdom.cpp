/**
 * @file
 * Interval arithmetic for the abstract value domain.
 */

#include "simt/analysis/absdom.hpp"

#include <algorithm>
#include <sstream>

namespace uksim::analysis {

namespace {

constexpr uint64_t kMaxU32 = Interval::kMaxU32;

/** [lo, hi] + [lo, hi], Top on 32-bit overflow (no wraparound model). */
Interval
addIv(const Interval &a, const Interval &b)
{
    if (a.hi + b.hi > kMaxU32)
        return Interval::full();
    return {a.lo + b.lo, a.hi + b.hi};
}

/** a - b, Top when the result could go below zero. */
Interval
subIv(const Interval &a, const Interval &b)
{
    if (a.lo < b.hi)
        return Interval::full();
    return {a.lo - b.hi, a.hi - b.lo};
}

Interval
mulIv(const Interval &a, const Interval &b)
{
    // Both bounds are non-negative, so the extremes are lo*lo / hi*hi.
    if (a.hi != 0 && b.hi > kMaxU32 / a.hi)
        return Interval::full();
    return {a.lo * b.lo, a.hi * b.hi};
}

Interval
shlIv(const Interval &a, uint32_t k)
{
    k &= 31;
    if (a.hi > (kMaxU32 >> k))
        return Interval::full();
    return {a.lo << k, a.hi << k};
}

} // anonymous namespace

Interval
joinInterval(const Interval &a, const Interval &b)
{
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

AbsValue
joinValue(const AbsValue &a, const AbsValue &b)
{
    if (a.base != b.base || a.scale != b.scale)
        return AbsValue::top();
    return {a.base, a.scale, joinInterval(a.iv, b.iv)};
}

AbsValue
widenValue(const AbsValue &prev, const AbsValue &next)
{
    if (prev.base != next.base || prev.scale != next.scale)
        return AbsValue::top();
    Interval w = prev.iv;
    if (next.iv.lo < prev.iv.lo)
        w.lo = 0;
    if (next.iv.hi > prev.iv.hi)
        w.hi = kMaxU32;
    return {prev.base, prev.scale, w};
}

std::string
AbsValue::str() const
{
    std::ostringstream os;
    switch (base) {
      case Base::SpawnRaw: os << "spawnraw+"; break;
      case Base::StatePtr: os << "state+"; break;
      case Base::Slot:     os << "slot*" << scale << "+"; break;
      case Base::Num:      break;
    }
    if (iv.isFull())
        os << "top";
    else
        os << "[" << iv.lo << "," << iv.hi << "]";
    return os.str();
}

AbsValue
evalOperand(const Operand &o, const AbsRegFile &regs, bool microKernel)
{
    switch (o.kind) {
      case OperandKind::Reg:
        return o.reg >= 0 && o.reg < kMaxRegisters ? regs[o.reg]
                                                   : AbsValue::top();
      case OperandKind::Imm:
        return AbsValue::konst(o.imm);
      case OperandKind::Special:
        if (o.sreg == SpecialReg::SpawnMemAddr) {
            // In a launch thread %spawnaddr IS the state record; in a
            // spawned µ-kernel it is the formation word (Fig. 6).
            return AbsValue::make(microKernel ? AbsValue::Base::SpawnRaw
                                              : AbsValue::Base::StatePtr,
                                  Interval::konst(0));
        }
        if (o.sreg == SpecialReg::Slot) {
            return AbsValue::make(AbsValue::Base::Slot,
                                  Interval::konst(0), 1);
        }
        return AbsValue::top();
      default:
        return AbsValue::top();
    }
}

AbsValue
evalArith(const Instruction &inst, const AbsRegFile &regs,
          bool microKernel)
{
    const AbsValue a = evalOperand(inst.src[0], regs, microKernel);
    const AbsValue b = evalOperand(inst.src[1], regs, microKernel);

    if (inst.op == Opcode::Mov)
        return a;
    if (inst.op == Opcode::SelP)
        return joinValue(a, b);     // either value; keep the hull
    if (inst.type == DataType::F32)
        return AbsValue::top();     // float arithmetic is never an address

    const bool aNum = a.base == AbsValue::Base::Num;
    const bool bNum = b.base == AbsValue::Base::Num;
    const bool symA = !aNum;        // pointer-like or slot-scaled

    switch (inst.op) {
      case Opcode::Add:
        if (aNum && bNum)
            return {AbsValue::Base::Num, 0, addIv(a.iv, b.iv)};
        if (symA && bNum) {
            Interval s = addIv(a.iv, b.iv);
            return s.isFull() ? AbsValue::top()
                              : AbsValue::make(a.base, s, a.scale);
        }
        if (aNum && !bNum) {
            Interval s = addIv(a.iv, b.iv);
            return s.isFull() ? AbsValue::top()
                              : AbsValue::make(b.base, s, b.scale);
        }
        return AbsValue::top();
      case Opcode::Sub:
        if (aNum && bNum)
            return {AbsValue::Base::Num, 0, subIv(a.iv, b.iv)};
        if (symA && bNum) {
            Interval s = subIv(a.iv, b.iv);
            return s.isFull() ? AbsValue::top()
                              : AbsValue::make(a.base, s, a.scale);
        }
        return AbsValue::top();
      case Opcode::Mul:
        if (aNum && bNum)
            return {AbsValue::Base::Num, 0, mulIv(a.iv, b.iv)};
        // %slot * const stride (either operand order): scale the base.
        if (a.base == AbsValue::Base::Slot && b.isConst() &&
            b.iv.lo > 0 && a.scale <= kMaxU32 / b.iv.lo) {
            Interval s = mulIv(a.iv, b.iv);
            if (!s.isFull()) {
                return AbsValue::make(AbsValue::Base::Slot, s,
                                      a.scale * uint32_t(b.iv.lo));
            }
        }
        if (b.base == AbsValue::Base::Slot && a.isConst() &&
            a.iv.lo > 0 && b.scale <= kMaxU32 / a.iv.lo) {
            Interval s = mulIv(a.iv, b.iv);
            if (!s.isFull()) {
                return AbsValue::make(AbsValue::Base::Slot, s,
                                      b.scale * uint32_t(a.iv.lo));
            }
        }
        return AbsValue::top();
      case Opcode::Mad: {
        // d = a * b + c: fold through the same add/mul rules.
        Instruction mul = inst;
        mul.op = Opcode::Mul;
        const AbsValue prod = evalArith(mul, regs, microKernel);
        const AbsValue c = evalOperand(inst.src[2], regs, microKernel);
        if (prod.base == AbsValue::Base::Num &&
            c.base == AbsValue::Base::Num) {
            return {AbsValue::Base::Num, 0, addIv(prod.iv, c.iv)};
        }
        return AbsValue::top();
      }
      case Opcode::Div:
        if (inst.type != DataType::U32 || !(aNum && bNum))
            return AbsValue::top();
        if (b.iv.lo == 0)
            return AbsValue::top();     // possible div-by-zero
        return {AbsValue::Base::Num, 0,
                Interval::range(a.iv.lo / b.iv.hi, a.iv.hi / b.iv.lo)};
      case Opcode::Rem:
        if (inst.type != DataType::U32 || !(aNum && bNum))
            return AbsValue::top();
        if (b.iv.lo == 0)
            return AbsValue::top();
        return {AbsValue::Base::Num, 0,
                Interval::range(0, std::min(a.iv.hi, b.iv.hi - 1))};
      case Opcode::Min:
        if (inst.type != DataType::U32 || !(aNum && bNum))
            return AbsValue::top();
        return {AbsValue::Base::Num, 0,
                Interval::range(std::min(a.iv.lo, b.iv.lo),
                                std::min(a.iv.hi, b.iv.hi))};
      case Opcode::Max:
        if (inst.type != DataType::U32 || !(aNum && bNum))
            return AbsValue::top();
        return {AbsValue::Base::Num, 0,
                Interval::range(std::max(a.iv.lo, b.iv.lo),
                                std::max(a.iv.hi, b.iv.hi))};
      case Opcode::And:
        if (!(aNum && bNum))
            return AbsValue::top();
        if (a.isConst() && b.isConst())
            return AbsValue::konst(uint32_t(a.iv.lo) & uint32_t(b.iv.lo));
        // x & m never exceeds either operand: the mask bound that makes
        // `and r, r, 3` a provably in-bounds table index.
        return {AbsValue::Base::Num, 0,
                Interval::range(0, std::min(a.iv.hi, b.iv.hi))};
      case Opcode::Or:
        if (aNum && bNum && a.isConst() && b.isConst())
            return AbsValue::konst(uint32_t(a.iv.lo) | uint32_t(b.iv.lo));
        return AbsValue::top();
      case Opcode::Xor:
        if (aNum && bNum && a.isConst() && b.isConst())
            return AbsValue::konst(uint32_t(a.iv.lo) ^ uint32_t(b.iv.lo));
        return AbsValue::top();
      case Opcode::Not:
        if (aNum && a.isConst())
            return AbsValue::konst(~uint32_t(a.iv.lo));
        return AbsValue::top();
      case Opcode::Shl:
        if (!bNum || !b.isConst())
            return AbsValue::top();
        if (aNum)
            return {AbsValue::Base::Num, 0,
                    shlIv(a.iv, uint32_t(b.iv.lo))};
        return AbsValue::top();
      case Opcode::Shr: {
        if (!(aNum && bNum) || !b.isConst())
            return AbsValue::top();
        const uint32_t k = uint32_t(b.iv.lo) & 31;
        if (inst.type == DataType::S32) {
            // Arithmetic shift only folds when provably non-negative.
            if (a.iv.hi > 0x7fffffffULL)
                return AbsValue::top();
        }
        return {AbsValue::Base::Num, 0,
                Interval::range(a.iv.lo >> k, a.iv.hi >> k)};
      }
      case Opcode::MulHi:
        if (aNum && bNum && a.isConst() && b.isConst()) {
            return AbsValue::konst(
                uint32_t((a.iv.lo * b.iv.lo) >> 32));
        }
        return AbsValue::top();
      case Opcode::Cvt:
        // Bit-preserving integer conversions keep the bounds.
        if (inst.type != DataType::F32 && inst.srcType == DataType::U32)
            return a;
        return AbsValue::top();
      default:
        return AbsValue::top();
    }
}

} // namespace uksim::analysis
