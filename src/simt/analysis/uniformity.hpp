/**
 * @file
 * Uniformity / divergence analysis.
 *
 * Classifies every branch in the program as warp-uniform (all lanes of
 * any warp take the same direction) or potentially divergent, by
 * propagating a taint from lane-varying sources through a forward
 * dataflow fixpoint per entry point:
 *
 *   - data sources: %tid, %laneid, %slot, %spawnaddr, atomic return
 *     values, loads at lane-varying addresses, and loads from the
 *     per-thread Local / Spawn spaces;
 *   - control: a definition inside the *influence region* of a
 *     divergent branch (the blocks a warp may execute with a partial
 *     mask, cfg.influenceRegion) mixes values from different paths when
 *     the paths rejoin, so it is tainted with kDivControl.
 *
 * vote.all is the re-uniforming primitive: its result is identical on
 * every lane that executes it, so the vote's operand taint is dropped
 * (only control taint survives). This is exactly why the paper's
 * adaptive traversal (vote.all at the reconvergence point of the loop
 * body, then a warp-wide back-edge branch) reads as uniform here.
 *
 * Control taint is only applied for branches that *rejoin*: when a
 * branch's immediate post-dominator is the virtual exit (e.g. the
 * canonical `@p exit` early-out, or a loop whose paths all leave the
 * program separately) the split lanes never mix values at a join point,
 * so the region is not tainted — matching how production divergence
 * analyses treat sync dependence. The two-level fixpoint (taint solve
 * <-> divergent-region discovery) is monotone in the region set and
 * terminates in at most |blocks| rounds.
 */

#ifndef UKSIM_ANALYSIS_UNIFORMITY_HPP
#define UKSIM_ANALYSIS_UNIFORMITY_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "simt/cfg.hpp"
#include "simt/program.hpp"

namespace uksim::analysis {

/** Provenance bits for a lane-varying (divergent) value. */
enum DivergenceSource : uint16_t {
    kDivTid = 1u << 0,          ///< %tid
    kDivLane = 1u << 1,         ///< %laneid
    kDivSlot = 1u << 2,         ///< %slot (per-thread hardware slot)
    kDivSpawnAddr = 1u << 3,    ///< %spawnaddr (per-thread record)
    kDivMemory = 1u << 4,       ///< load at a lane-varying address or
                                ///< from a per-thread space
    kDivAtomic = 1u << 5,       ///< atomic return value
    kDivControl = 1u << 6,      ///< defined under divergent control
};

/** "tid,memory,control" rendering of a provenance mask ("" = uniform). */
std::string divergenceSourceNames(uint16_t mask);

/** Classification of one branch point (Bra or guarded exit). */
struct BranchInfo {
    uint32_t pc = 0;
    int line = 0;
    int block = -1;             ///< basic block the branch terminates
    bool conditional = false;   ///< guarded; unconditional bra otherwise
    bool isExit = false;        ///< guarded exit (warp-splitting too)
    bool divergent = false;     ///< divergent from at least one entry
    uint16_t sources = 0;       ///< union of taint over divergent entries
    std::vector<std::string> entries;   ///< entry points that reach it
};

/** Whole-program uniformity classification. */
struct UniformityResult {
    /** Every Bra and guarded Exit reachable from any entry, pc order. */
    std::vector<BranchInfo> branches;
    /** Per entry: blocks inside some divergent branch's influence region. */
    std::map<std::string, std::set<int>> divergentBlocks;
    /** Guard-predicate taint at each reachable `spawn` (0 = uniform). */
    std::map<uint32_t, uint16_t> spawnGuards;

    size_t divergentBranchCount() const;
    /** Conditional branches proven warp-uniform. */
    size_t uniformBranchCount() const;
    const BranchInfo *branchAt(uint32_t pc) const;
};

/** Run the taint fixpoint from every entry point of @p program. */
UniformityResult analyzeUniformity(const Program &program, const Cfg &cfg);

} // namespace uksim::analysis

#endif // UKSIM_ANALYSIS_UNIFORMITY_HPP
