/**
 * @file
 * Analysis façade: run all passes, render text and JSON reports.
 */

#include "simt/analysis/analysis.hpp"

#include <cstdio>
#include <sstream>

#include "simt/cfg.hpp"

namespace uksim::analysis {

namespace {

/** The CFG constructor asserts targets are in range; mirror verify()'s
 *  malformed gate so analyzeProgram() never feeds it a bad program. */
bool
cfgBuildable(const Program &prog)
{
    if (prog.code.empty() || prog.entryPc >= prog.code.size())
        return false;
    for (const MicroKernelEntry &mk : prog.microKernels)
        if (mk.pc >= prog.code.size())
            return false;
    for (const Instruction &inst : prog.code) {
        if ((inst.op == Opcode::Bra || inst.op == Opcode::Spawn) &&
            inst.target >= prog.code.size()) {
            return false;
        }
    }
    return true;
}

const char *
branchKind(const BranchInfo &b)
{
    if (b.isExit)
        return "exit";
    return b.conditional ? "conditional" : "unconditional";
}

} // anonymous namespace

ProgramAnalysis
analyzeProgram(const Program &program)
{
    ProgramAnalysis a;
    a.verify = uksim::verify(program);
    if (!cfgBuildable(program))
        return a;
    Cfg cfg(program);
    a.uniformity = analyzeUniformity(program, cfg);
    a.fusion = analyzeFusion(program, cfg, a.uniformity,
                             analyzeLiveness(program, cfg));
    a.advisor = advise(program, cfg, a.uniformity);
    a.analyzed = true;
    return a;
}

std::string
renderReport(const Program &program, const ProgramAnalysis &a)
{
    (void)program;
    std::ostringstream os;
    if (!a.analyzed) {
        os << "analysis skipped: program is malformed (see diagnostics)\n";
        return os.str();
    }

    os << "branches (" << a.uniformity.branches.size() << " total, "
       << a.uniformity.divergentBranchCount() << " divergent, "
       << a.uniformity.uniformBranchCount() << " uniform-conditional):\n";
    for (const BranchInfo &b : a.uniformity.branches) {
        os << "  pc " << b.pc;
        if (b.line > 0)
            os << " line " << b.line;
        os << " [" << branchKind(b) << "] ";
        if (!b.conditional)
            os << "uniform (unconditional)";
        else if (b.divergent)
            os << "divergent (sources: "
               << divergenceSourceNames(b.sources) << ")";
        else
            os << "uniform";
        os << "\n";
    }

    const AccessStats &st = a.verify.accesses;
    os << "accesses: " << st.total << " total, " << st.provedConst
       << " const-proven, " << st.provedRange << " range-proven, "
       << st.unproven << " unproven, " << st.unbounded << " unbounded, "
       << st.outOfBounds << " out-of-bounds\n";

    os << "fusion: " << a.fusion.blocks.size() << " blocks, "
       << a.fusion.fusibleBlockCount() << " fusible ("
       << a.fusion.fusibleOpCount() << " fusible ops)\n";

    if (!a.advisor.advice.empty()) {
        os << "advice:\n";
        for (const Advice &ad : a.advisor.advice) {
            os << "  pc " << ad.pc;
            if (ad.line > 0)
                os << " line " << ad.line;
            os << " [" << ad.kind << "] " << ad.message << "\n";
        }
    }
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (unsigned char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

std::string
toJson(const std::string &name, const Program &program,
       const ProgramAnalysis &a, int indent)
{
    const std::string in0(size_t(indent) * 2, ' ');
    const std::string in1(size_t(indent + 1) * 2, ' ');
    const std::string in2(size_t(indent + 2) * 2, ' ');
    std::ostringstream os;
    auto str = [](const std::string &s) {
        return "\"" + jsonEscape(s) + "\"";
    };

    os << in0 << "{\n";
    os << in1 << "\"name\": " << str(name) << ",\n";
    os << in1 << "\"entry\": " << str(program.entryName) << ",\n";
    os << in1 << "\"analyzed\": " << (a.analyzed ? "true" : "false")
       << ",\n";

    os << in1 << "\"diagnostics\": [";
    for (size_t i = 0; i < a.verify.diagnostics.size(); i++) {
        const Diagnostic &d = a.verify.diagnostics[i];
        os << (i ? ",\n" : "\n") << in2 << "{\"severity\": "
           << (d.severity == Severity::Error ? "\"error\""
                                             : "\"warning\"")
           << ", \"id\": " << str(d.id) << ", \"pc\": " << d.pc
           << ", \"block\": " << d.block << ", \"line\": " << d.line
           << ", \"entry\": " << str(d.entry)
           << ", \"message\": " << str(d.message) << "}";
    }
    os << (a.verify.diagnostics.empty() ? "" : "\n" + in1) << "],\n";

    const AccessStats &st = a.verify.accesses;
    os << in1 << "\"accesses\": {\"total\": " << st.total
       << ", \"provedConst\": " << st.provedConst
       << ", \"provedRange\": " << st.provedRange
       << ", \"unproven\": " << st.unproven
       << ", \"unbounded\": " << st.unbounded
       << ", \"outOfBounds\": " << st.outOfBounds << "},\n";

    os << in1 << "\"branches\": [";
    for (size_t i = 0; i < a.uniformity.branches.size(); i++) {
        const BranchInfo &b = a.uniformity.branches[i];
        os << (i ? ",\n" : "\n") << in2 << "{\"pc\": " << b.pc
           << ", \"line\": " << b.line << ", \"block\": " << b.block
           << ", \"kind\": \"" << branchKind(b) << "\""
           << ", \"divergent\": " << (b.divergent ? "true" : "false")
           << ", \"sources\": "
           << str(divergenceSourceNames(b.sources)) << ", \"entries\": [";
        for (size_t e = 0; e < b.entries.size(); e++)
            os << (e ? ", " : "") << str(b.entries[e]);
        os << "]}";
    }
    os << (a.uniformity.branches.empty() ? "" : "\n" + in1) << "],\n";

    os << in1 << "\"advice\": [";
    for (size_t i = 0; i < a.advisor.advice.size(); i++) {
        const Advice &ad = a.advisor.advice[i];
        os << (i ? ",\n" : "\n") << in2 << "{\"kind\": " << str(ad.kind)
           << ", \"pc\": " << ad.pc << ", \"line\": " << ad.line
           << ", \"block\": " << ad.block
           << ", \"message\": " << str(ad.message) << "}";
    }
    os << (a.advisor.advice.empty() ? "" : "\n" + in1) << "],\n";

    os << in1 << "\"blocks\": [";
    for (size_t i = 0; i < a.fusion.blocks.size(); i++) {
        const BlockFusion &b = a.fusion.blocks[i];
        os << (i ? ",\n" : "\n") << in2 << "{\"id\": " << b.block
           << ", \"first\": " << b.first << ", \"last\": " << b.last
           << ", \"fusibleOps\": " << b.fusibleOps
           << ", \"fusible\": " << (b.fusible ? "true" : "false")
           << ", \"exit\": \"" << fusionExitName(b.exit) << "\""
           << ", \"uniform\": " << (b.uniform ? "true" : "false")
           << ", \"deadDefs\": " << b.deadDefs << "}";
    }
    os << (a.fusion.blocks.empty() ? "" : "\n" + in1) << "],\n";

    os << in1 << "\"summary\": {\"errors\": " << a.verify.errorCount()
       << ", \"warnings\": " << a.verify.warningCount()
       << ", \"branches\": " << a.uniformity.branches.size()
       << ", \"divergentBranches\": "
       << a.uniformity.divergentBranchCount()
       << ", \"uniformBranches\": "
       << a.uniformity.uniformBranchCount()
       << ", \"advice\": " << a.advisor.advice.size()
       << ", \"fusibleBlocks\": " << a.fusion.fusibleBlockCount()
       << ", \"fusibleOps\": " << a.fusion.fusibleOpCount() << "}\n";
    os << in0 << "}";
    return os.str();
}

} // namespace uksim::analysis
