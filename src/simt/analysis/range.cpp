/**
 * @file
 * Interval-vs-segment access classification.
 */

#include "simt/analysis/range.hpp"

namespace uksim::analysis {

const char *
accessProofName(AccessProof p)
{
    switch (p) {
      case AccessProof::Unbounded:   return "unbounded";
      case AccessProof::ProvedConst: return "const";
      case AccessProof::ProvedRange: return "range";
      case AccessProof::Unproven:    return "unproven";
      case AccessProof::OutOfBounds: return "out-of-bounds";
    }
    return "?";
}

AccessCheck
checkOffsetRange(const Interval &iv, int32_t memOffset, uint32_t bytes,
                 uint32_t limit)
{
    AccessCheck c;
    c.limit = limit;
    if (iv.isFull())
        return c;       // offset unknown: nothing provable either way
    c.lo = int64_t(iv.lo) + memOffset;
    c.hi = int64_t(iv.hi) + memOffset;
    const int64_t b = int64_t(bytes);
    if (c.lo >= 0 && c.hi + b <= int64_t(limit)) {
        c.proof = iv.isConst() ? AccessProof::ProvedConst
                               : AccessProof::ProvedRange;
    } else if (c.hi < 0) {
        // Every possible start is below the segment.
        c.proof = AccessProof::OutOfBounds;
    } else if (c.lo + b > int64_t(limit) &&
               c.hi + b <= int64_t(Interval::kMaxU32) + 1) {
        // Every possible access overruns the end; the wrap guard keeps
        // a range that could wrap past 2^32 merely Unproven.
        c.proof = AccessProof::OutOfBounds;
    }
    return c;
}

AccessProof
mergeProof(AccessProof a, AccessProof b)
{
    auto rank = [](AccessProof p) {
        switch (p) {
          case AccessProof::Unbounded:   return 0;
          case AccessProof::ProvedConst: return 1;
          case AccessProof::ProvedRange: return 2;
          case AccessProof::Unproven:    return 3;
          case AccessProof::OutOfBounds: return 4;
        }
        return 3;
    };
    return rank(a) >= rank(b) ? a : b;
}

} // namespace uksim::analysis
