#pragma once
/**
 * @file
 * SIMD-accelerated warp lane loops.
 *
 * The SM executor's inner loops walk a 32-lane mask with countr_zero
 * and touch one lane per iteration. For full or nearly-full warps that
 * serializes the exact data parallelism the machine being modeled
 * exploits. The kernels here process eight lanes per step with AVX2 —
 * gathers over the slot-major register file, vector ALU, vector
 * predicate tests — and are REQUIRED to be bit-identical to the scalar
 * loops they replace: integer ops trivially, float ops because they
 * map to the same IEEE single-precision operations the scalar code
 * performs (the build pins -ffp-contract=off and the kernels never use
 * FMA, so there is no double-rounding divergence). Anything without
 * that guarantee (fmin/fmax NaN rules, libm floor) stays scalar.
 *
 * Dispatch is at runtime: the AVX2 bodies are compiled with function-
 * level target attributes so the rest of the simulator keeps baseline
 * codegen, and enabled() checks the CPU once. UKSIM_SIMD=0 (or
 * off/false) forces the scalar paths — the bit-identity contract makes
 * the switch observable only in wall time.
 */

#include "simt/decode.hpp"
#include "simt/isa.hpp"

#include <cstdint>

namespace uksim::simd {

/**
 * True when the AVX2 kernels are compiled in, the host CPU supports
 * them, and UKSIM_SIMD does not disable them. Cached after the first
 * call; setForTest() overrides it for same-process A/B tests.
 */
bool enabled();

/** Test hook: -1 = follow CPU + environment, 0/1 = force. */
void setForTest(int force);

/**
 * Bitmask of lanes l in [0, nLanes) whose predicate byte
 * preds[(baseSlot + l) * kNumPredicates + pred] is nonzero.
 * Callers mask the result with the warp's active mask themselves.
 */
uint64_t predLaneMask(const uint8_t *preds, int baseSlot, int pred,
                      int nLanes);

/**
 * Vectorized warp ALU for the executor's default (register-writing)
 * class: gathers Reg/Imm operands for the committed lanes, evaluates
 * the operation eight lanes at a time, and scatters results to the
 * destination register. Returns false when the instruction shape is
 * not covered (operand kinds, opcode/type combination, or a warp size
 * that is not a multiple of eight) — the caller then runs the scalar
 * loop. Only call when enabled() is true.
 */
bool warpAlu(const DecodedInst &d, uint32_t *regs, int baseSlot,
             uint64_t commitMask, int warpSize);

/**
 * Pure shape test: true when warpAlu() covers this instruction
 * (operand kinds, opcode/type whitelist, warp size). Does not consult
 * enabled() or the host CPU — the block-exec compiler uses it to
 * precompute per-op SIMD eligibility once per program; whether the
 * vector body actually runs still depends on enabled() and the build
 * target at execution time.
 */
bool aluCoverable(const DecodedInst &d, int warpSize);

} // namespace uksim::simd
