/**
 * @file
 * Two-pass assembler implementation.
 */

#include "simt/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace uksim {

AssemblerError::AssemblerError(int line, const std::string &message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line)
{
}

namespace {

/** A statement pending label resolution. */
struct PendingRef {
    uint32_t pc;
    std::string label;
    int line;
    bool isSpawn;
};

struct Token {
    std::string text;
};

std::vector<std::string>
splitStatements(const std::string &source, std::vector<int> &lines)
{
    std::vector<std::string> stmts;
    std::string cur;
    int line = 1;
    int curLine = 1;
    bool curEmpty = true;
    auto flush = [&]() {
        // Trim.
        size_t b = cur.find_first_not_of(" \t\r");
        size_t e = cur.find_last_not_of(" \t\r");
        if (b != std::string::npos) {
            stmts.push_back(cur.substr(b, e - b + 1));
            lines.push_back(curLine);
        }
        cur.clear();
        curEmpty = true;
    };
    for (size_t i = 0; i < source.size(); i++) {
        char c = source[i];
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n')
                i++;
            i--;
            continue;
        }
        if (c == '#') {
            while (i < source.size() && source[i] != '\n')
                i++;
            i--;
            continue;
        }
        if (c == '\n') {
            flush();
            line++;
            continue;
        }
        if (c == ';') {
            flush();
            continue;
        }
        if (c == ':') {
            // Labels terminate a statement (keep the colon).
            cur += c;
            flush();
            continue;
        }
        if (curEmpty && !std::isspace(static_cast<unsigned char>(c)))
            curLine = line, curEmpty = false;
        cur += c;
    }
    flush();
    return stmts;
}

std::vector<std::string>
splitFields(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[')
            depth++;
        if (c == ']')
            depth--;
        if (c == delim && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    for (auto &f : out) {
        size_t b = f.find_first_not_of(" \t");
        size_t e = f.find_last_not_of(" \t");
        f = (b == std::string::npos) ? "" : f.substr(b, e - b + 1);
    }
    return out;
}

std::optional<DataType>
parseType(const std::string &s)
{
    if (s == "u32")
        return DataType::U32;
    if (s == "s32")
        return DataType::S32;
    if (s == "f32")
        return DataType::F32;
    return std::nullopt;
}

std::optional<CmpOp>
parseCmp(const std::string &s)
{
    if (s == "eq") return CmpOp::Eq;
    if (s == "ne") return CmpOp::Ne;
    if (s == "lt") return CmpOp::Lt;
    if (s == "le") return CmpOp::Le;
    if (s == "gt") return CmpOp::Gt;
    if (s == "ge") return CmpOp::Ge;
    return std::nullopt;
}

std::optional<MemSpace>
parseSpace(const std::string &s)
{
    if (s == "global") return MemSpace::Global;
    if (s == "shared") return MemSpace::Shared;
    if (s == "local") return MemSpace::Local;
    if (s == "const") return MemSpace::Const;
    if (s == "spawn") return MemSpace::Spawn;
    if (s == "param") return MemSpace::Param;
    return std::nullopt;
}

std::optional<SpecialReg>
parseSpecial(const std::string &s)
{
    if (s == "%tid") return SpecialReg::Tid;
    if (s == "%ntid") return SpecialReg::NTid;
    if (s == "%ctaid") return SpecialReg::CtaId;
    if (s == "%laneid") return SpecialReg::LaneId;
    if (s == "%warpid") return SpecialReg::WarpId;
    if (s == "%smid") return SpecialReg::SmId;
    if (s == "%slot") return SpecialReg::Slot;
    if (s == "%spawnaddr") return SpecialReg::SpawnMemAddr;
    return std::nullopt;
}

bool
isIdent(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

class Parser
{
  public:
    explicit Parser(const std::string &source)
    {
        stmts_ = splitStatements(source, lines_);
    }

    Program run()
    {
        for (size_t i = 0; i < stmts_.size(); i++) {
            line_ = lines_[i];
            parseStatement(stmts_[i]);
        }
        if (prog_.code.empty())
            throw AssemblerError(line_, "program has no instructions");
        resolve();
        prog_.computeReconvergencePoints();
        return std::move(prog_);
    }

  private:
    [[noreturn]] void fail(const std::string &msg) const
    {
        throw AssemblerError(line_, msg);
    }

    int parseRegister(const std::string &s) const
    {
        if (s.size() < 2 || s[0] != 'r')
            fail("expected register, got '" + s + "'");
        char *end = nullptr;
        long v = std::strtol(s.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 || v >= kMaxRegisters)
            fail("bad register '" + s + "'");
        return static_cast<int>(v);
    }

    int parsePredicate(const std::string &s) const
    {
        if (s.size() < 2 || s[0] != 'p')
            fail("expected predicate, got '" + s + "'");
        char *end = nullptr;
        long v = std::strtol(s.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 || v >= kNumPredicates)
            fail("bad predicate '" + s + "'");
        return static_cast<int>(v);
    }

    Operand parseOperand(const std::string &s, DataType type) const
    {
        if (s.empty())
            fail("empty operand");
        if (s[0] == '%') {
            auto sr = parseSpecial(s);
            if (!sr)
                fail("unknown special register '" + s + "'");
            return Operand::makeSpecial(*sr);
        }
        if (s[0] == 'r' && s.size() > 1 &&
            std::isdigit(static_cast<unsigned char>(s[1]))) {
            return Operand::makeReg(parseRegister(s));
        }
        // Literal.
        if (type == DataType::F32) {
            char *end = nullptr;
            float f = std::strtof(s.c_str(), &end);
            if (end == s.c_str())
                fail("bad float literal '" + s + "'");
            if (*end == 'f')
                end++;
            if (*end != '\0')
                fail("bad float literal '" + s + "'");
            return Operand::makeFloatImm(f);
        }
        char *end = nullptr;
        long long v = std::strtoll(s.c_str(), &end, 0);
        if (end == s.c_str() || *end != '\0')
            fail("bad integer literal '" + s + "'");
        return Operand::makeImm(static_cast<uint32_t>(v));
    }

    /** Parse "[rN+off]", "[rN-off]", "[rN]" or "[imm]". */
    void parseAddress(const std::string &s, Instruction &inst,
                      int srcIndex) const
    {
        if (s.size() < 3 || s.front() != '[' || s.back() != ']')
            fail("expected address operand, got '" + s + "'");
        std::string inner = s.substr(1, s.size() - 2);
        size_t plus = inner.find_first_of("+-", 1);
        std::string base = inner, off;
        if (plus != std::string::npos) {
            base = inner.substr(0, plus);
            off = inner.substr(plus);   // keep sign
        }
        auto trim = [](std::string t) {
            size_t b = t.find_first_not_of(" \t");
            size_t e = t.find_last_not_of(" \t");
            return b == std::string::npos ? std::string()
                                          : t.substr(b, e - b + 1);
        };
        base = trim(base);
        off = trim(off);
        if (!base.empty() && base[0] == 'r') {
            inst.src[srcIndex] = Operand::makeReg(parseRegister(base));
        } else if (!base.empty() && base[0] == '%') {
            auto sr = parseSpecial(base);
            if (!sr)
                fail("unknown special register '" + base + "'");
            inst.src[srcIndex] = Operand::makeSpecial(*sr);
        } else {
            char *end = nullptr;
            long long v = std::strtoll(base.c_str(), &end, 0);
            if (end == base.c_str() || *end != '\0')
                fail("bad address base '" + base + "'");
            inst.src[srcIndex] = Operand::makeImm(static_cast<uint32_t>(v));
        }
        if (!off.empty()) {
            char *end = nullptr;
            long long v = std::strtoll(off.c_str(), &end, 0);
            if (end == off.c_str() || *end != '\0')
                fail("bad address offset '" + off + "'");
            inst.memOffset = static_cast<int32_t>(v);
        }
    }

    void parseDirective(const std::string &stmt)
    {
        std::istringstream is(stmt);
        std::string name, arg;
        is >> name >> arg;
        if (arg.empty())
            fail("directive " + name + " needs an argument");
        auto numArg = [&]() -> uint32_t {
            char *end = nullptr;
            long long v = std::strtoll(arg.c_str(), &end, 0);
            if (end == arg.c_str() || *end != '\0' || v < 0)
                fail("bad numeric argument '" + arg + "'");
            return static_cast<uint32_t>(v);
        };
        if (name == ".entry") {
            if (!isIdent(arg))
                fail("bad entry label");
            entryLabel_ = arg;
            entryLine_ = line_;
        } else if (name == ".microkernel") {
            if (!isIdent(arg))
                fail("bad microkernel label");
            microLabels_.push_back({arg, line_});
        } else if (name == ".reg") {
            prog_.resources.registers = static_cast<int>(numArg());
        } else if (name == ".shared_per_thread") {
            prog_.resources.sharedBytes = numArg();
        } else if (name == ".local_per_thread") {
            prog_.resources.localBytes = numArg();
        } else if (name == ".global_per_thread") {
            prog_.resources.globalBytes = numArg();
        } else if (name == ".const") {
            prog_.resources.constBytes = numArg();
        } else if (name == ".spawn_state") {
            prog_.resources.spawnStateBytes = numArg();
        } else {
            fail("unknown directive '" + name + "'");
        }
    }

    void parseStatement(const std::string &stmt)
    {
        if (stmt[0] == '.') {
            parseDirective(stmt);
            return;
        }
        if (stmt.back() == ':') {
            std::string label = stmt.substr(0, stmt.size() - 1);
            size_t e = label.find_last_not_of(" \t");
            label = label.substr(0, e + 1);
            if (!isIdent(label))
                fail("bad label '" + label + "'");
            if (prog_.labels.count(label))
                fail("duplicate label '" + label + "'");
            prog_.labels[label] = static_cast<uint32_t>(prog_.code.size());
            return;
        }
        parseInstruction(stmt);
    }

    void parseInstruction(const std::string &stmt)
    {
        Instruction inst;
        inst.line = line_;
        std::string body = stmt;

        // Guard predicate.
        if (body[0] == '@') {
            size_t sp = body.find_first_of(" \t");
            if (sp == std::string::npos)
                fail("guard without instruction");
            std::string g = body.substr(1, sp - 1);
            if (!g.empty() && g[0] == '!') {
                inst.guardNegated = true;
                g = g.substr(1);
            }
            inst.guardPred = parsePredicate(g);
            body = body.substr(sp + 1);
            size_t b = body.find_first_not_of(" \t");
            if (b == std::string::npos)
                fail("guard without instruction");
            body = body.substr(b);
        }

        size_t sp = body.find_first_of(" \t");
        std::string mnem = (sp == std::string::npos) ? body
                                                     : body.substr(0, sp);
        std::string rest = (sp == std::string::npos) ? ""
                                                     : body.substr(sp + 1);
        std::vector<std::string> parts = splitFields(mnem, '.');
        std::vector<std::string> ops =
            rest.empty() ? std::vector<std::string>{} : splitFields(rest, ',');
        if (ops.size() == 1 && ops[0].empty())
            ops.clear();

        const std::string &base = parts[0];

        static const std::map<std::string, Opcode> simpleAlu = {
            {"add", Opcode::Add}, {"sub", Opcode::Sub},
            {"mul", Opcode::Mul}, {"mulhi", Opcode::MulHi},
            {"div", Opcode::Div}, {"rem", Opcode::Rem},
            {"min", Opcode::Min}, {"max", Opcode::Max},
            {"abs", Opcode::Abs}, {"neg", Opcode::Neg},
            {"and", Opcode::And}, {"or", Opcode::Or},
            {"xor", Opcode::Xor}, {"not", Opcode::Not},
            {"shl", Opcode::Shl}, {"shr", Opcode::Shr},
            {"mad", Opcode::Mad}, {"sqrt", Opcode::Sqrt},
            {"rcp", Opcode::Rcp}, {"floor", Opcode::Floor},
            {"mov", Opcode::Mov},
        };

        if (auto it = simpleAlu.find(base); it != simpleAlu.end()) {
            inst.op = it->second;
            if (parts.size() != 2)
                fail(base + " needs a type suffix");
            auto t = parseType(parts[1]);
            if (!t)
                fail("bad type '" + parts[1] + "'");
            inst.type = *t;
            int nsrc = 0;
            switch (inst.op) {
              case Opcode::Mov:
              case Opcode::Not:
              case Opcode::Abs:
              case Opcode::Neg:
              case Opcode::Sqrt:
              case Opcode::Rcp:
              case Opcode::Floor:
                nsrc = 1;
                break;
              case Opcode::Mad:
                nsrc = 3;
                break;
              default:
                nsrc = 2;
                break;
            }
            if (static_cast<int>(ops.size()) != nsrc + 1)
                fail(base + " expects " + std::to_string(nsrc + 1) +
                     " operands");
            inst.dst = parseRegister(ops[0]);
            for (int i = 0; i < nsrc; i++)
                inst.src[i] = parseOperand(ops[i + 1], inst.type);
        } else if (base == "cvt") {
            // cvt.dstType.srcType d, a
            inst.op = Opcode::Cvt;
            if (parts.size() != 3)
                fail("cvt needs cvt.<dst>.<src>");
            auto dt = parseType(parts[1]);
            auto st = parseType(parts[2]);
            if (!dt || !st)
                fail("bad cvt types");
            inst.type = *dt;
            inst.srcType = *st;
            if (ops.size() != 2)
                fail("cvt expects 2 operands");
            inst.dst = parseRegister(ops[0]);
            inst.src[0] = parseOperand(ops[1], inst.srcType);
        } else if (base == "setp") {
            inst.op = Opcode::SetP;
            if (parts.size() != 3)
                fail("setp needs setp.<cmp>.<type>");
            auto c = parseCmp(parts[1]);
            auto t = parseType(parts[2]);
            if (!c || !t)
                fail("bad setp suffix");
            inst.cmp = *c;
            inst.type = *t;
            if (ops.size() != 3)
                fail("setp expects 3 operands");
            inst.dst = parsePredicate(ops[0]);
            inst.src[0] = parseOperand(ops[1], inst.type);
            inst.src[1] = parseOperand(ops[2], inst.type);
        } else if (base == "selp") {
            inst.op = Opcode::SelP;
            if (parts.size() != 2)
                fail("selp needs a type suffix");
            auto t = parseType(parts[1]);
            if (!t)
                fail("bad type");
            inst.type = *t;
            if (ops.size() != 4)
                fail("selp expects 4 operands");
            inst.dst = parseRegister(ops[0]);
            inst.src[0] = parseOperand(ops[1], inst.type);
            inst.src[1] = parseOperand(ops[2], inst.type);
            inst.src[2] = Operand::makePred(parsePredicate(ops[3]));
        } else if (base == "vote") {
            // vote.all pd, ps — warp-wide AND over active lanes.
            inst.op = Opcode::VoteAll;
            if (parts.size() != 2 || parts[1] != "all")
                fail("only vote.all is supported");
            if (ops.size() != 2)
                fail("vote.all expects 2 operands");
            inst.dst = parsePredicate(ops[0]);
            inst.src[0] = Operand::makePred(parsePredicate(ops[1]));
        } else if (base == "bra") {
            inst.op = Opcode::Bra;
            if (ops.size() != 1 || !isIdent(ops[0]))
                fail("bra expects a label");
            refs_.push_back({static_cast<uint32_t>(prog_.code.size()),
                             ops[0], line_, false});
        } else if (base == "exit") {
            inst.op = Opcode::Exit;
            if (!ops.empty())
                fail("exit takes no operands");
        } else if (base == "bar") {
            inst.op = Opcode::Bar;
        } else if (base == "nop") {
            inst.op = Opcode::Nop;
        } else if (base == "ld" || base == "st") {
            bool isLd = base == "ld";
            inst.op = isLd ? Opcode::Ld : Opcode::St;
            // ld.space[.vN].type
            if (parts.size() < 3 || parts.size() > 4)
                fail(base + " needs " + base + ".<space>[.vN].<type>");
            auto space = parseSpace(parts[1]);
            if (!space)
                fail("bad memory space '" + parts[1] + "'");
            inst.space = *space;
            size_t typeIdx = parts.size() - 1;
            if (parts.size() == 4) {
                if (parts[2] == "v2")
                    inst.vecWidth = 2;
                else if (parts[2] == "v4")
                    inst.vecWidth = 4;
                else
                    fail("bad vector width '" + parts[2] + "'");
            }
            auto t = parseType(parts[typeIdx]);
            if (!t)
                fail("bad type '" + parts[typeIdx] + "'");
            inst.type = *t;
            if (ops.size() != 2)
                fail(base + " expects 2 operands");
            if (isLd) {
                inst.dst = parseRegister(ops[0]);
                parseAddress(ops[1], inst, 0);
            } else {
                parseAddress(ops[0], inst, 0);
                inst.src[1] = parseOperand(ops[1], inst.type);
                if (inst.src[1].kind != OperandKind::Reg &&
                    inst.vecWidth > 1) {
                    fail("vector store needs a register source");
                }
            }
            if (!isLd && (inst.space == MemSpace::Const ||
                          inst.space == MemSpace::Param)) {
                fail("cannot store to read-only space");
            }
            if (inst.space == MemSpace::Local && inst.vecWidth > 1) {
                fail("local memory is word-interleaved; vector "
                     "accesses are not supported");
            }
        } else if (base == "atom") {
            if (parts.size() != 3)
                fail("atom needs atom.<op>.<type>");
            if (parts[1] == "add")
                inst.op = Opcode::AtomAdd;
            else if (parts[1] == "exch")
                inst.op = Opcode::AtomExch;
            else if (parts[1] == "cas")
                inst.op = Opcode::AtomCas;
            else
                fail("bad atomic op '" + parts[1] + "'");
            auto t = parseType(parts[2]);
            if (!t)
                fail("bad type");
            inst.type = *t;
            inst.space = MemSpace::Global;
            size_t expect = (inst.op == Opcode::AtomCas) ? 4 : 3;
            if (ops.size() != expect)
                fail("atomic operand count");
            inst.dst = parseRegister(ops[0]);
            parseAddress(ops[1], inst, 0);
            inst.src[1] = parseOperand(ops[2], inst.type);
            if (inst.op == Opcode::AtomCas)
                inst.src[2] = parseOperand(ops[3], inst.type);
        } else if (base == "spawn") {
            inst.op = Opcode::Spawn;
            if (ops.size() != 2 || !isIdent(ops[0]))
                fail("spawn expects: spawn <microkernel>, <reg>");
            inst.src[0] = Operand::makeReg(parseRegister(ops[1]));
            refs_.push_back({static_cast<uint32_t>(prog_.code.size()),
                             ops[0], line_, true});
        } else {
            fail("unknown instruction '" + mnem + "'");
        }

        prog_.code.push_back(inst);
    }

    void resolve()
    {
        // Entry point.
        if (!entryLabel_.empty()) {
            auto it = prog_.labels.find(entryLabel_);
            if (it == prog_.labels.end())
                throw AssemblerError(entryLine_, "undefined entry '" +
                                                 entryLabel_ + "'");
            prog_.entryPc = it->second;
            prog_.entryName = entryLabel_;
        }
        // Micro-kernel entries.
        for (const auto &[name, declLine] : microLabels_) {
            auto it = prog_.labels.find(name);
            if (it == prog_.labels.end())
                throw AssemblerError(declLine, "undefined microkernel '" +
                                               name + "'");
            prog_.microKernels.push_back({name, it->second});
        }
        // Branch / spawn targets.
        for (const PendingRef &ref : refs_) {
            auto it = prog_.labels.find(ref.label);
            if (it == prog_.labels.end())
                throw AssemblerError(ref.line, "undefined label '" +
                                               ref.label + "'");
            prog_.code[ref.pc].target = it->second;
            if (ref.isSpawn &&
                prog_.microKernelIndex(it->second) < 0) {
                throw AssemblerError(ref.line, "spawn target '" + ref.label +
                                     "' is not declared .microkernel");
            }
        }
        // Register bound check.
        int measured = prog_.measuredRegisterCount();
        if (prog_.resources.registers == 0) {
            prog_.resources.registers = measured;
        } else if (measured > prog_.resources.registers) {
            throw AssemblerError(
                lineUsingRegister(measured - 1),
                "program uses r" + std::to_string(measured - 1) +
                    " beyond declared .reg " +
                    std::to_string(prog_.resources.registers));
        }
    }

    /** Source line of the first instruction touching register @p r. */
    int lineUsingRegister(int r) const
    {
        for (const Instruction &inst : prog_.code) {
            if (inst.dst >= 0 && inst.op != Opcode::SetP &&
                inst.op != Opcode::VoteAll) {
                int width = (inst.op == Opcode::Ld) ? inst.vecWidth : 1;
                if (inst.dst + width - 1 >= r)
                    return inst.line;
            }
            for (const Operand &o : inst.src) {
                if (o.kind == OperandKind::Reg && o.reg >= r)
                    return inst.line;
            }
            if (inst.op == Opcode::St &&
                inst.src[1].kind == OperandKind::Reg &&
                inst.src[1].reg + int(inst.vecWidth) - 1 >= r) {
                return inst.line;
            }
        }
        return 0;
    }

    Program prog_;
    std::vector<std::string> stmts_;
    std::vector<int> lines_;
    std::vector<PendingRef> refs_;
    std::vector<std::pair<std::string, int>> microLabels_;
    std::string entryLabel_;
    int entryLine_ = 0;
    int line_ = 0;
};

} // anonymous namespace

Program
assemble(const std::string &source)
{
    Parser parser(source);
    return parser.run();
}

} // namespace uksim
