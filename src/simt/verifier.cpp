/**
 * @file
 * µ-kernel program verifier: iterative dataflow lints over the CFG.
 *
 * The analysis mirrors the structure of cfg.cpp's post-dominator solver:
 * a worklist fixpoint over basic blocks, but running forward from each
 * entry point with a "definitely assigned" must-set (intersection meet)
 * plus a "possibly assigned" may-set (union meet) per register file, and
 * a small abstract-value lattice used to resolve spawn/const/local
 * addresses statically:
 *
 *     Top  |  Const c  |  SpawnRaw+off  |  StatePtr+off
 *
 * SpawnRaw is the raw %spawnaddr value: the spawn-state record base in a
 * launch thread, but the warp-formation word in a spawned µ-kernel
 * (paper Fig. 6). A scalar ld.spawn through SpawnRaw inside a µ-kernel
 * yields StatePtr, the parent's state-record base, which is what the
 * `.spawn_state` bounds are checked against.
 */

#include "simt/verifier.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "simt/cfg.hpp"

namespace uksim {

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << (severity == Severity::Error ? "error[" : "warning[") << id
       << "] ";
    if (line > 0)
        os << "line " << line << " ";
    os << "(pc " << pc;
    if (!entry.empty())
        os << ", entry '" << entry << "'";
    os << "): " << message;
    return os.str();
}

size_t
VerifyResult::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

size_t
VerifyResult::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
VerifyResult::report() const
{
    if (diagnostics.empty())
        return "";
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics)
        os << d.format() << "\n";
    os << errorCount() << " error(s), " << warningCount()
       << " warning(s)\n";
    return os.str();
}

namespace {

/** Abstract register value used to resolve addresses statically. */
struct AbsVal {
    enum class Kind : uint8_t {
        Top,        ///< statically unknown
        Const,      ///< known 32-bit constant
        SpawnRaw,   ///< %spawnaddr + c
        StatePtr,   ///< spawn-state record base + c
    };
    Kind kind = Kind::Top;
    uint32_t c = 0;

    bool operator==(const AbsVal &o) const
    {
        return kind == o.kind && (kind == Kind::Top || c == o.c);
    }

    static AbsVal top() { return {}; }
    static AbsVal konst(uint32_t v) { return {Kind::Const, v}; }
};

AbsVal
meetVal(const AbsVal &a, const AbsVal &b)
{
    return a == b ? a : AbsVal::top();
}

/** Per-program-point dataflow state (one warp lane's register files). */
struct LaneState {
    uint64_t regMust = 0;   ///< definitely-assigned general registers
    uint64_t regMay = 0;    ///< possibly-assigned (incl. predicated defs)
    uint16_t predMust = 0;
    uint16_t predMay = 0;
    std::array<AbsVal, kMaxRegisters> val{};

    bool merge(const LaneState &o)
    {
        LaneState before = *this;
        regMust &= o.regMust;
        regMay |= o.regMay;
        predMust &= o.predMust;
        predMay |= o.predMay;
        for (int r = 0; r < kMaxRegisters; r++)
            val[r] = meetVal(val[r], o.val[r]);
        return regMust != before.regMust || regMay != before.regMay ||
               predMust != before.predMust || predMay != before.predMay ||
               val != before.val;
    }
};

/** One analyzed entry point (launch entry or a .microkernel). */
struct EntryInfo {
    uint32_t pc = 0;
    std::string name;
    bool isMicroKernel = false;
    int mkIndex = -1;   ///< index in program.microKernels, -1 for launch
};

struct EntryAnalysis {
    EntryInfo info;
    std::set<int> reachable;            ///< block ids
    std::map<int, LaneState> in;        ///< block id -> IN state
    std::set<int> spawnTargets;         ///< µ-kernel indices spawned
    std::set<uint32_t> storeWords;      ///< state words stored (off / 4)
    std::map<uint32_t, uint32_t> loadWords; ///< state word -> first pc
};

class Verifier
{
  public:
    Verifier(const Program &program, VerifyResult &out)
        : prog_(program), out_(out)
    {
    }

    void run()
    {
        if (prog_.code.empty()) {
            add(Severity::Error, "empty-program", 0, "",
                "program has no instructions");
            return;
        }
        globalChecks();
        if (malformed_)
            return;     // targets out of range: CFG cannot be built

        cfg_ = std::make_unique<Cfg>(prog_);
        collectEntries();
        for (EntryAnalysis &ea : entries_) {
            findReachable(ea);
            solveDataflow(ea);
            checkBlocks(ea);
        }
        structuralChecks();
        spawnGraphChecks();
    }

  private:
    // --- Diagnostic plumbing -----------------------------------------------
    void add(Severity sev, const char *id, uint32_t pc,
             const std::string &entry, const std::string &msg)
    {
        int line = pc < prog_.code.size() ? prog_.code[pc].line : 0;
        out_.diagnostics.push_back({sev, id, pc, line, entry, msg});
    }

    /** Emit once per (pc, id) no matter how many entries reach the pc. */
    void addOnce(Severity sev, const char *id, uint32_t pc,
                 const std::string &entry, const std::string &msg)
    {
        if (emitted_.insert({pc, id}).second)
            add(sev, id, pc, entry, msg);
    }

    // --- Global (entry-independent) checks ---------------------------------
    void globalChecks()
    {
        const int declaredRegs =
            prog_.resources.registers > 0 ? prog_.resources.registers
                                          : kMaxRegisters;
        auto checkReg = [&](uint32_t pc, int r, int width,
                            const char *what) {
            int hi = r + width - 1;
            if (r < 0 || hi >= kMaxRegisters) {
                add(Severity::Error, "reg-range", pc, "",
                    std::string(what) + " r" + std::to_string(r) +
                        (width > 1 ? ".." + std::to_string(hi) : "") +
                        " outside the architectural register file (" +
                        std::to_string(kMaxRegisters) + " registers)");
            } else if (hi >= declaredRegs) {
                add(Severity::Error, "reg-range", pc, "",
                    std::string(what) + " r" + std::to_string(hi) +
                        " beyond the .reg " +
                        std::to_string(declaredRegs) + " declaration");
            }
        };
        auto checkPred = [&](uint32_t pc, int p, const char *what) {
            if (p < 0 || p >= kNumPredicates) {
                add(Severity::Error, "pred-range", pc, "",
                    std::string(what) + " p" + std::to_string(p) +
                        " outside the predicate file (" +
                        std::to_string(kNumPredicates) + " predicates)");
            }
        };

        for (uint32_t pc = 0; pc < prog_.code.size(); pc++) {
            const Instruction &inst = prog_.code[pc];
            if (inst.guardPred >= kNumPredicates)
                checkPred(pc, inst.guardPred, "guard predicate");
            if (inst.dst >= 0 || inst.op == Opcode::SetP ||
                inst.op == Opcode::VoteAll) {
                if (inst.op == Opcode::SetP || inst.op == Opcode::VoteAll)
                    checkPred(pc, inst.dst, "destination");
                else
                    checkReg(pc, inst.dst,
                             inst.op == Opcode::Ld ? inst.vecWidth : 1,
                             "destination");
            }
            for (int i = 0; i < 3; i++) {
                const Operand &o = inst.src[i];
                if (o.kind == OperandKind::Reg) {
                    int width = (inst.op == Opcode::St && i == 1)
                                    ? inst.vecWidth
                                    : 1;
                    checkReg(pc, o.reg, width, "source");
                } else if (o.kind == OperandKind::Pred) {
                    checkPred(pc, o.reg, "source");
                }
            }
            if (inst.op == Opcode::Bar && inst.guardPred >= 0) {
                add(Severity::Error, "bar-guarded", pc, "",
                    "bar under a guard predicate: inactive lanes never "
                    "reach the barrier, deadlocking the block");
            }
            if (inst.op == Opcode::Bra || inst.op == Opcode::Spawn) {
                if (inst.target >= prog_.code.size()) {
                    add(Severity::Error, "branch-target", pc, "",
                        "target pc " + std::to_string(inst.target) +
                            " outside the program");
                    malformed_ = true;
                }
            }
            if (inst.op == Opcode::Spawn && !malformed_ &&
                prog_.microKernelIndex(inst.target) < 0) {
                add(Severity::Error, "spawn-target", pc, "",
                    "spawn target pc " + std::to_string(inst.target) +
                        " is not a declared .microkernel entry");
            }
        }
        if (prog_.entryPc >= prog_.code.size()) {
            add(Severity::Error, "branch-target", 0, "",
                "entry pc " + std::to_string(prog_.entryPc) +
                    " outside the program");
            malformed_ = true;
        }
        for (const MicroKernelEntry &mk : prog_.microKernels) {
            if (mk.pc >= prog_.code.size()) {
                add(Severity::Error, "branch-target", 0, "",
                    "microkernel '" + mk.name + "' entry pc outside the "
                    "program");
                malformed_ = true;
            }
        }
    }

    // --- Entry enumeration ---------------------------------------------------
    void collectEntries()
    {
        EntryAnalysis launch;
        launch.info.pc = prog_.entryPc;
        launch.info.name =
            prog_.entryName.empty() ? "<entry>" : prog_.entryName;
        entries_.push_back(std::move(launch));
        for (size_t i = 0; i < prog_.microKernels.size(); i++) {
            EntryAnalysis ea;
            ea.info.pc = prog_.microKernels[i].pc;
            ea.info.name = prog_.microKernels[i].name;
            ea.info.isMicroKernel = true;
            ea.info.mkIndex = static_cast<int>(i);
            entries_.push_back(std::move(ea));
        }
    }

    // --- Reachability ---------------------------------------------------------
    void findReachable(EntryAnalysis &ea)
    {
        std::deque<int> work;
        int start = cfg_->blockOf(ea.info.pc);
        ea.reachable.insert(start);
        work.push_back(start);
        while (!work.empty()) {
            int b = work.front();
            work.pop_front();
            for (int s : cfg_->blocks()[b].successors) {
                if (s == Cfg::kVirtualExit)
                    continue;
                if (ea.reachable.insert(s).second)
                    work.push_back(s);
            }
        }
        // Control reaching a *different* entry point means a region falls
        // through (or branches) past its exit into foreign code.
        for (const EntryAnalysis &other : entries_) {
            if (other.info.pc == ea.info.pc)
                continue;
            int ob = cfg_->blockOf(other.info.pc);
            if (ea.reachable.count(ob) &&
                cfg_->blocks()[ob].first == other.info.pc) {
                addOnce(Severity::Error, "entry-overlap", other.info.pc,
                        ea.info.name,
                        "control flow from entry '" + ea.info.name +
                            "' reaches entry '" + other.info.name +
                            "' (missing exit?)");
            }
        }
    }

    // --- Abstract evaluation -------------------------------------------------
    AbsVal evalOperand(const Operand &o, const LaneState &s,
                       bool microKernel) const
    {
        switch (o.kind) {
          case OperandKind::Reg:
            return o.reg >= 0 && o.reg < kMaxRegisters ? s.val[o.reg]
                                                       : AbsVal::top();
          case OperandKind::Imm:
            return AbsVal::konst(o.imm);
          case OperandKind::Special:
            if (o.sreg == SpecialReg::SpawnMemAddr) {
                // In a launch thread %spawnaddr IS the state record; in
                // a spawned µ-kernel it is the formation word.
                return {microKernel ? AbsVal::Kind::SpawnRaw
                                    : AbsVal::Kind::StatePtr,
                        0};
            }
            return AbsVal::top();
          default:
            return AbsVal::top();
        }
    }

    AbsVal evalAlu(const Instruction &inst, const LaneState &s,
                   bool microKernel) const
    {
        const AbsVal a = evalOperand(inst.src[0], s, microKernel);
        const AbsVal b = evalOperand(inst.src[1], s, microKernel);
        const bool isPtr = [](const AbsVal &v) {
            return v.kind == AbsVal::Kind::SpawnRaw ||
                   v.kind == AbsVal::Kind::StatePtr;
        } (a);

        if (inst.op == Opcode::Mov)
            return a;
        if (inst.type == DataType::F32)
            return AbsVal::top();   // float arithmetic is never an address

        const bool aConst = a.kind == AbsVal::Kind::Const;
        const bool bConst = b.kind == AbsVal::Kind::Const;
        switch (inst.op) {
          case Opcode::Add:
            if (aConst && bConst)
                return AbsVal::konst(a.c + b.c);
            if (isPtr && bConst)
                return {a.kind, a.c + b.c};
            if (aConst && (b.kind == AbsVal::Kind::SpawnRaw ||
                           b.kind == AbsVal::Kind::StatePtr))
                return {b.kind, b.c + a.c};
            return AbsVal::top();
          case Opcode::Sub:
            if (aConst && bConst)
                return AbsVal::konst(a.c - b.c);
            if (isPtr && bConst)
                return {a.kind, a.c - b.c};
            return AbsVal::top();
          case Opcode::Mul:
            return aConst && bConst ? AbsVal::konst(a.c * b.c)
                                    : AbsVal::top();
          case Opcode::Shl:
            return aConst && bConst ? AbsVal::konst(a.c << (b.c & 31))
                                    : AbsVal::top();
          case Opcode::Shr:
            if (!(aConst && bConst))
                return AbsVal::top();
            return inst.type == DataType::S32
                       ? AbsVal::konst(uint32_t(int32_t(a.c) >>
                                                (b.c & 31)))
                       : AbsVal::konst(a.c >> (b.c & 31));
          case Opcode::And:
            return aConst && bConst ? AbsVal::konst(a.c & b.c)
                                    : AbsVal::top();
          case Opcode::Or:
            return aConst && bConst ? AbsVal::konst(a.c | b.c)
                                    : AbsVal::top();
          case Opcode::Xor:
            return aConst && bConst ? AbsVal::konst(a.c ^ b.c)
                                    : AbsVal::top();
          case Opcode::SelP:
            return meetVal(a, b);   // same value either way -> keep it
          default:
            return AbsVal::top();
        }
    }

    // --- Transfer function ----------------------------------------------------
    void defineRegs(LaneState &s, int r, int width, bool guarded,
                    AbsVal v) const
    {
        for (int i = r; i < r + width && i >= 0 && i < kMaxRegisters;
             i++) {
            const uint64_t bit = uint64_t{1} << i;
            s.regMay |= bit;
            AbsVal nv = (i == r) ? v : AbsVal::top();
            if (guarded) {
                // A predicated definition only *maybe* assigns: the
                // value afterwards is the meet of old and new.
                s.val[i] = meetVal(s.val[i], nv);
            } else {
                s.regMust |= bit;
                s.val[i] = nv;
            }
        }
    }

    void definePred(LaneState &s, int p, bool guarded) const
    {
        if (p < 0 || p >= kNumPredicates)
            return;
        const uint16_t bit = uint16_t(1) << p;
        s.predMay |= bit;
        if (!guarded)
            s.predMust |= bit;
    }

    void apply(const Instruction &inst, LaneState &s,
               bool microKernel) const
    {
        const bool guarded = inst.guardPred >= 0;
        switch (inst.op) {
          case Opcode::SetP:
          case Opcode::VoteAll:
            definePred(s, inst.dst, guarded);
            break;
          case Opcode::Ld: {
            AbsVal v = AbsVal::top();
            if (inst.space == MemSpace::Spawn && inst.vecWidth == 1 &&
                microKernel) {
                AbsVal base = evalOperand(inst.src[0], s, microKernel);
                if (base.kind == AbsVal::Kind::SpawnRaw)
                    v = {AbsVal::Kind::StatePtr, 0};
            }
            defineRegs(s, inst.dst, inst.vecWidth, guarded, v);
            break;
          }
          case Opcode::AtomAdd:
          case Opcode::AtomExch:
          case Opcode::AtomCas:
            defineRegs(s, inst.dst, 1, guarded, AbsVal::top());
            break;
          case Opcode::St:
          case Opcode::Bra:
          case Opcode::Exit:
          case Opcode::Bar:
          case Opcode::Nop:
          case Opcode::Spawn:
            break;
          default:
            if (inst.dst >= 0) {
                defineRegs(s, inst.dst, 1, guarded,
                           evalAlu(inst, s, microKernel));
            }
            break;
        }
    }

    // --- Dataflow fixpoint ----------------------------------------------------
    void solveDataflow(EntryAnalysis &ea)
    {
        const int start = cfg_->blockOf(ea.info.pc);
        ea.in[start] = LaneState{};
        std::deque<int> work{start};
        std::set<int> queued{start};

        while (!work.empty()) {
            int b = work.front();
            work.pop_front();
            queued.erase(b);

            LaneState s = ea.in[b];
            const BasicBlock &bb = cfg_->blocks()[b];
            // An entry block in the middle of the stream can contain
            // instructions before the entry pc (the CFG partitions the
            // whole stream); start the walk at the entry pc itself.
            uint32_t first = bb.first;
            if (b == start && ea.info.pc > first)
                first = ea.info.pc;
            for (uint32_t pc = first; pc <= bb.last; pc++)
                apply(prog_.code[pc], s, ea.info.isMicroKernel);

            for (int succ : bb.successors) {
                if (succ == Cfg::kVirtualExit)
                    continue;
                auto it = ea.in.find(succ);
                bool changed;
                if (it == ea.in.end()) {
                    ea.in[succ] = s;
                    changed = true;
                } else {
                    changed = it->second.merge(s);
                }
                if (changed && queued.insert(succ).second)
                    work.push_back(succ);
            }
        }
    }

    // --- Check pass -----------------------------------------------------------
    void useReg(const EntryAnalysis &ea, uint32_t pc, const LaneState &s,
                int r)
    {
        if (r < 0 || r >= kMaxRegisters)
            return;     // reg-range already reported
        if (s.regMust >> r & 1)
            return;
        if (!useSeen_.insert({pc, r}).second)
            return;
        const bool partial = s.regMay >> r & 1;
        add(Severity::Error, "reg-uninit", pc, ea.info.name,
            "r" + std::to_string(r) + " may be read before it is "
            "written" +
                (partial ? " (only assigned under a guard predicate "
                           "on some path)"
                         : std::string(" (never assigned on any path "
                                       "from entry '") +
                               ea.info.name + "')"));
    }

    void usePred(const EntryAnalysis &ea, uint32_t pc,
                 const LaneState &s, int p)
    {
        if (p < 0 || p >= kNumPredicates)
            return;
        if (s.predMust >> p & 1)
            return;
        if (!useSeen_.insert({pc, kMaxRegisters + p}).second)
            return;
        const bool partial = s.predMay >> p & 1;
        add(Severity::Error, "pred-uninit", pc, ea.info.name,
            "p" + std::to_string(p) + " may be read before it is set" +
                (partial ? " (only set under a guard predicate on some "
                           "path)"
                         : ""));
    }

    /** Signed effective offset of base value + instruction offset. */
    static int64_t effOffset(const AbsVal &base, const Instruction &inst)
    {
        return int64_t(int32_t(base.c + uint32_t(inst.memOffset)));
    }

    void checkSpawnAccess(EntryAnalysis &ea, uint32_t pc,
                          const Instruction &inst, const LaneState &s)
    {
        const bool isStore = inst.op == Opcode::St;
        if (prog_.resources.spawnStateBytes == 0) {
            addOnce(Severity::Error, "spawn-state-undeclared", pc,
                    ea.info.name,
                    "spawn memory access but the program declares no "
                    ".spawn_state record");
            return;
        }
        AbsVal base = evalOperand(inst.src[0], s, ea.info.isMicroKernel);
        if (base.kind == AbsVal::Kind::SpawnRaw) {
            // µ-kernel dereference of the raw formation word.
            const int64_t off = effOffset(base, inst);
            if (isStore) {
                addOnce(Severity::Error, "spawn-formation-store", pc,
                        ea.info.name,
                        "store through %spawnaddr inside a µ-kernel "
                        "clobbers the warp-formation word");
                return;
            }
            if (off != 0 || inst.vecWidth != 1) {
                addOnce(Severity::Warning, "spawn-formation-offset", pc,
                        ea.info.name,
                        "µ-kernel reads %spawnaddr at offset " +
                            std::to_string(off) + " x" +
                            std::to_string(inst.vecWidth) +
                            "; each thread owns exactly one 4-byte "
                            "formation word at offset 0");
            }
            return;
        }
        if (base.kind != AbsVal::Kind::StatePtr)
            return;     // dynamic address; not statically checkable
        const int64_t off = effOffset(base, inst);
        const int64_t bytes = int64_t(4) * inst.vecWidth;
        const uint32_t stateBytes = prog_.resources.spawnStateBytes;
        if (off < 0 || off + bytes > stateBytes) {
            addOnce(Severity::Error, "spawn-state-oob", pc, ea.info.name,
                    std::string(isStore ? "store to" : "load from") +
                        " spawn-state bytes [" + std::to_string(off) +
                        ", " + std::to_string(off + bytes) +
                        ") outside the .spawn_state " +
                        std::to_string(stateBytes) +
                        " record (overruns into a neighbour's state "
                        "or the formation region)");
            return;
        }
        for (int64_t w = off / 4; w < (off + bytes) / 4; w++) {
            if (isStore)
                ea.storeWords.insert(uint32_t(w));
            else
                ea.loadWords.emplace(uint32_t(w), pc);
        }
    }

    void checkMemAccess(EntryAnalysis &ea, uint32_t pc,
                        const Instruction &inst, const LaneState &s)
    {
        if (inst.space == MemSpace::Spawn) {
            checkSpawnAccess(ea, pc, inst, s);
            return;
        }
        const AbsVal base =
            evalOperand(inst.src[0], s, ea.info.isMicroKernel);
        const int64_t bytes = int64_t(4) * inst.vecWidth;
        switch (inst.space) {
          case MemSpace::Const:
          case MemSpace::Param: {
            if (base.kind != AbsVal::Kind::Const)
                return;
            const int64_t off = effOffset(base, inst);
            const uint32_t constBytes = prog_.resources.constBytes;
            if (constBytes == 0) {
                addOnce(Severity::Warning, "const-undeclared", pc,
                        ea.info.name,
                        "param/const access but the program declares "
                        "no .const size to check against");
            } else if (off < 0 || off + bytes > constBytes) {
                addOnce(Severity::Error, "const-oob", pc, ea.info.name,
                        "access to const bytes [" + std::to_string(off) +
                            ", " + std::to_string(off + bytes) +
                            ") outside the declared .const " +
                            std::to_string(constBytes));
            }
            break;
          }
          case MemSpace::Shared:
            if (prog_.resources.sharedBytes == 0) {
                addOnce(Severity::Error, "shared-undeclared", pc,
                        ea.info.name,
                        "shared memory access but .shared_per_thread "
                        "is 0");
            }
            break;
          case MemSpace::Local: {
            if (prog_.resources.localBytes == 0) {
                addOnce(Severity::Error, "local-undeclared", pc,
                        ea.info.name,
                        "local memory access but .local_per_thread "
                        "is 0");
                break;
            }
            if (base.kind != AbsVal::Kind::Const)
                break;
            const int64_t off = effOffset(base, inst);
            if (off < 0 ||
                off + bytes > prog_.resources.localBytes) {
                addOnce(Severity::Error, "local-oob", pc, ea.info.name,
                        "access to local bytes [" + std::to_string(off) +
                            ", " + std::to_string(off + bytes) +
                            ") outside .local_per_thread " +
                            std::to_string(prog_.resources.localBytes));
            }
            break;
          }
          default:
            break;
        }
    }

    void checkInstruction(EntryAnalysis &ea, uint32_t pc,
                          const Instruction &inst, const LaneState &s)
    {
        // Uses are checked against the state *before* the instruction.
        if (inst.guardPred >= 0)
            usePred(ea, pc, s, inst.guardPred);
        for (int i = 0; i < 3; i++) {
            const Operand &o = inst.src[i];
            if (o.kind == OperandKind::Reg) {
                const int width = (inst.op == Opcode::St && i == 1)
                                      ? inst.vecWidth
                                      : 1;
                for (int r = o.reg; r < o.reg + width; r++)
                    useReg(ea, pc, s, r);
            } else if (o.kind == OperandKind::Pred) {
                usePred(ea, pc, s, o.reg);
            }
        }

        if (inst.isMemory())
            checkMemAccess(ea, pc, inst, s);

        if (inst.op == Opcode::Spawn) {
            if (prog_.resources.spawnStateBytes == 0) {
                addOnce(Severity::Error, "spawn-state-undeclared", pc,
                        ea.info.name,
                        "spawn without a .spawn_state declaration");
            }
            int mk = prog_.microKernelIndex(inst.target);
            if (mk >= 0)
                ea.spawnTargets.insert(mk);
        }
    }

    void checkBlocks(EntryAnalysis &ea)
    {
        const int start = cfg_->blockOf(ea.info.pc);
        for (int b : ea.reachable) {
            auto it = ea.in.find(b);
            if (it == ea.in.end())
                continue;
            LaneState s = it->second;
            const BasicBlock &bb = cfg_->blocks()[b];
            uint32_t first = bb.first;
            if (b == start && ea.info.pc > first)
                first = ea.info.pc;
            for (uint32_t pc = first; pc <= bb.last; pc++) {
                checkInstruction(ea, pc, prog_.code[pc], s);
                apply(prog_.code[pc], s, ea.info.isMicroKernel);
            }
        }
    }

    // --- Structural checks ----------------------------------------------------
    void structuralChecks()
    {
        std::set<int> reachableAll;
        for (const EntryAnalysis &ea : entries_)
            reachableAll.insert(ea.reachable.begin(), ea.reachable.end());

        for (size_t b = 0; b < cfg_->blocks().size(); b++) {
            if (reachableAll.count(int(b)))
                continue;
            const BasicBlock &bb = cfg_->blocks()[b];
            addOnce(Severity::Warning, "unreachable", bb.first, "",
                    "instructions at pc " + std::to_string(bb.first) +
                        ".." + std::to_string(bb.last) +
                        " are unreachable from every entry point");
        }

        // Falling off the end: the last reachable instruction must leave
        // the program unconditionally.
        const uint32_t lastPc = uint32_t(prog_.code.size()) - 1;
        if (reachableAll.count(cfg_->blockOf(lastPc))) {
            const Instruction &last = prog_.code[lastPc];
            const bool leaves =
                (last.op == Opcode::Exit || last.op == Opcode::Bra) &&
                last.guardPred < 0;
            if (!leaves) {
                addOnce(Severity::Error, "fall-off-end", lastPc, "",
                        "control may run past the last instruction "
                        "(no unconditional exit)");
            }
        }

        // bar inside the divergent region of a guarded branch.
        for (int d : reachableAll) {
            const BasicBlock &db = cfg_->blocks()[d];
            const Instruction &br = prog_.code[db.last];
            if (br.op != Opcode::Bra || br.guardPred < 0)
                continue;
            const int rejoin = cfg_->immediatePostDominator(d);
            std::set<int> seen;
            std::deque<int> work;
            for (int succ : db.successors) {
                if (succ != Cfg::kVirtualExit && succ != rejoin &&
                    seen.insert(succ).second) {
                    work.push_back(succ);
                }
            }
            while (!work.empty()) {
                int b = work.front();
                work.pop_front();
                const BasicBlock &bb = cfg_->blocks()[b];
                for (uint32_t pc = bb.first; pc <= bb.last; pc++) {
                    if (prog_.code[pc].op == Opcode::Bar) {
                        addOnce(Severity::Warning, "bar-divergent", pc,
                                "",
                                "bar reachable while the warp may be "
                                "diverged at the branch on line " +
                                    std::to_string(br.line) +
                                    "; lanes on the other path never "
                                    "arrive");
                    }
                }
                for (int succ : bb.successors) {
                    if (succ != Cfg::kVirtualExit && succ != rejoin &&
                        seen.insert(succ).second) {
                        work.push_back(succ);
                    }
                }
            }
        }

        // bar in spawned code: dynamic threads are not part of a block.
        for (const EntryAnalysis &ea : entries_) {
            if (!ea.info.isMicroKernel)
                continue;
            for (int b : ea.reachable) {
                const BasicBlock &bb = cfg_->blocks()[b];
                for (uint32_t pc = bb.first; pc <= bb.last; pc++) {
                    if (prog_.code[pc].op == Opcode::Bar) {
                        addOnce(Severity::Warning, "bar-in-microkernel",
                                pc, ea.info.name,
                                "bar reachable from µ-kernel '" +
                                    ea.info.name +
                                    "'; spawned threads have no thread "
                                    "block to synchronize with");
                    }
                }
            }
        }
    }

    // --- Spawn graph: never-spawned + handoff coverage ----------------------
    void spawnGraphChecks()
    {
        // Entry 0 is the launch entry; walk the spawn graph from it.
        std::set<size_t> live{0};
        std::deque<size_t> work{0};
        while (!work.empty()) {
            size_t e = work.front();
            work.pop_front();
            for (int mk : entries_[e].spawnTargets) {
                size_t idx = size_t(mk) + 1;    // entries_[1..] = µ-kernels
                if (live.insert(idx).second)
                    work.push_back(idx);
            }
        }

        for (size_t e = 1; e < entries_.size(); e++) {
            EntryAnalysis &ea = entries_[e];
            if (!live.count(e)) {
                addOnce(Severity::Warning, "never-spawned", ea.info.pc,
                        ea.info.name,
                        "µ-kernel '" + ea.info.name +
                            "' is never spawned by code reachable from "
                            "the launch entry");
                continue;
            }
            // Union of state words written by every reachable spawner.
            std::set<uint32_t> covered;
            std::vector<std::string> spawnerNames;
            for (const EntryAnalysis &sp : entries_) {
                if (!sp.spawnTargets.count(ea.info.mkIndex))
                    continue;
                covered.insert(sp.storeWords.begin(),
                               sp.storeWords.end());
                spawnerNames.push_back(sp.info.name);
            }
            for (const auto &[word, pc] : ea.loadWords) {
                if (covered.count(word))
                    continue;
                std::string who;
                for (size_t i = 0; i < spawnerNames.size(); i++)
                    who += (i ? ", " : "") + spawnerNames[i];
                addOnce(Severity::Warning, "spawn-handoff", pc,
                        ea.info.name,
                        "µ-kernel '" + ea.info.name +
                            "' loads spawn-state bytes [" +
                            std::to_string(word * 4) + ", " +
                            std::to_string(word * 4 + 4) +
                            ") that no reachable spawner (" + who +
                            ") stores");
            }
        }
    }

    const Program &prog_;
    VerifyResult &out_;
    std::unique_ptr<Cfg> cfg_;
    std::vector<EntryAnalysis> entries_;
    std::set<std::pair<uint32_t, std::string>> emitted_;
    std::set<std::pair<uint32_t, int>> useSeen_;
    bool malformed_ = false;
};

} // anonymous namespace

VerifyResult
verify(const Program &program, const VerifyOptions &opts)
{
    (void)opts;     // options only affect failure gating, not analysis
    VerifyResult result;
    Verifier v(program, result);
    v.run();
    std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.line != b.line) {
                             if (a.line == 0 || b.line == 0)
                                 return b.line == 0;
                             return a.line < b.line;
                         }
                         return a.pc < b.pc;
                     });
    return result;
}

void
verifyOrThrow(const Program &program, const VerifyOptions &opts)
{
    VerifyResult result = verify(program, opts);
    if (result.failed(opts)) {
        throw std::runtime_error("program failed verification:\n" +
                                 result.report());
    }
}

} // namespace uksim
