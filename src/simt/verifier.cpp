/**
 * @file
 * µ-kernel program verifier: iterative dataflow lints over the CFG.
 *
 * The fixpoint machinery lives in analysis/dataflow.hpp; the verifier
 * supplies a definedness domain (must/may assigned bits per register
 * file) fused with the interval abstract-value domain of
 * analysis/absdom.hpp, used to resolve spawn/const/local/shared
 * addresses statically:
 *
 *     value  =  {Num | SpawnRaw | StatePtr | Slot·scale}  +  [lo, hi]
 *
 * SpawnRaw is the raw %spawnaddr value: the spawn-state record base in a
 * launch thread, but the warp-formation word in a spawned µ-kernel
 * (paper Fig. 6). A scalar ld.spawn through SpawnRaw inside a µ-kernel
 * yields StatePtr, the parent's state-record base, which is what the
 * `.spawn_state` bounds are checked against. Bounds checks run through
 * analysis/range.hpp: proven-in-bounds accesses are counted, definite
 * overruns (every value in the range out of bounds) are diagnostics,
 * and possible overruns stay silent.
 */

#include "simt/verifier.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "simt/analysis/absdom.hpp"
#include "simt/analysis/dataflow.hpp"
#include "simt/analysis/entries.hpp"
#include "simt/analysis/liveness.hpp"
#include "simt/cfg.hpp"

namespace uksim {

size_t
VerifyResult::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

size_t
VerifyResult::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
VerifyResult::report() const
{
    if (diagnostics.empty())
        return "";
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics)
        os << d.format() << "\n";
    os << errorCount() << " error(s), " << warningCount()
       << " warning(s)\n";
    return os.str();
}

namespace {

using analysis::AbsValue;
using analysis::AccessCheck;
using analysis::AccessProof;
using analysis::Interval;

/** Per-program-point dataflow state (one warp lane's register files). */
struct LaneState {
    uint64_t regMust = 0;   ///< definitely-assigned general registers
    uint64_t regMay = 0;    ///< possibly-assigned (incl. predicated defs)
    uint16_t predMust = 0;
    uint16_t predMay = 0;
    analysis::AbsRegFile val{};     ///< defaults to Top

    bool merge(const LaneState &o, bool widen)
    {
        const uint64_t rm = regMust, ry = regMay;
        const uint16_t pm = predMust, py = predMay;
        regMust &= o.regMust;
        regMay |= o.regMay;
        predMust &= o.predMust;
        predMay |= o.predMay;
        bool valChanged = false;
        for (int r = 0; r < kMaxRegisters; r++) {
            AbsValue j = analysis::joinValue(val[r], o.val[r]);
            if (widen)
                j = analysis::widenValue(val[r], j);
            if (j != val[r]) {
                val[r] = j;
                valChanged = true;
            }
        }
        return regMust != rm || regMay != ry || predMust != pm ||
               predMay != py || valChanged;
    }
};

void
defineRegs(LaneState &s, int r, int width, bool guarded, AbsValue v)
{
    for (int i = r; i < r + width && i >= 0 && i < kMaxRegisters; i++) {
        const uint64_t bit = uint64_t{1} << i;
        s.regMay |= bit;
        AbsValue nv = (i == r) ? v : AbsValue::top();
        if (guarded) {
            // A predicated definition only *maybe* assigns: the value
            // afterwards is the join of old and new.
            s.val[i] = analysis::joinValue(s.val[i], nv);
        } else {
            s.regMust |= bit;
            s.val[i] = nv;
        }
    }
}

void
definePred(LaneState &s, int p, bool guarded)
{
    if (p < 0 || p >= kNumPredicates)
        return;
    const uint16_t bit = uint16_t(1) << p;
    s.predMay |= bit;
    if (!guarded)
        s.predMust |= bit;
}

/** Transfer function shared by the fixpoint and the check replay. */
void
applyTransfer(const Instruction &inst, LaneState &s, bool microKernel)
{
    const bool guarded = inst.guardPred >= 0;
    switch (inst.op) {
      case Opcode::SetP:
      case Opcode::VoteAll:
        definePred(s, inst.dst, guarded);
        break;
      case Opcode::Ld: {
        AbsValue v = AbsValue::top();
        if (inst.space == MemSpace::Spawn && inst.vecWidth == 1 &&
            microKernel) {
            AbsValue base =
                analysis::evalOperand(inst.src[0], s.val, microKernel);
            if (base.base == AbsValue::Base::SpawnRaw)
                v = AbsValue::make(AbsValue::Base::StatePtr,
                                   Interval::konst(0));
        }
        defineRegs(s, inst.dst, inst.vecWidth, guarded, v);
        break;
      }
      case Opcode::AtomAdd:
      case Opcode::AtomExch:
      case Opcode::AtomCas:
        defineRegs(s, inst.dst, 1, guarded, AbsValue::top());
        break;
      case Opcode::St:
      case Opcode::Bra:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Nop:
      case Opcode::Spawn:
        break;
      default:
        if (inst.dst >= 0) {
            defineRegs(s, inst.dst, 1, guarded,
                       analysis::evalArith(inst, s.val, microKernel));
        }
        break;
    }
}

/** Definedness + abstract-value domain for the shared dataflow engine. */
struct DefDomain {
    using State = LaneState;

    bool microKernel = false;

    State boundary() const { return {}; }
    bool merge(State &into, const State &from, bool widen) const
    {
        return into.merge(from, widen);
    }
    void transfer(uint32_t /*pc*/, const Instruction &inst,
                  State &s) const
    {
        applyTransfer(inst, s, microKernel);
    }
};

struct EntryAnalysis {
    analysis::EntryPoint info;
    std::set<int> reachable;            ///< block ids
    std::map<int, LaneState> in;        ///< block id -> IN state
    std::set<int> spawnTargets;         ///< µ-kernel indices spawned
    std::set<uint32_t> storeWords;      ///< state words possibly stored
    std::map<uint32_t, uint32_t> storeWordFirstPc; ///< definite stores
    std::map<uint32_t, uint32_t> loadWords; ///< definite load word -> pc
    std::set<uint32_t> loadedWordsAll;  ///< incl. range-proven loads
    bool dynamicSpawnLoad = false;      ///< unresolved ld.spawn exists
};

class Verifier
{
  public:
    Verifier(const Program &program, VerifyResult &out)
        : prog_(program), out_(out), sink_(out.diagnostics)
    {
    }

    void run()
    {
        if (prog_.code.empty()) {
            add(Severity::Error, "empty-program", 0, "",
                "program has no instructions");
            return;
        }
        globalChecks();
        if (malformed_)
            return;     // targets out of range: CFG cannot be built

        cfg_ = std::make_unique<Cfg>(prog_);
        for (const analysis::EntryPoint &ep : analysis::entryPoints(prog_)) {
            EntryAnalysis ea;
            ea.info = ep;
            entries_.push_back(std::move(ea));
        }
        for (EntryAnalysis &ea : entries_) {
            solveEntry(ea);
            checkBlocks(ea);
        }
        overlapChecks();
        structuralChecks();
        spawnGraphChecks();
        livenessChecks();

        for (const auto &[pc, proof] : accessProof_) {
            (void)pc;
            out_.accesses.total++;
            switch (proof) {
              case AccessProof::Unbounded:
                out_.accesses.unbounded++;
                break;
              case AccessProof::ProvedConst:
                out_.accesses.provedConst++;
                break;
              case AccessProof::ProvedRange:
                out_.accesses.provedRange++;
                break;
              case AccessProof::Unproven:
                out_.accesses.unproven++;
                break;
              case AccessProof::OutOfBounds:
                out_.accesses.outOfBounds++;
                break;
            }
        }
    }

  private:
    // --- Diagnostic plumbing -----------------------------------------------
    Diagnostic make(Severity sev, const char *id, uint32_t pc,
                    const std::string &entry, const std::string &msg)
    {
        Diagnostic d;
        d.severity = sev;
        d.id = id;
        d.pc = pc;
        d.block = cfg_ && pc < prog_.code.size() ? cfg_->blockOf(pc) : -1;
        d.line = pc < prog_.code.size() ? prog_.code[pc].line : 0;
        d.entry = entry;
        d.message = msg;
        return d;
    }

    void add(Severity sev, const char *id, uint32_t pc,
             const std::string &entry, const std::string &msg)
    {
        sink_.add(make(sev, id, pc, entry, msg));
    }

    /** Emit once per (pc, id) no matter how many entries reach the pc. */
    void addOnce(Severity sev, const char *id, uint32_t pc,
                 const std::string &entry, const std::string &msg)
    {
        sink_.addOnce(make(sev, id, pc, entry, msg));
    }

    // --- Global (entry-independent) checks ---------------------------------
    void globalChecks()
    {
        const int declaredRegs =
            prog_.resources.registers > 0 ? prog_.resources.registers
                                          : kMaxRegisters;
        auto checkReg = [&](uint32_t pc, int r, int width,
                            const char *what) {
            int hi = r + width - 1;
            if (r < 0 || hi >= kMaxRegisters) {
                add(Severity::Error, "reg-range", pc, "",
                    std::string(what) + " r" + std::to_string(r) +
                        (width > 1 ? ".." + std::to_string(hi) : "") +
                        " outside the architectural register file (" +
                        std::to_string(kMaxRegisters) + " registers)");
            } else if (hi >= declaredRegs) {
                add(Severity::Error, "reg-range", pc, "",
                    std::string(what) + " r" + std::to_string(hi) +
                        " beyond the .reg " +
                        std::to_string(declaredRegs) + " declaration");
            }
        };
        auto checkPred = [&](uint32_t pc, int p, const char *what) {
            if (p < 0 || p >= kNumPredicates) {
                add(Severity::Error, "pred-range", pc, "",
                    std::string(what) + " p" + std::to_string(p) +
                        " outside the predicate file (" +
                        std::to_string(kNumPredicates) + " predicates)");
            }
        };

        for (uint32_t pc = 0; pc < prog_.code.size(); pc++) {
            const Instruction &inst = prog_.code[pc];
            if (inst.guardPred >= kNumPredicates)
                checkPred(pc, inst.guardPred, "guard predicate");
            if (inst.dst >= 0 || inst.op == Opcode::SetP ||
                inst.op == Opcode::VoteAll) {
                if (inst.op == Opcode::SetP || inst.op == Opcode::VoteAll)
                    checkPred(pc, inst.dst, "destination");
                else
                    checkReg(pc, inst.dst,
                             inst.op == Opcode::Ld ? inst.vecWidth : 1,
                             "destination");
            }
            for (int i = 0; i < 3; i++) {
                const Operand &o = inst.src[i];
                if (o.kind == OperandKind::Reg) {
                    int width = (inst.op == Opcode::St && i == 1)
                                    ? inst.vecWidth
                                    : 1;
                    checkReg(pc, o.reg, width, "source");
                } else if (o.kind == OperandKind::Pred) {
                    checkPred(pc, o.reg, "source");
                }
            }
            if (inst.op == Opcode::Bar && inst.guardPred >= 0) {
                add(Severity::Error, "bar-guarded", pc, "",
                    "bar under a guard predicate: inactive lanes never "
                    "reach the barrier, deadlocking the block");
            }
            if (inst.op == Opcode::Bra || inst.op == Opcode::Spawn) {
                if (inst.target >= prog_.code.size()) {
                    add(Severity::Error, "branch-target", pc, "",
                        "target pc " + std::to_string(inst.target) +
                            " outside the program");
                    malformed_ = true;
                }
            }
            if (inst.op == Opcode::Spawn && !malformed_ &&
                prog_.microKernelIndex(inst.target) < 0) {
                add(Severity::Error, "spawn-target", pc, "",
                    "spawn target pc " + std::to_string(inst.target) +
                        " is not a declared .microkernel entry");
            }
        }
        if (prog_.entryPc >= prog_.code.size()) {
            add(Severity::Error, "branch-target", 0, "",
                "entry pc " + std::to_string(prog_.entryPc) +
                    " outside the program");
            malformed_ = true;
        }
        for (const MicroKernelEntry &mk : prog_.microKernels) {
            if (mk.pc >= prog_.code.size()) {
                add(Severity::Error, "branch-target", 0, "",
                    "microkernel '" + mk.name + "' entry pc outside the "
                    "program");
                malformed_ = true;
            }
        }
    }

    // --- Dataflow solve + entry overlap --------------------------------------
    void solveEntry(EntryAnalysis &ea)
    {
        DefDomain dom;
        dom.microKernel = ea.info.isMicroKernel;
        analysis::DataflowSolver<DefDomain> solver(prog_, *cfg_, dom);
        solver.solveForward(ea.info.pc);
        ea.reachable = solver.reachable();
        for (int b : ea.reachable)
            if (solver.hasState(b))
                ea.in.emplace(b, solver.stateAt(b));
    }

    void overlapChecks()
    {
        // Control reaching a *different* entry point means a region
        // falls through (or branches) past its exit into foreign code.
        for (const EntryAnalysis &ea : entries_) {
            for (const EntryAnalysis &other : entries_) {
                if (other.info.pc == ea.info.pc)
                    continue;
                int ob = cfg_->blockOf(other.info.pc);
                if (ea.reachable.count(ob) &&
                    cfg_->blocks()[ob].first == other.info.pc) {
                    addOnce(Severity::Error, "entry-overlap",
                            other.info.pc, ea.info.name,
                            "control flow from entry '" + ea.info.name +
                                "' reaches entry '" + other.info.name +
                                "' (missing exit?)");
                }
            }
        }
    }

    // --- Check pass -----------------------------------------------------------
    void useReg(const EntryAnalysis &ea, uint32_t pc, const LaneState &s,
                int r)
    {
        if (r < 0 || r >= kMaxRegisters)
            return;     // reg-range already reported
        if (s.regMust >> r & 1)
            return;
        if (!useSeen_.insert({pc, r}).second)
            return;
        const bool partial = s.regMay >> r & 1;
        add(Severity::Error, "reg-uninit", pc, ea.info.name,
            "r" + std::to_string(r) + " may be read before it is "
            "written" +
                (partial ? " (only assigned under a guard predicate "
                           "on some path)"
                         : std::string(" (never assigned on any path "
                                       "from entry '") +
                               ea.info.name + "')"));
    }

    void usePred(const EntryAnalysis &ea, uint32_t pc,
                 const LaneState &s, int p)
    {
        if (p < 0 || p >= kNumPredicates)
            return;
        if (s.predMust >> p & 1)
            return;
        if (!useSeen_.insert({pc, kMaxRegisters + p}).second)
            return;
        const bool partial = s.predMay >> p & 1;
        add(Severity::Error, "pred-uninit", pc, ea.info.name,
            "p" + std::to_string(p) + " may be read before it is set" +
                (partial ? " (only set under a guard predicate on some "
                           "path)"
                         : ""));
    }

    void recordAccess(uint32_t pc, AccessProof proof)
    {
        auto [it, inserted] = accessProof_.emplace(pc, proof);
        if (!inserted)
            it->second = analysis::mergeProof(it->second, proof);
    }

    static std::string rangeText(const AccessCheck &c, uint32_t bytes)
    {
        if (c.lo == c.hi) {
            return "[" + std::to_string(c.lo) + ", " +
                   std::to_string(c.lo + bytes) + ")";
        }
        return "[" + std::to_string(c.lo) + ", " +
               std::to_string(c.hi + bytes) + ") (range-resolved)";
    }

    void checkSpawnAccess(EntryAnalysis &ea, uint32_t pc,
                          const Instruction &inst, const LaneState &s)
    {
        const bool isStore = inst.op == Opcode::St;
        if (prog_.resources.spawnStateBytes == 0) {
            addOnce(Severity::Error, "spawn-state-undeclared", pc,
                    ea.info.name,
                    "spawn memory access but the program declares no "
                    ".spawn_state record");
            recordAccess(pc, AccessProof::Unproven);
            return;
        }
        const uint32_t bytes = 4u * inst.vecWidth;
        AbsValue base = analysis::evalOperand(inst.src[0], s.val,
                                              ea.info.isMicroKernel);
        if (base.base == AbsValue::Base::SpawnRaw) {
            // µ-kernel dereference of the raw formation word.
            if (isStore) {
                addOnce(Severity::Error, "spawn-formation-store", pc,
                        ea.info.name,
                        "store through %spawnaddr inside a µ-kernel "
                        "clobbers the warp-formation word");
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            // Each thread owns exactly one 4-byte word at offset 0.
            const AccessCheck c =
                analysis::checkOffsetRange(base.iv, inst.memOffset,
                                           bytes, 4);
            if (c.proof != AccessProof::ProvedConst ||
                inst.vecWidth != 1) {
                addOnce(Severity::Warning, "spawn-formation-offset", pc,
                        ea.info.name,
                        "µ-kernel reads %spawnaddr at offset " +
                            std::to_string(c.lo) +
                            (c.lo == c.hi ? ""
                                          : ".." + std::to_string(c.hi)) +
                            " x" + std::to_string(inst.vecWidth) +
                            "; each thread owns exactly one 4-byte "
                            "formation word at offset 0");
                recordAccess(pc, AccessProof::Unproven);
            } else {
                recordAccess(pc, c.proof);
            }
            return;
        }
        if (base.base != AbsValue::Base::StatePtr) {
            // Dynamic address; not statically checkable.
            recordAccess(pc, AccessProof::Unproven);
            if (!isStore)
                ea.dynamicSpawnLoad = true;
            return;
        }
        const uint32_t stateBytes = prog_.resources.spawnStateBytes;
        const AccessCheck c = analysis::checkOffsetRange(
            base.iv, inst.memOffset, bytes, stateBytes);
        recordAccess(pc, c.proof);
        switch (c.proof) {
          case AccessProof::OutOfBounds:
            addOnce(Severity::Error, "spawn-state-oob", pc, ea.info.name,
                    std::string(isStore ? "store to" : "load from") +
                        " spawn-state bytes " + rangeText(c, bytes) +
                        " outside the .spawn_state " +
                        std::to_string(stateBytes) +
                        " record (overruns into a neighbour's state "
                        "or the formation region)");
            break;
          case AccessProof::ProvedConst:
          case AccessProof::ProvedRange: {
            const bool definite = c.lo == c.hi;
            for (int64_t w = c.lo / 4; w < (c.hi + bytes) / 4; w++) {
                const uint32_t word = uint32_t(w);
                if (isStore) {
                    ea.storeWords.insert(word);
                    if (definite)
                        ea.storeWordFirstPc.emplace(word, pc);
                } else {
                    ea.loadedWordsAll.insert(word);
                    if (definite)
                        ea.loadWords.emplace(word, pc);
                }
            }
            break;
          }
          default:
            // Possibly out of bounds: stays silent, but an unresolved
            // load suppresses the unused-field lint.
            if (!isStore)
                ea.dynamicSpawnLoad = true;
            break;
        }
    }

    void checkMemAccess(EntryAnalysis &ea, uint32_t pc,
                        const Instruction &inst, const LaneState &s)
    {
        if (inst.space == MemSpace::Spawn) {
            checkSpawnAccess(ea, pc, inst, s);
            return;
        }
        const AbsValue base = analysis::evalOperand(
            inst.src[0], s.val, ea.info.isMicroKernel);
        const uint32_t bytes = 4u * inst.vecWidth;
        switch (inst.space) {
          case MemSpace::Const:
          case MemSpace::Param: {
            if (base.base != AbsValue::Base::Num) {
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            const uint32_t constBytes = prog_.resources.constBytes;
            if (constBytes == 0) {
                if (!base.iv.isFull()) {
                    addOnce(Severity::Warning, "const-undeclared", pc,
                            ea.info.name,
                            "param/const access but the program declares "
                            "no .const size to check against");
                }
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            const AccessCheck c = analysis::checkOffsetRange(
                base.iv, inst.memOffset, bytes, constBytes);
            recordAccess(pc, c.proof);
            if (c.proof == AccessProof::OutOfBounds) {
                addOnce(Severity::Error, "const-oob", pc, ea.info.name,
                        "access to const bytes " + rangeText(c, bytes) +
                            " outside the declared .const " +
                            std::to_string(constBytes));
            }
            break;
          }
          case MemSpace::Shared: {
            const uint32_t stride = prog_.resources.sharedBytes;
            if (stride == 0) {
                addOnce(Severity::Error, "shared-undeclared", pc,
                        ea.info.name,
                        "shared memory access but .shared_per_thread "
                        "is 0");
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            // The provable pattern is %slot * stride + off: the access
            // stays inside the thread's own declared slice.
            if (base.base != AbsValue::Base::Slot ||
                base.scale != stride) {
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            AccessCheck c = analysis::checkOffsetRange(
                base.iv, inst.memOffset, bytes, stride);
            // Symbolic-base proofs are range proofs: the constant-only
            // checker could never see through %slot.
            if (c.proof == AccessProof::ProvedConst)
                c.proof = AccessProof::ProvedRange;
            recordAccess(pc, c.proof);
            if (c.proof == AccessProof::OutOfBounds) {
                addOnce(Severity::Warning, "shared-oob", pc,
                        ea.info.name,
                        "access to shared bytes " + rangeText(c, bytes) +
                            " past the thread's .shared_per_thread " +
                            std::to_string(stride) +
                            " slice (always lands in another thread's "
                            "slice)");
            }
            break;
          }
          case MemSpace::Local: {
            const uint32_t localBytes = prog_.resources.localBytes;
            if (localBytes == 0) {
                addOnce(Severity::Error, "local-undeclared", pc,
                        ea.info.name,
                        "local memory access but .local_per_thread "
                        "is 0");
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            if (base.base != AbsValue::Base::Num) {
                recordAccess(pc, AccessProof::Unproven);
                return;
            }
            const AccessCheck c = analysis::checkOffsetRange(
                base.iv, inst.memOffset, bytes, localBytes);
            recordAccess(pc, c.proof);
            if (c.proof == AccessProof::OutOfBounds) {
                addOnce(Severity::Error, "local-oob", pc, ea.info.name,
                        "access to local bytes " + rangeText(c, bytes) +
                            " outside .local_per_thread " +
                            std::to_string(localBytes));
            }
            break;
          }
          default:
            // Global memory (and atomics) has no declared bound.
            recordAccess(pc, AccessProof::Unbounded);
            break;
        }
    }

    void checkInstruction(EntryAnalysis &ea, uint32_t pc,
                          const Instruction &inst, const LaneState &s)
    {
        // Uses are checked against the state *before* the instruction.
        if (inst.guardPred >= 0)
            usePred(ea, pc, s, inst.guardPred);
        for (int i = 0; i < 3; i++) {
            const Operand &o = inst.src[i];
            if (o.kind == OperandKind::Reg) {
                const int width = (inst.op == Opcode::St && i == 1)
                                      ? inst.vecWidth
                                      : 1;
                for (int r = o.reg; r < o.reg + width; r++)
                    useReg(ea, pc, s, r);
            } else if (o.kind == OperandKind::Pred) {
                usePred(ea, pc, s, o.reg);
            }
        }

        if (inst.isMemory())
            checkMemAccess(ea, pc, inst, s);

        if (inst.op == Opcode::Spawn) {
            if (prog_.resources.spawnStateBytes == 0) {
                addOnce(Severity::Error, "spawn-state-undeclared", pc,
                        ea.info.name,
                        "spawn without a .spawn_state declaration");
            }
            int mk = prog_.microKernelIndex(inst.target);
            if (mk >= 0)
                ea.spawnTargets.insert(mk);
        }
    }

    void checkBlocks(EntryAnalysis &ea)
    {
        const int start = cfg_->blockOf(ea.info.pc);
        for (int b : ea.reachable) {
            auto it = ea.in.find(b);
            if (it == ea.in.end())
                continue;
            LaneState s = it->second;
            const BasicBlock &bb = cfg_->blocks()[b];
            uint32_t first = bb.first;
            if (b == start && ea.info.pc > first)
                first = ea.info.pc;
            for (uint32_t pc = first; pc <= bb.last; pc++) {
                checkInstruction(ea, pc, prog_.code[pc], s);
                applyTransfer(prog_.code[pc], s, ea.info.isMicroKernel);
            }
        }
    }

    // --- Structural checks ----------------------------------------------------
    void structuralChecks()
    {
        std::set<int> reachableAll;
        for (const EntryAnalysis &ea : entries_)
            reachableAll.insert(ea.reachable.begin(), ea.reachable.end());

        for (size_t b = 0; b < cfg_->blocks().size(); b++) {
            if (reachableAll.count(int(b)))
                continue;
            const BasicBlock &bb = cfg_->blocks()[b];
            addOnce(Severity::Warning, "unreachable", bb.first, "",
                    "instructions at pc " + std::to_string(bb.first) +
                        ".." + std::to_string(bb.last) +
                        " are unreachable from every entry point");
        }

        // Falling off the end: the last reachable instruction must leave
        // the program unconditionally.
        const uint32_t lastPc = uint32_t(prog_.code.size()) - 1;
        if (reachableAll.count(cfg_->blockOf(lastPc))) {
            const Instruction &last = prog_.code[lastPc];
            const bool leaves =
                (last.op == Opcode::Exit || last.op == Opcode::Bra) &&
                last.guardPred < 0;
            if (!leaves) {
                addOnce(Severity::Error, "fall-off-end", lastPc, "",
                        "control may run past the last instruction "
                        "(no unconditional exit)");
            }
        }

        // bar inside the divergent region of a guarded branch.
        for (int d : reachableAll) {
            const BasicBlock &db = cfg_->blocks()[d];
            const Instruction &br = prog_.code[db.last];
            if (br.op != Opcode::Bra || br.guardPred < 0)
                continue;
            for (int b : cfg_->influenceRegion(d)) {
                const BasicBlock &bb = cfg_->blocks()[b];
                for (uint32_t pc = bb.first; pc <= bb.last; pc++) {
                    if (prog_.code[pc].op == Opcode::Bar) {
                        addOnce(Severity::Warning, "bar-divergent", pc,
                                "",
                                "bar reachable while the warp may be "
                                "diverged at the branch on line " +
                                    std::to_string(br.line) +
                                    "; lanes on the other path never "
                                    "arrive");
                    }
                }
            }
        }

        // bar in spawned code: dynamic threads are not part of a block.
        for (const EntryAnalysis &ea : entries_) {
            if (!ea.info.isMicroKernel)
                continue;
            for (int b : ea.reachable) {
                const BasicBlock &bb = cfg_->blocks()[b];
                for (uint32_t pc = bb.first; pc <= bb.last; pc++) {
                    if (prog_.code[pc].op == Opcode::Bar) {
                        addOnce(Severity::Warning, "bar-in-microkernel",
                                pc, ea.info.name,
                                "bar reachable from µ-kernel '" +
                                    ea.info.name +
                                    "'; spawned threads have no thread "
                                    "block to synchronize with");
                    }
                }
            }
        }
    }

    // --- Spawn graph: never-spawned + handoff + unused fields ---------------
    void spawnGraphChecks()
    {
        // Entry 0 is the launch entry; walk the spawn graph from it.
        std::set<size_t> live{0};
        std::deque<size_t> work{0};
        while (!work.empty()) {
            size_t e = work.front();
            work.pop_front();
            for (int mk : entries_[e].spawnTargets) {
                size_t idx = size_t(mk) + 1;    // entries_[1..] = µ-kernels
                if (live.insert(idx).second)
                    work.push_back(idx);
            }
        }

        for (size_t e = 1; e < entries_.size(); e++) {
            EntryAnalysis &ea = entries_[e];
            if (!live.count(e)) {
                addOnce(Severity::Warning, "never-spawned", ea.info.pc,
                        ea.info.name,
                        "µ-kernel '" + ea.info.name +
                            "' is never spawned by code reachable from "
                            "the launch entry");
                continue;
            }
            // Union of state words written by every reachable spawner.
            std::set<uint32_t> covered;
            std::vector<std::string> spawnerNames;
            for (const EntryAnalysis &sp : entries_) {
                if (!sp.spawnTargets.count(ea.info.mkIndex))
                    continue;
                covered.insert(sp.storeWords.begin(),
                               sp.storeWords.end());
                spawnerNames.push_back(sp.info.name);
            }
            for (const auto &[word, pc] : ea.loadWords) {
                if (covered.count(word))
                    continue;
                std::string who;
                for (size_t i = 0; i < spawnerNames.size(); i++)
                    who += (i ? ", " : "") + spawnerNames[i];
                addOnce(Severity::Warning, "spawn-handoff", pc,
                        ea.info.name,
                        "µ-kernel '" + ea.info.name +
                            "' loads spawn-state bytes [" +
                            std::to_string(word * 4) + ", " +
                            std::to_string(word * 4 + 4) +
                            ") that no reachable spawner (" + who +
                            ") stores");
            }
        }

        // spawn-state-unused: a word some entry definitely stores but no
        // reachable code ever loads. Spawn-memory capacity bounds how
        // many threads can be outstanding (paper Sec. VI), so dead
        // state words are wasted capacity. Any unresolved ld.spawn
        // could read anything, so it suppresses the lint.
        bool anyDynamicLoad = false;
        std::set<uint32_t> loadedAll;
        for (const EntryAnalysis &ea : entries_) {
            anyDynamicLoad |= ea.dynamicSpawnLoad;
            loadedAll.insert(ea.loadedWordsAll.begin(),
                             ea.loadedWordsAll.end());
        }
        if (anyDynamicLoad)
            return;
        std::map<uint32_t, uint32_t> stores;    // word -> first store pc
        for (const EntryAnalysis &ea : entries_)
            for (const auto &[word, pc] : ea.storeWordFirstPc)
                stores.emplace(word, pc);
        for (const auto &[word, pc] : stores) {
            if (loadedAll.count(word))
                continue;
            addOnce(Severity::Warning, "spawn-state-unused", pc, "",
                    "spawn-state bytes [" + std::to_string(word * 4) +
                        ", " + std::to_string(word * 4 + 4) +
                        ") are stored but never loaded by any entry; "
                        "shrinking .spawn_state frees spawn-memory "
                        "capacity");
        }
    }

    // --- Liveness lints -------------------------------------------------------
    void livenessChecks()
    {
        const analysis::LivenessResult live =
            analysis::analyzeLiveness(prog_, *cfg_);
        for (const analysis::DeadDef &d : live.deadDefs) {
            const std::string name =
                (d.isPred ? "p" : "r") + std::to_string(d.index);
            addOnce(Severity::Warning, "dead-def", d.pc, "",
                    name + " is written here but its value is never "
                    "read on any path (dead definition)");
        }
    }

    const Program &prog_;
    VerifyResult &out_;
    DiagnosticSink sink_;
    std::unique_ptr<Cfg> cfg_;
    std::vector<EntryAnalysis> entries_;
    std::set<std::pair<uint32_t, int>> useSeen_;
    std::map<uint32_t, AccessProof> accessProof_;
    bool malformed_ = false;
};

} // anonymous namespace

VerifyResult
verify(const Program &program, const VerifyOptions &opts)
{
    (void)opts;     // options only affect failure gating, not analysis
    VerifyResult result;
    Verifier v(program, result);
    v.run();
    sortDiagnostics(result.diagnostics);
    return result;
}

void
verifyOrThrow(const Program &program, const VerifyOptions &opts)
{
    VerifyResult result = verify(program, opts);
    if (result.failed(opts)) {
        throw std::runtime_error("program failed verification:\n" +
                                 result.report());
    }
}

} // namespace uksim
