/**
 * @file
 * Persistent worker pool for the parallel cycle engine.
 *
 * One pool instance lives for the whole simulation; per-cycle dispatch
 * must therefore be cheap. A job is published by bumping a generation
 * counter; workers spin briefly and then park on an atomic wait (futex),
 * so an oversubscribed run (more threads than cores) degrades gracefully
 * instead of burning cycles in a spin loop.
 */

#ifndef UKSIM_SIMT_WORKER_POOL_HPP
#define UKSIM_SIMT_WORKER_POOL_HPP

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uksim {

/**
 * Fixed-size pool running the same callable on every slot index.
 *
 * parallelFor(fn) invokes fn(0) on the calling thread and fn(1..N-1) on
 * the workers, returning once all slots finished. The first exception
 * thrown by any slot is rethrown on the caller.
 */
class WorkerPool
{
  public:
    /** @p threads total slots, including the caller's slot 0 (>= 2). */
    explicit WorkerPool(int threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int threads() const { return numThreads_; }

    /** Run @p fn(slot) for every slot; blocks until all are done. */
    void parallelFor(const std::function<void(int)> &fn);

  private:
    void workerMain(int slot);
    void runSlot(int slot);

    int numThreads_;
    const std::function<void(int)> *job_ = nullptr;
    std::atomic<uint64_t> jobGen_{0};
    std::atomic<int> pending_{0};
    /// Workers currently inside the futex wait (as opposed to the spin
    /// phase). Publishing skips the notify syscall when it is zero.
    std::atomic<int> parked_{0};
    /// Caller is inside its futex wait on pending_; the finishing
    /// worker only issues the wake syscall when set.
    std::atomic<bool> callerWaiting_{false};
    std::atomic<bool> stop_{false};
    std::mutex errorMutex_;
    std::exception_ptr error_;
    std::vector<std::thread> workers_;
};

} // namespace uksim

#endif // UKSIM_SIMT_WORKER_POOL_HPP
