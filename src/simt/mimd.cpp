/**
 * @file
 * Scalar MIMD-ideal executor.
 */

#include "simt/mimd.hpp"

#include <array>
#include <stdexcept>

#include "simt/executor.hpp"

namespace uksim {

namespace {

/** Scalar per-thread machine state. */
struct ScalarThread {
    std::array<uint32_t, kMaxRegisters> regs{};
    std::array<uint8_t, kNumPredicates> preds{};
    uint32_t tid = 0;
    uint32_t ntid = 0;
    uint32_t pc = 0;
};

uint32_t
operandValue(const Operand &op, const ScalarThread &t)
{
    switch (op.kind) {
      case OperandKind::Reg:
        return t.regs[op.reg];
      case OperandKind::Imm:
        return op.imm;
      case OperandKind::Special:
        switch (op.sreg) {
          case SpecialReg::Tid: return t.tid;
          case SpecialReg::NTid: return t.ntid;
          case SpecialReg::CtaId: return 0;
          case SpecialReg::LaneId: return 0;
          case SpecialReg::WarpId: return 0;
          case SpecialReg::SmId: return 0;
          case SpecialReg::Slot: return 0;
          case SpecialReg::SpawnMemAddr: return 0;
        }
        return 0;
      default:
        return 0;
    }
}

} // anonymous namespace

MimdResult
runMimdIdeal(Gpu &gpu, uint32_t numThreads, uint64_t perThreadCap)
{
    const Program &prog = gpu.program();
    const GpuConfig &config = gpu.config();
    MimdResult result;

    // Private on-chip scratch reused by every thread (threads run to
    // completion one after another; slot-relative addresses all map to
    // slot 0 here, which is exactly what a single MIMD core would see).
    Store shared("mimd-shared", config.onChipBytesPerSm);
    Store local("mimd-local",
                std::max<uint64_t>(prog.resources.localBytes, 4));

    for (uint32_t tid = 0; tid < numThreads; tid++) {
        ScalarThread t;
        t.tid = tid;
        t.ntid = numThreads;
        t.pc = prog.entryPc;
        uint64_t executed = 0;

        while (true) {
            if (executed >= perThreadCap)
                throw std::runtime_error("MIMD thread exceeded cap (loop?)");
            if (t.pc >= prog.size())
                throw std::runtime_error("MIMD thread ran off program end");
            const Instruction &inst = prog.at(t.pc);
            executed++;

            bool guardOk = true;
            if (inst.guardPred >= 0) {
                guardOk = (t.preds[inst.guardPred] != 0) !=
                          inst.guardNegated;
            }

            if (inst.op == Opcode::Bra) {
                t.pc = guardOk ? inst.target : t.pc + 1;
                continue;
            }
            if (inst.op == Opcode::Exit) {
                if (guardOk)
                    break;
                t.pc++;
                continue;
            }
            if (!guardOk) {
                t.pc++;
                continue;
            }

            switch (inst.op) {
              case Opcode::Nop:
              case Opcode::Bar:
                break;
              case Opcode::Spawn:
                throw std::runtime_error(
                    "MIMD model only runs traditional kernels");
              case Opcode::Ld:
              case Opcode::St:
              case Opcode::AtomAdd:
              case Opcode::AtomExch:
              case Opcode::AtomCas: {
                uint64_t addr = operandValue(inst.src[0], t);
                addr = uint64_t(int64_t(addr) + inst.memOffset);
                Store *store = nullptr;
                switch (inst.space) {
                  case MemSpace::Global:
                    store = &gpu.globalStore();
                    break;
                  case MemSpace::Local:
                    store = &local;
                    break;
                  case MemSpace::Const:
                  case MemSpace::Param:
                    store = &gpu.constStore();
                    break;
                  case MemSpace::Shared:
                    store = &shared;
                    break;
                  case MemSpace::Spawn:
                    throw std::runtime_error(
                        "MIMD model has no spawn memory");
                }
                if (inst.isAtomic()) {
                    uint32_t old = store->read32(addr);
                    uint32_t operand = operandValue(inst.src[1], t);
                    uint32_t next = old;
                    if (inst.op == Opcode::AtomAdd) {
                        next = inst.type == DataType::F32
                                   ? floatBits(bitsToFloat(old) +
                                               bitsToFloat(operand))
                                   : old + operand;
                    } else if (inst.op == Opcode::AtomExch) {
                        next = operand;
                    } else {
                        uint32_t newval = operandValue(inst.src[2], t);
                        next = old == operand ? newval : old;
                    }
                    store->write32(addr, next);
                    t.regs[inst.dst] = old;
                } else if (inst.op == Opcode::St) {
                    for (int e = 0; e < inst.vecWidth; e++) {
                        store->write32(addr + 4u * e,
                                       t.regs[inst.src[1].reg + e]);
                    }
                } else {
                    for (int e = 0; e < inst.vecWidth; e++)
                        t.regs[inst.dst + e] = store->read32(addr + 4u * e);
                }
                break;
              }
              case Opcode::SetP: {
                uint32_t a = operandValue(inst.src[0], t);
                uint32_t b = operandValue(inst.src[1], t);
                t.preds[inst.dst] =
                    evalCmp(inst.cmp, inst.type, a, b) ? 1 : 0;
                break;
              }
              case Opcode::VoteAll:
                // A scalar thread is its own warp.
                t.preds[inst.dst] = t.preds[inst.src[0].reg];
                break;
              case Opcode::SelP: {
                uint32_t a = operandValue(inst.src[0], t);
                uint32_t b = operandValue(inst.src[1], t);
                t.regs[inst.dst] =
                    t.preds[inst.src[2].reg] ? a : b;
                break;
              }
              default: {
                uint32_t a = operandValue(inst.src[0], t);
                uint32_t b = operandValue(inst.src[1], t);
                uint32_t c = operandValue(inst.src[2], t);
                t.regs[inst.dst] = evalAlu(inst, a, b, c);
                break;
              }
            }
            t.pc++;
        }

        result.totalInstructions += executed;
        result.maxThreadInstructions =
            std::max(result.maxThreadInstructions, executed);
        result.itemsCompleted++;
    }

    const uint64_t lanes = uint64_t(config.numSms) * config.warpSize;
    result.cycles = (result.totalInstructions + lanes - 1) / lanes;
    // A single thread cannot finish faster than its own critical path.
    result.cycles = std::max(result.cycles, result.maxThreadInstructions);
    return result;
}

} // namespace uksim
