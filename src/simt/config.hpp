/**
 * @file
 * Simulator configuration (Table I of the paper).
 *
 * Defaults model the NVIDIA Quadro FX5800-like machine the paper
 * simulates: 30 SMs, 32-wide warps executed on 8 SPs over 4 sub-cycles,
 * 1024 thread slots / 8 blocks / 16384 registers / 64 KB on-chip memory
 * per SM, a 1 KB spawn LUT, and 8 memory partitions at 8 bytes/cycle
 * with no caches.
 */

#ifndef UKSIM_SIMT_CONFIG_HPP
#define UKSIM_SIMT_CONFIG_HPP

#include <cstdint>

#include "simt/fault.hpp"

namespace uksim {

/** How the GPU dispatches launch-time work onto SMs (Sec. VI). */
enum class SchedulingMode : uint8_t {
    /**
     * FX5800-style block scheduling: a thread block is resident only when
     * the whole block's resources fit, and at most maxBlocksPerSm blocks
     * are resident.
     */
    Block,
    /**
     * Thread (warp) scheduling: block granularity is ignored and warps
     * are packed until per-thread resources run out. Required for (and
     * used by) dynamic micro-kernel execution.
     */
    Thread,
};

/** Static program verification applied when a program is loaded. */
enum class VerifyMode : uint8_t {
    Off,        ///< no verification (default; matches prior behavior)
    Warn,       ///< print the diagnostic report to stderr, always load
    Strict,     ///< throw std::runtime_error when the verifier finds errors
};

/** Full machine configuration. */
struct GpuConfig {
    // --- Table I ----------------------------------------------------------
    int numSms = 30;                    ///< processor cores
    int warpSize = 32;                  ///< threads per warp
    int spPerSm = 8;                    ///< stream processors per SM
    int maxThreadsPerSm = 1024;
    int maxBlocksPerSm = 8;
    int registersPerSm = 16384;
    uint32_t onChipBytesPerSm = 64 * 1024;  ///< shared memory
    uint32_t spawnLutBytes = 1024;
    int numMemPartitions = 8;           ///< memory modules
    int bytesPerCyclePerPartition = 8;  ///< bandwidth per module

    // --- Timing -------------------------------------------------------------
    int dramLatencyCycles = 220;        ///< fixed off-chip access latency
    int interconnectLatencyCycles = 16; ///< SM <-> partition network
    int onChipLatencyCycles = 2;        ///< shared / spawn access latency
    int sfuLatencyCycles = 16;          ///< div / sqrt / rcp latency
    int coalesceSegmentBytes = 32;      ///< memory coalescing granularity
    int numOnChipBanks = 16;            ///< shared/spawn memory banks

    /**
     * Read-only texture-path caches. Table I's "no L1/L2 memory
     * caching" refers to global-memory loads; the workload reads scene
     * data through the (cached) texture units like Radius-CUDA does, so
     * global loads are routed through a per-SM read-only L1 and a
     * per-partition read-only L2. Set either size to 0 to disable.
     */
    uint32_t texL1BytesPerSm = 32 * 1024;
    uint32_t texL2BytesPerPartition = 256 * 1024;
    int texL1HitLatencyCycles = 12;
    int texL2HitLatencyCycles = 80;
    int texCacheWays = 4;

    // --- Modeling switches ---------------------------------------------------
    bool modelSharedBankConflicts = true;
    /// Fig. 7 assumes a conflict-free spawn memory; Fig. 9 models banks.
    bool modelSpawnBankConflicts = false;
    /// Fig. 10 "theoretical": every memory access completes next cycle.
    bool idealMemory = false;

    // --- Scheduling -----------------------------------------------------------
    SchedulingMode scheduling = SchedulingMode::Thread;
    int blockSizeThreads = 64;          ///< 2 warps/block (Sec. VI-A)

    /// Static µ-kernel verification run by Gpu::loadProgram (verifier.hpp).
    VerifyMode verifyPrograms = VerifyMode::Off;

    /**
     * Event-driven idle-cycle fast-forward (simulator speed knob, not a
     * modelled quantity). When a cycle completes with no memory wake-up
     * delivered, no warp placed and no warp issued on any SM, the
     * machine provably cannot act again before the next scheduled event
     * (DRAM wake-up, ALU/SFU ready time, bank-conflict gate expiry), so
     * the engine advances the clock to that event in one jump and
     * bulk-accounts the skipped cycles. Every observable — statistics,
     * stall attribution (sum == SMs x cycles), occupancy windows, fault
     * lists, watchdog verdicts, trace content — is bit-identical to the
     * naive cycle-by-cycle run (DESIGN.md "Idle-cycle fast-forward").
     * Overridable at run time via UKSIM_FASTFWD=0/1|off|on.
     */
    bool fastForward = true;

    /**
     * Epoch-based decoupled cycle engine (simulator speed knob, not a
     * modelled quantity). Instead of synchronizing every SM every cycle,
     * each SM advances on a local clock up to a conservative horizon —
     * the earliest cycle at which any cross-SM interaction is possible
     * (bounded below by the minimum memory wake-up latency) — deferring
     * global/local memory accesses, which the coordinator then replays
     * once per epoch in canonical (cycle, SM-id) order. Every SimStats
     * observable is bit-identical to the lockstep engine on fault-free
     * runs, and epoch runs are bit-identical across host thread counts
     * (DESIGN.md "Epoch engine"). The engine falls back to lockstep
     * stepping when watchdogCycles > 0, when idealMemory is set, or
     * when the configured memory latencies leave no lookahead window.
     * Overridable at run time via UKSIM_EPOCHS=0/1|off|on.
     */
    bool epochEngine = true;

    /**
     * Superblock execution engine (simulator speed knob, not a modelled
     * quantity). At program load every CFG basic block is compiled into
     * a linear run of pre-resolved host operations (decode table
     * consulted once, SIMD eligibility precomputed, memory / spawn /
     * barrier / branch ops marked as trace-exit points). At issue time,
     * when exactly one warp can issue and its next instructions form a
     * fusible straight-line run, the engine executes the whole run in
     * one call — bulk-accounting cycles, stall attribution and
     * per-window statistics exactly as the per-cycle path would — and
     * bulk-accounts provably idle stretches the same way when the
     * fast-forward engine is off. Every SimStats observable is
     * bit-identical to the per-instruction engine at any host thread
     * count, with fastForward / epochEngine on or off (DESIGN.md
     * "Superblock execution engine"). Falls back to per-instruction
     * stepping when watchdogCycles > 0 or the program has no compiled
     * block table. Overridable at run time via UKSIM_BLOCKEXEC=0/1|off|on.
     */
    bool blockExec = true;

    // --- Fault handling (fault.hpp) -----------------------------------------
    /// What applying a guest fault does: Throw (legacy, default), Trap
    /// (kill the warp, mark the run Faulted, keep going) or HaltGrid.
    FaultPolicy faultPolicy = FaultPolicy::Throw;
    /**
     * Forward-progress watchdog: classify the run as Deadlock when no
     * warp issues, no memory wake-up is delivered and none is in flight
     * for this many consecutive cycles. 0 (default) disables the
     * watchdog entirely — observation-neutral.
     */
    uint64_t watchdogCycles = 0;
    /**
     * Fault-injection knob (tests only): when nonzero, clamp every
     * spawn unit's formation-region ring to at most this many regions so
     * SpawnRegionExhausted can be forced deterministically on small
     * kernels. 0 = real layout-derived ring size.
     */
    uint32_t injectMaxFormationRegions = 0;

    // --- Run control ------------------------------------------------------------
    uint64_t maxCycles = 300000;        ///< paper simulates first 300k cycles
    uint32_t statsWindowCycles = 5000;  ///< AerialVision-style time buckets
    double clockGhz = 1.30;             ///< FX5800 shader clock

    /**
     * Host threads driving the cycle engine (simulator speed knob, not a
     * modelled quantity). 1 = serial. With N > 1 the SMs are sharded
     * across N threads per cycle; results are bit-identical to the
     * serial engine at any thread count (DESIGN.md "Parallel cycle
     * engine"). Overridable at run time via UKSIM_THREADS: a number
     * requests exactly that many threads (oversubscription allowed, for
     * the determinism test matrix), "auto" requests one thread per host
     * core. Without a numeric override the configured value is clamped
     * to std::thread::hardware_concurrency() — oversubscribing a small
     * host only adds scheduling noise, never changes results. Always
     * clamped to [1, numSms].
     */
    int hostThreads = 1;

    /** Warp slots per SM. */
    int maxWarpsPerSm() const { return maxThreadsPerSm / warpSize; }
};

} // namespace uksim

#endif // UKSIM_SIMT_CONFIG_HPP
