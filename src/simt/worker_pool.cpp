/**
 * @file
 * Worker-pool implementation.
 */

#include "simt/worker_pool.hpp"

#include <cassert>

namespace uksim {

namespace {

/// Spin iterations before parking. Short: on a loaded machine parking
/// quickly is cheaper than contending for the core.
constexpr int kSpinIters = 256;

} // anonymous namespace

WorkerPool::WorkerPool(int threads) : numThreads_(threads)
{
    assert(threads >= 2);
    workers_.reserve(threads - 1);
    for (int slot = 1; slot < threads; slot++)
        workers_.emplace_back([this, slot] { workerMain(slot); });
}

WorkerPool::~WorkerPool()
{
    stop_.store(true, std::memory_order_release);
    jobGen_.fetch_add(1, std::memory_order_release);
    jobGen_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
WorkerPool::runSlot(int slot)
{
    try {
        (*job_)(slot);
    } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!error_)
            error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        // Dekker pairing with parallelFor: the caller sets
        // callerWaiting_ (seq_cst) before its futex wait re-reads
        // pending_. Either this load sees the flag and wakes it, or the
        // caller's re-read sees pending_ == 0 and never sleeps — so
        // skipping the wake syscall while the caller is still spinning
        // is safe. Only the caller ever waits on pending_.
        if (callerWaiting_.load(std::memory_order_seq_cst))
            pending_.notify_one();
    }
}

void
WorkerPool::workerMain(int slot)
{
    uint64_t seen = 0;
    for (;;) {
        uint64_t gen = jobGen_.load(std::memory_order_acquire);
        for (int i = 0; gen == seen && i < kSpinIters; i++) {
            std::this_thread::yield();
            gen = jobGen_.load(std::memory_order_acquire);
        }
        while (gen == seen) {
            // Dekker pairing with the publisher: parked_ goes up
            // (seq_cst) before wait() re-reads jobGen_. Either the
            // publisher's parked_ load sees us and notifies, or our
            // re-read sees the new generation and we never sleep.
            parked_.fetch_add(1, std::memory_order_seq_cst);
            jobGen_.wait(seen, std::memory_order_seq_cst);
            parked_.fetch_sub(1, std::memory_order_seq_cst);
            gen = jobGen_.load(std::memory_order_acquire);
        }
        seen = gen;
        if (stop_.load(std::memory_order_acquire))
            return;
        runSlot(slot);
    }
}

void
WorkerPool::parallelFor(const std::function<void(int)> &fn)
{
    job_ = &fn;
    error_ = nullptr;
    pending_.store(numThreads_, std::memory_order_release);
    jobGen_.fetch_add(1, std::memory_order_seq_cst);
    // Per-dispatch wake elision: with back-to-back jobs (the lockstep
    // engine publishes three per cycle, the epoch engine one per round)
    // the workers are usually still in their spin phase, and the futex
    // wake would be a wasted syscall for every job. parked_ counts only
    // workers past the spin; the Dekker pairing in workerMain makes
    // skipping the syscall safe when it reads zero.
    if (parked_.load(std::memory_order_seq_cst) > 0)
        jobGen_.notify_all();

    runSlot(0);

    int left = pending_.load(std::memory_order_acquire);
    for (int i = 0; left != 0 && i < kSpinIters; i++) {
        std::this_thread::yield();
        left = pending_.load(std::memory_order_acquire);
    }
    if (left != 0) {
        callerWaiting_.store(true, std::memory_order_seq_cst);
        left = pending_.load(std::memory_order_seq_cst);
        while (left != 0) {
            pending_.wait(left, std::memory_order_seq_cst);
            left = pending_.load(std::memory_order_acquire);
        }
        callerWaiting_.store(false, std::memory_order_relaxed);
    }
    job_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

} // namespace uksim
