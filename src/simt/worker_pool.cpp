/**
 * @file
 * Worker-pool implementation.
 */

#include "simt/worker_pool.hpp"

#include <cassert>

namespace uksim {

namespace {

/// Spin iterations before parking. Short: on a loaded machine parking
/// quickly is cheaper than contending for the core.
constexpr int kSpinIters = 256;

} // anonymous namespace

WorkerPool::WorkerPool(int threads) : numThreads_(threads)
{
    assert(threads >= 2);
    workers_.reserve(threads - 1);
    for (int slot = 1; slot < threads; slot++)
        workers_.emplace_back([this, slot] { workerMain(slot); });
}

WorkerPool::~WorkerPool()
{
    stop_.store(true, std::memory_order_release);
    jobGen_.fetch_add(1, std::memory_order_release);
    jobGen_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
WorkerPool::runSlot(int slot)
{
    try {
        (*job_)(slot);
    } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!error_)
            error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        pending_.notify_all();
}

void
WorkerPool::workerMain(int slot)
{
    uint64_t seen = 0;
    for (;;) {
        uint64_t gen = jobGen_.load(std::memory_order_acquire);
        for (int i = 0; gen == seen && i < kSpinIters; i++) {
            std::this_thread::yield();
            gen = jobGen_.load(std::memory_order_acquire);
        }
        while (gen == seen) {
            jobGen_.wait(seen, std::memory_order_acquire);
            gen = jobGen_.load(std::memory_order_acquire);
        }
        seen = gen;
        if (stop_.load(std::memory_order_acquire))
            return;
        runSlot(slot);
    }
}

void
WorkerPool::parallelFor(const std::function<void(int)> &fn)
{
    job_ = &fn;
    error_ = nullptr;
    pending_.store(numThreads_, std::memory_order_release);
    jobGen_.fetch_add(1, std::memory_order_release);
    jobGen_.notify_all();

    runSlot(0);

    int left = pending_.load(std::memory_order_acquire);
    for (int i = 0; left != 0 && i < kSpinIters; i++) {
        std::this_thread::yield();
        left = pending_.load(std::memory_order_acquire);
    }
    while (left != 0) {
        pending_.wait(left, std::memory_order_acquire);
        left = pending_.load(std::memory_order_acquire);
    }
    job_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

} // namespace uksim
