/**
 * @file
 * Per-job progress sampling for the serve subsystem.
 *
 * A ProgressSeries records one sample per execution chunk (the pause
 * points Gpu::runUntil lands on) from the live SimStats — cycles, items
 * completed, instructions, fast-forward skip counters — and formats
 * single-line JSON progress events for the wire protocol plus a
 * compact series array for batch manifests. It reuses the counter
 * registry's number formatting so a progress stream and a registry
 * dump never disagree on how a value prints.
 *
 * Sampling is observation-only by construction: it reads the merged
 * SimStats view and never touches engine state.
 */

#ifndef UKSIM_TRACE_PROGRESS_HPP
#define UKSIM_TRACE_PROGRESS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace uksim {
struct SimStats;
}

namespace uksim::trace {

/** One progress sample at a chunk boundary. */
struct ProgressSample {
    uint64_t cycle = 0;
    uint64_t itemsCompleted = 0;
    uint64_t laneInstructions = 0;
    uint64_t warpIssues = 0;
    uint64_t cyclesSkipped = 0;     ///< fast-forward skips so far
};

/** Chunk-boundary progress recorder with JSON export. */
class ProgressSeries
{
  public:
    /** Record one sample from the live merged stats. */
    void record(const SimStats &stats, uint64_t cyclesSkipped);

    const std::vector<ProgressSample> &samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }

    /**
     * The latest sample as one protocol event payload fragment:
     * `"cycle": N, "items": N, "instructions": N, "ipc": X` (no braces,
     * so callers can splice job attribution around it).
     */
    std::string lastSampleFields() const;

    /** The whole series as a JSON array of sample objects. */
    std::string json() const;

  private:
    std::vector<ProgressSample> samples_;
};

} // namespace uksim::trace

#endif // UKSIM_TRACE_PROGRESS_HPP
