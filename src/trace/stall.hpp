/**
 * @file
 * Issue-slot stall attribution.
 *
 * Every SM classifies each cycle's issue slot into exactly one
 * StallReason: either a warp instruction issued, or the slot went idle
 * for a specific architectural cause. The taxonomy is exhaustive and
 * the classification deterministic, so for any simulation
 *
 *     sum over reasons of counts == numSms * cycles
 *
 * which is the invariant `uktrace` and the test suite assert. This is
 * the AerialVision-style "why is the machine idle" breakdown the paper
 * leans on in Figs. 3/7/9, extended from *that* a slot idled to *why*.
 */

#ifndef UKSIM_TRACE_STALL_HPP
#define UKSIM_TRACE_STALL_HPP

#include <array>
#include <cstdint>
#include <string>

namespace uksim::trace {

/**
 * Why an SM's issue slot spent a cycle the way it did. Precedence when
 * several warps are blocked for different reasons: memory/scoreboard
 * waits dominate barriers (a memory-stalled warp is the one holding the
 * barrier back), and structural reasons only apply with no live warps.
 */
enum class StallReason : uint8_t {
    Issued = 0,     ///< a warp instruction issued this cycle
    /// Operand/result not ready: outstanding off-chip access or an
    /// in-flight ALU/SFU result (classic scoreboard wait).
    Scoreboard,
    Barrier,        ///< all unblocked warps are parked at a bar
    /// Spawn mode: no live warps and the new-warp FIFO is empty while
    /// threads are still parked in partially formed warps.
    FifoEmpty,
    /// On-chip bank-conflict serialization is holding the issue stage.
    BankConflict,
    /// No resident warps and launch-grid work exists but could not be
    /// placed (warp slots or spawn-state slots exhausted).
    NoWarps,
    /// Grid exhausted and nothing left to form: the SM is done.
    Drained,
};

constexpr int kNumStallReasons = 7;

/** Stable lowercase identifier ("issued", "scoreboard", ...). */
const char *stallReasonName(StallReason reason);

/** Per-SM (or chip-wide) accumulator: one count per reason. */
struct StallCounters {
    std::array<uint64_t, kNumStallReasons> counts{};

    void record(StallReason reason)
    {
        counts[static_cast<int>(reason)]++;
    }

    /**
     * Bulk attribution for a fast-forwarded idle span: @p n consecutive
     * cycles that all classified to the same @p reason (the classifier
     * inputs are provably frozen across a skipped span).
     */
    void record(StallReason reason, uint64_t n)
    {
        counts[static_cast<int>(reason)] += n;
    }

    uint64_t count(StallReason reason) const
    {
        return counts[static_cast<int>(reason)];
    }

    /** Sum over all reasons (== cycles observed for one SM). */
    uint64_t total() const;

    /** Fraction of slots that issued (0 when nothing observed). */
    double issueEfficiency() const;

    StallCounters &operator+=(const StallCounters &other);
    bool operator==(const StallCounters &other) const = default;
};

/**
 * Fixed-width breakdown table: one row per reason with count and share
 * of all issue slots. @p label names the configuration in the title.
 */
std::string stallBreakdownTable(const StallCounters &chip,
                                const std::string &label);

} // namespace uksim::trace

#endif // UKSIM_TRACE_STALL_HPP
