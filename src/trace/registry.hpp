/**
 * @file
 * Hierarchical counter registry.
 *
 * Counters live under dotted names ("sm.3.stall.scoreboard",
 * "dram.partition.5.read_bytes"). The registry is the export surface of
 * the observability subsystem: simulation components mirror their
 * counters into it after a run and tools dump it as CSV (flat) or JSON
 * (nested by name segment). Names form a strict hierarchy — a name can
 * be a leaf or an interior node, never both — and duplicate definitions
 * are rejected, so two components can't silently publish the same
 * counter.
 *
 * Values are doubles: integral counters up to 2^53 are represented
 * exactly, and derived metrics (IPC, efficiency) fit the same table.
 */

#ifndef UKSIM_TRACE_REGISTRY_HPP
#define UKSIM_TRACE_REGISTRY_HPP

#include <cstdint>
#include <map>
#include <string>

namespace uksim::trace {

/** Dotted-name counter registry with CSV/JSON dump. */
class Registry
{
  public:
    /**
     * Register a new counter. Throws std::invalid_argument when the
     * name is malformed, already defined, or conflicts with the
     * hierarchy (an existing leaf would become an interior node or
     * vice versa).
     */
    void define(const std::string &name, double value);

    /** Upsert: define if missing (same validation), else overwrite. */
    void set(const std::string &name, double value);

    /** Add @p delta to an existing counter (defines it at 0 first). */
    void add(const std::string &name, double delta);

    /**
     * Upsert every entry of @p values as "<prefix>.<name>". Used by
     * subsystems that keep their own counter tables (e.g. the chaos
     * fault-injection harness) to publish under one namespace.
     */
    void mergePrefixed(const std::string &prefix,
                       const std::map<std::string, double> &values);

    bool contains(const std::string &name) const;

    /** Value of @p name; throws std::out_of_range when missing. */
    double get(const std::string &name) const;

    size_t size() const { return counters_.size(); }
    bool empty() const { return counters_.empty(); }

    /** All counters in name order. */
    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }

    /** Flat dump: header line "name,value", one row per counter. */
    std::string csv() const;

    /** Nested dump: one JSON object level per dotted segment. */
    std::string json() const;

    /** Render one value the way csv()/json() do (ints stay ints). */
    static std::string formatValue(double value);

  private:
    void validate(const std::string &name) const;

    std::map<std::string, double> counters_;
};

} // namespace uksim::trace

#endif // UKSIM_TRACE_REGISTRY_HPP
