/**
 * @file
 * Event-trace ring buffer and Chrome-trace export.
 */

#include "trace/events.hpp"

#include <sstream>

namespace uksim::trace {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Issue: return "issue";
      case EventKind::MemRequest: return "mem_request";
      case EventKind::MemReply: return "mem_reply";
      case EventKind::Spawn: return "spawn";
      case EventKind::WarpFormed: return "warp_formed";
      case EventKind::PartialFlush: return "partial_flush";
      case EventKind::Diverge: return "diverge";
      case EventKind::Reconverge: return "reconverge";
      case EventKind::BankConflict: return "bank_conflict";
    }
    return "unknown";
}

void
EventTrace::enable(size_t capacity)
{
    ring_.assign(capacity ? capacity : 1, Event{});
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    enabled_ = true;
}

void
EventTrace::disable()
{
    enabled_ = false;
    ring_.clear();
    head_ = 0;
    count_ = 0;
}

void
EventTrace::pushRing(const Event &e)
{
    if (count_ == ring_.size())
        dropped_++;
    else
        count_++;
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
}

void
EventBuffer::drainInto(EventTrace &master)
{
    if (pending_.empty())
        return;
    for (const Event &e : pending_)
        master.append(e);
    pending_.clear();
}

std::vector<Event>
EventTrace::ordered() const
{
    std::vector<Event> out;
    if (ring_.empty() || count_ == 0)
        return out;     // tracing disabled or nothing recorded
    out.reserve(count_);
    const size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (size_t i = 0; i < count_; i++)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string
EventTrace::chromeTraceJson(int numSms, int numPartitions) const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
    };

    for (int sm = 0; sm < numSms; sm++) {
        sep();
        os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << sm
           << ", \"args\": {\"name\": \"SM " << sm << "\"}}";
    }
    for (int p = 0; p < numPartitions; p++) {
        sep();
        os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
           << numSms + p << ", \"args\": {\"name\": \"DRAM partition "
           << p << "\"}}";
    }

    for (const Event &e : ordered()) {
        sep();
        os << "{\"name\": \"" << eventKindName(e.kind) << "\", ";
        if (e.dur > 0) {
            os << "\"ph\": \"X\", \"dur\": " << e.dur << ", ";
        } else {
            os << "\"ph\": \"i\", \"s\": \"t\", ";
        }
        os << "\"ts\": " << e.cycle << ", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid << ", \"args\": {\"pc\": " << e.pc
           << ", \"value\": " << e.arg << "}}";
    }

    os << "\n]}\n";
    return os.str();
}

} // namespace uksim::trace
