/**
 * @file
 * Structured warp-level event trace.
 *
 * A ring buffer of fixed-size records (issue, memory request/reply,
 * spawn, warp formation, partial flush, divergence/reconvergence),
 * exported as Chrome-trace/Perfetto JSON with one track per SM and one
 * per memory partition (load `.trace.json` in chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * Tracing is off by default and must be bit-for-bit neutral to the
 * simulation: record() never touches simulation state, and its
 * disabled fast path is a single inlined branch. Building with
 * -DUKSIM_DISABLE_EVENT_TRACE compiles record() down to an empty
 * inline no-op for paranoid performance runs.
 */

#ifndef UKSIM_TRACE_EVENTS_HPP
#define UKSIM_TRACE_EVENTS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace uksim::trace {

/** What happened. Names match the Chrome-trace event names. */
enum class EventKind : uint8_t {
    Issue,          ///< warp instruction issued (arg = active lanes)
    MemRequest,     ///< coalesced DRAM transaction issued (arg = bytes)
    MemReply,       ///< DRAM transaction completed (arg = bytes)
    Spawn,          ///< spawn instruction executed (arg = threads spawned)
    WarpFormed,     ///< spawn unit completed a full warp (arg = threads)
    PartialFlush,   ///< partially formed warp force-flushed (arg = threads)
    Diverge,        ///< branch split the warp (arg = stack depth after)
    Reconverge,     ///< reconvergence point popped (arg = stack depth after)
    BankConflict,   ///< serialized on-chip access (arg = extra passes)
};

constexpr int kNumEventKinds = 9;

const char *eventKindName(EventKind kind);

/** One trace record. Track = (pid, tid): SM/warp or partition. */
struct Event {
    uint64_t cycle = 0;
    uint64_t arg = 0;       ///< kind-specific payload (see EventKind)
    uint32_t pc = 0;        ///< program counter (0 when meaningless)
    uint32_t dur = 0;       ///< duration in cycles (0 = instant event)
    int16_t pid = 0;        ///< SM id, or numSms + partition for memory
    int16_t tid = 0;        ///< warp slot (or 0 on memory tracks)
    EventKind kind = EventKind::Issue;
};

/** Ring-buffered event sink. Disabled (and free) unless enable()d. */
class EventTrace
{
  public:
    /** Start recording into a ring of @p capacity records. */
    void enable(size_t capacity = kDefaultCapacity);
    void disable();
    bool enabled() const { return enabled_; }

    /** Records currently held (<= capacity). */
    size_t size() const { return count_; }
    size_t capacity() const { return ring_.size(); }
    /** Records overwritten because the ring wrapped. */
    uint64_t dropped() const { return dropped_; }

    /** Record one event. No-op (one inlined branch) when disabled. */
    void record(EventKind kind, uint64_t cycle, int pid, int tid,
                uint32_t pc, uint64_t arg, uint32_t dur = 0)
    {
#if defined(UKSIM_DISABLE_EVENT_TRACE)
        (void)kind; (void)cycle; (void)pid; (void)tid;
        (void)pc; (void)arg; (void)dur;
#else
        if (!enabled_)
            return;
        push(Event{cycle, arg, pc, dur, static_cast<int16_t>(pid),
                   static_cast<int16_t>(tid), kind});
#endif
    }

    /** Append a pre-built record (EventBuffer drain). No-op if disabled. */
    void append(const Event &e)
    {
#if !defined(UKSIM_DISABLE_EVENT_TRACE)
        if (enabled_)
            push(e);
#else
        (void)e;
#endif
    }

    /** Held events in recording order (oldest first). */
    std::vector<Event> ordered() const;

    /**
     * Chrome-trace JSON ("traceEvents" array object format). Emits
     * process-name metadata labelling pids 0..numSms-1 as "SM i" and
     * numSms..numSms+numPartitions-1 as "DRAM partition p"; one
     * timestamp unit equals one shader cycle.
     */
    std::string chromeTraceJson(int numSms, int numPartitions) const;

    static constexpr size_t kDefaultCapacity = 1u << 20;

    /**
     * Redirect recording into @p sink instead of the ring (nullptr
     * restores normal recording). Used by the epoch engine to capture
     * the DRAM model's request/reply records during deferred-memory
     * replay so they can be spliced into the ring in canonical
     * (cycle, SM-id) order afterwards; the ring (and its drop counter)
     * is untouched while a capture sink is installed.
     */
    void setCapture(std::vector<Event> *sink) { capture_ = sink; }

  private:
    void push(const Event &e)
    {
        if (capture_) {
            capture_->push_back(e);
            return;
        }
        pushRing(e);
    }
    void pushRing(const Event &e);

    std::vector<Event> ring_;
    size_t head_ = 0;       ///< next write position
    size_t count_ = 0;
    uint64_t dropped_ = 0;
    bool enabled_ = false;
    std::vector<Event> *capture_ = nullptr;
};

/**
 * Per-SM pending-event buffer for the parallel cycle engine.
 *
 * During the parallel phase of a cycle each SM (and its spawn unit)
 * appends events here instead of touching the shared ring; the
 * coordinator drains every buffer into the master trace in canonical
 * SM-id order at the end of the cycle. This keeps record() race-free
 * without locks and makes the master trace content — including which
 * records the ring drops — independent of the host thread count.
 *
 * Recording is gated on the bound master's enabled flag, so a disabled
 * trace still costs only one inlined branch.
 */
class EventBuffer
{
  public:
    /** Bind the master trace whose enabled flag gates recording. */
    void bind(const EventTrace *master) { master_ = master; }

    /** Record one event (same signature as EventTrace::record). */
    void record(EventKind kind, uint64_t cycle, int pid, int tid,
                uint32_t pc, uint64_t arg, uint32_t dur = 0)
    {
#if defined(UKSIM_DISABLE_EVENT_TRACE)
        (void)kind; (void)cycle; (void)pid; (void)tid;
        (void)pc; (void)arg; (void)dur;
#else
        if (!master_ || !master_->enabled())
            return;
        pending_.push_back(Event{cycle, arg, pc, dur,
                                 static_cast<int16_t>(pid),
                                 static_cast<int16_t>(tid), kind});
#endif
    }

    bool empty() const { return pending_.empty(); }

    /**
     * Buffered events in recording order (cycle-nondecreasing). The
     * epoch engine reads these directly for its cycle-major merge
     * instead of draining whole buffers per SM.
     */
    const std::vector<Event> &pending() const { return pending_; }
    void clearPending() { pending_.clear(); }

    /** Append all pending events to @p master in order, then clear. */
    void drainInto(EventTrace &master);

  private:
    const EventTrace *master_ = nullptr;
    std::vector<Event> pending_;
};

} // namespace uksim::trace

#endif // UKSIM_TRACE_EVENTS_HPP
