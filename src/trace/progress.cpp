/**
 * @file
 * Per-job progress sampling (progress.hpp).
 */

#include "trace/progress.hpp"

#include <sstream>

#include "simt/stats.hpp"
#include "trace/registry.hpp"

namespace uksim::trace {

void
ProgressSeries::record(const SimStats &stats, uint64_t cyclesSkipped)
{
    ProgressSample s;
    s.cycle = stats.cycles;
    s.itemsCompleted = stats.itemsCompleted;
    s.laneInstructions = stats.laneInstructions;
    s.warpIssues = stats.warpIssues;
    s.cyclesSkipped = cyclesSkipped;
    samples_.push_back(s);
}

namespace {

void
sampleFields(std::ostream &os, const ProgressSample &s)
{
    const double ipc =
        s.cycle ? double(s.laneInstructions) / double(s.cycle) : 0.0;
    os << "\"cycle\": " << s.cycle << ", \"items\": " << s.itemsCompleted
       << ", \"instructions\": " << s.laneInstructions
       << ", \"ipc\": " << Registry::formatValue(ipc);
}

} // anonymous namespace

std::string
ProgressSeries::lastSampleFields() const
{
    std::ostringstream os;
    if (!samples_.empty())
        sampleFields(os, samples_.back());
    return os.str();
}

std::string
ProgressSeries::json() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < samples_.size(); i++) {
        os << (i ? ", " : "") << "{";
        sampleFields(os, samples_[i]);
        os << ", \"cycles_skipped\": " << samples_[i].cyclesSkipped << "}";
    }
    os << "]";
    return os.str();
}

} // namespace uksim::trace
