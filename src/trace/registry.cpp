/**
 * @file
 * Counter registry implementation.
 */

#include "trace/registry.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace uksim::trace {

namespace {

std::vector<std::string>
splitName(const std::string &name)
{
    std::vector<std::string> segments;
    size_t start = 0;
    while (true) {
        size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            segments.push_back(name.substr(start));
            break;
        }
        segments.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    return segments;
}

/** Tree used only while rendering the nested JSON. */
struct Node {
    std::map<std::string, Node> children;
    double value = 0.0;
    bool leaf = false;
};

void
emitNode(std::ostringstream &os, const Node &node, int indent)
{
    if (node.leaf) {
        os << Registry::formatValue(node.value);
        return;
    }
    os << "{";
    bool first = true;
    for (const auto &[key, child] : node.children) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << std::string(size_t(indent) + 2, ' ') << "\"" << key
           << "\": ";
        emitNode(os, child, indent + 2);
    }
    os << "\n" << std::string(size_t(indent), ' ') << "}";
}

} // anonymous namespace

std::string
Registry::formatValue(double value)
{
    // Counters are integers; keep them exact and unadorned. Derived
    // metrics print with enough digits to round-trip.
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

void
Registry::validate(const std::string &name) const
{
    auto fail = [&](const char *why) {
        throw std::invalid_argument("trace::Registry: bad counter name '" +
                                    name + "': " + why);
    };
    if (name.empty())
        fail("empty");
    bool segmentEmpty = true;
    for (char c : name) {
        if (c == '.') {
            if (segmentEmpty)
                fail("empty dotted segment");
            segmentEmpty = true;
            continue;
        }
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-') {
            fail("allowed characters are [a-zA-Z0-9_.-]");
        }
        segmentEmpty = false;
    }
    if (segmentEmpty)
        fail("empty dotted segment");
}

void
Registry::define(const std::string &name, double value)
{
    validate(name);
    if (counters_.count(name)) {
        throw std::invalid_argument("trace::Registry: counter '" + name +
                                    "' already defined");
    }
    // An existing leaf may not become an interior node...
    for (size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        const std::string prefix = name.substr(0, dot);
        if (counters_.count(prefix)) {
            throw std::invalid_argument(
                "trace::Registry: counter '" + name +
                "' conflicts with existing leaf '" + prefix + "'");
        }
    }
    // ...and an interior node may not become a leaf.
    const std::string asPrefix = name + ".";
    auto it = counters_.lower_bound(asPrefix);
    if (it != counters_.end() && it->first.compare(0, asPrefix.size(),
                                                   asPrefix) == 0) {
        throw std::invalid_argument(
            "trace::Registry: counter '" + name +
            "' conflicts with existing subtree '" + it->first + "'");
    }
    counters_.emplace(name, value);
}

void
Registry::set(const std::string &name, double value)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        define(name, value);
    else
        it->second = value;
}

void
Registry::add(const std::string &name, double delta)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        define(name, delta);
    else
        it->second += delta;
}

void
Registry::mergePrefixed(const std::string &prefix,
                        const std::map<std::string, double> &values)
{
    for (const auto &[name, value] : values)
        set(prefix + "." + name, value);
}

bool
Registry::contains(const std::string &name) const
{
    return counters_.count(name) != 0;
}

double
Registry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        throw std::out_of_range("trace::Registry: no counter '" + name +
                                "'");
    }
    return it->second;
}

std::string
Registry::csv() const
{
    std::ostringstream os;
    os << "name,value\n";
    for (const auto &[name, value] : counters_)
        os << name << "," << formatValue(value) << "\n";
    return os.str();
}

std::string
Registry::json() const
{
    Node root;
    for (const auto &[name, value] : counters_) {
        Node *node = &root;
        for (const std::string &segment : splitName(name))
            node = &node->children[segment];
        node->leaf = true;
        node->value = value;
    }
    std::ostringstream os;
    emitNode(os, root, 0);
    os << "\n";
    return os.str();
}

} // namespace uksim::trace
