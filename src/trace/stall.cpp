/**
 * @file
 * Stall-attribution implementation.
 */

#include "trace/stall.hpp"

#include <cstdio>
#include <sstream>

namespace uksim::trace {

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::Issued: return "issued";
      case StallReason::Scoreboard: return "scoreboard";
      case StallReason::Barrier: return "barrier";
      case StallReason::FifoEmpty: return "fifo_empty";
      case StallReason::BankConflict: return "bank_conflict";
      case StallReason::NoWarps: return "no_warps";
      case StallReason::Drained: return "drained";
    }
    return "unknown";
}

uint64_t
StallCounters::total() const
{
    uint64_t t = 0;
    for (uint64_t c : counts)
        t += c;
    return t;
}

double
StallCounters::issueEfficiency() const
{
    uint64_t t = total();
    return t ? double(count(StallReason::Issued)) / double(t) : 0.0;
}

StallCounters &
StallCounters::operator+=(const StallCounters &other)
{
    for (int i = 0; i < kNumStallReasons; i++)
        counts[i] += other.counts[i];
    return *this;
}

std::string
stallBreakdownTable(const StallCounters &chip, const std::string &label)
{
    std::ostringstream os;
    const uint64_t total = chip.total();
    os << "--- issue-slot breakdown: " << label << " ---\n";
    for (int i = 0; i < kNumStallReasons; i++) {
        const StallReason r = static_cast<StallReason>(i);
        const uint64_t c = chip.counts[i];
        const double share = total ? 100.0 * double(c) / double(total) : 0.0;
        char line[96];
        std::snprintf(line, sizeof(line), "%-14s %14llu  %5.1f%%\n",
                      stallReasonName(r),
                      static_cast<unsigned long long>(c), share);
        os << line;
    }
    char foot[96];
    std::snprintf(foot, sizeof(foot), "%-14s %14llu  issue efficiency %.1f%%\n",
                  "total", static_cast<unsigned long long>(total),
                  100.0 * chip.issueEfficiency());
    os << foot;
    return os.str();
}

} // namespace uksim::trace
