/**
 * @file
 * Registry export implementation.
 */

#include "trace/export.hpp"

#include <string>

#include "mem/rocache.hpp"
#include "simt/gpu.hpp"

namespace uksim::trace {

namespace {

void
defineStalls(Registry &reg, const std::string &prefix,
             const StallCounters &stalls)
{
    for (int i = 0; i < kNumStallReasons; i++) {
        const StallReason r = static_cast<StallReason>(i);
        reg.define(prefix + stallReasonName(r),
                   static_cast<double>(stalls.count(r)));
    }
}

void
defineCache(Registry &reg, const std::string &prefix,
            const ReadOnlyCache &cache)
{
    reg.define(prefix + "hits", static_cast<double>(cache.hits()));
    reg.define(prefix + "misses", static_cast<double>(cache.misses()));
    reg.define(prefix + "fills", static_cast<double>(cache.fills()));
    reg.define(prefix + "invalidations",
               static_cast<double>(cache.invalidations()));
}

} // namespace

Registry
buildRegistry(Gpu &gpu)
{
    Registry reg;
    const SimStats &s = gpu.stats();
    const GpuConfig &config = gpu.config();

    // Chip-wide SimStats counters.
    reg.define("sim.cycles", static_cast<double>(s.cycles));
    reg.define("sim.warp_issues", static_cast<double>(s.warpIssues));
    reg.define("sim.lane_instructions",
               static_cast<double>(s.laneInstructions));
    reg.define("sim.committed_lane_instructions",
               static_cast<double>(s.committedLaneInstructions));
    reg.define("sim.idle_issue_slots",
               static_cast<double>(s.idleIssueSlots));
    reg.define("sim.threads_launched",
               static_cast<double>(s.threadsLaunched));
    reg.define("sim.threads_completed",
               static_cast<double>(s.threadsCompleted));
    reg.define("sim.items_completed",
               static_cast<double>(s.itemsCompleted));
    reg.define("sim.dynamic_threads_spawned",
               static_cast<double>(s.dynamicThreadsSpawned));
    reg.define("sim.dynamic_warps_formed",
               static_cast<double>(s.dynamicWarpsFormed));
    reg.define("sim.partial_warp_flushes",
               static_cast<double>(s.partialWarpFlushes));
    reg.define("sim.dram_read_bytes", static_cast<double>(s.dramReadBytes));
    reg.define("sim.dram_write_bytes",
               static_cast<double>(s.dramWriteBytes));
    reg.define("sim.dram_transactions",
               static_cast<double>(s.dramTransactions));
    reg.define("sim.onchip_read_bytes",
               static_cast<double>(s.onChipReadBytes));
    reg.define("sim.onchip_write_bytes",
               static_cast<double>(s.onChipWriteBytes));
    reg.define("sim.spawn_mem_read_bytes",
               static_cast<double>(s.spawnMemReadBytes));
    reg.define("sim.spawn_mem_write_bytes",
               static_cast<double>(s.spawnMemWriteBytes));
    reg.define("sim.bank_conflict_extra_cycles",
               static_cast<double>(s.bankConflictExtraCycles));
    reg.define("sim.ipc", s.ipc());
    reg.define("sim.simt_efficiency", s.simtEfficiency(config.warpSize));

    // Chip-wide issue-slot attribution.
    defineStalls(reg, "stall.", s.stall);

    // Epoch-engine observability (engine-side, outside the bit-identity
    // contract — like fast-forward counters these describe how the run
    // was simulated, not what it computed).
    const EpochStats &ep = gpu.epochStats();
    reg.define("epoch.epochs", static_cast<double>(ep.epochs));
    reg.define("epoch.rounds", static_cast<double>(ep.rounds));
    reg.define("epoch.cycles_total", static_cast<double>(ep.cyclesTotal));
    reg.define("epoch.max_epoch_cycles",
               static_cast<double>(ep.maxEpochCycles));
    reg.define("epoch.mean_epoch_cycles",
               ep.epochs ? static_cast<double>(ep.cyclesTotal) /
                               static_cast<double>(ep.epochs)
                         : 0.0);
    reg.define("epoch.cap_mem_latency",
               static_cast<double>(ep.capMemLatency));
    reg.define("epoch.cap_run_stop", static_cast<double>(ep.capRunStop));
    reg.define("epoch.cap_max_cycles",
               static_cast<double>(ep.capMaxCycles));
    reg.define("epoch.cap_finish", static_cast<double>(ep.capFinish));
    reg.define("epoch.cap_halt", static_cast<double>(ep.capHalt));
    reg.define("epoch.advance_wall_ns",
               static_cast<double>(ep.advanceWallNs));
    reg.define("epoch.merge_wall_ns",
               static_cast<double>(ep.mergeWallNs));

    // Superblock execution engine observability (engine-side too).
    const BlockExecStats &bx = gpu.blockExecStats();
    reg.define("blockexec.blocks_compiled",
               static_cast<double>(bx.blocksCompiled));
    reg.define("blockexec.fusible_blocks",
               static_cast<double>(bx.fusibleBlocks));
    reg.define("blockexec.compile_wall_ns",
               static_cast<double>(bx.compileWallNs));
    reg.define("blockexec.spans", static_cast<double>(bx.spans));
    reg.define("blockexec.largest_span",
               static_cast<double>(bx.largestSpan));
    reg.define("blockexec.fused_runs", static_cast<double>(bx.fusedRuns));
    reg.define("blockexec.fused_ops", static_cast<double>(bx.fusedOps));
    reg.define("blockexec.idle_cycles_skipped",
               static_cast<double>(bx.idleCyclesSkipped));
    for (size_t i = 0; i < kNumBlockExecFallbacks; i++) {
        const BlockExecFallback f = static_cast<BlockExecFallback>(i);
        reg.define(std::string("blockexec.fallback.") +
                       blockExecFallbackName(f),
                   static_cast<double>(bx.fallbacks[i]));
    }

    // Per-SM breakdowns.
    for (int i = 0; i < gpu.numSms(); i++) {
        Sm &sm = gpu.sm(i);
        const std::string base = "sm." + std::to_string(i) + ".";
        defineStalls(reg, base + "stall.", sm.stallCounters());
        if (const ReadOnlyCache *l1 = sm.texL1())
            defineCache(reg, base + "texl1.", *l1);
        if (sm.spawnEnabled()) {
            const SpawnUnit &su = *sm.spawnUnit();
            reg.define(base + "spawn.threads_spawned",
                       static_cast<double>(su.threadsSpawned()));
            reg.define(base + "spawn.warps_formed",
                       static_cast<double>(su.warpsFormed()));
            reg.define(base + "spawn.partial_flushes",
                       static_cast<double>(su.partialFlushes()));
        }
    }

    // Per-partition DRAM traffic and texture L2.
    const std::vector<PartitionStats> &parts = gpu.dram().partitionStats();
    for (size_t p = 0; p < parts.size(); p++) {
        const std::string base = "dram.partition." + std::to_string(p) + ".";
        reg.define(base + "read_bytes",
                   static_cast<double>(parts[p].readBytes));
        reg.define(base + "write_bytes",
                   static_cast<double>(parts[p].writeBytes));
        reg.define(base + "transactions",
                   static_cast<double>(parts[p].transactions));
        reg.define(base + "busy_cycles",
                   static_cast<double>(parts[p].busyCycles));
    }
    for (int p = 0; p < config.numMemPartitions; p++) {
        if (const ReadOnlyCache *l2 = gpu.texL2(p))
            defineCache(reg, "dram.l2." + std::to_string(p) + ".", *l2);
    }

    return reg;
}

} // namespace uksim::trace
