/**
 * @file
 * Mirrors a finished simulation's statistics into a hierarchical counter
 * Registry (trace/registry.hpp).
 *
 * SimStats stays a plain aggregate (cheap to copy and compare, which the
 * tracing-neutrality tests rely on); this module is the one place that
 * knows how to flatten the whole machine — chip totals, per-SM stall
 * attribution and caches, per-partition DRAM traffic — into dotted
 * counter names for CSV/JSON export.
 */

#ifndef UKSIM_TRACE_EXPORT_HPP
#define UKSIM_TRACE_EXPORT_HPP

#include "trace/registry.hpp"

namespace uksim {

class Gpu;

namespace trace {

/**
 * Build a Registry snapshot of @p gpu after run().
 *
 * Naming scheme:
 *  - sim.*                           chip-wide SimStats counters
 *  - stall.<reason>                  chip-wide issue-slot attribution
 *  - sm.<i>.stall.<reason>           per-SM issue-slot attribution
 *  - sm.<i>.texl1.*                  per-SM texture L1 counters
 *  - sm.<i>.spawn.*                  per-SM spawn-unit counters
 *  - dram.partition.<p>.*            per-partition DRAM traffic
 *  - dram.l2.<p>.*                   per-partition texture L2 counters
 */
Registry buildRegistry(Gpu &gpu);

} // namespace trace
} // namespace uksim

#endif // UKSIM_TRACE_EXPORT_HPP
