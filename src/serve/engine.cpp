/**
 * @file
 * Batch engine implementation (engine.hpp).
 *
 * Worker-mode plumbing: each computing job forks a child that runs
 * the executor and reports over an inherited pipe as single-line JSON
 * ({"ev": "progress"|"snapshot"|"error"|"done", ...}). The result
 * payload itself travels through a spool file (atomic write), not the
 * pipe, so a crash mid-write can never hand the parent a torn
 * payload. The parent multiplexes live pipes with poll(), translates
 * worker lines into protocol events, and reaps children with waitpid:
 * a signal death re-queues the job (resuming from its snapshot when
 * one is valid), a clean nonzero exit is a deterministic job failure.
 */

#include "serve/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/serialize.hpp"
#include "serve/executor.hpp"
#include "serve/sha256.hpp"
#include "trace/registry.hpp"

namespace uksim::serve {

namespace {

void
emitEvent(const EventSink &sink, const std::string &line)
{
    if (sink)
        sink(line);
}

void
writeFileAtomic(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid()));
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("spool: cannot write " + tmp);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    out.close();
    if (!out)
        throw std::runtime_error("spool: short write " + tmp);
    std::filesystem::rename(tmp, path);
}

std::optional<std::vector<uint8_t>>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

/// Write one full line to a raw fd (worker child side; no stdio).
void
writeLineFd(int fd, const std::string &text)
{
    std::string line = text;
    line.push_back('\n');
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n <= 0)
            return;     // parent is gone; nothing useful to do
        off += size_t(n);
    }
}

std::string
progressFields(const trace::ProgressSample &s)
{
    const double ipc =
        s.cycle ? double(s.laneInstructions) / double(s.cycle) : 0.0;
    std::ostringstream os;
    os << "\"cycle\": " << s.cycle << ", \"items\": " << s.itemsCompleted
       << ", \"instructions\": " << s.laneInstructions
       << ", \"ipc\": " << trace::Registry::formatValue(ipc);
    return os.str();
}

} // anonymous namespace

std::string
BatchManifest::json() const
{
    std::ostringstream os;
    os << "{\"schema\": \"ukserve-manifest-1\", \"jobs\": [";
    for (size_t i = 0; i < jobs.size(); i++) {
        const JobReport &r = jobs[i];
        os << (i ? ", " : "") << "{\"label\": \""
           << jsonEscape(r.spec.label) << "\", \"hash\": \""
           << jsonEscape(r.hash) << "\", \"outcome\": \""
           << jsonEscape(r.outcome) << "\", \"cache\": \""
           << (r.cacheHit ? "hit" : "miss") << "\", \"attempts\": "
           << r.attempts << ", \"resumed\": "
           << (r.resumed ? "true" : "false") << ", \"cycles\": "
           << r.cycles << ", \"items\": " << r.items << ", \"ipc\": "
           << trace::Registry::formatValue(r.ipc)
           << ", \"result_sha256\": \"" << jsonEscape(r.resultSha256)
           << "\"";
        if (!r.error.empty())
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}";
    }
    os << "], \"cache_hits\": " << cacheHits << ", \"computed\": "
       << computed << ", \"failed\": " << failed << ", \"resumed\": "
       << resumed << "}";
    return os.str();
}

/** One job flowing through runBatch (engine-internal). */
struct ServerEngine::PendingJob {
    size_t index = 0;               ///< submit order
    harness::ExperimentConfig config;
    std::string hash;
    JobReport report;
    bool resolved = false;          ///< config/hash are valid
    bool done = false;
    std::vector<uint8_t> payload;   ///< canonical result bytes when done
    PendingJob *duplicateOf = nullptr;
};

ServerEngine::ServerEngine(EngineOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir)
{
    if (opts_.workers > 0 && opts_.spoolDir.empty()) {
        if (opts_.cacheDir.empty()) {
            throw std::invalid_argument(
                "serve: worker processes need a spool directory");
        }
        opts_.spoolDir = opts_.cacheDir + "/spool";
    }
    if (opts_.maxAttempts < 1)
        opts_.maxAttempts = 1;
}

const harness::PreparedScene &
ServerEngine::preparedScene(const harness::ExperimentConfig &config)
{
    const rt::SceneParams &p = config.sceneParams;
    std::ostringstream key;
    key << config.sceneName << ":" << p.detail << ":" << p.imageWidth
        << ":" << p.imageHeight << ":" << p.seed;
    auto it = scenes_.find(key.str());
    if (it == scenes_.end()) {
        it = scenes_
                 .emplace(key.str(),
                          harness::prepareScene(config.sceneName, p))
                 .first;
    }
    return it->second;
}

std::string
ServerEngine::snapshotPathFor(const std::string &hash) const
{
    return opts_.spoolDir + "/" + hash + ".snap.json";
}

std::string
ServerEngine::payloadPathFor(const std::string &hash) const
{
    return opts_.spoolDir + "/" + hash + ".payload";
}

namespace {

/// Fill the run-summary report fields from a canonical payload.
void
reportFromPayload(JobReport &report, const std::vector<uint8_t> &payload)
{
    const harness::ExperimentResult r =
        harness::deserializeResult(payload);
    report.outcome = runOutcomeName(r.outcome);
    report.cycles = r.stats.cycles;
    report.items = r.stats.itemsCompleted;
    report.ipc = r.ipc;
    report.resultSha256 = sha256Hex(payload);
}

std::string
jobDoneLine(const JobReport &r, size_t index)
{
    std::ostringstream os;
    os << "{\"event\": \"job_done\", \"job\": " << index
       << ", \"label\": \"" << jsonEscape(r.spec.label) << "\""
       << ", \"hash\": \"" << jsonEscape(r.hash) << "\""
       << ", \"cache\": \"" << (r.cacheHit ? "hit" : "miss") << "\""
       << ", \"outcome\": \"" << jsonEscape(r.outcome) << "\""
       << ", \"attempts\": " << r.attempts << ", \"resumed\": "
       << (r.resumed ? "true" : "false") << ", \"cycles\": " << r.cycles
       << ", \"items\": " << r.items << ", \"ipc\": "
       << trace::Registry::formatValue(r.ipc)
       << ", \"result_sha256\": \"" << jsonEscape(r.resultSha256)
       << "\"}";
    return os.str();
}

std::string
jobFailedLine(const JobReport &r, size_t index)
{
    std::ostringstream os;
    os << "{\"event\": \"job_failed\", \"job\": " << index
       << ", \"label\": \"" << jsonEscape(r.spec.label) << "\""
       << ", \"attempts\": " << r.attempts << ", \"error\": \""
       << jsonEscape(r.error) << "\"}";
    return os.str();
}

} // anonymous namespace

void
ServerEngine::runInProcess(PendingJob &job, const EventSink &sink)
{
    std::ostringstream started;
    started << "{\"event\": \"job_started\", \"job\": " << job.index
            << ", \"label\": \"" << jsonEscape(job.report.spec.label)
            << "\", \"hash\": \"" << job.hash << "\", \"attempt\": 1}";
    emitEvent(sink, started.str());

    ExecOptions eo;
    eo.snapshotCycles = opts_.snapshotCycles;
    if (eo.snapshotCycles && !opts_.spoolDir.empty())
        eo.snapshotPath = snapshotPathFor(job.hash);
    eo.onProgress = [&](const trace::ProgressSample &s) {
        std::ostringstream os;
        os << "{\"event\": \"progress\", \"job\": " << job.index << ", "
           << progressFields(s) << "}";
        emitEvent(sink, os.str());
    };
    eo.onSnapshot = [&](const Snapshot &snap) {
        std::ostringstream os;
        os << "{\"event\": \"snapshot\", \"job\": " << job.index
           << ", \"cycle\": " << snap.cycle << ", \"index\": "
           << snap.index << "}";
        emitEvent(sink, os.str());
    };

    Snapshot snap;
    bool haveSnap = false;
    if (!eo.snapshotPath.empty()) {
        if (auto s = readSnapshotFile(eo.snapshotPath);
            s && s->jobHash == job.hash &&
            s->chunkCycles == opts_.snapshotCycles) {
            snap = *s;
            haveSnap = true;
        }
    }

    for (int attempt = 1;; attempt++) {
        job.report.attempts = attempt;
        try {
            eo.resumeFrom = haveSnap ? &snap : nullptr;
            if (haveSnap) {
                std::ostringstream os;
                os << "{\"event\": \"job_resumed\", \"job\": "
                   << job.index << ", \"from_cycle\": " << snap.cycle
                   << "}";
                emitEvent(sink, os.str());
            }
            ExecResult exec =
                executeJob(preparedScene(job.config), job.config,
                           job.hash, eo);
            job.payload = std::move(exec.payload);
            job.report.resumed = exec.resumeVerified;
            job.report.counterJson = exec.result.counterJson;
            reportFromPayload(job.report, job.payload);
            cache_.store(job.hash, job.payload);
            if (!eo.snapshotPath.empty()) {
                std::error_code ec;
                std::filesystem::remove(eo.snapshotPath, ec);
            }
            job.done = true;
            emitEvent(sink, jobDoneLine(job.report, job.index));
            return;
        } catch (const SnapshotMismatch &e) {
            std::ostringstream os;
            os << "{\"event\": \"snapshot_rejected\", \"job\": "
               << job.index << ", \"error\": \"" << jsonEscape(e.what())
               << "\"}";
            emitEvent(sink, os.str());
            std::error_code ec;
            std::filesystem::remove(eo.snapshotPath, ec);
            haveSnap = false;
            if (attempt >= opts_.maxAttempts) {
                job.report.outcome = "error";
                job.report.error = e.what();
                job.done = true;
                emitEvent(sink, jobFailedLine(job.report, job.index));
                return;
            }
        } catch (const std::exception &e) {
            // Deterministic simulation/setup failure — retrying would
            // reproduce it bit-for-bit, so fail immediately.
            job.report.outcome = "error";
            job.report.error = e.what();
            job.done = true;
            emitEvent(sink, jobFailedLine(job.report, job.index));
            return;
        }
    }
}

int
ServerEngine::workerChildMain(int fd, PendingJob &job, int attempt,
                              const Snapshot *resume)
{
    try {
        ExecOptions eo;
        eo.snapshotCycles = opts_.snapshotCycles;
        if (eo.snapshotCycles && !opts_.spoolDir.empty())
            eo.snapshotPath = snapshotPathFor(job.hash);
        eo.resumeFrom = resume;
        eo.onProgress = [&](const trace::ProgressSample &s) {
            writeLineFd(fd, "{\"ev\": \"progress\", " +
                                progressFields(s) + "}");
        };
        eo.onSnapshot = [&](const Snapshot &snap) {
            std::ostringstream os;
            os << "{\"ev\": \"snapshot\", \"cycle\": " << snap.cycle
               << ", \"index\": " << snap.index << "}";
            writeLineFd(fd, os.str());
            // Crash-injection hook: die the hard way right after a
            // snapshot is durable, first attempt only.
            if (attempt == 0 && job.report.spec.killAfterSnapshots > 0 &&
                snap.index >=
                    uint64_t(job.report.spec.killAfterSnapshots)) {
                ::raise(SIGKILL);
            }
        };
        ExecResult exec = executeJob(preparedScene(job.config),
                                     job.config, job.hash, eo);
        if (job.report.spec.counters && !exec.result.counterJson.empty()) {
            const std::string &cj = exec.result.counterJson;
            writeFileAtomic(payloadPathFor(job.hash) + ".counters",
                            std::vector<uint8_t>(cj.begin(), cj.end()));
        }
        writeFileAtomic(payloadPathFor(job.hash), exec.payload);
        std::ostringstream os;
        os << "{\"ev\": \"done\", \"resumed\": "
           << (exec.resumeVerified ? "true" : "false") << "}";
        writeLineFd(fd, os.str());
        return 0;
    } catch (const SnapshotMismatch &e) {
        writeLineFd(fd, std::string("{\"ev\": \"error\", \"message\": \"") +
                            jsonEscape(e.what()) + "\"}");
        return 3;
    } catch (const std::exception &e) {
        writeLineFd(fd, std::string("{\"ev\": \"error\", \"message\": \"") +
                            jsonEscape(e.what()) + "\"}");
        return 1;
    }
}

/** Parent-side bookkeeping for one live worker process. */
struct ServerEngine::RunningWorker {
    pid_t pid = -1;
    int fd = -1;
    PendingJob *job = nullptr;
    int attempt = 0;            ///< 0-based
    bool resumedFromSnapshot = false;
    std::string buf;            ///< partial-line accumulator
    bool gotDone = false;
    bool doneResumed = false;
    std::string errorMessage;
};

void
ServerEngine::handleWorkerLine(RunningWorker &w, const std::string &line,
                               const EventSink &sink)
{
    JsonValue v;
    try {
        v = parseJson(line);
    } catch (const JsonError &) {
        return;     // torn line from a dying worker; ignore
    }
    const std::string ev = v.stringOr("ev", "");
    if (ev == "progress") {
        std::ostringstream os;
        os << "{\"event\": \"progress\", \"job\": " << w.job->index
           << ", \"cycle\": " << v.u64Or("cycle", 0) << ", \"items\": "
           << v.u64Or("items", 0) << ", \"instructions\": "
           << v.u64Or("instructions", 0) << ", \"ipc\": "
           << trace::Registry::formatValue(v.numberOr("ipc", 0.0))
           << "}";
        emitEvent(sink, os.str());
    } else if (ev == "snapshot") {
        std::ostringstream os;
        os << "{\"event\": \"snapshot\", \"job\": " << w.job->index
           << ", \"cycle\": " << v.u64Or("cycle", 0) << ", \"index\": "
           << v.u64Or("index", 0) << "}";
        emitEvent(sink, os.str());
    } else if (ev == "error") {
        w.errorMessage = v.stringOr("message", "worker error");
    } else if (ev == "done") {
        w.gotDone = true;
        w.doneResumed = v.boolOr("resumed", false);
    }
}

void
ServerEngine::finishWorker(RunningWorker &w, int status,
                           std::deque<std::pair<PendingJob *, int>> &work,
                           const EventSink &sink)
{
    PendingJob &job = *w.job;
    job.report.attempts = w.attempt + 1;
    const std::string spath = opts_.snapshotCycles && !opts_.spoolDir.empty()
                                  ? snapshotPathFor(job.hash)
                                  : std::string();

    auto fail = [&](const std::string &why) {
        job.report.outcome = "error";
        job.report.error = why;
        job.done = true;
        emitEvent(sink, jobFailedLine(job.report, job.index));
    };

    if (WIFSIGNALED(status)) {
        std::ostringstream os;
        os << "{\"event\": \"worker_crashed\", \"job\": " << job.index
           << ", \"signal\": " << WTERMSIG(status) << ", \"attempt\": "
           << w.attempt + 1 << "}";
        emitEvent(sink, os.str());
        if (w.attempt + 1 < opts_.maxAttempts) {
            work.emplace_back(&job, w.attempt + 1);
        } else {
            fail("worker killed by signal " +
                 std::to_string(WTERMSIG(status)) + " after " +
                 std::to_string(w.attempt + 1) + " attempts");
        }
        return;
    }

    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code == 0 && w.gotDone) {
        auto payload = readFileBytes(payloadPathFor(job.hash));
        if (!payload || payload->empty()) {
            fail("worker produced no result payload");
            return;
        }
        job.payload = std::move(*payload);
        job.report.resumed = w.doneResumed;
        try {
            reportFromPayload(job.report, job.payload);
        } catch (const std::exception &e) {
            fail(std::string("spooled payload unreadable: ") + e.what());
            return;
        }
        if (job.report.spec.counters) {
            if (auto cj =
                    readFileBytes(payloadPathFor(job.hash) + ".counters"))
                job.report.counterJson.assign(cj->begin(), cj->end());
        }
        cache_.store(job.hash, job.payload);
        std::error_code ec;
        std::filesystem::remove(payloadPathFor(job.hash), ec);
        std::filesystem::remove(payloadPathFor(job.hash) + ".counters",
                                ec);
        if (!spath.empty())
            std::filesystem::remove(spath, ec);
        job.done = true;
        emitEvent(sink, jobDoneLine(job.report, job.index));
        return;
    }
    if (code == 3) {    // snapshot rejected by fingerprint check
        std::ostringstream os;
        os << "{\"event\": \"snapshot_rejected\", \"job\": " << job.index
           << ", \"error\": \"" << jsonEscape(w.errorMessage) << "\"}";
        emitEvent(sink, os.str());
        std::error_code ec;
        if (!spath.empty())
            std::filesystem::remove(spath, ec);
        if (w.attempt + 1 < opts_.maxAttempts)
            work.emplace_back(&job, w.attempt + 1);
        else
            fail(w.errorMessage.empty() ? "snapshot rejected"
                                        : w.errorMessage);
        return;
    }
    fail(w.errorMessage.empty()
             ? "worker exited with code " + std::to_string(code)
             : w.errorMessage);
}

void
ServerEngine::runWorkerPool(std::vector<PendingJob *> &queue,
                            const EventSink &sink)
{
    std::deque<std::pair<PendingJob *, int>> work;
    for (PendingJob *p : queue)
        work.emplace_back(p, 0);
    std::vector<RunningWorker> running;

    auto spawn = [&](PendingJob *job, int attempt) {
        // Build the scene in the parent: forked children share it
        // copy-on-write instead of each rebuilding the kd-tree.
        preparedScene(job->config);

        Snapshot snap;
        bool haveSnap = false;
        if (opts_.snapshotCycles && !opts_.spoolDir.empty()) {
            if (auto s = readSnapshotFile(snapshotPathFor(job->hash));
                s && s->jobHash == job->hash &&
                s->chunkCycles == opts_.snapshotCycles) {
                snap = *s;
                haveSnap = true;
            }
        }

        int fds[2];
        if (::pipe(fds) != 0)
            throw std::runtime_error("serve: pipe() failed");
        std::fflush(nullptr);   // don't let the child double-flush stdio
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            throw std::runtime_error("serve: fork() failed");
        }
        if (pid == 0) {
            ::close(fds[0]);
            const int code = workerChildMain(
                fds[1], *job, attempt, haveSnap ? &snap : nullptr);
            ::close(fds[1]);
            ::_exit(code);
        }
        ::close(fds[1]);

        std::ostringstream started;
        started << "{\"event\": \"job_started\", \"job\": " << job->index
                << ", \"label\": \""
                << jsonEscape(job->report.spec.label) << "\", \"hash\": \""
                << job->hash << "\", \"attempt\": " << attempt + 1 << "}";
        emitEvent(sink, started.str());
        if (haveSnap) {
            std::ostringstream os;
            os << "{\"event\": \"job_resumed\", \"job\": " << job->index
               << ", \"from_cycle\": " << snap.cycle << "}";
            emitEvent(sink, os.str());
        }

        RunningWorker w;
        w.pid = pid;
        w.fd = fds[0];
        w.job = job;
        w.attempt = attempt;
        w.resumedFromSnapshot = haveSnap;
        running.push_back(std::move(w));
    };

    while (!work.empty() || !running.empty()) {
        while (!work.empty() && int(running.size()) < opts_.workers) {
            auto [job, attempt] = work.front();
            work.pop_front();
            spawn(job, attempt);
        }
        std::vector<struct pollfd> fds(running.size());
        for (size_t i = 0; i < running.size(); i++) {
            fds[i].fd = running[i].fd;
            fds[i].events = POLLIN;
            fds[i].revents = 0;
        }
        if (::poll(fds.data(), nfds_t(fds.size()), -1) < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("serve: poll() failed");
        }
        for (size_t i = 0; i < running.size();) {
            RunningWorker &w = running[i];
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
                i++;
                continue;
            }
            char buf[4096];
            const ssize_t n = ::read(w.fd, buf, sizeof(buf));
            if (n > 0) {
                w.buf.append(buf, size_t(n));
                size_t nl;
                while ((nl = w.buf.find('\n')) != std::string::npos) {
                    handleWorkerLine(w, w.buf.substr(0, nl), sink);
                    w.buf.erase(0, nl + 1);
                }
                i++;
                continue;
            }
            // EOF (or error): the child is finishing or dead — reap it.
            ::close(w.fd);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
            finishWorker(w, status, work, sink);
            running.erase(running.begin() + long(i));
            fds.erase(fds.begin() + long(i));
        }
    }
}

BatchManifest
ServerEngine::runBatch(const std::vector<JobSpec> &jobs,
                       const EventSink &sink)
{
    std::vector<PendingJob> pending(jobs.size());
    std::map<std::string, PendingJob *> firstByHash;
    for (size_t i = 0; i < jobs.size(); i++) {
        PendingJob &p = pending[i];
        p.index = i;
        p.report.spec = jobs[i];
        try {
            p.config = resolveJobSpec(jobs[i]);
            p.hash = jobHash(p.config);
            p.report.hash = p.hash;
            p.resolved = true;
        } catch (const std::exception &e) {
            p.report.outcome = "error";
            p.report.error = e.what();
            p.done = true;
            emitEvent(sink, jobFailedLine(p.report, p.index));
            continue;
        }
        auto [it, inserted] = firstByHash.emplace(p.hash, &p);
        if (!inserted)
            p.duplicateOf = it->second;
    }

    // Unique jobs: serve from the on-disk cache, queue the rest.
    std::vector<PendingJob *> compute;
    for (PendingJob &p : pending) {
        if (p.done || p.duplicateOf)
            continue;
        if (auto hit = cache_.load(p.hash)) {
            p.payload = std::move(*hit);
            p.report.cacheHit = true;
            try {
                reportFromPayload(p.report, p.payload);
            } catch (const std::exception &e) {
                // Verified entry that still fails to parse: treat as a
                // schema change, recompute.
                (void)e;
                p.payload.clear();
                p.report.cacheHit = false;
                compute.push_back(&p);
                continue;
            }
            p.done = true;
            emitEvent(sink, jobDoneLine(p.report, p.index));
        } else {
            compute.push_back(&p);
        }
    }

    if (!compute.empty()) {
        if (opts_.workers > 0) {
            runWorkerPool(compute, sink);
        } else {
            for (PendingJob *p : compute)
                runInProcess(*p, sink);
        }
    }

    // Duplicates inherit the first job's result as in-batch cache hits.
    for (PendingJob &p : pending) {
        if (!p.duplicateOf)
            continue;
        PendingJob &src = *p.duplicateOf;
        if (!src.done || src.report.outcome == "error") {
            p.report.outcome = "error";
            p.report.error = src.report.error.empty()
                                 ? "duplicate of a failed job"
                                 : src.report.error;
            p.done = true;
            emitEvent(sink, jobFailedLine(p.report, p.index));
            continue;
        }
        p.payload = src.payload;
        p.report.cacheHit = true;
        p.report.outcome = src.report.outcome;
        p.report.cycles = src.report.cycles;
        p.report.items = src.report.items;
        p.report.ipc = src.report.ipc;
        p.report.resultSha256 = src.report.resultSha256;
        p.done = true;
        emitEvent(sink, jobDoneLine(p.report, p.index));
    }

    BatchManifest manifest;
    for (PendingJob &p : pending) {
        if (p.report.outcome == "error")
            manifest.failed++;
        else if (p.report.cacheHit)
            manifest.cacheHits++;
        else
            manifest.computed++;
        if (p.report.resumed)
            manifest.resumed++;
        manifest.jobs.push_back(std::move(p.report));
    }
    return manifest;
}

} // namespace uksim::serve
