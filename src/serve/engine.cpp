/**
 * @file
 * Batch engine implementation (engine.hpp).
 *
 * Worker-mode plumbing: each computing job forks a child that runs
 * the executor and reports over an inherited pipe as single-line JSON
 * ({"ev": "progress"|"snapshot"|"error"|"done", ...}). The result
 * payload itself travels through a spool file (atomic write), not the
 * pipe, so a crash mid-write can never hand the parent a torn
 * payload. The parent multiplexes live pipes with poll(), translates
 * worker lines into protocol events, and reaps children with waitpid.
 *
 * Failure classification on reap:
 *   signal death, policy-killed  -> job_timeout (deadline/heartbeat),
 *                                   environmental retry with backoff
 *   signal death, otherwise      -> worker_crashed, environmental retry
 *                                   (resuming from a valid snapshot)
 *   exit 3                       -> snapshot rejected: retry fresh
 *   exit 4                       -> environmental (in-child timeout or
 *                                   spool I/O): retry with backoff
 *   exit 0 without "done" / 1    -> deterministic failure: fail fast
 *
 * Environmental retries use jittered exponential backoff; consecutive
 * environmental failures shrink the pool one worker at a time
 * (pool_degraded) until the batch drains in-process. Every decision is
 * recorded in the manifest's decision log.
 *
 * Chaos accounting: injected worker sabotage (worker.kill/worker.hang)
 * is decided in the *parent* at spawn time — SIGKILL would lose any
 * child-side record — and passed to the child as flags; the child acts
 * right after its next durable snapshot. Child-side chaos fires
 * (snapshot/spool/deadline sites) ride back on the done/error lines
 * and are absorbed into the parent engine's tally.
 */

#include "serve/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/chaos.hpp"
#include "harness/serialize.hpp"
#include "serve/executor.hpp"
#include "serve/fdio.hpp"
#include "serve/sha256.hpp"
#include "trace/registry.hpp"

namespace uksim::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

void
emitEvent(const EventSink &sink, const std::string &line)
{
    if (sink)
        sink(line);
}

void
writeFileAtomic(const std::string &path, const std::vector<uint8_t> &bytes)
{
    if (chaos::fire("spool.write.fail"))
        throw std::runtime_error("spool: write failed: " + path +
                                 " (chaos)");
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid()));
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("spool: cannot write " + tmp);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    out.close();
    if (!out)
        throw std::runtime_error("spool: short write " + tmp);
    std::filesystem::rename(tmp, path);
}

std::optional<std::vector<uint8_t>>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

/// Write one full line to a raw fd (worker child side; no stdio).
void
writeLineFd(int fd, const std::string &text)
{
    std::string line = text;
    line.push_back('\n');
    // A false return means the parent is gone; nothing useful to do.
    (void)writeFull(fd, line.data(), line.size());
}

std::string
progressFields(const trace::ProgressSample &s)
{
    const double ipc =
        s.cycle ? double(s.laneInstructions) / double(s.cycle) : 0.0;
    std::ostringstream os;
    os << "\"cycle\": " << s.cycle << ", \"items\": " << s.itemsCompleted
       << ", \"instructions\": " << s.laneInstructions
       << ", \"ipc\": " << trace::Registry::formatValue(ipc);
    return os.str();
}

} // anonymous namespace

std::string
BatchManifest::json() const
{
    std::ostringstream os;
    os << "{\"schema\": \"ukserve-manifest-1\", \"jobs\": [";
    for (size_t i = 0; i < jobs.size(); i++) {
        const JobReport &r = jobs[i];
        os << (i ? ", " : "") << "{\"label\": \""
           << jsonEscape(r.spec.label) << "\", \"hash\": \""
           << jsonEscape(r.hash) << "\", \"outcome\": \""
           << jsonEscape(r.outcome) << "\", \"cache\": \""
           << (r.cacheHit ? "hit" : "miss") << "\", \"attempts\": "
           << r.attempts << ", \"resumed\": "
           << (r.resumed ? "true" : "false") << ", \"cycles\": "
           << r.cycles << ", \"items\": " << r.items << ", \"ipc\": "
           << trace::Registry::formatValue(r.ipc)
           << ", \"result_sha256\": \"" << jsonEscape(r.resultSha256)
           << "\"";
        if (!r.error.empty())
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}";
    }
    os << "], \"cache_hits\": " << cacheHits << ", \"computed\": "
       << computed << ", \"failed\": " << failed << ", \"resumed\": "
       << resumed << ", \"timeouts\": " << timeouts << ", \"rejected\": "
       << rejected;
    if (!decisions.empty()) {
        os << ", \"decisions\": [";
        for (size_t i = 0; i < decisions.size(); i++) {
            os << (i ? ", " : "") << "\"" << jsonEscape(decisions[i])
               << "\"";
        }
        os << "]";
    }
    if (!chaosJson.empty())
        os << ", \"chaos\": " << chaosJson;
    os << "}";
    return os.str();
}

/** One job flowing through runBatch (engine-internal). */
struct ServerEngine::PendingJob {
    size_t index = 0;               ///< submit order
    harness::ExperimentConfig config;
    std::string hash;
    JobReport report;
    bool resolved = false;          ///< config/hash are valid
    bool done = false;
    std::vector<uint8_t> payload;   ///< canonical result bytes when done
    PendingJob *duplicateOf = nullptr;
};

/** A (job, attempt) pair waiting to run, possibly not before a time. */
struct ServerEngine::WorkItem {
    PendingJob *job = nullptr;
    int attempt = 0;                ///< attempts already burned (0-based)
    SteadyClock::time_point notBefore = SteadyClock::time_point::min();
};

/** Worker-pool queue plus the degradation counters that govern it. */
struct ServerEngine::PoolState {
    std::deque<WorkItem> work;
    int poolLimit = 0;              ///< current max concurrent workers
    int consecutiveFailures = 0;    ///< environmental failures in a row
};

ServerEngine::ServerEngine(EngineOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir)
{
    if (opts_.workers > 0 && opts_.spoolDir.empty()) {
        if (opts_.cacheDir.empty()) {
            throw std::invalid_argument(
                "serve: worker processes need a spool directory");
        }
        opts_.spoolDir = opts_.cacheDir + "/spool";
    }
    if (opts_.maxAttempts < 1)
        opts_.maxAttempts = 1;
}

const harness::PreparedScene &
ServerEngine::preparedScene(const harness::ExperimentConfig &config)
{
    const rt::SceneParams &p = config.sceneParams;
    std::ostringstream key;
    key << config.sceneName << ":" << p.detail << ":" << p.imageWidth
        << ":" << p.imageHeight << ":" << p.seed;
    auto it = scenes_.find(key.str());
    if (it == scenes_.end()) {
        it = scenes_
                 .emplace(key.str(),
                          harness::prepareScene(config.sceneName, p))
                 .first;
    }
    return it->second;
}

std::string
ServerEngine::snapshotPathFor(const std::string &hash) const
{
    return opts_.spoolDir + "/" + hash + ".snap.json";
}

std::string
ServerEngine::payloadPathFor(const std::string &hash) const
{
    return opts_.spoolDir + "/" + hash + ".payload";
}

uint64_t
ServerEngine::backoffDelayMs(int attempt)
{
    const int shift = std::min(attempt > 0 ? attempt - 1 : 0, 20);
    uint64_t base = opts_.backoffBaseMs << shift;
    if (base > opts_.backoffMaxMs)
        base = opts_.backoffMaxMs;
    if (base == 0)
        return 1;   // never requeue "immediately": that can spin
    const uint64_t half = base / 2;
    if (half == 0)
        return base;
    // Jitter in [half, base] so retrying workers desynchronize.
    return half + chaos::splitmix64(retryRng_) % (half + 1);
}

void
ServerEngine::noteDecision(std::string text)
{
    decisions_.push_back(std::move(text));
}

void
ServerEngine::storeToCache(PendingJob &job, const EventSink &sink)
{
    try {
        cache_.store(job.hash, job.payload);
    } catch (const std::exception &e) {
        // The result is already computed and verified — a cache that
        // cannot persist it degrades the *next* batch, not this job.
        std::ostringstream os;
        os << "{\"event\": \"cache_degraded\", \"job\": " << job.index
           << ", \"error\": \"" << jsonEscape(e.what()) << "\"}";
        emitEvent(sink, os.str());
        noteDecision("job " + std::to_string(job.index) +
                     ": result not cached (" + e.what() + ")");
    }
}

namespace {

/// Fill the run-summary report fields from a canonical payload.
void
reportFromPayload(JobReport &report, const std::vector<uint8_t> &payload)
{
    const harness::ExperimentResult r =
        harness::deserializeResult(payload);
    report.outcome = runOutcomeName(r.outcome);
    report.cycles = r.stats.cycles;
    report.items = r.stats.itemsCompleted;
    report.ipc = r.ipc;
    report.resultSha256 = sha256Hex(payload);
}

std::string
jobDoneLine(const JobReport &r, size_t index)
{
    std::ostringstream os;
    os << "{\"event\": \"job_done\", \"job\": " << index
       << ", \"label\": \"" << jsonEscape(r.spec.label) << "\""
       << ", \"hash\": \"" << jsonEscape(r.hash) << "\""
       << ", \"cache\": \"" << (r.cacheHit ? "hit" : "miss") << "\""
       << ", \"outcome\": \"" << jsonEscape(r.outcome) << "\""
       << ", \"attempts\": " << r.attempts << ", \"resumed\": "
       << (r.resumed ? "true" : "false") << ", \"cycles\": " << r.cycles
       << ", \"items\": " << r.items << ", \"ipc\": "
       << trace::Registry::formatValue(r.ipc)
       << ", \"result_sha256\": \"" << jsonEscape(r.resultSha256)
       << "\"}";
    return os.str();
}

std::string
jobFailedLine(const JobReport &r, size_t index)
{
    std::ostringstream os;
    os << "{\"event\": \"job_failed\", \"job\": " << index
       << ", \"label\": \"" << jsonEscape(r.spec.label) << "\""
       << ", \"outcome\": \""
       << jsonEscape(r.outcome.empty() ? "error" : r.outcome) << "\""
       << ", \"attempts\": " << r.attempts << ", \"error\": \""
       << jsonEscape(r.error) << "\"}";
    return os.str();
}

std::string
jobRejectedLine(const JobReport &r, size_t index, size_t depth, int limit)
{
    std::ostringstream os;
    os << "{\"event\": \"job_rejected\", \"job\": " << index
       << ", \"label\": \"" << jsonEscape(r.spec.label) << "\""
       << ", \"queue_depth\": " << depth << ", \"limit\": " << limit
       << "}";
    return os.str();
}

std::string
jobTimeoutLine(size_t index, int attempt, const std::string &reason)
{
    std::ostringstream os;
    os << "{\"event\": \"job_timeout\", \"job\": " << index
       << ", \"attempt\": " << attempt << ", \"reason\": \""
       << jsonEscape(reason) << "\"}";
    return os.str();
}

std::string
jobRetriedLine(size_t index, int nextAttempt, uint64_t backoffMs,
               const std::string &cause)
{
    std::ostringstream os;
    os << "{\"event\": \"job_retried\", \"job\": " << index
       << ", \"attempt\": " << nextAttempt << ", \"backoff_ms\": "
       << backoffMs << ", \"cause\": \"" << jsonEscape(cause) << "\"}";
    return os.str();
}

} // anonymous namespace

void
ServerEngine::runInProcess(PendingJob &job, const EventSink &sink,
                           int baseAttempt)
{
    ExecOptions eo;
    eo.snapshotCycles = opts_.snapshotCycles;
    eo.deadlineMs = opts_.jobDeadlineMs;
    if (eo.snapshotCycles && !opts_.spoolDir.empty())
        eo.snapshotPath = snapshotPathFor(job.hash);
    eo.onProgress = [&](const trace::ProgressSample &s) {
        std::ostringstream os;
        os << "{\"event\": \"progress\", \"job\": " << job.index << ", "
           << progressFields(s) << "}";
        emitEvent(sink, os.str());
    };
    eo.onSnapshot = [&](const Snapshot &snap) {
        std::ostringstream os;
        os << "{\"event\": \"snapshot\", \"job\": " << job.index
           << ", \"cycle\": " << snap.cycle << ", \"index\": "
           << snap.index << "}";
        emitEvent(sink, os.str());
    };

    for (int attempt = baseAttempt + 1;; attempt++) {
        job.report.attempts = attempt;
        if (attempt == baseAttempt + 1) {
            std::ostringstream started;
            started << "{\"event\": \"job_started\", \"job\": "
                    << job.index << ", \"label\": \""
                    << jsonEscape(job.report.spec.label)
                    << "\", \"hash\": \"" << job.hash
                    << "\", \"attempt\": " << attempt << "}";
            emitEvent(sink, started.str());
        }

        // Re-read the snapshot every attempt: a timed-out or crashed
        // attempt may have left a newer one to resume from.
        Snapshot snap;
        bool haveSnap = false;
        if (!eo.snapshotPath.empty()) {
            if (auto s = readSnapshotFile(eo.snapshotPath);
                s && s->jobHash == job.hash &&
                s->chunkCycles == opts_.snapshotCycles) {
                snap = *s;
                haveSnap = true;
            }
        }

        try {
            eo.resumeFrom = haveSnap ? &snap : nullptr;
            if (haveSnap) {
                std::ostringstream os;
                os << "{\"event\": \"job_resumed\", \"job\": "
                   << job.index << ", \"from_cycle\": " << snap.cycle
                   << "}";
                emitEvent(sink, os.str());
            }
            ExecResult exec =
                executeJob(preparedScene(job.config), job.config,
                           job.hash, eo);
            job.payload = std::move(exec.payload);
            job.report.resumed = exec.resumeVerified;
            job.report.counterJson = exec.result.counterJson;
            reportFromPayload(job.report, job.payload);
            storeToCache(job, sink);
            if (!eo.snapshotPath.empty()) {
                std::error_code ec;
                std::filesystem::remove(eo.snapshotPath, ec);
            }
            job.done = true;
            emitEvent(sink, jobDoneLine(job.report, job.index));
            return;
        } catch (const SnapshotMismatch &e) {
            std::ostringstream os;
            os << "{\"event\": \"snapshot_rejected\", \"job\": "
               << job.index << ", \"error\": \"" << jsonEscape(e.what())
               << "\"}";
            emitEvent(sink, os.str());
            std::error_code ec;
            std::filesystem::remove(eo.snapshotPath, ec);
            if (attempt >= opts_.maxAttempts) {
                job.report.outcome = "error";
                job.report.error = e.what();
                job.done = true;
                emitEvent(sink, jobFailedLine(job.report, job.index));
                return;
            }
            // Deterministic rejection: retry fresh, no backoff.
        } catch (const JobTimeout &e) {
            emitEvent(sink, jobTimeoutLine(job.index, attempt, "deadline"));
            batchTimeouts_++;
            if (attempt >= opts_.maxAttempts) {
                job.report.outcome = "error";
                job.report.error = e.what();
                job.done = true;
                emitEvent(sink, jobFailedLine(job.report, job.index));
                return;
            }
            const uint64_t delay = backoffDelayMs(attempt);
            emitEvent(sink, jobRetriedLine(job.index, attempt + 1, delay,
                                           "timeout"));
            noteDecision("job " + std::to_string(job.index) +
                         " attempt " + std::to_string(attempt + 1) +
                         " after " + std::to_string(delay) +
                         "ms backoff: " + e.what());
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        } catch (const std::exception &e) {
            // Deterministic simulation/setup failure — retrying would
            // reproduce it bit-for-bit, so fail immediately.
            job.report.outcome = "error";
            job.report.error = e.what();
            job.done = true;
            emitEvent(sink, jobFailedLine(job.report, job.index));
            return;
        }
    }
}

int
ServerEngine::workerChildMain(int fd, PendingJob &job, int attempt,
                              const Snapshot *resume, bool sabotageKill,
                              bool sabotageHang)
{
    // Perturb the chaos seed with the attempt index so probabilistic
    // child-side faults (e.g. spool.write.fail) are *redrawn* on retry
    // — a fork-inherited RNG would replay the identical draw sequence
    // and turn any transient fault into a guaranteed attempt-budget
    // exhaustion. Hit-count rules (@N / %N) deliberately replay: a
    // fresh child re-hits 1..N. Still fully deterministic, since the
    // attempt sequence itself is a function of the chaos plan.
    if (chaos::ChaosEngine::instance().enabled()) {
        chaos::ChaosEngine::Config cfg =
            chaos::ChaosEngine::instance().exportConfig();
        cfg.seed ^= 0x517cc1b727220a95ull * uint64_t(attempt + 1);
        chaos::ChaosEngine::instance().importConfig(cfg);
    }
    // Fire counts inherited across fork(); anything above this baseline
    // happened in this child and rides back on the done/error line.
    const std::map<std::string, uint64_t> chaosBase =
        chaos::ChaosEngine::instance().fireCounts();
    auto chaosField = [&]() -> std::string {
        std::map<std::string, uint64_t> delta;
        for (const auto &[site, n] :
             chaos::ChaosEngine::instance().fireCounts()) {
            uint64_t base = 0;
            if (auto it = chaosBase.find(site); it != chaosBase.end())
                base = it->second;
            if (n > base)
                delta[site] = n - base;
        }
        if (delta.empty())
            return "";
        return ", \"chaos\": " + chaos::ChaosEngine::countsToJson(delta);
    };
    auto sabotage = [&] {
        if (sabotageKill)
            ::raise(SIGKILL);
        if (sabotageHang) {
            for (;;)
                ::pause();
        }
    };
    try {
        if (opts_.snapshotCycles == 0)
            sabotage();     // no snapshot boundary will ever come
        ExecOptions eo;
        eo.snapshotCycles = opts_.snapshotCycles;
        eo.deadlineMs = opts_.jobDeadlineMs;
        if (eo.snapshotCycles && !opts_.spoolDir.empty())
            eo.snapshotPath = snapshotPathFor(job.hash);
        eo.resumeFrom = resume;
        eo.onProgress = [&](const trace::ProgressSample &s) {
            writeLineFd(fd, "{\"ev\": \"progress\", " +
                                progressFields(s) + "}");
        };
        eo.onSnapshot = [&](const Snapshot &snap) {
            std::ostringstream os;
            os << "{\"ev\": \"snapshot\", \"cycle\": " << snap.cycle
               << ", \"index\": " << snap.index << "}";
            writeLineFd(fd, os.str());
            // Crash-injection hook: die the hard way right after a
            // snapshot is durable, first attempt only.
            if (attempt == 0 && job.report.spec.killAfterSnapshots > 0 &&
                snap.index >=
                    uint64_t(job.report.spec.killAfterSnapshots)) {
                ::raise(SIGKILL);
            }
            sabotage();     // injected worker.kill / worker.hang
        };
        ExecResult exec = executeJob(preparedScene(job.config),
                                     job.config, job.hash, eo);
        try {
            if (job.report.spec.counters &&
                !exec.result.counterJson.empty()) {
                const std::string &cj = exec.result.counterJson;
                writeFileAtomic(payloadPathFor(job.hash) + ".counters",
                                std::vector<uint8_t>(cj.begin(),
                                                     cj.end()));
            }
            writeFileAtomic(payloadPathFor(job.hash), exec.payload);
        } catch (const std::exception &e) {
            // The run succeeded; only spooling failed — environmental.
            writeLineFd(fd,
                        std::string("{\"ev\": \"error\", \"kind\": "
                                    "\"environment\", \"message\": \"") +
                            jsonEscape(e.what()) + "\"" + chaosField() +
                            "}");
            return 4;
        }
        std::ostringstream os;
        os << "{\"ev\": \"done\", \"resumed\": "
           << (exec.resumeVerified ? "true" : "false") << chaosField()
           << "}";
        writeLineFd(fd, os.str());
        return 0;
    } catch (const SnapshotMismatch &e) {
        writeLineFd(fd,
                    std::string("{\"ev\": \"error\", \"kind\": "
                                "\"snapshot\", \"message\": \"") +
                        jsonEscape(e.what()) + "\"" + chaosField() + "}");
        return 3;
    } catch (const JobTimeout &e) {
        writeLineFd(fd,
                    std::string("{\"ev\": \"error\", \"kind\": "
                                "\"timeout\", \"message\": \"") +
                        jsonEscape(e.what()) + "\"" + chaosField() + "}");
        return 4;
    } catch (const std::exception &e) {
        writeLineFd(fd, std::string("{\"ev\": \"error\", \"message\": \"") +
                            jsonEscape(e.what()) + "\"" + chaosField() +
                            "}");
        return 1;
    }
}

/** Parent-side bookkeeping for one live worker process. */
struct ServerEngine::RunningWorker {
    pid_t pid = -1;
    int fd = -1;
    PendingJob *job = nullptr;
    int attempt = 0;            ///< 0-based
    bool resumedFromSnapshot = false;
    std::string buf;            ///< partial-line accumulator
    bool gotDone = false;
    bool doneResumed = false;
    std::string errorMessage;
    std::string errorKind;      ///< "timeout"/"environment"/"snapshot"/""
    SteadyClock::time_point start;      ///< attempt start (deadline)
    SteadyClock::time_point lastBeat;   ///< last pipe activity (heartbeat)
    bool policyKilled = false;  ///< we SIGKILLed it (deadline/heartbeat)
    std::string killReason;     ///< "deadline" or "heartbeat"
};

void
ServerEngine::handleWorkerLine(RunningWorker &w, const std::string &line,
                               const EventSink &sink)
{
    JsonValue v;
    try {
        v = parseJson(line);
    } catch (const JsonError &) {
        return;     // torn line from a dying worker; ignore
    }
    auto absorbChaos = [&] {
        const JsonValue *c = v.find("chaos");
        if (c == nullptr || !c->isObject())
            return;
        std::map<std::string, uint64_t> counts;
        for (const auto &[site, n] : c->object) {
            if (n.isNumber() && n.number > 0)
                counts[site] = uint64_t(n.number);
        }
        if (!counts.empty())
            chaos::ChaosEngine::instance().absorb(counts);
    };
    const std::string ev = v.stringOr("ev", "");
    if (ev == "progress") {
        std::ostringstream os;
        os << "{\"event\": \"progress\", \"job\": " << w.job->index
           << ", \"cycle\": " << v.u64Or("cycle", 0) << ", \"items\": "
           << v.u64Or("items", 0) << ", \"instructions\": "
           << v.u64Or("instructions", 0) << ", \"ipc\": "
           << trace::Registry::formatValue(v.numberOr("ipc", 0.0))
           << "}";
        emitEvent(sink, os.str());
    } else if (ev == "snapshot") {
        std::ostringstream os;
        os << "{\"event\": \"snapshot\", \"job\": " << w.job->index
           << ", \"cycle\": " << v.u64Or("cycle", 0) << ", \"index\": "
           << v.u64Or("index", 0) << "}";
        emitEvent(sink, os.str());
    } else if (ev == "error") {
        w.errorMessage = v.stringOr("message", "worker error");
        w.errorKind = v.stringOr("kind", "");
        absorbChaos();
    } else if (ev == "done") {
        w.gotDone = true;
        w.doneResumed = v.boolOr("resumed", false);
        absorbChaos();
    }
}

void
ServerEngine::finishWorker(RunningWorker &w, int status, PoolState &pool,
                           const EventSink &sink)
{
    PendingJob &job = *w.job;
    job.report.attempts = w.attempt + 1;
    const std::string spath = opts_.snapshotCycles && !opts_.spoolDir.empty()
                                  ? snapshotPathFor(job.hash)
                                  : std::string();

    auto fail = [&](const std::string &why) {
        job.report.outcome = "error";
        job.report.error = why;
        job.done = true;
        emitEvent(sink, jobFailedLine(job.report, job.index));
    };

    // Environmental failure: bump the degradation counters, then retry
    // with jittered backoff while the attempt budget lasts.
    auto retryEnvironmental = [&](const std::string &cause) {
        pool.consecutiveFailures++;
        if (opts_.degradeAfterFailures > 0 &&
            pool.consecutiveFailures >= opts_.degradeAfterFailures &&
            pool.poolLimit > 0) {
            pool.poolLimit--;
            pool.consecutiveFailures = 0;
            std::ostringstream os;
            os << "{\"event\": \"pool_degraded\", \"workers\": "
               << pool.poolLimit << "}";
            emitEvent(sink, os.str());
            noteDecision(
                "pool degraded to " + std::to_string(pool.poolLimit) +
                " workers after consecutive environmental failures");
        }
        if (w.attempt + 1 < opts_.maxAttempts) {
            const uint64_t delay = backoffDelayMs(w.attempt + 1);
            emitEvent(sink, jobRetriedLine(job.index, w.attempt + 2,
                                           delay, cause));
            noteDecision("job " + std::to_string(job.index) +
                         " attempt " + std::to_string(w.attempt + 2) +
                         " after " + std::to_string(delay) +
                         "ms backoff: " + cause);
            pool.work.push_back(WorkItem{
                &job, w.attempt + 1,
                SteadyClock::now() + std::chrono::milliseconds(delay)});
        } else {
            fail(cause + " after " + std::to_string(w.attempt + 1) +
                 " attempts");
        }
    };

    if (WIFSIGNALED(status)) {
        if (w.policyKilled) {
            emitEvent(sink, jobTimeoutLine(job.index, w.attempt + 1,
                                           w.killReason));
            batchTimeouts_++;
            retryEnvironmental("killed on " + w.killReason + " expiry");
        } else {
            std::ostringstream os;
            os << "{\"event\": \"worker_crashed\", \"job\": " << job.index
               << ", \"signal\": " << WTERMSIG(status)
               << ", \"attempt\": " << w.attempt + 1 << "}";
            emitEvent(sink, os.str());
            retryEnvironmental("worker killed by signal " +
                               std::to_string(WTERMSIG(status)));
        }
        return;
    }

    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code == 0 && w.gotDone) {
        auto payload = readFileBytes(payloadPathFor(job.hash));
        if (!payload || payload->empty()) {
            fail("worker produced no result payload");
            return;
        }
        job.payload = std::move(*payload);
        job.report.resumed = w.doneResumed;
        try {
            reportFromPayload(job.report, job.payload);
        } catch (const std::exception &e) {
            fail(std::string("spooled payload unreadable: ") + e.what());
            return;
        }
        if (job.report.spec.counters) {
            if (auto cj =
                    readFileBytes(payloadPathFor(job.hash) + ".counters"))
                job.report.counterJson.assign(cj->begin(), cj->end());
        }
        pool.consecutiveFailures = 0;
        storeToCache(job, sink);
        std::error_code ec;
        std::filesystem::remove(payloadPathFor(job.hash), ec);
        std::filesystem::remove(payloadPathFor(job.hash) + ".counters",
                                ec);
        if (!spath.empty())
            std::filesystem::remove(spath, ec);
        job.done = true;
        emitEvent(sink, jobDoneLine(job.report, job.index));
        return;
    }
    if (code == 3) {    // snapshot rejected by fingerprint check
        std::ostringstream os;
        os << "{\"event\": \"snapshot_rejected\", \"job\": " << job.index
           << ", \"error\": \"" << jsonEscape(w.errorMessage) << "\"}";
        emitEvent(sink, os.str());
        std::error_code ec;
        if (!spath.empty())
            std::filesystem::remove(spath, ec);
        // Deterministic rejection: retry fresh immediately — no
        // backoff, and it does not count toward pool degradation.
        if (w.attempt + 1 < opts_.maxAttempts)
            pool.work.push_back(WorkItem{&job, w.attempt + 1,
                                         SteadyClock::time_point::min()});
        else
            fail(w.errorMessage.empty() ? "snapshot rejected"
                                        : w.errorMessage);
        return;
    }
    if (code == 4) {    // in-child environmental failure
        if (w.errorKind == "timeout") {
            emitEvent(sink, jobTimeoutLine(job.index, w.attempt + 1,
                                           "deadline"));
            batchTimeouts_++;
        }
        retryEnvironmental(w.errorMessage.empty()
                               ? "environmental worker failure"
                               : w.errorMessage);
        return;
    }
    fail(w.errorMessage.empty()
             ? "worker exited with code " + std::to_string(code)
             : w.errorMessage);
}

void
ServerEngine::runWorkerPool(std::vector<PendingJob *> &queue,
                            const EventSink &sink)
{
    PoolState ps;
    ps.poolLimit = opts_.workers;
    for (PendingJob *p : queue)
        ps.work.push_back(WorkItem{p, 0, SteadyClock::time_point::min()});
    std::vector<RunningWorker> running;

    auto spawn = [&](const WorkItem &item) {
        PendingJob *job = item.job;
        // Build the scene in the parent: forked children share it
        // copy-on-write instead of each rebuilding the kd-tree.
        preparedScene(job->config);

        Snapshot snap;
        bool haveSnap = false;
        if (opts_.snapshotCycles && !opts_.spoolDir.empty()) {
            if (auto s = readSnapshotFile(snapshotPathFor(job->hash));
                s && s->jobHash == job->hash &&
                s->chunkCycles == opts_.snapshotCycles) {
                snap = *s;
                haveSnap = true;
            }
        }

        int fds[2] = {-1, -1};
        pid_t pid = -1;
        bool sabotageKill = false;
        bool sabotageHang = false;
        bool forkFailed = chaos::fire("fork.fail");
        if (!forkFailed) {
            // Sabotage is decided here, in the parent — a SIGKILLed
            // child cannot report, so parent-side accounting is the
            // only way the firing pattern stays deterministic — and
            // only for a spawn that got past fork.fail: "kill the Nth
            // worker" must mean the Nth worker that actually exists.
            sabotageKill = chaos::fire("worker.kill");
            sabotageHang = !sabotageKill && chaos::fire("worker.hang");
            if (::pipe(fds) != 0)
                throw std::runtime_error("serve: pipe() failed");
            std::fflush(nullptr); // don't let the child double-flush stdio
            pid = ::fork();
            if (pid < 0) {
                ::close(fds[0]);
                ::close(fds[1]);
                forkFailed = true;
            }
        }
        if (forkFailed) {
            std::ostringstream os;
            os << "{\"event\": \"fork_failed\", \"job\": " << job->index
               << ", \"attempt\": " << item.attempt + 1 << "}";
            emitEvent(sink, os.str());
            ps.consecutiveFailures++;
            if (opts_.degradeAfterFailures > 0 &&
                ps.consecutiveFailures >= opts_.degradeAfterFailures &&
                ps.poolLimit > 0) {
                ps.poolLimit--;
                ps.consecutiveFailures = 0;
                std::ostringstream dg;
                dg << "{\"event\": \"pool_degraded\", \"workers\": "
                   << ps.poolLimit << "}";
                emitEvent(sink, dg.str());
                noteDecision("pool degraded to " +
                             std::to_string(ps.poolLimit) +
                             " workers after consecutive environmental "
                             "failures");
            }
            const uint64_t delay = backoffDelayMs(item.attempt + 1);
            noteDecision("job " + std::to_string(job->index) +
                         ": fork failed, retrying in " +
                         std::to_string(delay) + "ms");
            // Fork failure is not the job's fault: same attempt number.
            ps.work.push_back(WorkItem{
                job, item.attempt,
                SteadyClock::now() + std::chrono::milliseconds(delay)});
            return;
        }
        if (pid == 0) {
            ::close(fds[0]);
            const int code = workerChildMain(
                fds[1], *job, item.attempt, haveSnap ? &snap : nullptr,
                sabotageKill, sabotageHang);
            ::close(fds[1]);
            ::_exit(code);
        }
        ::close(fds[1]);

        std::ostringstream started;
        started << "{\"event\": \"job_started\", \"job\": " << job->index
                << ", \"label\": \""
                << jsonEscape(job->report.spec.label) << "\", \"hash\": \""
                << job->hash << "\", \"attempt\": " << item.attempt + 1
                << "}";
        emitEvent(sink, started.str());
        if (haveSnap) {
            std::ostringstream os;
            os << "{\"event\": \"job_resumed\", \"job\": " << job->index
               << ", \"from_cycle\": " << snap.cycle << "}";
            emitEvent(sink, os.str());
        }

        RunningWorker w;
        w.pid = pid;
        w.fd = fds[0];
        w.job = job;
        w.attempt = item.attempt;
        w.resumedFromSnapshot = haveSnap;
        w.start = w.lastBeat = SteadyClock::now();
        running.push_back(std::move(w));
    };

    while (!ps.work.empty() || !running.empty()) {
        auto now = SteadyClock::now();
        if (ps.poolLimit <= 0 && running.empty()) {
            // Degraded all the way down: drain what's left in-process.
            while (!ps.work.empty()) {
                WorkItem item = ps.work.front();
                ps.work.pop_front();
                runInProcess(*item.job, sink, item.attempt);
            }
            break;
        }
        // Launch every due work item while there is pool capacity.
        bool launched = true;
        while (launched && int(running.size()) < ps.poolLimit) {
            launched = false;
            for (auto it = ps.work.begin(); it != ps.work.end(); ++it) {
                if (it->notBefore <= now) {
                    const WorkItem item = *it;
                    ps.work.erase(it);
                    spawn(item);
                    launched = true;
                    break;
                }
            }
        }

        // Poll timeout: the soonest of any worker deadline, heartbeat
        // expiry, or delayed retry becoming due.
        long long timeoutMs = -1;
        auto consider = [&](SteadyClock::time_point t) {
            long long ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    t - now)
                    .count();
            if (ms < 0)
                ms = 0;
            if (timeoutMs < 0 || ms < timeoutMs)
                timeoutMs = ms;
        };
        for (const RunningWorker &w : running) {
            if (opts_.jobDeadlineMs > 0)
                consider(w.start +
                         std::chrono::milliseconds(opts_.jobDeadlineMs));
            if (opts_.heartbeatMs > 0)
                consider(w.lastBeat +
                         std::chrono::milliseconds(opts_.heartbeatMs));
        }
        if (ps.poolLimit <= 0 && running.empty()) {
            // The pool degraded to zero *inside* the launch loop: go
            // back to the top, where the in-process drain takes over —
            // blocking in poll() here would wait on nothing, forever.
            continue;
        }
        if (int(running.size()) < ps.poolLimit) {
            for (const WorkItem &item : ps.work)
                consider(item.notBefore);
        }
        const int pollTimeout =
            timeoutMs < 0 ? -1
                          : int(std::min(timeoutMs + 1,
                                         (long long)INT_MAX));

        std::vector<struct pollfd> fds(running.size());
        for (size_t i = 0; i < running.size(); i++) {
            fds[i].fd = running[i].fd;
            fds[i].events = POLLIN;
            fds[i].revents = 0;
        }
        if (::poll(fds.empty() ? nullptr : fds.data(),
                   nfds_t(fds.size()), pollTimeout) < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("serve: poll() failed");
        }
        now = SteadyClock::now();

        // Policy kills: overdue or silent workers die here; the reap
        // path below classifies them as job_timeout, not a crash.
        for (RunningWorker &w : running) {
            if (w.policyKilled)
                continue;
            const char *reason = nullptr;
            if (opts_.jobDeadlineMs > 0 &&
                now - w.start >=
                    std::chrono::milliseconds(opts_.jobDeadlineMs))
                reason = "deadline";
            else if (opts_.heartbeatMs > 0 &&
                     now - w.lastBeat >=
                         std::chrono::milliseconds(opts_.heartbeatMs))
                reason = "heartbeat";
            if (reason != nullptr) {
                w.policyKilled = true;
                w.killReason = reason;
                ::kill(w.pid, SIGKILL);
            }
        }

        for (size_t i = 0; i < running.size();) {
            RunningWorker &w = running[i];
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
                i++;
                continue;
            }
            char buf[4096];
            const ssize_t n = readEintr(w.fd, buf, sizeof(buf));
            if (n > 0) {
                w.lastBeat = now;
                w.buf.append(buf, size_t(n));
                size_t nl;
                while ((nl = w.buf.find('\n')) != std::string::npos) {
                    handleWorkerLine(w, w.buf.substr(0, nl), sink);
                    w.buf.erase(0, nl + 1);
                }
                i++;
                continue;
            }
            // EOF (or error): the child is finishing or dead — reap it.
            ::close(w.fd);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
            finishWorker(w, status, ps, sink);
            running.erase(running.begin() + long(i));
            fds.erase(fds.begin() + long(i));
        }
    }
}

BatchManifest
ServerEngine::runBatch(const std::vector<JobSpec> &jobs,
                       const EventSink &sink)
{
    retryRng_ = opts_.retrySeed;
    batchTimeouts_ = 0;
    decisions_.clear();
    chaos::ChaosEngine &ce = chaos::ChaosEngine::instance();
    const std::map<std::string, uint64_t> chaosBase =
        ce.enabled() ? ce.fireCounts()
                     : std::map<std::string, uint64_t>{};

    std::vector<PendingJob> pending(jobs.size());
    std::map<std::string, PendingJob *> firstByHash;
    for (size_t i = 0; i < jobs.size(); i++) {
        PendingJob &p = pending[i];
        p.index = i;
        p.report.spec = jobs[i];
        try {
            p.config = resolveJobSpec(jobs[i]);
            p.hash = jobHash(p.config);
            p.report.hash = p.hash;
            p.resolved = true;
        } catch (const std::exception &e) {
            p.report.outcome = "error";
            p.report.error = e.what();
            p.done = true;
            emitEvent(sink, jobFailedLine(p.report, p.index));
            continue;
        }
        auto [it, inserted] = firstByHash.emplace(p.hash, &p);
        if (!inserted)
            p.duplicateOf = it->second;
    }

    // Unique jobs: serve from the on-disk cache, queue the rest.
    std::vector<PendingJob *> compute;
    for (PendingJob &p : pending) {
        if (p.done || p.duplicateOf)
            continue;
        if (auto hit = cache_.load(p.hash)) {
            p.payload = std::move(*hit);
            p.report.cacheHit = true;
            try {
                reportFromPayload(p.report, p.payload);
            } catch (const std::exception &e) {
                // Verified entry that still fails to parse: treat as a
                // schema change, recompute.
                (void)e;
                p.payload.clear();
                p.report.cacheHit = false;
                compute.push_back(&p);
                continue;
            }
            p.done = true;
            emitEvent(sink, jobDoneLine(p.report, p.index));
        } else {
            compute.push_back(&p);
        }
    }

    // Backpressure: a bounded queue sheds load with a typed rejection
    // instead of letting one oversized batch starve the server.
    if (opts_.maxQueueDepth > 0 &&
        int(compute.size()) > opts_.maxQueueDepth) {
        const size_t depth = compute.size();
        for (size_t i = size_t(opts_.maxQueueDepth); i < compute.size();
             i++) {
            PendingJob &p = *compute[i];
            p.report.outcome = "rejected";
            p.report.error = "queue depth " + std::to_string(depth) +
                             " exceeds limit " +
                             std::to_string(opts_.maxQueueDepth);
            p.done = true;
            emitEvent(sink, jobRejectedLine(p.report, p.index, depth,
                                            opts_.maxQueueDepth));
            noteDecision("job " + std::to_string(p.index) +
                         " rejected: " + p.report.error);
        }
        compute.resize(size_t(opts_.maxQueueDepth));
    }

    if (!compute.empty()) {
        if (opts_.workers > 0) {
            runWorkerPool(compute, sink);
        } else {
            for (PendingJob *p : compute)
                runInProcess(*p, sink);
        }
    }

    // Duplicates inherit the first job's result as in-batch cache hits.
    for (PendingJob &p : pending) {
        if (!p.duplicateOf)
            continue;
        PendingJob &src = *p.duplicateOf;
        if (src.report.outcome == "rejected") {
            p.report.outcome = "rejected";
            p.report.error = src.report.error;
            p.done = true;
            emitEvent(sink, jobRejectedLine(p.report, p.index,
                                            pending.size(),
                                            opts_.maxQueueDepth));
            continue;
        }
        if (!src.done || src.report.outcome == "error") {
            p.report.outcome = "error";
            p.report.error = src.report.error.empty()
                                 ? "duplicate of a failed job"
                                 : src.report.error;
            p.done = true;
            emitEvent(sink, jobFailedLine(p.report, p.index));
            continue;
        }
        p.payload = src.payload;
        p.report.cacheHit = true;
        p.report.outcome = src.report.outcome;
        p.report.cycles = src.report.cycles;
        p.report.items = src.report.items;
        p.report.ipc = src.report.ipc;
        p.report.resultSha256 = src.report.resultSha256;
        p.done = true;
        emitEvent(sink, jobDoneLine(p.report, p.index));
    }

    BatchManifest manifest;
    for (PendingJob &p : pending) {
        if (p.report.outcome == "error")
            manifest.failed++;
        else if (p.report.outcome == "rejected")
            manifest.rejected++;
        else if (p.report.cacheHit)
            manifest.cacheHits++;
        else
            manifest.computed++;
        if (p.report.resumed)
            manifest.resumed++;
        manifest.jobs.push_back(std::move(p.report));
    }
    manifest.timeouts = batchTimeouts_;
    manifest.decisions = std::move(decisions_);
    decisions_.clear();

    if (ce.enabled()) {
        std::map<std::string, uint64_t> delta;
        for (const auto &[site, n] : ce.fireCounts()) {
            uint64_t base = 0;
            if (auto it = chaosBase.find(site); it != chaosBase.end())
                base = it->second;
            if (n > base)
                delta[site] = n - base;
        }
        if (!delta.empty())
            manifest.chaosJson = chaos::ChaosEngine::countsToJson(delta);
    }
    return manifest;
}

} // namespace uksim::serve
