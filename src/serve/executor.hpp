/**
 * @file
 * Single-job executor: chunked runs, snapshots, verified resume.
 *
 * executeJob runs one resolved experiment through the harness with the
 * serve subsystem's instrumentation attached: at every snapshot-cadence
 * pause it samples progress, fingerprints the machine (sha256 of the
 * flight-recorder dump) and writes an atomic snapshot file. On resume
 * it replays with the same cadence and *verifies* the fingerprint at
 * the snapshot cycle — a mismatch throws SnapshotMismatch and the
 * caller falls back to a fresh run. Because pausing is bit-neutral
 * (harness::RunHooks contract), the result payload is identical to an
 * uninstrumented runExperiment for the same configuration.
 */

#ifndef UKSIM_SERVE_EXECUTOR_HPP
#define UKSIM_SERVE_EXECUTOR_HPP

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "serve/snapshot.hpp"
#include "trace/progress.hpp"

namespace uksim::serve {

/** Resume fingerprint did not match: replay diverged from the original. */
class SnapshotMismatch : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * The job's wall-clock deadline expired mid-run (or the "job.deadline"
 * chaos site fired). The run stops at a chunk boundary, so any snapshot
 * written before the timeout is valid for a resumed retry.
 */
class JobTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Instrumentation knobs for one executeJob call. */
struct ExecOptions {
    /// Pause cadence in simulated cycles (0 = run uninterrupted; no
    /// snapshots, no progress samples).
    uint64_t snapshotCycles = 0;
    /// Per-attempt wall-clock deadline in milliseconds, checked at
    /// every pause (0 = none). Needs snapshotCycles > 0 to have any
    /// effect — an uninterrupted run never reaches the check.
    uint64_t deadlineMs = 0;
    /// Snapshot file to (re)write at each pause; empty = don't persist.
    std::string snapshotPath;
    /// Snapshot to resume from: replay to snap.cycle with its cadence,
    /// verify the state fingerprint, then continue.
    const Snapshot *resumeFrom = nullptr;
    /// Called after each snapshot is durably written (the worker's
    /// SIGKILL test hook and snapshot events hang off this).
    std::function<void(const Snapshot &snap)> onSnapshot;
    /// Called at every pause with the latest sample.
    std::function<void(const trace::ProgressSample &sample)> onProgress;
};

/** Everything one job execution produces. */
struct ExecResult {
    harness::ExperimentResult result;
    std::vector<uint8_t> payload;       ///< canonical result bytes
    trace::ProgressSeries progress;
    /// True when resumeFrom was given and its fingerprint matched.
    bool resumeVerified = false;
};

/**
 * Run one job.
 * @param hash canonical job hash (recorded in snapshots).
 * @throws SnapshotMismatch when resume verification fails.
 */
ExecResult executeJob(const harness::PreparedScene &scene,
                      const harness::ExperimentConfig &config,
                      const std::string &hash, const ExecOptions &opts);

} // namespace uksim::serve

#endif // UKSIM_SERVE_EXECUTOR_HPP
