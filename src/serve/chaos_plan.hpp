/**
 * @file
 * JSON chaos plans ("ukchaos-plan-1").
 *
 * The chaos engine itself (harness/chaos.hpp) is JSON-free; this is
 * the serve-layer bridge that lets plans travel as documents — on the
 * wire inside a submit request's optional "chaos" field, or on disk
 * for `uksim-submit --chaos-plan FILE`.
 *
 * Schema:
 *   {
 *     "schema": "ukchaos-plan-1",
 *     "seed": 42,
 *     "rules": [
 *       {"site": "cache.read.corrupt", "p": 0.5},
 *       {"site": "worker.kill", "on_hit": 2, "max_fires": 1},
 *       {"site": "snapshot.write.torn", "every": 3}
 *     ]
 *   }
 *
 * Exactly one of "p" / "on_hit" / "every" must be present per rule;
 * "max_fires" is optional (0 = unlimited). The site catalog and rule
 * semantics are identical to the UKSIM_CHAOS spec string — a plan is
 * just the same config in a reviewable, machine-checkable form.
 */

#ifndef UKSIM_SERVE_CHAOS_PLAN_HPP
#define UKSIM_SERVE_CHAOS_PLAN_HPP

#include <string>
#include <string_view>

#include "harness/chaos.hpp"
#include "serve/json.hpp"

namespace uksim::serve {

/** Schema tag every chaos plan document must carry. */
inline constexpr const char *kChaosPlanSchema = "ukchaos-plan-1";

/**
 * Parse an already-decoded plan document into an engine config.
 * @throws JsonError on schema violations (wrong schema tag, missing
 *         site, zero or multiple trigger fields, bad site name).
 */
chaos::ChaosEngine::Config
chaosPlanFromJson(const JsonValue &doc);

/** Parse a plan from raw text. @throws JsonError */
chaos::ChaosEngine::Config
chaosPlanFromText(std::string_view text);

/**
 * Serialize a config back to a canonical single-line plan document
 * (stable field order, no whitespace variance) — what uksim-submit
 * embeds in the request after validating --chaos-plan.
 */
std::string chaosPlanToJson(const chaos::ChaosEngine::Config &cfg);

} // namespace uksim::serve

#endif // UKSIM_SERVE_CHAOS_PLAN_HPP
