/**
 * @file
 * EINTR-safe fd I/O helpers and the socket streambuf.
 *
 * Every raw read/write loop in the serve stack (worker pipes, the TCP
 * transport, the submit client) goes through these two helpers so
 * signal interruptions and short writes are handled in exactly one
 * place. Both helpers and the streambuf carry chaos injection points
 * (harness/chaos.hpp):
 *
 *   stream.read.eintr   readEintr retries a simulated EINTR
 *   stream.write.short  writeFull is forced into a 1-byte write
 *   stream.read.short   FdStreamBuf underflow reads at most 1 byte
 *   tcp.disconnect      FdStreamBuf sees EOF on read / error on flush
 *
 * The transport-level disconnect sites live only in FdStreamBuf, so
 * injected TCP chaos can never masquerade as a worker-pipe failure.
 */

#ifndef UKSIM_SERVE_FDIO_HPP
#define UKSIM_SERVE_FDIO_HPP

#include <cstddef>
#include <streambuf>

#include <sys/types.h>

namespace uksim::serve {

/**
 * read(2) with EINTR (real or injected) retried. Returns read()'s
 * semantics otherwise: >0 bytes read, 0 at EOF, -1 on error.
 */
ssize_t readEintr(int fd, void *buf, size_t len);

/**
 * Write all @p len bytes, retrying EINTR and continuing after short
 * writes. @return false on error or a zero-byte write (errno is left
 * for the caller).
 */
bool writeFull(int fd, const void *buf, size_t len);

/** Bidirectional streambuf over one connected socket fd. */
class FdStreamBuf : public std::streambuf
{
  public:
    explicit FdStreamBuf(int fd);

  protected:
    int_type underflow() override;
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    int flushWrite();

    int fd_;
    char rbuf_[4096];
    char wbuf_[4096];
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_FDIO_HPP
