/**
 * @file
 * JSON chaos plan parsing/serialization (chaos_plan.hpp).
 */

#include "serve/chaos_plan.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace uksim::serve {

namespace {

uint64_t
u64Field(const JsonValue &rule, const std::string &key)
{
    const JsonValue *v = rule.find(key);
    if (v == nullptr)
        return 0;
    if (!v->isNumber() || v->number < 0 ||
        v->number != std::floor(v->number))
        throw JsonError("chaos plan: '" + key +
                            "' must be a non-negative integer",
                        0);
    return uint64_t(v->number);
}

} // anonymous namespace

chaos::ChaosEngine::Config
chaosPlanFromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        throw JsonError("chaos plan must be an object", 0);
    if (doc.stringOr("schema", "") != kChaosPlanSchema)
        throw JsonError(std::string("chaos plan schema is not ") +
                            kChaosPlanSchema,
                        0);
    chaos::ChaosEngine::Config cfg;
    cfg.seed = doc.u64Or("seed", 0);
    const JsonValue &rules = doc.at("rules");
    if (!rules.isArray())
        throw JsonError("chaos plan: 'rules' must be an array", 0);
    for (const JsonValue &r : rules.array) {
        if (!r.isObject())
            throw JsonError("chaos plan: each rule must be an object", 0);
        chaos::Rule rule;
        rule.site = r.stringAt("site");
        int triggers = 0;
        if (const JsonValue *p = r.find("p"); p != nullptr) {
            if (!p->isNumber() || p->number < 0 || p->number > 1)
                throw JsonError("chaos plan: 'p' must be in [0,1]", 0);
            rule.probability = p->number;
            triggers++;
        }
        if (r.find("on_hit") != nullptr) {
            rule.onHit = u64Field(r, "on_hit");
            if (rule.onHit == 0)
                throw JsonError("chaos plan: 'on_hit' must be >= 1", 0);
            triggers++;
        }
        if (r.find("every") != nullptr) {
            rule.everyHits = u64Field(r, "every");
            if (rule.everyHits == 0)
                throw JsonError("chaos plan: 'every' must be >= 1", 0);
            triggers++;
        }
        if (triggers != 1)
            throw JsonError("chaos plan: rule for site '" + rule.site +
                                "' needs exactly one of p/on_hit/every",
                            0);
        rule.maxFires = u64Field(r, "max_fires");
        cfg.rules.push_back(std::move(rule));
    }
    cfg.enabled = !cfg.rules.empty();
    for (size_t i = 0; i < cfg.rules.size(); i++) {
        const std::string &site = cfg.rules[i].site;
        for (char c : site) {
            if (!(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) ||
                  c == '.' || c == '_' || c == '-'))
                throw JsonError("chaos plan: bad site name '" + site + "'",
                                0);
        }
        for (size_t j = 0; j < i; j++) {
            if (cfg.rules[j].site == site)
                throw JsonError("chaos plan: duplicate site '" + site +
                                    "'",
                                0);
        }
    }
    return cfg;
}

chaos::ChaosEngine::Config
chaosPlanFromText(std::string_view text)
{
    return chaosPlanFromJson(parseJson(text));
}

std::string
chaosPlanToJson(const chaos::ChaosEngine::Config &cfg)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << kChaosPlanSchema << "\""
       << ", \"seed\": " << cfg.seed << ", \"rules\": [";
    bool first = true;
    for (const chaos::Rule &r : cfg.rules) {
        if (!first)
            os << ", ";
        first = false;
        os << "{\"site\": \"" << jsonEscape(r.site) << "\"";
        if (r.onHit > 0)
            os << ", \"on_hit\": " << r.onHit;
        else if (r.everyHits > 0)
            os << ", \"every\": " << r.everyHits;
        else {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.9g", r.probability);
            os << ", \"p\": " << buf;
        }
        if (r.maxFires > 0)
            os << ", \"max_fires\": " << r.maxFires;
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace uksim::serve
