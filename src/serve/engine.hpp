/**
 * @file
 * The serve batch engine: job queue, worker pool, cache, recovery.
 *
 * A ServerEngine owns the shared expensive state of a batch server —
 * prepared scenes with their kd-trees (built once per distinct scene
 * identity and reused across jobs), the content-addressed result
 * cache, and the spool directory for snapshots and in-flight results
 * — and executes submitted batches:
 *
 *  - Jobs are deduplicated by canonical hash before anything runs:
 *    within a batch, only the first job with a given hash computes;
 *    the rest are served as cache hits, as are jobs whose hash is
 *    already in the on-disk cache from an earlier batch or server.
 *
 *  - With workers > 0 each computing job runs in a forked worker
 *    *process*, so a crashing or killed job cannot take the server
 *    down. A worker that dies (e.g. SIGKILL) is retried: if it left a
 *    valid snapshot the retry resumes from it with the fingerprint
 *    verified (serve/executor.hpp); otherwise it restarts fresh.
 *    workers == 0 executes in-process (the deterministic path unit
 *    tests use; it also honors leftover snapshots).
 *
 *  - Failure policy: every attempt runs under an optional wall-clock
 *    deadline and heartbeat (a silent or overdue worker is SIGKILLed
 *    and the attempt classified job_timeout). Environmental failures
 *    (signals, timeouts, spool I/O) retry with jittered exponential
 *    backoff inside a bounded attempt budget; deterministic failures
 *    fail fast on the first attempt. Consecutive environmental
 *    failures shrink the worker pool (pool_degraded) down to
 *    in-process execution, and a bounded queue rejects overflow jobs
 *    with a typed job_rejected event. Every such decision is recorded
 *    in the batch manifest.
 *
 *  - Per-job lifecycle events (job_started, progress, snapshot,
 *    job_resumed, job_done, job_failed, job_timeout, job_retried,
 *    job_rejected, worker_crashed, fork_failed, pool_degraded,
 *    cache_degraded) stream through an EventSink as single-line JSON;
 *    the batch ends with a manifest summarizing every job, the cache
 *    hit/computed/failed/resumed/timeout/rejected counts, the decision
 *    log and any chaos fire counts.
 */

#ifndef UKSIM_SERVE_ENGINE_HPP
#define UKSIM_SERVE_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "serve/job.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot.hpp"

namespace uksim::serve {

/** Server-wide engine configuration. */
struct EngineOptions {
    std::string cacheDir;       ///< result cache root ("" = cache disabled)
    std::string spoolDir;       ///< snapshots + in-flight results ("" = none)
    int workers = 0;            ///< forked worker processes (0 = in-process)
    uint64_t snapshotCycles = 0;///< snapshot cadence (0 = no snapshots)
    int maxAttempts = 3;        ///< attempts per job before it fails

    // --- failure policy ---------------------------------------------
    /// Per-attempt wall-clock deadline in ms (0 = none). A worker over
    /// deadline is SIGKILLed and the attempt classified job_timeout;
    /// in-process the executor throws at the next chunk boundary.
    /// Needs snapshotCycles > 0 to be checked.
    uint64_t jobDeadlineMs = 0;
    /// Hung-worker detection: a worker silent on its pipe for this
    /// many ms is SIGKILLed and classified job_timeout (0 = off).
    uint64_t heartbeatMs = 0;
    /// Exponential backoff before environmental retries:
    /// min(backoffMaxMs, backoffBaseMs << (attempt-1)) plus seeded
    /// jitter drawn from retrySeed.
    uint64_t backoffBaseMs = 10;
    uint64_t backoffMaxMs = 2000;
    uint64_t retrySeed = 0;
    /// After this many *consecutive* environmental failures the pool
    /// shrinks by one worker; at zero the batch drains in-process.
    int degradeAfterFailures = 3;
    /// Reject compute jobs beyond this queue depth per batch with a
    /// typed job_rejected event (0 = unbounded).
    int maxQueueDepth = 0;
};

/** Sink for single-line JSON protocol events (no trailing newline). */
using EventSink = std::function<void(const std::string &line)>;

/** Per-job entry of a batch manifest. */
struct JobReport {
    JobSpec spec;
    std::string hash;           ///< canonical job hash ("" if resolve failed)
    std::string outcome;        ///< runOutcomeName string, or "error"
    bool cacheHit = false;
    bool resumed = false;       ///< a verified snapshot resume happened
    int attempts = 0;           ///< compute attempts (0 for cache hits)
    uint64_t cycles = 0;
    uint64_t items = 0;
    double ipc = 0.0;
    std::string resultSha256;   ///< digest of the canonical result payload
    std::string error;          ///< failure description when outcome=="error"
    std::string counterJson;    ///< registry JSON (spec.counters, computed only)
};

/** Summary of one runBatch call. */
struct BatchManifest {
    std::vector<JobReport> jobs;    ///< submit order
    int cacheHits = 0;
    int computed = 0;
    int failed = 0;
    int resumed = 0;
    int timeouts = 0;               ///< deadline/heartbeat expiries
    int rejected = 0;               ///< backpressure rejections
    /// Human-readable retry/degradation decisions, in order. Every
    /// backoff retry, pool shrink and rejection leaves one line here
    /// so a failed batch is diagnosable from the manifest alone.
    std::vector<std::string> decisions;
    /// Single-line JSON object of chaos fire counts for this batch
    /// ("" when chaos is disabled or nothing fired).
    std::string chaosJson;
    /** Single-line JSON ("ukserve-manifest-1"). */
    std::string json() const;
};

/** Batch execution engine (see file header). */
class ServerEngine
{
  public:
    explicit ServerEngine(EngineOptions opts);

    /**
     * Execute a batch, streaming events to @p sink (which may be
     * empty). Never throws for per-job failures — they become
     * "error" entries in the manifest.
     */
    BatchManifest runBatch(const std::vector<JobSpec> &jobs,
                           const EventSink &sink);

    ResultCache &cache() { return cache_; }
    const EngineOptions &options() const { return opts_; }

    /** Scene+kd-tree for @p config, built once and shared (dedupe). */
    const harness::PreparedScene &
    preparedScene(const harness::ExperimentConfig &config);

  private:
    struct PendingJob;
    struct RunningWorker;
    struct WorkItem;
    struct PoolState;

    /// @p baseAttempt: attempts already burned by the worker pool
    /// before this job fell back to in-process execution.
    void runInProcess(PendingJob &job, const EventSink &sink,
                      int baseAttempt = 0);
    void runWorkerPool(std::vector<PendingJob *> &queue,
                       const EventSink &sink);
    /// Worker-child body; returns the process exit code (0 ok, 1
    /// deterministic failure, 3 snapshot rejected, 4 environmental —
    /// timeout or spool I/O — worth retrying with backoff).
    int workerChildMain(int fd, PendingJob &job, int attempt,
                        const Snapshot *resume, bool sabotageKill,
                        bool sabotageHang);
    void handleWorkerLine(RunningWorker &worker, const std::string &line,
                          const EventSink &sink);
    void finishWorker(RunningWorker &worker, int status, PoolState &pool,
                      const EventSink &sink);
    /// Store a finished payload; a cache failure degrades (event +
    /// decision) instead of failing the already-computed job.
    void storeToCache(PendingJob &job, const EventSink &sink);
    /// Jittered exponential backoff delay for retry @p attempt (1-based).
    uint64_t backoffDelayMs(int attempt);
    void noteDecision(std::string text);
    std::string snapshotPathFor(const std::string &hash) const;
    std::string payloadPathFor(const std::string &hash) const;

    EngineOptions opts_;
    ResultCache cache_;
    std::map<std::string, harness::PreparedScene> scenes_;

    // Per-batch failure-policy state (reset by runBatch).
    uint64_t retryRng_ = 0;
    int batchTimeouts_ = 0;
    std::vector<std::string> decisions_;
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_ENGINE_HPP
