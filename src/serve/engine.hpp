/**
 * @file
 * The serve batch engine: job queue, worker pool, cache, recovery.
 *
 * A ServerEngine owns the shared expensive state of a batch server —
 * prepared scenes with their kd-trees (built once per distinct scene
 * identity and reused across jobs), the content-addressed result
 * cache, and the spool directory for snapshots and in-flight results
 * — and executes submitted batches:
 *
 *  - Jobs are deduplicated by canonical hash before anything runs:
 *    within a batch, only the first job with a given hash computes;
 *    the rest are served as cache hits, as are jobs whose hash is
 *    already in the on-disk cache from an earlier batch or server.
 *
 *  - With workers > 0 each computing job runs in a forked worker
 *    *process*, so a crashing or killed job cannot take the server
 *    down. A worker that dies (e.g. SIGKILL) is retried: if it left a
 *    valid snapshot the retry resumes from it with the fingerprint
 *    verified (serve/executor.hpp); otherwise it restarts fresh.
 *    workers == 0 executes in-process (the deterministic path unit
 *    tests use; it also honors leftover snapshots).
 *
 *  - Per-job lifecycle events (job_started, progress, snapshot,
 *    job_resumed, job_done, job_failed) stream through an EventSink
 *    as single-line JSON; the batch ends with a manifest summarizing
 *    every job and the cache hit/computed/failed/resumed counts.
 */

#ifndef UKSIM_SERVE_ENGINE_HPP
#define UKSIM_SERVE_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "serve/job.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot.hpp"

namespace uksim::serve {

/** Server-wide engine configuration. */
struct EngineOptions {
    std::string cacheDir;       ///< result cache root ("" = cache disabled)
    std::string spoolDir;       ///< snapshots + in-flight results ("" = none)
    int workers = 0;            ///< forked worker processes (0 = in-process)
    uint64_t snapshotCycles = 0;///< snapshot cadence (0 = no snapshots)
    int maxAttempts = 3;        ///< attempts per job before it fails
};

/** Sink for single-line JSON protocol events (no trailing newline). */
using EventSink = std::function<void(const std::string &line)>;

/** Per-job entry of a batch manifest. */
struct JobReport {
    JobSpec spec;
    std::string hash;           ///< canonical job hash ("" if resolve failed)
    std::string outcome;        ///< runOutcomeName string, or "error"
    bool cacheHit = false;
    bool resumed = false;       ///< a verified snapshot resume happened
    int attempts = 0;           ///< compute attempts (0 for cache hits)
    uint64_t cycles = 0;
    uint64_t items = 0;
    double ipc = 0.0;
    std::string resultSha256;   ///< digest of the canonical result payload
    std::string error;          ///< failure description when outcome=="error"
    std::string counterJson;    ///< registry JSON (spec.counters, computed only)
};

/** Summary of one runBatch call. */
struct BatchManifest {
    std::vector<JobReport> jobs;    ///< submit order
    int cacheHits = 0;
    int computed = 0;
    int failed = 0;
    int resumed = 0;
    /** Single-line JSON ("ukserve-manifest-1"). */
    std::string json() const;
};

/** Batch execution engine (see file header). */
class ServerEngine
{
  public:
    explicit ServerEngine(EngineOptions opts);

    /**
     * Execute a batch, streaming events to @p sink (which may be
     * empty). Never throws for per-job failures — they become
     * "error" entries in the manifest.
     */
    BatchManifest runBatch(const std::vector<JobSpec> &jobs,
                           const EventSink &sink);

    ResultCache &cache() { return cache_; }
    const EngineOptions &options() const { return opts_; }

    /** Scene+kd-tree for @p config, built once and shared (dedupe). */
    const harness::PreparedScene &
    preparedScene(const harness::ExperimentConfig &config);

  private:
    struct PendingJob;
    struct RunningWorker;

    void runInProcess(PendingJob &job, const EventSink &sink);
    void runWorkerPool(std::vector<PendingJob *> &queue,
                       const EventSink &sink);
    /// Worker-child body; returns the process exit code (0 ok, 1
    /// deterministic failure, 3 snapshot rejected).
    int workerChildMain(int fd, PendingJob &job, int attempt,
                        const Snapshot *resume);
    void handleWorkerLine(RunningWorker &worker, const std::string &line,
                          const EventSink &sink);
    void finishWorker(RunningWorker &worker, int status,
                      std::deque<std::pair<PendingJob *, int>> &work,
                      const EventSink &sink);
    std::string snapshotPathFor(const std::string &hash) const;
    std::string payloadPathFor(const std::string &hash) const;

    EngineOptions opts_;
    ResultCache cache_;
    std::map<std::string, harness::PreparedScene> scenes_;
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_ENGINE_HPP
