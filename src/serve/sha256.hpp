/**
 * @file
 * SHA-256 for the serve subsystem's content addressing.
 *
 * The result cache keys entries by a canonical job hash and verifies
 * stored payloads against a digest of their bytes; both need a hash
 * that is stable across runs, platforms and endianness, with enough
 * collision resistance that distinct jobs can never alias a cache
 * entry. Straight FIPS 180-4 SHA-256, no dependencies; correctness is
 * pinned by the standard test vectors in tests/test_serialize.cpp.
 */

#ifndef UKSIM_SERVE_SHA256_HPP
#define UKSIM_SERVE_SHA256_HPP

#include <cstddef>
#include <cstdint>
#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace uksim::serve {

/** Incremental SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, size_t len);
    void update(std::string_view s) { update(s.data(), s.size()); }
    void update(const std::vector<uint8_t> &v) { update(v.data(), v.size()); }

    /** Finalize and return the 32-byte digest (object must be reset after). */
    std::array<uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex characters. */
    std::string hexDigest();

  private:
    void processBlock(const uint8_t *block);

    std::array<uint32_t, 8> state_;
    uint64_t totalBytes_ = 0;
    std::array<uint8_t, 64> buffer_;
    size_t bufferLen_ = 0;
};

/** One-shot digest of @p len bytes as lowercase hex. */
std::string sha256Hex(const void *data, size_t len);
inline std::string sha256Hex(std::string_view s)
{
    return sha256Hex(s.data(), s.size());
}
inline std::string sha256Hex(const std::vector<uint8_t> &v)
{
    return sha256Hex(v.data(), v.size());
}

} // namespace uksim::serve

#endif // UKSIM_SERVE_SHA256_HPP
