/**
 * @file
 * On-disk result cache implementation (result_cache.hpp).
 *
 * Entry file layout (all integers little-endian):
 *   bytes 0..7    magic "ukcache1"
 *   bytes 8..15   payload length
 *   bytes 16..    payload
 *   last 32 bytes sha256(payload)
 *
 * Cross-process safety: every load/store takes an flock(2) advisory
 * lock on "<dir>/.lock" (shared for reads, exclusive for writes), so
 * two uksim-serve instances sharing one cache directory cannot race a
 * tmp+rename against a reader mid-verification, or self-heal an entry
 * another instance is in the middle of rewriting. The lock is
 * best-effort: if the lock file cannot be opened (read-only cache
 * mount, missing directory before the first store) the operation
 * proceeds unlocked, exactly as before — the entry format itself still
 * verifies every byte.
 *
 * Chaos injection points (harness/chaos.hpp):
 *   cache.read.miss     load behaves as if the entry file is absent
 *   cache.read.corrupt  a payload byte flips before verification
 *   cache.write.enospc  store throws (disk-full)
 *   cache.write.torn    store persists a truncated entry
 */

#include "serve/result_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "harness/chaos.hpp"
#include "serve/sha256.hpp"

namespace uksim::serve {

namespace {

constexpr char kMagic[8] = {'u', 'k', 'c', 'a', 'c', 'h', 'e', '1'};

/** RAII best-effort flock on the cache directory's lock file. */
class DirLock
{
  public:
    DirLock(const std::string &dir, int op)
    {
        if (dir.empty())
            return;
        fd_ = ::open((dir + "/.lock").c_str(),
                     O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (fd_ < 0)
            return; // best-effort: proceed unlocked
        int rc;
        do {
            rc = ::flock(fd_, op);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~DirLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

  private:
    int fd_ = -1;
};

} // anonymous namespace

ResultCache::ResultCache(std::string dir)
    : dir_(std::move(dir))
{
}

std::string
ResultCache::entryPath(const std::string &hash) const
{
    // Shard by the leading hash byte so a big cache does not put tens
    // of thousands of files in one directory.
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash + ".result";
}

std::optional<std::vector<uint8_t>>
ResultCache::load(const std::string &hash) const
{
    if (!enabled())
        return std::nullopt;
    if (chaos::fire("cache.read.miss")) {
        stats_.misses++;
        return std::nullopt;
    }
    const DirLock lock(dir_, LOCK_SH);
    std::ifstream in(entryPath(hash), std::ios::binary);
    if (!in) {
        stats_.misses++;
        return std::nullopt;
    }
    std::vector<uint8_t> file((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    const size_t overhead = sizeof(kMagic) + 8 + 32;
    if (file.size() > overhead && chaos::fire("cache.read.corrupt"))
        file[sizeof(kMagic) + 8] ^= 0x01; // in-memory flip: verification
                                          // must catch it, disk is intact
    if (file.size() < overhead ||
        std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
        stats_.corrupt++;
        return std::nullopt;
    }
    uint64_t len = 0;
    for (int i = 0; i < 8; i++)
        len |= uint64_t(file[sizeof(kMagic) + i]) << (8 * i);
    if (len != file.size() - overhead) {
        stats_.corrupt++;
        return std::nullopt;
    }
    std::vector<uint8_t> payload(file.begin() + sizeof(kMagic) + 8,
                                 file.end() - 32);
    const std::string digest = sha256Hex(payload);
    std::string stored;
    stored.reserve(64);
    static const char *hex = "0123456789abcdef";
    for (size_t i = file.size() - 32; i < file.size(); i++) {
        stored.push_back(hex[file[i] >> 4]);
        stored.push_back(hex[file[i] & 0xf]);
    }
    if (digest != stored) {
        stats_.corrupt++;
        return std::nullopt;
    }
    stats_.hits++;
    return payload;
}

void
ResultCache::store(const std::string &hash,
                   const std::vector<uint8_t> &payload)
{
    if (!enabled())
        return;
    if (chaos::fire("cache.write.enospc"))
        throw std::runtime_error(
            "cache: write failed: no space left on device (chaos)");
    const std::string path = entryPath(hash);
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());

    std::vector<uint8_t> file;
    file.reserve(sizeof(kMagic) + 8 + payload.size() + 32);
    file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
    const uint64_t len = payload.size();
    for (int i = 0; i < 8; i++)
        file.push_back(uint8_t(len >> (8 * i)));
    file.insert(file.end(), payload.begin(), payload.end());

    Sha256 h;
    h.update(payload.data(), payload.size());
    const auto digest = h.digest();
    file.insert(file.end(), digest.begin(), digest.end());

    // A torn write persists only half the entry — a later load must
    // detect the truncation and treat it as a miss (then self-heal).
    size_t persist = file.size();
    if (chaos::fire("cache.write.torn"))
        persist = file.size() / 2;

    // Exclusive advisory lock for the tmp write + rename, so a
    // concurrent instance's shared-locked read never observes the
    // window between them.
    const DirLock lock(dir_, LOCK_EX);

    // Unique-per-process temp name; rename is atomic within the dir.
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid()));
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cache: cannot write " + tmp);
    out.write(reinterpret_cast<const char *>(file.data()),
              std::streamsize(persist));
    out.close();
    if (!out)
        throw std::runtime_error("cache: short write " + tmp);
    std::filesystem::rename(tmp, path);
    stats_.stores++;
}

} // namespace uksim::serve
