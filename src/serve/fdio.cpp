/**
 * @file
 * EINTR-safe fd I/O implementation (fdio.hpp).
 */

#include "serve/fdio.hpp"

#include <cerrno>

#include <unistd.h>

#include "harness/chaos.hpp"

namespace uksim::serve {

ssize_t
readEintr(int fd, void *buf, size_t len)
{
    for (;;) {
        if (chaos::fire("stream.read.eintr"))
            continue; // behave exactly as if read() returned EINTR
        const ssize_t n = ::read(fd, buf, len);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

bool
writeFull(int fd, const void *buf, size_t len)
{
    const char *p = static_cast<const char *>(buf);
    size_t off = 0;
    while (off < len) {
        size_t want = len - off;
        if (want > 1 && chaos::fire("stream.write.short"))
            want = 1;
        const ssize_t n = ::write(fd, p + off, want);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

FdStreamBuf::FdStreamBuf(int fd)
    : fd_(fd)
{
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
}

FdStreamBuf::int_type
FdStreamBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (chaos::fire("tcp.disconnect"))
        return traits_type::eof(); // peer vanished mid-stream
    size_t want = sizeof(rbuf_);
    if (chaos::fire("stream.read.short"))
        want = 1;
    const ssize_t n = readEintr(fd_, rbuf_, want);
    if (n <= 0)
        return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(*gptr());
}

FdStreamBuf::int_type
FdStreamBuf::overflow(int_type ch)
{
    if (flushWrite() != 0)
        return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int
FdStreamBuf::sync()
{
    return flushWrite();
}

int
FdStreamBuf::flushWrite()
{
    if (pptr() > pbase() && chaos::fire("tcp.disconnect")) {
        errno = ECONNRESET;
        return -1;
    }
    if (!writeFull(fd_, pbase(), size_t(pptr() - pbase())))
        return -1;
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return 0;
}

} // namespace uksim::serve
