/**
 * @file
 * Content-addressed on-disk cache of experiment results.
 *
 * Entries are keyed by the canonical job hash (serve/job.hpp): the
 * sha256 of the versioned byte serialization of (assembled program,
 * scene identity + kd-tree build parameters, resolved GpuConfig). The
 * engine is bit-deterministic over everything the hash excludes (host
 * thread count, fast-forward, observability), so a hit can be returned
 * byte-for-byte in place of a run.
 *
 * Entry files carry a magic header, payload length and a sha256
 * digest of the payload. A truncated, corrupted or hand-poisoned
 * entry fails verification and reads as a miss — the job simply
 * recomputes and rewrites the entry; the cache can never serve bytes
 * it cannot prove it stored. Writes go through a temp file + rename
 * in the same directory, so concurrent workers racing on one entry
 * at worst both write the same (deterministic) bytes.
 *
 * A cache directory may be shared between uksim-serve processes:
 * load/store take a best-effort flock(2) advisory lock on
 * "<dir>/.lock" (shared for reads, exclusive for the tmp+rename), so
 * cross-process readers never interleave with a writer's rename
 * window. If the lock file cannot be opened the operation proceeds
 * unlocked — verification still rejects any torn bytes.
 */

#ifndef UKSIM_SERVE_RESULT_CACHE_HPP
#define UKSIM_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace uksim::serve {

/** On-disk content-addressed result store. */
class ResultCache
{
  public:
    /** Counters for manifest / test assertions. */
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t stores = 0;
        uint64_t corrupt = 0;   ///< entries that failed verification
    };

    /**
     * @param dir cache root, created on first store; empty string
     *            disables the cache (every load is a miss, stores are
     *            dropped).
     */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Path an entry for @p hash lives at (whether or not it exists). */
    std::string entryPath(const std::string &hash) const;

    /**
     * Fetch and verify an entry. Returns the payload on a verified
     * hit; nullopt on miss or on a corrupt entry (counted separately).
     */
    std::optional<std::vector<uint8_t>> load(const std::string &hash) const;

    /** Atomically write an entry (temp file + rename). */
    void store(const std::string &hash,
               const std::vector<uint8_t> &payload);

    const Stats &stats() const { return stats_; }

  private:
    std::string dir_;
    mutable Stats stats_;
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_RESULT_CACHE_HPP
