/**
 * @file
 * Protocol session implementation (protocol.hpp).
 */

#include "serve/protocol.hpp"

#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "harness/chaos.hpp"
#include "serve/chaos_plan.hpp"
#include "serve/json.hpp"

namespace uksim::serve {

Session::Session(ServerEngine &engine, std::istream &in, std::ostream &out)
    : engine_(engine), in_(in), out_(out)
{
}

void
Session::send(const std::string &line)
{
    // Flush per event: clients block on lines, and a worker crash on
    // our side must not swallow buffered progress.
    out_ << line << "\n" << std::flush;
}

void
Session::handleSubmit(const JsonValue &request)
{
    const JsonValue *batch = request.find("batch");
    if (!batch || !batch->isArray() || batch->array.empty()) {
        send("{\"event\": \"error\", \"message\": \"submit needs a "
             "non-empty batch array\"}");
        return;
    }
    std::vector<JobSpec> jobs;
    try {
        for (const JsonValue &j : batch->array)
            jobs.push_back(jobSpecFromJson(j));
    } catch (const JsonError &e) {
        send(std::string("{\"event\": \"error\", \"message\": \"") +
             jsonEscape(e.what()) + "\"}");
        return;
    }
    // Optional per-batch chaos plan ("ukchaos-plan-1"): installed for
    // exactly this batch, previous chaos config restored after.
    std::unique_ptr<chaos::ScopedChaos> scopedChaos;
    if (const JsonValue *plan = request.find("chaos"); plan != nullptr) {
        try {
            chaos::ChaosEngine::Config cfg = chaosPlanFromJson(*plan);
            scopedChaos = std::make_unique<chaos::ScopedChaos>(
                cfg.seed, std::move(cfg.rules));
        } catch (const JsonError &e) {
            send(std::string("{\"event\": \"error\", \"message\": \"") +
                 jsonEscape(e.what()) + "\"}");
            return;
        }
    }
    const std::string batchId = request.stringOr("batch_id", "");
    {
        std::ostringstream os;
        os << "{\"event\": \"batch_accepted\", \"batch_id\": \""
           << jsonEscape(batchId) << "\", \"jobs\": " << jobs.size()
           << "}";
        send(os.str());
    }
    const BatchManifest manifest = engine_.runBatch(
        jobs, [this](const std::string &line) { send(line); });
    std::ostringstream os;
    os << "{\"event\": \"batch_done\", \"batch_id\": \""
       << jsonEscape(batchId) << "\", \"manifest\": " << manifest.json()
       << "}";
    send(os.str());
}

bool
Session::handleLine(const std::string &line)
{
    // Ignore blank lines so `printf '...\n\n'` style clients work.
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return true;
    JsonValue request;
    try {
        request = parseJson(line);
    } catch (const JsonError &e) {
        send(std::string("{\"event\": \"error\", \"message\": \"") +
             jsonEscape(e.what()) + "\"}");
        return true;
    }
    const std::string op = request.stringOr("op", "");
    if (op == "ping") {
        send(std::string("{\"event\": \"pong\", \"schema\": \"") +
             kProtocolSchema + "\"}");
    } else if (op == "list") {
        std::ostringstream os;
        os << "{\"event\": \"configs\", \"names\": [";
        bool first = true;
        for (const std::string &name : harness::namedExperimentNames()) {
            os << (first ? "" : ", ") << "\"" << name << "\"";
            first = false;
        }
        os << "]}";
        send(os.str());
    } else if (op == "submit") {
        handleSubmit(request);
    } else if (op == "shutdown") {
        send("{\"event\": \"shutdown\"}");
        return false;
    } else {
        send(std::string("{\"event\": \"error\", \"message\": \"unknown "
                         "op: ") +
             jsonEscape(op) + "\"}");
    }
    return true;
}

bool
Session::run()
{
    std::string line;
    while (std::getline(in_, line)) {
        if (!handleLine(line))
            return true;
    }
    return false;
}

} // namespace uksim::serve
