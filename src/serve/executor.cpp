/**
 * @file
 * Single-job executor implementation (executor.hpp).
 */

#include "serve/executor.hpp"

#include <chrono>
#include <sstream>

#include "harness/chaos.hpp"
#include "harness/serialize.hpp"
#include "serve/sha256.hpp"

namespace uksim::serve {

namespace {

std::string
stateFingerprint(Gpu &gpu)
{
    std::ostringstream dump;
    gpu.dumpState(dump);
    return sha256Hex(dump.str());
}

} // anonymous namespace

ExecResult
executeJob(const harness::PreparedScene &scene,
           const harness::ExperimentConfig &config,
           const std::string &hash, const ExecOptions &opts)
{
    ExecResult exec;
    if (opts.resumeFrom && opts.resumeFrom->chunkCycles &&
        opts.resumeFrom->chunkCycles != opts.snapshotCycles) {
        // The fingerprint is only comparable when replay pauses land
        // on the same cycles the original run paused on.
        throw SnapshotMismatch("resume cadence " +
                               std::to_string(opts.snapshotCycles) +
                               " != snapshot cadence " +
                               std::to_string(opts.resumeFrom->chunkCycles));
    }

    uint64_t snapshotIndex =
        opts.resumeFrom ? opts.resumeFrom->index : 0;
    const auto started = std::chrono::steady_clock::now();
    harness::RunHooks hooks;
    hooks.chunkCycles = opts.snapshotCycles;
    hooks.onChunk = [&](Gpu &gpu, uint64_t cycle) {
        if (opts.deadlineMs > 0) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - started)
                    .count();
            if (uint64_t(elapsed) >= opts.deadlineMs) {
                throw JobTimeout("deadline of " +
                                 std::to_string(opts.deadlineMs) +
                                 "ms exceeded at cycle " +
                                 std::to_string(cycle));
            }
        }
        if (chaos::fire("job.deadline")) {
            throw JobTimeout("injected deadline at cycle " +
                             std::to_string(cycle));
        }
        exec.progress.record(gpu.stats(),
                             gpu.fastForwardStats().cyclesSkipped);
        if (opts.onProgress)
            opts.onProgress(exec.progress.samples().back());

        const bool verifyHere =
            opts.resumeFrom && cycle == opts.resumeFrom->cycle;
        const bool persistHere = !opts.snapshotPath.empty();
        if (!verifyHere && !persistHere)
            return;
        const std::string fingerprint = stateFingerprint(gpu);
        if (verifyHere) {
            if (fingerprint != opts.resumeFrom->stateSha256) {
                throw SnapshotMismatch(
                    "state fingerprint mismatch at cycle " +
                    std::to_string(cycle) + ": replay " + fingerprint +
                    " != snapshot " + opts.resumeFrom->stateSha256);
            }
            exec.resumeVerified = true;
        }
        if (persistHere) {
            Snapshot snap;
            snap.jobHash = hash;
            snap.cycle = cycle;
            snap.chunkCycles = opts.snapshotCycles;
            snap.index = ++snapshotIndex;
            snap.stateSha256 = fingerprint;
            snap.itemsCompleted = gpu.stats().itemsCompleted;
            writeSnapshotFile(opts.snapshotPath, snap);
            if (opts.onSnapshot)
                opts.onSnapshot(snap);
        }
    };

    exec.result = harness::runExperiment(scene, config, hooks);
    if (opts.resumeFrom && !exec.resumeVerified) {
        // The run finished before reaching the snapshot cycle — the
        // snapshot cannot belong to this job/configuration.
        throw SnapshotMismatch("run ended at cycle " +
                               std::to_string(exec.result.stats.cycles) +
                               " before snapshot cycle " +
                               std::to_string(opts.resumeFrom->cycle));
    }
    exec.payload = harness::serializeResult(exec.result);
    return exec;
}

} // namespace uksim::serve
