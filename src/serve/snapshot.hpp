/**
 * @file
 * Job snapshots for crash recovery.
 *
 * The engine is bit-deterministic, so a snapshot does not need to
 * serialize microarchitectural state: it records *where* a run was
 * (job hash, cycle, chunk cadence) plus a sha256 fingerprint of the
 * flight-recorder dump at that cycle. Resume replays the job with the
 * same chunk cadence up to the snapshot cycle, re-dumps, and verifies
 * the fingerprint matches before continuing — proving bit-identical
 * re-execution rather than assuming it. A fingerprint mismatch (e.g.
 * the binary or scene changed under the spool) rejects the snapshot
 * and the job restarts from scratch.
 *
 * Snapshot files are single-line JSON with a versioned "schema" field
 * ("uksnap-json-1"), written atomically (temp + rename) so a crash
 * mid-write leaves either the previous snapshot or none.
 */

#ifndef UKSIM_SERVE_SNAPSHOT_HPP
#define UKSIM_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace uksim::serve {

/// Snapshot schema identifier; bump when the format changes shape.
inline constexpr const char *kSnapshotSchema = "uksnap-json-1";

/** One recovery point of a running job. */
struct Snapshot {
    std::string jobHash;        ///< canonical job hash (serve/job.hpp)
    uint64_t cycle = 0;         ///< simulated cycle the snapshot was taken at
    uint64_t chunkCycles = 0;   ///< pause cadence used (resume must match)
    uint64_t index = 0;         ///< 1-based count of snapshots written
    std::string stateSha256;    ///< sha256 hex of Gpu::dumpState at cycle
    uint64_t itemsCompleted = 0;///< progress indicator for events
};

/** Format as one single-line JSON object. */
std::string snapshotToJson(const Snapshot &snap);

/**
 * Parse a snapshot document.
 * @throws JsonError on malformed JSON or a wrong/missing schema field.
 */
Snapshot snapshotFromJson(std::string_view text);

/** Atomically write @p snap to @p path (temp file + rename). */
void writeSnapshotFile(const std::string &path, const Snapshot &snap);

/**
 * Read and parse a snapshot file; nullopt when the file is missing or
 * unparsable (a torn or stale snapshot degrades to a fresh start, it
 * never aborts recovery).
 */
std::optional<Snapshot> readSnapshotFile(const std::string &path);

} // namespace uksim::serve

#endif // UKSIM_SERVE_SNAPSHOT_HPP
