/**
 * @file
 * Job specification parsing / resolution (job.hpp).
 */

#include "serve/job.hpp"

#include <climits>
#include <sstream>
#include <stdexcept>

#include "harness/serialize.hpp"
#include "serve/sha256.hpp"

namespace uksim::serve {

namespace {

/// Keys accepted in a job object; anything else is rejected so a typo
/// ("cycels") fails the submit instead of silently running the default.
constexpr const char *kJobKeys[] = {
    "name",   "label",    "cycles",   "detail",
    "res",    "sms",      "watchdog", "policy",
    "counters", "kill_after_snapshots",
};

int
intField(const JsonValue &v, const std::string &key)
{
    const uint64_t raw = v.u64Or(key, 0);
    if (raw > uint64_t(INT_MAX))
        throw JsonError("job field out of range: " + key, 0);
    return int(raw);
}

} // anonymous namespace

JobSpec
jobSpecFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw JsonError("job must be an object", 0);
    for (const auto &[key, value] : v.object) {
        (void)value;
        bool known = false;
        for (const char *k : kJobKeys)
            known = known || key == k;
        if (!known)
            throw JsonError("unknown job field: " + key, 0);
    }
    JobSpec spec;
    spec.name = v.stringAt("name");
    spec.label = v.stringOr("label", spec.name);
    spec.cycles = v.u64Or("cycles", 0);
    spec.detail = intField(v, "detail");
    spec.res = intField(v, "res");
    spec.sms = intField(v, "sms");
    spec.watchdog = v.u64Or("watchdog", 0);
    spec.policy = v.stringOr("policy", "");
    spec.counters = v.boolOr("counters", false);
    spec.killAfterSnapshots = intField(v, "kill_after_snapshots");
    return spec;
}

std::string
jobSpecToJson(const JobSpec &spec)
{
    std::ostringstream os;
    os << "{\"name\": \"" << jsonEscape(spec.name) << "\"";
    if (spec.label != spec.name)
        os << ", \"label\": \"" << jsonEscape(spec.label) << "\"";
    if (spec.cycles)
        os << ", \"cycles\": " << spec.cycles;
    if (spec.detail)
        os << ", \"detail\": " << spec.detail;
    if (spec.res)
        os << ", \"res\": " << spec.res;
    if (spec.sms)
        os << ", \"sms\": " << spec.sms;
    if (spec.watchdog)
        os << ", \"watchdog\": " << spec.watchdog;
    if (!spec.policy.empty())
        os << ", \"policy\": \"" << jsonEscape(spec.policy) << "\"";
    if (spec.counters)
        os << ", \"counters\": true";
    if (spec.killAfterSnapshots)
        os << ", \"kill_after_snapshots\": " << spec.killAfterSnapshots;
    os << "}";
    return os.str();
}

harness::ExperimentConfig
resolveJobSpec(const JobSpec &spec)
{
    harness::ExperimentConfig config = harness::namedExperiment(spec.name);
    if (spec.cycles)
        config.maxCycles = spec.cycles;
    if (spec.detail)
        config.sceneParams.detail = spec.detail;
    if (spec.res) {
        config.sceneParams.imageWidth = spec.res;
        config.sceneParams.imageHeight = spec.res;
    }
    if (spec.sms)
        config.baseConfig.numSms = spec.sms;
    if (spec.watchdog)
        config.baseConfig.watchdogCycles = spec.watchdog;
    if (!spec.policy.empty()) {
        if (spec.policy == "trap")
            config.baseConfig.faultPolicy = FaultPolicy::Trap;
        else if (spec.policy == "halt")
            config.baseConfig.faultPolicy = FaultPolicy::HaltGrid;
        else if (spec.policy == "throw")
            config.baseConfig.faultPolicy = FaultPolicy::Throw;
        else
            throw std::invalid_argument("unknown fault policy: " +
                                        spec.policy);
    }
    // Observability only — never reaches the resolved GpuConfig, so it
    // cannot perturb the canonical job hash.
    config.exportCounters = spec.counters;
    return config;
}

std::string
jobHash(const harness::ExperimentConfig &config)
{
    return sha256Hex(harness::canonicalJobBytes(config));
}

} // namespace uksim::serve
