/**
 * @file
 * Minimal strict JSON parser + escape helper (json.hpp).
 */

#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace uksim::serve {

namespace {

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void fail(const char *what) const
    {
        throw JsonError(what, pos_);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            pos_++;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        pos_++;
    }

    bool consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        }
        case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return makeBool(true);
        case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return makeBool(false);
        case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
        default:
            return parseNumber();
        }
    }

    static JsonValue makeBool(bool b)
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = b;
        return v;
    }

    JsonValue parseObject(int depth)
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            pos_++;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object[std::move(key)] = parseValue(depth + 1);
            skipWs();
            const char c = peek();
            pos_++;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    JsonValue parseArray(int depth)
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            pos_++;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue(depth + 1));
            skipWs();
            const char c = peek();
            pos_++;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                const uint32_t cp = parseHex4();
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("bad escape");
            }
        }
    }

    uint32_t parseHex4()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; i++) {
            if (pos_ >= text_.size())
                fail("unterminated \\u escape");
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= uint32_t(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return v;
    }

    static void appendUtf8(std::string &out, uint32_t cp)
    {
        // BMP only; surrogate pairs are not needed for protocol
        // messages (the writer never emits them) and decode as two
        // 3-byte sequences, which round-trips through our own writer.
        if (cp < 0x80) {
            out.push_back(char(cp));
        } else if (cp < 0x800) {
            out.push_back(char(0xc0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(char(0xe0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        }
    }

    JsonValue parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            pos_++;
        }
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        auto [end, ec] = std::from_chars(first, last, v.number);
        if (ec != std::errc() || end != last) {
            pos_ = start;
            fail("malformed number");
        }
        return v;
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean : fallback;
}

uint64_t
JsonValue::u64Or(const std::string &key, uint64_t fallback) const
{
    const JsonValue *v = find(key);
    if (!v || !v->isNumber() || v->number < 0)
        return fallback;
    return static_cast<uint64_t>(v->number);
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw JsonError("missing field '" + key + "'", 0);
    return *v;
}

const std::string &
JsonValue::stringAt(const std::string &key) const
{
    const JsonValue &v = at(key);
    if (!v.isString())
        throw JsonError("field '" + key + "' must be a string", 0);
    return v.string;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
            break;
        }
    }
    return out;
}

} // namespace uksim::serve
