/**
 * @file
 * Minimal TCP transport for the serve protocol.
 *
 * Binds a loopback listening socket and serves protocol sessions
 * (serve/protocol.hpp) one connection at a time — batch jobs already
 * parallelize through the worker pool, so connection concurrency
 * buys nothing and would let two batches race on one cache. Port 0
 * picks an ephemeral port; port() reports the bound one, which the
 * daemon prints so scripts can connect.
 *
 * Loopback only by design: the protocol has no authentication, so it
 * must not be reachable off-host.
 */

#ifndef UKSIM_SERVE_TCP_HPP
#define UKSIM_SERVE_TCP_HPP

#include <cstdint>

#include "serve/engine.hpp"

namespace uksim::serve {

/** Loopback TCP accept loop over protocol Sessions. */
class TcpServer
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 = ephemeral).
     * @throws std::runtime_error on socket/bind/listen failure.
     */
    TcpServer(ServerEngine &engine, uint16_t port);
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** The actually-bound port. */
    uint16_t port() const { return port_; }

    /**
     * Accept and serve connections until a client sends the shutdown
     * op (clean daemon exit path).
     */
    void serve();

  private:
    ServerEngine &engine_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_TCP_HPP
