/**
 * @file
 * Minimal JSON reader/writer for the serve wire protocol.
 *
 * The repository writes JSON by hand in several places (flight
 * recorder, counter registry, analysis reports) but never had to *read*
 * it until the serve subsystem's line-delimited request protocol and
 * snapshot files. This is a small strict recursive-descent parser —
 * objects, arrays, strings (with \uXXXX escapes), doubles/integers,
 * bools, null — plus the escape helper the writers share. It is not a
 * general-purpose library: inputs are single-line protocol messages and
 * snapshot files we wrote ourselves, so limits are tight (64 levels of
 * nesting) and errors are exceptions.
 */

#ifndef UKSIM_SERVE_JSON_HPP
#define UKSIM_SERVE_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace uksim::serve {

/** Error thrown for malformed JSON, with a byte offset in the message. */
class JsonError : public std::runtime_error
{
  public:
    JsonError(const std::string &what, size_t offset)
        : std::runtime_error(what + " at offset " +
                             std::to_string(offset)),
          offset_(offset)
    {
    }
    size_t offset() const { return offset_; }

  private:
    size_t offset_;
};

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /// Insertion order is not preserved; protocol fields are looked up
    /// by name, never iterated positionally.
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Typed member accessors with defaults (for optional fields). */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    uint64_t u64Or(const std::string &key, uint64_t fallback) const;

    /**
     * Required-member accessors: throw JsonError(offset 0) naming the
     * missing/mistyped key, so protocol handlers get one-line errors.
     */
    const JsonValue &at(const std::string &key) const;
    const std::string &stringAt(const std::string &key) const;
};

/**
 * Parse one complete JSON document; trailing non-whitespace is an
 * error. @throws JsonError.
 */
JsonValue parseJson(std::string_view text);

/** Escape @p s for embedding in a JSON string literal (no quotes added). */
std::string jsonEscape(std::string_view s);

} // namespace uksim::serve

#endif // UKSIM_SERVE_JSON_HPP
