/**
 * @file
 * Line-delimited JSON request protocol ("ukserve-json-1").
 *
 * One request per line, one or more single-line JSON events back:
 *
 *   {"op": "ping"}
 *     -> {"event": "pong", "schema": "ukserve-json-1"}
 *   {"op": "list"}
 *     -> {"event": "configs", "names": ["pdom_conference", ...]}
 *   {"op": "submit", "batch": [<job>...], "batch_id": "optional"}
 *     -> {"event": "batch_accepted", "batch_id": ..., "jobs": N}
 *        per-job streams: job_started / progress / snapshot /
 *        job_resumed / worker_crashed / snapshot_rejected /
 *        job_done / job_failed
 *     -> {"event": "batch_done", "batch_id": ..., "manifest": {...}}
 *   {"op": "shutdown"}
 *     -> {"event": "shutdown"}  (and the session loop returns)
 *
 * Job objects are serve/job.hpp specs. A malformed line or unknown op
 * produces {"event": "error", "message": ...} and the session keeps
 * serving — one bad request must not kill a batch client.
 *
 * Session is transport-agnostic: it reads an istream and writes an
 * ostream, so the same code serves the daemon's stdin pipe mode, a
 * TCP connection (serve/tcp.hpp) and in-memory stringstream tests.
 */

#ifndef UKSIM_SERVE_PROTOCOL_HPP
#define UKSIM_SERVE_PROTOCOL_HPP

#include <iosfwd>
#include <string>

#include "serve/engine.hpp"

namespace uksim::serve {

/// Wire protocol schema identifier; bump when the grammar changes.
inline constexpr const char *kProtocolSchema = "ukserve-json-1";

/** One client session over a line stream (see file header). */
class Session
{
  public:
    Session(ServerEngine &engine, std::istream &in, std::ostream &out);

    /**
     * Serve requests until EOF or a shutdown op.
     * @return true when the client requested shutdown (the daemon's
     *         TCP accept loop exits), false on plain EOF.
     */
    bool run();

    /**
     * Handle one request line (empty lines are ignored).
     * @return false when the line was a shutdown request.
     */
    bool handleLine(const std::string &line);

  private:
    void send(const std::string &line);
    void handleSubmit(const class JsonValue &request);

    ServerEngine &engine_;
    std::istream &in_;
    std::ostream &out_;
};

} // namespace uksim::serve

#endif // UKSIM_SERVE_PROTOCOL_HPP
