/**
 * @file
 * TCP transport implementation (tcp.hpp).
 *
 * Sessions are stream-based, so the connection fd is wrapped in a
 * small read/write streambuf instead of teaching the protocol about
 * sockets.
 */

#include "serve/tcp.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <streambuf>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hpp"

namespace uksim::serve {

namespace {

/** Bidirectional streambuf over one connected socket fd. */
class FdStreamBuf : public std::streambuf
{
  public:
    explicit FdStreamBuf(int fd)
        : fd_(fd)
    {
        setg(rbuf_, rbuf_, rbuf_);
        setp(wbuf_, wbuf_ + sizeof(wbuf_));
    }

  protected:
    int_type
    underflow() override
    {
        if (gptr() < egptr())
            return traits_type::to_int_type(*gptr());
        ssize_t n;
        do {
            n = ::read(fd_, rbuf_, sizeof(rbuf_));
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return traits_type::eof();
        setg(rbuf_, rbuf_, rbuf_ + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type
    overflow(int_type ch) override
    {
        if (flushWrite() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int
    sync() override
    {
        return flushWrite();
    }

  private:
    int
    flushWrite()
    {
        const char *p = pbase();
        while (p < pptr()) {
            ssize_t n;
            do {
                n = ::write(fd_, p, size_t(pptr() - p));
            } while (n < 0 && errno == EINTR);
            if (n <= 0)
                return -1;
            p += n;
        }
        setp(wbuf_, wbuf_ + sizeof(wbuf_));
        return 0;
    }

    int fd_;
    char rbuf_[4096];
    char wbuf_[4096];
};

} // anonymous namespace

TcpServer::TcpServer(ServerEngine &engine, uint16_t port)
    : engine_(engine)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 4) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
}

TcpServer::~TcpServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
TcpServer::serve()
{
    for (;;) {
        int fd;
        do {
            fd = ::accept(listenFd_, nullptr, nullptr);
        } while (fd < 0 && errno == EINTR);
        if (fd < 0)
            throw std::runtime_error("serve: accept() failed");
        bool shutdown = false;
        {
            FdStreamBuf buf(fd);
            std::istream in(&buf);
            std::ostream out(&buf);
            Session session(engine_, in, out);
            shutdown = session.run();
            out.flush();
        }
        ::close(fd);
        if (shutdown)
            return;
    }
}

} // namespace uksim::serve
