/**
 * @file
 * TCP transport implementation (tcp.hpp).
 *
 * Sessions are stream-based, so the connection fd is wrapped in the
 * shared FdStreamBuf (serve/fdio.hpp) instead of teaching the protocol
 * about sockets. All raw I/O on the connection goes through the
 * EINTR-safe helpers there, and a client that disconnects mid-stream
 * (or injected tcp.disconnect chaos) reads as EOF: the session ends,
 * the connection closes, and the accept loop serves the next client —
 * a dying client can never take the daemon down.
 */

#include "serve/tcp.hpp"

#include <cerrno>
#include <istream>
#include <ostream>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/fdio.hpp"
#include "serve/protocol.hpp"

namespace uksim::serve {

TcpServer::TcpServer(ServerEngine &engine, uint16_t port)
    : engine_(engine)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 4) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
}

TcpServer::~TcpServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
TcpServer::serve()
{
    for (;;) {
        int fd;
        do {
            fd = ::accept(listenFd_, nullptr, nullptr);
        } while (fd < 0 && errno == EINTR);
        if (fd < 0)
            throw std::runtime_error("serve: accept() failed");
        bool shutdown = false;
        {
            FdStreamBuf buf(fd);
            std::istream in(&buf);
            std::ostream out(&buf);
            Session session(engine_, in, out);
            shutdown = session.run();
            out.flush();
        }
        ::close(fd);
        if (shutdown)
            return;
    }
}

} // namespace uksim::serve
