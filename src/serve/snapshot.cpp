/**
 * @file
 * Snapshot serialization (snapshot.hpp).
 *
 * Chaos injection points (harness/chaos.hpp):
 *   snapshot.write.drop  writeSnapshotFile silently persists nothing
 *   snapshot.write.torn  a truncated JSON document lands on disk
 *   snapshot.read.drop   readSnapshotFile behaves as if absent
 *
 * A torn or dropped snapshot is never fatal: readSnapshotFile returns
 * nullopt for anything that does not parse, and the executor restarts
 * the job from cycle zero — slower, still bit-identical.
 */

#include "serve/snapshot.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "harness/chaos.hpp"
#include "serve/json.hpp"

namespace uksim::serve {

std::string
snapshotToJson(const Snapshot &snap)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << kSnapshotSchema << "\""
       << ", \"job\": \"" << jsonEscape(snap.jobHash) << "\""
       << ", \"cycle\": " << snap.cycle
       << ", \"chunk_cycles\": " << snap.chunkCycles
       << ", \"index\": " << snap.index
       << ", \"state_sha256\": \"" << jsonEscape(snap.stateSha256) << "\""
       << ", \"items\": " << snap.itemsCompleted << "}";
    return os.str();
}

Snapshot
snapshotFromJson(std::string_view text)
{
    const JsonValue v = parseJson(text);
    if (v.stringOr("schema", "") != kSnapshotSchema)
        throw JsonError("snapshot schema is not uksnap-json-1", 0);
    Snapshot snap;
    snap.jobHash = v.stringAt("job");
    snap.cycle = v.u64Or("cycle", 0);
    snap.chunkCycles = v.u64Or("chunk_cycles", 0);
    snap.index = v.u64Or("index", 0);
    snap.stateSha256 = v.stringAt("state_sha256");
    snap.itemsCompleted = v.u64Or("items", 0);
    if (snap.cycle == 0 || snap.chunkCycles == 0)
        throw JsonError("snapshot missing cycle / chunk_cycles", 0);
    return snap;
}

void
writeSnapshotFile(const std::string &path, const Snapshot &snap)
{
    if (chaos::fire("snapshot.write.drop"))
        return; // e.g. the process died before the write syscall
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    std::string json = snapshotToJson(snap);
    if (chaos::fire("snapshot.write.torn"))
        json.resize(json.size() / 2); // half a document lands on disk
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << json << "\n";
    }
    std::filesystem::rename(tmp, path);
}

std::optional<Snapshot>
readSnapshotFile(const std::string &path)
{
    if (chaos::fire("snapshot.read.drop"))
        return std::nullopt;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::stringstream buf;
    buf << in.rdbuf();
    try {
        return snapshotFromJson(buf.str());
    } catch (const JsonError &) {
        return std::nullopt;
    }
}

} // namespace uksim::serve
