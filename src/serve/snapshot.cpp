/**
 * @file
 * Snapshot serialization (snapshot.hpp).
 */

#include "serve/snapshot.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "serve/json.hpp"

namespace uksim::serve {

std::string
snapshotToJson(const Snapshot &snap)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << kSnapshotSchema << "\""
       << ", \"job\": \"" << jsonEscape(snap.jobHash) << "\""
       << ", \"cycle\": " << snap.cycle
       << ", \"chunk_cycles\": " << snap.chunkCycles
       << ", \"index\": " << snap.index
       << ", \"state_sha256\": \"" << jsonEscape(snap.stateSha256) << "\""
       << ", \"items\": " << snap.itemsCompleted << "}";
    return os.str();
}

Snapshot
snapshotFromJson(std::string_view text)
{
    const JsonValue v = parseJson(text);
    if (v.stringOr("schema", "") != kSnapshotSchema)
        throw JsonError("snapshot schema is not uksnap-json-1", 0);
    Snapshot snap;
    snap.jobHash = v.stringAt("job");
    snap.cycle = v.u64Or("cycle", 0);
    snap.chunkCycles = v.u64Or("chunk_cycles", 0);
    snap.index = v.u64Or("index", 0);
    snap.stateSha256 = v.stringAt("state_sha256");
    snap.itemsCompleted = v.u64Or("items", 0);
    if (snap.cycle == 0 || snap.chunkCycles == 0)
        throw JsonError("snapshot missing cycle / chunk_cycles", 0);
    return snap;
}

void
writeSnapshotFile(const std::string &path, const Snapshot &snap)
{
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << snapshotToJson(snap) << "\n";
    }
    std::filesystem::rename(tmp, path);
}

std::optional<Snapshot>
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::stringstream buf;
    buf << in.rdbuf();
    try {
        return snapshotFromJson(buf.str());
    } catch (const JsonError &) {
        return std::nullopt;
    }
}

} // namespace uksim::serve
