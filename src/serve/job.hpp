/**
 * @file
 * Job specifications for the serve subsystem.
 *
 * A JobSpec is the client-visible description of one simulation job:
 * a named experiment configuration ("uk_conference", ...) plus the
 * same scale-down knobs the CLI tools expose (cycles, scene detail,
 * resolution, SM count, watchdog, fault policy). Specs travel on the
 * wire as JSON objects inside a "submit" batch and resolve
 * deterministically — no environment variables are consulted — to a
 * harness::ExperimentConfig, from which the canonical job hash is
 * computed (harness/serialize.hpp). Two specs that resolve to the
 * same configuration share one cache entry by construction.
 */

#ifndef UKSIM_SERVE_JOB_HPP
#define UKSIM_SERVE_JOB_HPP

#include <cstdint>
#include <string>

#include "harness/experiment.hpp"
#include "serve/json.hpp"

namespace uksim::serve {

/** One batch job as submitted by a client. */
struct JobSpec {
    std::string name;           ///< namedExperiment name (required)
    std::string label;          ///< client tag echoed in events (default: name)
    uint64_t cycles = 0;        ///< max simulated cycles (0 = config default)
    int detail = 0;             ///< scene detail override (0 = default)
    int res = 0;                ///< square image resolution (0 = default)
    int sms = 0;                ///< SM count override (0 = default)
    uint64_t watchdog = 0;      ///< deadlock watchdog cycles (0 = default)
    std::string policy;         ///< "trap" | "halt" | "throw" | "" (default)
    bool counters = false;      ///< include registry counter JSON in job_done
    /**
     * Test hook: on the job's first attempt in a worker process, raise
     * SIGKILL immediately after the N-th snapshot is written (0 = off).
     * Exercises the crash/resume path deterministically.
     */
    int killAfterSnapshots = 0;
};

/**
 * Parse one job object from a submit batch.
 * @throws JsonError on missing/mistyped fields or unknown keys.
 */
JobSpec jobSpecFromJson(const JsonValue &v);

/** Format a spec as one JSON object (inverse of jobSpecFromJson). */
std::string jobSpecToJson(const JobSpec &spec);

/**
 * Resolve a spec to the experiment configuration it denotes. Pure:
 * depends only on the spec (never on the environment).
 * @throws std::invalid_argument for unknown names / policies.
 */
harness::ExperimentConfig resolveJobSpec(const JobSpec &spec);

/** Canonical job hash: sha256 hex of canonicalJobBytes(resolved spec). */
std::string jobHash(const harness::ExperimentConfig &config);

} // namespace uksim::serve

#endif // UKSIM_SERVE_JOB_HPP
