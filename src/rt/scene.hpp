/**
 * @file
 * Scene container plus shared procedural-geometry helpers.
 */

#ifndef UKSIM_RT_SCENE_HPP
#define UKSIM_RT_SCENE_HPP

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "rt/camera.hpp"
#include "rt/triangle.hpp"

namespace uksim::rt {

/** A renderable scene: triangle soup + a default camera. */
struct Scene {
    std::string name;
    std::vector<Triangle> triangles;
    Camera camera;

    Aabb bounds() const
    {
        Aabb b;
        for (const Triangle &t : triangles)
            b.grow(t.bounds());
        return b;
    }
};

/** Procedural building blocks used by the scene generators. */
class SceneBuilder
{
  public:
    explicit SceneBuilder(uint32_t seed) : rng_(seed) {}

    std::vector<Triangle> &triangles() { return tris_; }

    /** Uniform random float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Add one triangle. */
    void addTriangle(const Vec3 &a, const Vec3 &b, const Vec3 &c);

    /** Add a quad (two triangles), corners in winding order. */
    void addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d);

    /** Axis-aligned box from min/max corners (12 triangles). */
    void addBox(const Vec3 &lo, const Vec3 &hi);

    /**
     * Height-perturbed ground grid on y = @p y over [lo, hi] in xz.
     * @param cells grid resolution per side (2 triangles per cell).
     * @param roughness max vertex height perturbation.
     */
    void addGround(float y, const Vec3 &lo, const Vec3 &hi, int cells,
                   float roughness);

    /**
     * A blob of random small triangles inside a sphere — stands in for
     * dense organic geometry (tree canopies, plants, clutter).
     * @param count triangles to add.
     * @param size edge scale of each triangle.
     */
    void addBlob(const Vec3 &center, float radius, int count, float size);

    /** Approximate cone of @p segments side quads (tree trunk/roof). */
    void addCone(const Vec3 &base, float radius, float height,
                 int segments);

  private:
    std::vector<Triangle> tris_;
    std::mt19937 rng_;
};

} // namespace uksim::rt

#endif // UKSIM_RT_SCENE_HPP
