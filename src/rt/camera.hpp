/**
 * @file
 * Pinhole camera producing the exact per-pixel rays the device kernels
 * generate (same unnormalized-direction arithmetic, same evaluation
 * order, so host and simulated renders are bit-comparable).
 */

#ifndef UKSIM_RT_CAMERA_HPP
#define UKSIM_RT_CAMERA_HPP

#include "rt/ray.hpp"
#include "rt/vec3.hpp"

namespace uksim::rt {

/** Pinhole camera. */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param eye camera position.
     * @param look_at point the camera faces.
     * @param up approximate up vector.
     * @param vfov_deg vertical field of view in degrees.
     * @param width image width in pixels.
     * @param height image height in pixels.
     */
    Camera(const Vec3 &eye, const Vec3 &look_at, const Vec3 &up,
           float vfov_deg, int width, int height);

    /**
     * Primary ray through pixel (@p px, @p py), center-sampled. The
     * direction is intentionally not normalized — the kernels skip the
     * normalization too and parametric t values stay consistent.
     */
    Ray ray(int px, int py) const;

    int width() const { return width_; }
    int height() const { return height_; }

    // Raw basis, uploaded to device constant memory.
    Vec3 origin;
    Vec3 lowerLeft;     ///< direction to pixel (0, 0) corner
    Vec3 du;            ///< direction step per pixel in x
    Vec3 dv;            ///< direction step per pixel in y

  private:
    int width_ = 0;
    int height_ = 0;
};

} // namespace uksim::rt

#endif // UKSIM_RT_CAMERA_HPP
