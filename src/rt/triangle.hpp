/**
 * @file
 * Triangles and Wald's projection-based ray-triangle intersection test
 * (Wald, PhD thesis 2004 — the test Radius-CUDA and the paper use).
 */

#ifndef UKSIM_RT_TRIANGLE_HPP
#define UKSIM_RT_TRIANGLE_HPP

#include <cstdint>

#include "rt/aabb.hpp"
#include "rt/ray.hpp"
#include "rt/vec3.hpp"

namespace uksim::rt {

/** Raw triangle (build-time representation). */
struct Triangle {
    Vec3 a, b, c;

    Aabb bounds() const
    {
        Aabb box;
        box.grow(a);
        box.grow(b);
        box.grow(c);
        return box;
    }

    Vec3 centroid() const { return (a + b + c) / 3.0f; }
};

/**
 * Wald's precomputed triangle: 10 floats plus the projection axis.
 * Exactly the 48-byte record (with padding) the device kernels consume.
 */
struct WaldTriangle {
    float nU = 0, nV = 0, nD = 0;   ///< projected plane equation
    uint32_t k = 0;                 ///< projection axis (0/1/2)
    float bNu = 0, bNv = 0, bD = 0; ///< beta barycentric row
    float cNu = 0, cNv = 0, cD = 0; ///< gamma barycentric row

    /**
     * Precompute from a raw triangle.
     * @retval false for degenerate triangles (skipped by builders).
     */
    bool precompute(const Triangle &tri);

    /**
     * Intersect; on hit with t in (ray.tmin, @p tmax) updates @p tmax
     * and returns true.
     */
    bool intersect(const Ray &ray, float &tmax) const;
};

} // namespace uksim::rt

#endif // UKSIM_RT_TRIANGLE_HPP
