/**
 * @file
 * The three benchmark scenes (paper Sec. VI-B, Table III).
 *
 * The paper renders fairyforest, atrium and conference. Those meshes are
 * not redistributable, so each generator below synthesizes geometry with
 * the distribution property the paper says the scene tests:
 *
 *  - fairyforest: "large open spaces with areas of highly dense object
 *    count" — sparse ground with dense tree-canopy clusters;
 *  - atrium: "uniform distribution of highly dense objects through the
 *    entire scene" — a regular colonnade filled with uniform clutter;
 *  - conference: "high number of objects not evenly distributed" — a
 *    room whose furniture piles into one half.
 *
 * Divergence behaviour is driven by the variance in traversal depth and
 * leaf occupancy these layouts induce, which is what the substitution
 * preserves (DESIGN.md Sec. 4).
 */

#ifndef UKSIM_RT_SCENES_HPP
#define UKSIM_RT_SCENES_HPP

#include <string>
#include <vector>

#include "rt/scene.hpp"

namespace uksim::rt {

/** Scene scale knob: triangle counts grow roughly linearly with it. */
struct SceneParams {
    int detail = 10;            ///< cluster/column counts scale
    int imageWidth = 256;       ///< paper resolution
    int imageHeight = 256;
    uint32_t seed = 0x5eedu;
};

/** Open space + dense clusters. */
Scene makeFairyForest(const SceneParams &params = {});

/** Uniformly dense colonnade. */
Scene makeAtrium(const SceneParams &params = {});

/** Unevenly packed room. */
Scene makeConference(const SceneParams &params = {});

/** Build one of the three by name ("fairyforest", "atrium", "conference"). */
Scene makeSceneByName(const std::string &name,
                      const SceneParams &params = {});

/** All three benchmark scene names, paper order. */
const std::vector<std::string> &benchmarkSceneNames();

} // namespace uksim::rt

#endif // UKSIM_RT_SCENES_HPP
