/**
 * @file
 * Axis-aligned bounding box with slab ray intersection.
 */

#ifndef UKSIM_RT_AABB_HPP
#define UKSIM_RT_AABB_HPP

#include <limits>

#include "rt/ray.hpp"
#include "rt/vec3.hpp"

namespace uksim::rt {

/** Axis-aligned bounding box. */
struct Aabb {
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{-std::numeric_limits<float>::max(),
            -std::numeric_limits<float>::max(),
            -std::numeric_limits<float>::max()};

    bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

    void grow(const Vec3 &p)
    {
        lo = vmin(lo, p);
        hi = vmax(hi, p);
    }

    void grow(const Aabb &b)
    {
        lo = vmin(lo, b.lo);
        hi = vmax(hi, b.hi);
    }

    Vec3 extent() const { return hi - lo; }

    float surfaceArea() const
    {
        if (!valid())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    bool contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /**
     * Slab test; on hit narrows [t0, t1] to the parametric overlap.
     * @retval true when the ray passes through the box within [t0, t1].
     */
    bool intersect(const Ray &ray, float &t0, float &t1) const
    {
        float tmin = t0, tmax = t1;
        for (int a = 0; a < 3; a++) {
            float inv = 1.0f / ray.dir[a];
            float tNear = (lo[a] - ray.org[a]) * inv;
            float tFar = (hi[a] - ray.org[a]) * inv;
            if (tNear > tFar) {
                float tmp = tNear;
                tNear = tFar;
                tFar = tmp;
            }
            if (tNear > tmin)
                tmin = tNear;
            if (tFar < tmax)
                tmax = tFar;
            if (tmin > tmax)
                return false;
        }
        t0 = tmin;
        t1 = tmax;
        return true;
    }
};

} // namespace uksim::rt

#endif // UKSIM_RT_AABB_HPP
