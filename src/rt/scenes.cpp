/**
 * @file
 * Benchmark scene generators.
 */

#include "rt/scenes.hpp"

#include <stdexcept>

namespace uksim::rt {

Scene
makeFairyForest(const SceneParams &params)
{
    SceneBuilder b(params.seed ^ 0xf41e);
    const float half = 100.0f;

    // Open rolling ground.
    b.addGround(0.0f, {-half, 0, -half}, {half, 0, half}, 40, 0.8f);

    // Dense tree clusters scattered over the field; most of the volume
    // stays empty.
    const int trees = 8 * params.detail;
    for (int t = 0; t < trees; t++) {
        const float x = b.uniform(-half * 0.9f, half * 0.9f);
        const float z = b.uniform(-half * 0.9f, half * 0.9f);
        const float trunkH = b.uniform(6.0f, 14.0f);
        const float canopyR = b.uniform(3.0f, 7.0f);
        b.addCone({x, 0.0f, z}, b.uniform(0.4f, 0.9f), trunkH, 6);
        b.addBlob({x, trunkH + canopyR * 0.5f, z}, canopyR,
                  160 + 12 * params.detail, canopyR * 0.25f);
    }
    // A few fern patches near the ground.
    for (int p = 0; p < 6 * params.detail; p++) {
        const float x = b.uniform(-half * 0.8f, half * 0.8f);
        const float z = b.uniform(-half * 0.8f, half * 0.8f);
        b.addBlob({x, 1.0f, z}, 2.0f, 60, 0.5f);
    }

    Scene scene;
    scene.name = "fairyforest";
    scene.triangles = std::move(b.triangles());
    scene.camera = Camera({-half * 0.8f, 22.0f, -half * 0.8f},
                          {0.0f, 6.0f, 0.0f}, {0, 1, 0}, 55.0f,
                          params.imageWidth, params.imageHeight);
    return scene;
}

Scene
makeAtrium(const SceneParams &params)
{
    SceneBuilder b(params.seed ^ 0xa712);
    const float hx = 40.0f, hz = 60.0f, height = 24.0f;

    // Floor and ceiling.
    b.addGround(0.0f, {-hx, 0, -hz}, {hx, 0, hz}, 24, 0.05f);
    b.addQuad({-hx, height, -hz}, {hx, height, -hz}, {hx, height, hz},
              {-hx, height, hz});

    // Regular colonnade: uniform density everywhere.
    const int cols = 2 + params.detail / 2;
    const int rows = 3 + params.detail;
    for (int i = 0; i < cols; i++) {
        for (int j = 0; j < rows; j++) {
            const float x = -hx + (i + 0.5f) * 2.0f * hx / cols;
            const float z = -hz + (j + 0.5f) * 2.0f * hz / rows;
            // A column of stacked, slightly rotated boxes.
            for (int s = 0; s < 6; s++) {
                const float y0 = height * s / 6.0f;
                const float r = 1.2f + 0.15f * (s % 2);
                b.addBox({x - r, y0, z - r},
                         {x + r, y0 + height / 6.0f, z + r});
            }
            // Clutter alternates between sparse and dense columns so
            // neighbouring rays do very different amounts of work.
            int clutter = ((i + j) % 2 == 0) ? 36 * params.detail + 160
                                             : 2 * params.detail + 8;
            b.addBlob({x, 2.0f, z}, 2.5f, clutter, 0.35f);
            b.addBlob({x, height - 3.0f, z}, 2.5f,
                      5 * params.detail + 30, 0.45f);
        }
    }

    Scene scene;
    scene.name = "atrium";
    scene.triangles = std::move(b.triangles());
    // Low grazing view along the colonnade through the base clutter.
    scene.camera = Camera({-hx * 0.7f, 3.2f, -hz * 0.92f},
                          {hx * 0.35f, 4.5f, hz * 0.85f},
                          {0, 1, 0}, 55.0f, params.imageWidth,
                          params.imageHeight);
    return scene;
}

Scene
makeConference(const SceneParams &params)
{
    SceneBuilder b(params.seed ^ 0xc04f);
    const float hx = 30.0f, hz = 20.0f, height = 10.0f;

    // Room shell with a deeply tessellated carpet: grazing floor rays
    // do real leaf work everywhere.
    b.addGround(0.0f, {-hx, 0, -hz}, {hx, 0, hz}, 48, 0.12f);
    b.addQuad({-hx, 0, -hz}, {hx, 0, -hz}, {hx, height, -hz},
              {-hx, height, -hz});
    b.addQuad({-hx, 0, hz}, {-hx, height, hz}, {hx, height, hz},
              {hx, 0, hz});
    b.addQuad({-hx, 0, -hz}, {-hx, height, -hz}, {-hx, height, hz},
              {-hx, 0, hz});

    // Long central table plus a dense crowd of chairs crammed into the
    // half of the room nearest the camera — strongly uneven density.
    b.addBox({-hx * 0.5f, 2.2f, -3.0f}, {hx * 0.5f, 2.8f, 3.0f});
    // Document piles along the table: dense blobs rays plow through.
    for (int pile = 0; pile < 3 * params.detail; pile++) {
        const float px = b.uniform(-hx * 0.48f, hx * 0.48f);
        const float pz = b.uniform(-2.5f, 2.5f);
        b.addBlob({px, 3.3f, pz}, 0.8f, 120, 0.14f);
    }
    for (int leg = 0; leg < 8; leg++) {
        const float x = -hx * 0.45f + leg * hx * 0.9f / 7.0f;
        b.addBox({x - 0.2f, 0.0f, -2.5f}, {x + 0.2f, 2.2f, -2.1f});
        b.addBox({x - 0.2f, 0.0f, 2.1f}, {x + 0.2f, 2.2f, 2.5f});
    }

    const int chairs = 20 * params.detail;
    for (int c = 0; c < chairs; c++) {
        // 80% of the chairs pack into the -x half.
        const bool densSide = (c % 5) != 0;
        const float x = densSide ? b.uniform(-hx * 0.95f, -hx * 0.15f)
                                 : b.uniform(hx * 0.15f, hx * 0.95f);
        const float z = b.uniform(-hz * 0.9f, hz * 0.9f);
        // Chair: seat, back, 4 legs.
        b.addBox({x - 0.6f, 1.4f, z - 0.6f}, {x + 0.6f, 1.6f, z + 0.6f});
        b.addBox({x - 0.6f, 1.6f, z + 0.4f}, {x + 0.6f, 3.0f, z + 0.6f});
        for (int lx = -1; lx <= 1; lx += 2) {
            for (int lz = -1; lz <= 1; lz += 2) {
                b.addBox({x + lx * 0.5f - 0.08f, 0.0f,
                          z + lz * 0.5f - 0.08f},
                         {x + lx * 0.5f + 0.08f, 1.4f,
                          z + lz * 0.5f + 0.08f});
            }
        }
        // Occupants on a third of the seats: adjacent pixels alternate
        // between cheap box hits and expensive dense-blob hits, which
        // is exactly the intra-warp variance that defeats PDOM.
        if (c % 3 == 0)
            b.addBlob({x, 2.2f, z}, 1.1f, 240, 0.13f);
    }

    Scene scene;
    scene.name = "conference";
    scene.triangles = std::move(b.triangles());
    // Seat-height grazing view across the chair crowd: the sparse near
    // half and packed far half make adjacent pixels differ wildly in
    // traversal depth and leaf tests.
    scene.camera = Camera({hx * 0.92f, 2.4f, -hz * 0.55f},
                          {-hx * 0.8f, 1.9f, hz * 0.45f}, {0, 1, 0},
                          52.0f, params.imageWidth, params.imageHeight);
    return scene;
}

Scene
makeSceneByName(const std::string &name, const SceneParams &params)
{
    if (name == "fairyforest")
        return makeFairyForest(params);
    if (name == "atrium")
        return makeAtrium(params);
    if (name == "conference")
        return makeConference(params);
    throw std::invalid_argument("unknown scene '" + name + "'");
}

const std::vector<std::string> &
benchmarkSceneNames()
{
    static const std::vector<std::string> names{"fairyforest", "atrium",
                                                "conference"};
    return names;
}

} // namespace uksim::rt
