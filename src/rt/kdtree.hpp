/**
 * @file
 * kd-tree acceleration structure (Bentley 1975; the structure
 * Radius-CUDA and the paper's kernels traverse).
 *
 * Built with binned surface-area-heuristic splits; straddling triangles
 * are referenced from both children. The node layout is device-friendly:
 * children are allocated consecutively so an internal node only stores
 * the left child index (right = left + 1), exactly what the 8-byte
 * device node encodes.
 */

#ifndef UKSIM_RT_KDTREE_HPP
#define UKSIM_RT_KDTREE_HPP

#include <cstdint>
#include <vector>

#include "rt/aabb.hpp"
#include "rt/ray.hpp"
#include "rt/triangle.hpp"

namespace uksim::rt {

/** One kd-tree node (host representation). */
struct KdNode {
    bool leaf = false;
    // Internal fields.
    int axis = 0;
    float split = 0.0f;
    uint32_t left = 0;          ///< left child; right = left + 1
    // Leaf fields.
    uint32_t firstPrim = 0;     ///< index into primIndices()
    uint32_t primCount = 0;
};

/** Aggregate tree shape statistics (Table III). */
struct KdTreeStats {
    uint32_t nodeCount = 0;
    uint32_t leafCount = 0;
    uint32_t maxDepth = 0;
    uint32_t emptyLeaves = 0;
    uint64_t primRefs = 0;      ///< total leaf->triangle references
    double avgLeafPrims = 0.0;  ///< over non-empty leaves
};

/** Per-ray traversal work counters (Table IV analytics). */
struct TraversalCounters {
    uint64_t downTraversals = 0;    ///< internal-node steps
    uint64_t intersectionTests = 0; ///< ray-triangle tests
    uint64_t leavesVisited = 0;
};

/** kd-tree over a triangle soup. */
class KdTree
{
  public:
    /** Build parameters. */
    struct BuildParams {
        int maxDepth = 22;
        int leafTarget = 6;         ///< stop splitting at/below this count
        int sahBins = 16;
        float traversalCost = 1.0f;
        float intersectCost = 1.5f;
    };

    /** Build over @p tris (also precomputes Wald triangles). */
    static KdTree build(const std::vector<Triangle> &tris,
                        const BuildParams &params);
    /** Build with default parameters. */
    static KdTree build(const std::vector<Triangle> &tris)
    {
        return build(tris, BuildParams());
    }

    const std::vector<KdNode> &nodes() const { return nodes_; }
    const std::vector<uint32_t> &primIndices() const { return primIndices_; }
    const std::vector<WaldTriangle> &waldTriangles() const { return wald_; }
    const Aabb &bounds() const { return bounds_; }

    KdTreeStats stats() const;

    /** Reference nearest-hit traversal (same algorithm as the device). */
    Hit intersect(const Ray &ray) const;

    /** Traversal with work counters for the bandwidth analytics. */
    Hit intersect(const Ray &ray, TraversalCounters &counters) const;

    /** Brute-force nearest hit over all triangles (oracle for tests). */
    Hit intersectBruteForce(const Ray &ray) const;

  private:
    struct BuildTask;
    void buildRecursive(uint32_t nodeIdx, const Aabb &bounds,
                        std::vector<uint32_t> prims, int depth,
                        const std::vector<Aabb> &primBounds,
                        const BuildParams &params);
    void makeLeaf(uint32_t nodeIdx, const std::vector<uint32_t> &prims);

    std::vector<KdNode> nodes_;
    std::vector<uint32_t> primIndices_;
    std::vector<WaldTriangle> wald_;
    Aabb bounds_;
};

} // namespace uksim::rt

#endif // UKSIM_RT_KDTREE_HPP
