/**
 * @file
 * kd-tree build and traversal.
 */

#include "rt/kdtree.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace uksim::rt {

KdTree
KdTree::build(const std::vector<Triangle> &tris, const BuildParams &params)
{
    KdTree tree;
    tree.wald_.reserve(tris.size());

    std::vector<Aabb> primBounds(tris.size());
    std::vector<uint32_t> prims;
    prims.reserve(tris.size());
    for (size_t i = 0; i < tris.size(); i++) {
        WaldTriangle wt;
        if (!wt.precompute(tris[i]))
            wt = WaldTriangle{};    // degenerate: never hit
        tree.wald_.push_back(wt);
        primBounds[i] = tris[i].bounds();
        tree.bounds_.grow(primBounds[i]);
        prims.push_back(static_cast<uint32_t>(i));
    }

    tree.nodes_.emplace_back();
    if (tris.empty()) {
        tree.makeLeaf(0, {});
        return tree;
    }
    tree.buildRecursive(0, tree.bounds_, std::move(prims), 0, primBounds,
                        params);
    return tree;
}

void
KdTree::makeLeaf(uint32_t nodeIdx, const std::vector<uint32_t> &prims)
{
    KdNode &node = nodes_[nodeIdx];
    node.leaf = true;
    node.firstPrim = static_cast<uint32_t>(primIndices_.size());
    node.primCount = static_cast<uint32_t>(prims.size());
    primIndices_.insert(primIndices_.end(), prims.begin(), prims.end());
}

void
KdTree::buildRecursive(uint32_t nodeIdx, const Aabb &bounds,
                       std::vector<uint32_t> prims, int depth,
                       const std::vector<Aabb> &primBounds,
                       const BuildParams &params)
{
    const size_t n = prims.size();
    if (n <= static_cast<size_t>(params.leafTarget) ||
        depth >= params.maxDepth) {
        makeLeaf(nodeIdx, prims);
        return;
    }

    // Binned SAH over all three axes.
    const float parentArea = bounds.surfaceArea();
    float bestCost = params.intersectCost * static_cast<float>(n);
    int bestAxis = -1;
    float bestSplit = 0.0f;

    for (int axis = 0; axis < 3; axis++) {
        const float lo = bounds.lo[axis];
        const float hi = bounds.hi[axis];
        if (hi - lo <= 0.0f)
            continue;
        for (int b = 1; b < params.sahBins; b++) {
            const float split =
                lo + (hi - lo) * static_cast<float>(b) / params.sahBins;
            size_t nl = 0, nr = 0;
            for (uint32_t p : prims) {
                if (primBounds[p].lo[axis] < split)
                    nl++;
                if (primBounds[p].hi[axis] > split)
                    nr++;
            }
            Aabb lb = bounds, rb = bounds;
            lb.hi[axis] = split;
            rb.lo[axis] = split;
            const float cost =
                params.traversalCost +
                params.intersectCost *
                    (lb.surfaceArea() * nl + rb.surfaceArea() * nr) /
                    parentArea;
            if (cost < bestCost) {
                bestCost = cost;
                bestAxis = axis;
                bestSplit = split;
            }
        }
    }

    if (bestAxis < 0) {
        makeLeaf(nodeIdx, prims);
        return;
    }

    std::vector<uint32_t> leftPrims, rightPrims;
    for (uint32_t p : prims) {
        if (primBounds[p].lo[bestAxis] < bestSplit)
            leftPrims.push_back(p);
        if (primBounds[p].hi[bestAxis] > bestSplit)
            rightPrims.push_back(p);
        // Triangles lying exactly in the split plane go left.
        if (primBounds[p].lo[bestAxis] == bestSplit &&
            primBounds[p].hi[bestAxis] == bestSplit) {
            leftPrims.push_back(p);
        }
    }
    // Degenerate partition: give up and make a leaf.
    if (leftPrims.size() == n && rightPrims.size() == n) {
        makeLeaf(nodeIdx, prims);
        return;
    }
    prims.clear();
    prims.shrink_to_fit();

    const uint32_t leftIdx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.emplace_back();
    {
        KdNode &node = nodes_[nodeIdx];
        node.leaf = false;
        node.axis = bestAxis;
        node.split = bestSplit;
        node.left = leftIdx;
    }

    Aabb lb = bounds, rb = bounds;
    lb.hi[bestAxis] = bestSplit;
    rb.lo[bestAxis] = bestSplit;
    buildRecursive(leftIdx, lb, std::move(leftPrims), depth + 1, primBounds,
                   params);
    buildRecursive(leftIdx + 1, rb, std::move(rightPrims), depth + 1,
                   primBounds, params);
}

KdTreeStats
KdTree::stats() const
{
    KdTreeStats s;
    s.nodeCount = static_cast<uint32_t>(nodes_.size());
    // Depth via traversal.
    struct Item { uint32_t node; uint32_t depth; };
    std::vector<Item> stack{{0, 1}};
    uint64_t primSum = 0;
    uint32_t nonEmpty = 0;
    while (!stack.empty()) {
        Item it = stack.back();
        stack.pop_back();
        const KdNode &node = nodes_[it.node];
        s.maxDepth = std::max(s.maxDepth, it.depth);
        if (node.leaf) {
            s.leafCount++;
            s.primRefs += node.primCount;
            if (node.primCount == 0) {
                s.emptyLeaves++;
            } else {
                nonEmpty++;
                primSum += node.primCount;
            }
        } else {
            stack.push_back({node.left, it.depth + 1});
            stack.push_back({node.left + 1, it.depth + 1});
        }
    }
    s.avgLeafPrims = nonEmpty ? double(primSum) / nonEmpty : 0.0;
    return s;
}

Hit
KdTree::intersect(const Ray &ray) const
{
    TraversalCounters scratch;
    return intersect(ray, scratch);
}

Hit
KdTree::intersect(const Ray &ray, TraversalCounters &counters) const
{
    Hit hit;
    float t0 = ray.tmin, t1 = ray.tmax;
    if (!bounds_.intersect(ray, t0, t1))
        return hit;

    const Vec3 invDir{1.0f / ray.dir.x, 1.0f / ray.dir.y,
                      1.0f / ray.dir.z};
    float hitT = ray.tmax;

    struct StackEntry { uint32_t node; float tmin, tmax; };
    StackEntry stack[64];
    int sp = 0;
    uint32_t nodeIdx = 0;
    float tmin = t0, tmax = t1;

    while (true) {
        // Descend to a leaf (the kernel's middle loop, Example 1 line 2).
        const KdNode *node = &nodes_[nodeIdx];
        while (!node->leaf) {
            counters.downTraversals++;
            const int axis = node->axis;
            const float d = (node->split - ray.org[axis]) * invDir[axis];
            // Near child by ray origin side (strict; ties go right —
            // the device kernel uses the identical rule).
            const uint32_t nearIdx =
                ray.org[axis] < node->split ? node->left : node->left + 1;
            const uint32_t farIdx =
                ray.org[axis] < node->split ? node->left + 1 : node->left;
            if (d > tmax || d <= 0.0f) {
                nodeIdx = nearIdx;
            } else if (d < tmin) {
                nodeIdx = farIdx;
            } else {
                assert(sp < 64);
                stack[sp++] = {farIdx, d, tmax};
                nodeIdx = nearIdx;
                tmax = d;
            }
            node = &nodes_[nodeIdx];
        }

        // Leaf: test every referenced triangle (Example 1 line 8).
        counters.leavesVisited++;
        Ray clipped = ray;
        for (uint32_t i = 0; i < node->primCount; i++) {
            const uint32_t prim = primIndices_[node->firstPrim + i];
            counters.intersectionTests++;
            if (wald_[prim].intersect(clipped, hitT))
                hit.triId = static_cast<int32_t>(prim);
        }

        // Early termination: a hit inside this leaf's parametric span
        // cannot be beaten by nodes farther along the ray.
        if (hit.triId >= 0 && hitT <= tmax)
            break;
        if (sp == 0)
            break;
        --sp;
        nodeIdx = stack[sp].node;
        tmin = stack[sp].tmin;
        tmax = stack[sp].tmax;
    }

    if (hit.triId >= 0)
        hit.t = hitT;
    return hit;
}

Hit
KdTree::intersectBruteForce(const Ray &ray) const
{
    Hit hit;
    float hitT = ray.tmax;
    for (size_t i = 0; i < wald_.size(); i++) {
        if (wald_[i].intersect(ray, hitT))
            hit.triId = static_cast<int32_t>(i);
    }
    if (hit.triId >= 0)
        hit.t = hitT;
    return hit;
}

} // namespace uksim::rt
