/**
 * @file
 * Minimal 3-component float vector used throughout the ray tracer.
 */

#ifndef UKSIM_RT_VEC3_HPP
#define UKSIM_RT_VEC3_HPP

#include <cmath>

namespace uksim::rt {

/** 3-component float vector. */
struct Vec3 {
    float x = 0.0f, y = 0.0f, z = 0.0f;

    Vec3() = default;
    Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    float operator[](int i) const { return i == 0 ? x : i == 1 ? y : z; }
    float &operator[](int i) { return i == 0 ? x : i == 1 ? y : z; }

    Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
};

inline Vec3 operator*(float s, const Vec3 &v) { return v * s; }

inline float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float
length(const Vec3 &v)
{
    return std::sqrt(dot(v, v));
}

inline Vec3
normalize(const Vec3 &v)
{
    float l = length(v);
    return l > 0.0f ? v / l : v;
}

inline Vec3
vmin(const Vec3 &a, const Vec3 &b)
{
    return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}

inline Vec3
vmax(const Vec3 &a, const Vec3 &b)
{
    return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

} // namespace uksim::rt

#endif // UKSIM_RT_VEC3_HPP
