/**
 * @file
 * Pinhole camera implementation.
 */

#include "rt/camera.hpp"

#include <cmath>

namespace uksim::rt {

Camera::Camera(const Vec3 &eye, const Vec3 &look_at, const Vec3 &up,
               float vfov_deg, int width, int height)
    : origin(eye), width_(width), height_(height)
{
    const float aspect = static_cast<float>(width) / height;
    const float halfH = std::tan(vfov_deg * 0.5f * 3.14159265f / 180.0f);
    const float halfW = aspect * halfH;

    const Vec3 w = normalize(eye - look_at);    // backward
    const Vec3 u = normalize(cross(up, w));     // right
    const Vec3 v = cross(w, u);                 // true up

    lowerLeft = -halfW * u - halfH * v - w;
    du = u * (2.0f * halfW / width);
    dv = v * (2.0f * halfH / height);
}

Ray
Camera::ray(int px, int py) const
{
    const float fx = static_cast<float>(px) + 0.5f;
    const float fy = static_cast<float>(py) + 0.5f;
    Ray r;
    r.org = origin;
    // Exact order the device kernel uses: two mads per component.
    r.dir.x = fy * dv.x + (fx * du.x + lowerLeft.x);
    r.dir.y = fy * dv.y + (fx * du.y + lowerLeft.y);
    r.dir.z = fy * dv.z + (fx * du.z + lowerLeft.z);
    r.tmin = 0.0f;
    return r;
}

} // namespace uksim::rt
