/**
 * @file
 * Ray and hit record types.
 */

#ifndef UKSIM_RT_RAY_HPP
#define UKSIM_RT_RAY_HPP

#include <cstdint>
#include <limits>

#include "rt/vec3.hpp"

namespace uksim::rt {

/** A ray with parametric validity interval [tmin, tmax]. */
struct Ray {
    Vec3 org;
    Vec3 dir;
    float tmin = 0.0f;
    float tmax = std::numeric_limits<float>::max();
};

/** Nearest-hit record. */
struct Hit {
    float t = std::numeric_limits<float>::max();
    int32_t triId = -1;

    bool valid() const { return triId >= 0; }
};

} // namespace uksim::rt

#endif // UKSIM_RT_RAY_HPP
