/**
 * @file
 * Simple RGB image with PPM output and false-color helpers for
 * visualizing hit ids / depth from a render.
 */

#ifndef UKSIM_RT_IMAGE_HPP
#define UKSIM_RT_IMAGE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "rt/cpu_tracer.hpp"

namespace uksim::rt {

/** 8-bit RGB image. */
class Image
{
  public:
    Image(int width, int height)
        : width_(width), height_(height),
          pixels_(size_t(width) * height * 3, 0)
    {
    }

    int width() const { return width_; }
    int height() const { return height_; }

    void set(int x, int y, uint8_t r, uint8_t g, uint8_t b)
    {
        size_t i = (size_t(y) * width_ + x) * 3;
        pixels_[i] = r;
        pixels_[i + 1] = g;
        pixels_[i + 2] = b;
    }

    /** Write binary PPM (P6). @retval false on I/O failure. */
    bool writePpm(const std::string &path) const;

  private:
    int width_, height_;
    std::vector<uint8_t> pixels_;
};

/** False-color by triangle id (stable hash), black for misses. */
Image shadeByTriangle(const RenderResult &r);

/** Grayscale by hit distance, black for misses. */
Image shadeByDepth(const RenderResult &r);

} // namespace uksim::rt

#endif // UKSIM_RT_IMAGE_HPP
