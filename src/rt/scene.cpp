/**
 * @file
 * Procedural geometry helpers.
 */

#include "rt/scene.hpp"

#include <cmath>

namespace uksim::rt {

float
SceneBuilder::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> d(lo, hi);
    return d(rng_);
}

void
SceneBuilder::addTriangle(const Vec3 &a, const Vec3 &b, const Vec3 &c)
{
    tris_.push_back({a, b, c});
}

void
SceneBuilder::addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                      const Vec3 &d)
{
    addTriangle(a, b, c);
    addTriangle(a, c, d);
}

void
SceneBuilder::addBox(const Vec3 &lo, const Vec3 &hi)
{
    const Vec3 v000{lo.x, lo.y, lo.z}, v100{hi.x, lo.y, lo.z};
    const Vec3 v010{lo.x, hi.y, lo.z}, v110{hi.x, hi.y, lo.z};
    const Vec3 v001{lo.x, lo.y, hi.z}, v101{hi.x, lo.y, hi.z};
    const Vec3 v011{lo.x, hi.y, hi.z}, v111{hi.x, hi.y, hi.z};
    addQuad(v000, v100, v110, v010);    // -z
    addQuad(v001, v011, v111, v101);    // +z
    addQuad(v000, v010, v011, v001);    // -x
    addQuad(v100, v101, v111, v110);    // +x
    addQuad(v000, v001, v101, v100);    // -y
    addQuad(v010, v110, v111, v011);    // +y
}

void
SceneBuilder::addGround(float y, const Vec3 &lo, const Vec3 &hi, int cells,
                        float roughness)
{
    auto h = [&](int, int) { return y + uniform(-roughness, roughness); };
    const float dx = (hi.x - lo.x) / cells;
    const float dz = (hi.z - lo.z) / cells;
    for (int i = 0; i < cells; i++) {
        for (int j = 0; j < cells; j++) {
            const float x0 = lo.x + i * dx, x1 = x0 + dx;
            const float z0 = lo.z + j * dz, z1 = z0 + dz;
            const Vec3 a{x0, h(i, j), z0}, b{x1, h(i + 1, j), z0};
            const Vec3 c{x1, h(i + 1, j + 1), z1}, d{x0, h(i, j + 1), z1};
            addQuad(a, b, c, d);
        }
    }
}

void
SceneBuilder::addBlob(const Vec3 &center, float radius, int count,
                      float size)
{
    for (int i = 0; i < count; i++) {
        // Random point inside the sphere (rejection-free radial sample).
        const float theta = uniform(0.0f, 6.2831853f);
        const float z = uniform(-1.0f, 1.0f);
        const float rxy = std::sqrt(std::fmax(0.0f, 1.0f - z * z));
        const float r = radius * std::cbrt(uniform(0.0f, 1.0f));
        const Vec3 p = center + Vec3{rxy * std::cos(theta), z,
                                     rxy * std::sin(theta)} * r;
        const Vec3 e1{uniform(-size, size), uniform(-size, size),
                      uniform(-size, size)};
        const Vec3 e2{uniform(-size, size), uniform(-size, size),
                      uniform(-size, size)};
        addTriangle(p, p + e1, p + e2);
    }
}

void
SceneBuilder::addCone(const Vec3 &base, float radius, float height,
                      int segments)
{
    const Vec3 apex = base + Vec3{0, height, 0};
    for (int i = 0; i < segments; i++) {
        const float a0 = 6.2831853f * i / segments;
        const float a1 = 6.2831853f * (i + 1) / segments;
        const Vec3 p0 = base + Vec3{radius * std::cos(a0), 0,
                                    radius * std::sin(a0)};
        const Vec3 p1 = base + Vec3{radius * std::cos(a1), 0,
                                    radius * std::sin(a1)};
        addTriangle(p0, p1, apex);
    }
}

} // namespace uksim::rt
