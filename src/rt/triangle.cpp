/**
 * @file
 * Wald triangle precomputation and intersection.
 */

#include "rt/triangle.hpp"

#include <cmath>

namespace uksim::rt {

namespace {
constexpr int kMod3[5] = {0, 1, 2, 0, 1};
} // anonymous namespace

bool
WaldTriangle::precompute(const Triangle &tri)
{
    const Vec3 b = tri.b - tri.a;   // beta edge
    const Vec3 c = tri.c - tri.a;   // gamma edge
    const Vec3 n = cross(b, c);

    // Projection axis: dominant normal component.
    int axis = 0;
    if (std::fabs(n.y) > std::fabs(n[axis]))
        axis = 1;
    if (std::fabs(n.z) > std::fabs(n[axis]))
        axis = 2;
    if (n[axis] == 0.0f)
        return false;   // degenerate
    const int u = kMod3[axis + 1];
    const int v = kMod3[axis + 2];

    k = static_cast<uint32_t>(axis);
    nU = n[u] / n[axis];
    nV = n[v] / n[axis];
    nD = tri.a[axis] + nU * tri.a[u] + nV * tri.a[v];

    const float det = b[u] * c[v] - b[v] * c[u];
    if (det == 0.0f)
        return false;

    bNu = c[v] / det;
    bNv = -c[u] / det;
    bD = -(tri.a[u] * bNu + tri.a[v] * bNv);

    cNu = -b[v] / det;
    cNv = b[u] / det;
    cD = -(tri.a[u] * cNu + tri.a[v] * cNv);
    return true;
}

bool
WaldTriangle::intersect(const Ray &ray, float &tmax) const
{
    const int axis = static_cast<int>(k);
    const int u = kMod3[axis + 1];
    const int v = kMod3[axis + 2];

    const float denom = ray.dir[axis] + nU * ray.dir[u] + nV * ray.dir[v];
    const float t =
        (nD - ray.org[axis] - nU * ray.org[u] - nV * ray.org[v]) / denom;
    if (!(t >= ray.tmin && t <= tmax))
        return false;

    const float hu = ray.org[u] + t * ray.dir[u];
    const float hv = ray.org[v] + t * ray.dir[v];
    const float beta = hu * bNu + hv * bNv + bD;
    if (beta < 0.0f)
        return false;
    const float gamma = hu * cNu + hv * cNv + cD;
    if (gamma < 0.0f)
        return false;
    if (beta + gamma > 1.0f)
        return false;

    tmax = t;
    return true;
}

} // namespace uksim::rt
