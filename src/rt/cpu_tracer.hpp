/**
 * @file
 * Host-side reference ray tracer. Renders primary rays through the
 * kd-tree with the identical traversal/intersection algorithm the
 * device kernels implement, serving three purposes: the correctness
 * oracle for the simulated kernels, the per-frame work counts behind
 * the Table IV bandwidth analytics, and a plain CPU renderer for the
 * examples.
 */

#ifndef UKSIM_RT_CPU_TRACER_HPP
#define UKSIM_RT_CPU_TRACER_HPP

#include <cstdint>
#include <vector>

#include "rt/camera.hpp"
#include "rt/kdtree.hpp"

namespace uksim::rt {

/** Whole-frame result. */
struct RenderResult {
    int width = 0;
    int height = 0;
    std::vector<Hit> hits;              ///< row-major, width*height
    TraversalCounters totals;           ///< summed over all rays

    const Hit &at(int x, int y) const { return hits[y * width + x]; }
};

/**
 * Render all primary rays of @p camera through @p tree.
 */
RenderResult renderReference(const KdTree &tree, const Camera &camera);

/**
 * Per-frame memory-bandwidth analytics (paper Table IV): byte counts
 * derived from the number of down-traversals and intersection tests,
 * with no caching, exactly as the paper computes them.
 */
struct BandwidthEstimate {
    double readBytes = 0;
    double writeBytes = 0;

    double totalBytes() const { return readBytes + writeBytes; }
};

/**
 * Traditional kernel: every down-traversal reads one 8-byte node, every
 * intersection test reads one 48-byte triangle; the only write is the
 * 8-byte hit record per ray.
 */
BandwidthEstimate estimateTraditionalBandwidth(const TraversalCounters &c,
                                               uint64_t rays);

/**
 * Dynamic micro-kernel version: on top of the traditional traffic,
 * every traversal step, intersection test and leaf transition re-loads
 * and re-stores the 48-byte thread state and writes the 4-byte warp
 * formation pointer (the naive every-iteration spawn of Sec. VI-A).
 */
BandwidthEstimate estimateDynamicBandwidth(const TraversalCounters &c,
                                           uint64_t rays);

} // namespace uksim::rt

#endif // UKSIM_RT_CPU_TRACER_HPP
