/**
 * @file
 * Reference tracer implementation.
 */

#include "rt/cpu_tracer.hpp"

namespace uksim::rt {

RenderResult
renderReference(const KdTree &tree, const Camera &camera)
{
    RenderResult r;
    r.width = camera.width();
    r.height = camera.height();
    r.hits.resize(size_t(r.width) * r.height);
    for (int y = 0; y < r.height; y++) {
        for (int x = 0; x < r.width; x++) {
            const Ray ray = camera.ray(x, y);
            r.hits[size_t(y) * r.width + x] = tree.intersect(ray, r.totals);
        }
    }
    return r;
}

namespace {
constexpr double kNodeBytes = 8.0;
constexpr double kTriangleBytes = 48.0;
constexpr double kHitRecordBytes = 8.0;
constexpr double kStateBytes = 48.0;
constexpr double kFormationPtrBytes = 4.0;
} // anonymous namespace

BandwidthEstimate
estimateTraditionalBandwidth(const TraversalCounters &c, uint64_t rays)
{
    BandwidthEstimate e;
    e.readBytes = kNodeBytes * double(c.downTraversals) +
                  kTriangleBytes * double(c.intersectionTests);
    e.writeBytes = kHitRecordBytes * double(rays);
    return e;
}

BandwidthEstimate
estimateDynamicBandwidth(const TraversalCounters &c, uint64_t rays)
{
    // One micro-kernel invocation per down-traversal, per intersection
    // test and per leaf transition (pop), plus the initial generation
    // kernel per ray: each restores and saves the 48-byte state and
    // stores one 4-byte formation pointer at spawn.
    const double invocations = double(c.downTraversals) +
                               double(c.intersectionTests) +
                               double(c.leavesVisited) + double(rays);
    BandwidthEstimate e = estimateTraditionalBandwidth(c, rays);
    e.readBytes += kStateBytes * invocations;
    e.writeBytes += (kStateBytes + kFormationPtrBytes) * invocations;
    return e;
}

} // namespace uksim::rt
