/**
 * @file
 * Image output implementation.
 */

#include "rt/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uksim::rt {

bool
Image::writePpm(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    size_t n = std::fwrite(pixels_.data(), 1, pixels_.size(), f);
    std::fclose(f);
    return n == pixels_.size();
}

Image
shadeByTriangle(const RenderResult &r)
{
    Image img(r.width, r.height);
    for (int y = 0; y < r.height; y++) {
        for (int x = 0; x < r.width; x++) {
            const Hit &h = r.at(x, y);
            if (!h.valid())
                continue;
            uint32_t v = static_cast<uint32_t>(h.triId) * 2654435761u;
            img.set(x, y, 64 + (v & 0x7f), 64 + ((v >> 8) & 0x7f),
                    64 + ((v >> 16) & 0x7f));
        }
    }
    return img;
}

Image
shadeByDepth(const RenderResult &r)
{
    float tmax = 0.0f;
    for (const Hit &h : r.hits) {
        if (h.valid())
            tmax = std::max(tmax, h.t);
    }
    Image img(r.width, r.height);
    if (tmax <= 0.0f)
        return img;
    for (int y = 0; y < r.height; y++) {
        for (int x = 0; x < r.width; x++) {
            const Hit &h = r.at(x, y);
            if (!h.valid())
                continue;
            float g = 1.0f - 0.9f * (h.t / tmax);
            uint8_t v = static_cast<uint8_t>(
                std::clamp(g * 255.0f, 0.0f, 255.0f));
            img.set(x, y, v, v, v);
        }
    }
    return img;
}

} // namespace uksim::rt
