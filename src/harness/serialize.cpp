/**
 * @file
 * Canonical serialization of experiment configurations and results
 * (serialize.hpp).
 */

#include "harness/serialize.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels/raytrace_kernels.hpp"

namespace uksim::harness {

// --- ByteWriter / ByteReader --------------------------------------------------

void
ByteWriter::u16(uint16_t v)
{
    bytes_.push_back(uint8_t(v));
    bytes_.push_back(uint8_t(v >> 8));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; i++)
        bytes_.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; i++)
        bytes_.push_back(uint8_t(v >> (8 * i)));
}

void
ByteWriter::f32(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
}

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void
ByteReader::need(size_t n) const
{
    if (pos_ + n > len_)
        throw std::runtime_error("truncated result payload");
}

uint8_t
ByteReader::u8()
{
    need(1);
    return data_[pos_++];
}

uint16_t
ByteReader::u16()
{
    need(2);
    uint16_t v = uint16_t(data_[pos_]) | uint16_t(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

float
ByteReader::f32()
{
    const uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double
ByteReader::f64()
{
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    const uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return s;
}

// --- Job preimage -------------------------------------------------------------

rt::KdTree::BuildParams
sceneBuildParams()
{
    // Must match prepareScene (experiment.cpp): fat Radius-CUDA-era
    // leaves. Kept here so the job hash covers the real build inputs.
    rt::KdTree::BuildParams build;
    build.leafTarget = 14;
    build.maxDepth = 20;
    return build;
}

Program
kernelProgram(KernelKind kind)
{
    switch (kind) {
    case KernelKind::Traditional:
        return kernels::buildTraditional();
    case KernelKind::MicroKernel:
        return kernels::buildMicroKernel();
    case KernelKind::MicroKernelAdaptive:
        return kernels::buildMicroKernelAdaptive();
    case KernelKind::PersistentThreads:
        return kernels::buildPersistentThreads();
    }
    throw std::invalid_argument("unknown kernel kind");
}

std::vector<uint8_t>
canonicalProgramBytes(const Program &program)
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(program.code.size()));
    for (const Instruction &ins : program.code) {
        w.u8(static_cast<uint8_t>(ins.op));
        w.u8(static_cast<uint8_t>(ins.type));
        w.u8(static_cast<uint8_t>(ins.srcType));
        w.u8(static_cast<uint8_t>(ins.cmp));
        w.u8(static_cast<uint8_t>(ins.space));
        w.u8(ins.vecWidth);
        w.i32(ins.dst);
        for (const Operand &src : ins.src) {
            w.u8(static_cast<uint8_t>(src.kind));
            w.i32(src.reg);
            w.u32(src.imm);
            w.u8(static_cast<uint8_t>(src.sreg));
        }
        w.i32(ins.guardPred);
        w.boolean(ins.guardNegated);
        w.i32(ins.memOffset);
        w.u32(ins.target);
        w.u32(ins.reconvergePc);
        // ins.line is diagnostic-only and deliberately excluded.
    }
    w.u32(program.entryPc);
    w.u32(static_cast<uint32_t>(program.microKernels.size()));
    for (const MicroKernelEntry &mk : program.microKernels)
        w.u32(mk.pc);    // LUT way = vector index; names are diagnostic
    w.i32(program.resources.registers);
    w.u32(program.resources.sharedBytes);
    w.u32(program.resources.localBytes);
    w.u32(program.resources.globalBytes);
    w.u32(program.resources.constBytes);
    w.u32(program.resources.spawnStateBytes);
    return w.take();
}

namespace {

/**
 * Every semantic GpuConfig field, in declaration order. hostThreads,
 * fastForward, epochEngine and verifyPrograms are excluded: the first
 * three are engine knobs proven bit-neutral (the whole premise of the
 * result cache), and program verification can only reject a load,
 * never change what a loaded program computes.
 */
void
writeGpuConfig(ByteWriter &w, const GpuConfig &gc)
{
    w.i32(gc.numSms);
    w.i32(gc.warpSize);
    w.i32(gc.spPerSm);
    w.i32(gc.maxThreadsPerSm);
    w.i32(gc.maxBlocksPerSm);
    w.i32(gc.registersPerSm);
    w.u32(gc.onChipBytesPerSm);
    w.u32(gc.spawnLutBytes);
    w.i32(gc.numMemPartitions);
    w.i32(gc.bytesPerCyclePerPartition);
    w.i32(gc.dramLatencyCycles);
    w.i32(gc.interconnectLatencyCycles);
    w.i32(gc.onChipLatencyCycles);
    w.i32(gc.sfuLatencyCycles);
    w.i32(gc.coalesceSegmentBytes);
    w.i32(gc.numOnChipBanks);
    w.u32(gc.texL1BytesPerSm);
    w.u32(gc.texL2BytesPerPartition);
    w.i32(gc.texL1HitLatencyCycles);
    w.i32(gc.texL2HitLatencyCycles);
    w.i32(gc.texCacheWays);
    w.boolean(gc.modelSharedBankConflicts);
    w.boolean(gc.modelSpawnBankConflicts);
    w.boolean(gc.idealMemory);
    w.u8(static_cast<uint8_t>(gc.scheduling));
    w.i32(gc.blockSizeThreads);
    w.u8(static_cast<uint8_t>(gc.faultPolicy));
    w.u64(gc.watchdogCycles);
    w.u32(gc.injectMaxFormationRegions);
    w.u64(gc.maxCycles);
    w.u32(gc.statsWindowCycles);
    w.f64(gc.clockGhz);
}

} // anonymous namespace

std::vector<uint8_t>
canonicalJobBytes(const ExperimentConfig &config, const Program &program)
{
    ByteWriter w;
    w.str(kJobBytesSchema);

    const std::vector<uint8_t> prog = canonicalProgramBytes(program);
    w.str(std::string_view(reinterpret_cast<const char *>(prog.data()),
                           prog.size()));

    // Scene identity: name, generation parameters, kd-tree build
    // parameters. Together these determine every device byte the
    // kernel reads.
    w.str(config.sceneName);
    w.i32(config.sceneParams.detail);
    w.i32(config.sceneParams.imageWidth);
    w.i32(config.sceneParams.imageHeight);
    w.u32(config.sceneParams.seed);
    const rt::KdTree::BuildParams build = sceneBuildParams();
    w.i32(build.maxDepth);
    w.i32(build.leafTarget);
    w.i32(build.sahBins);
    w.f32(build.traversalCost);
    w.f32(build.intersectCost);

    // Kernel selection + the resolved machine configuration (the
    // ExperimentConfig overrides applied exactly as runExperiment does,
    // so two specs that resolve identically share one hash).
    w.u8(static_cast<uint8_t>(config.kernel));
    writeGpuConfig(w, resolvedGpuConfig(config));
    return w.take();
}

std::vector<uint8_t>
canonicalJobBytes(const ExperimentConfig &config)
{
    return canonicalJobBytes(config, kernelProgram(config.kernel));
}

// --- Result payload -----------------------------------------------------------

namespace {

void
writeStallCounters(ByteWriter &w, const trace::StallCounters &c)
{
    for (int r = 0; r < trace::kNumStallReasons; r++)
        w.u64(c.counts[r]);
}

trace::StallCounters
readStallCounters(ByteReader &r)
{
    trace::StallCounters c;
    for (int i = 0; i < trace::kNumStallReasons; i++)
        c.counts[i] = r.u64();
    return c;
}

void
writeStats(ByteWriter &w, const SimStats &s)
{
    w.u64(s.cycles);
    w.u8(static_cast<uint8_t>(s.outcome));
    w.u64(s.warpIssues);
    w.u64(s.laneInstructions);
    w.u64(s.committedLaneInstructions);
    w.u64(s.idleIssueSlots);
    w.u64(s.threadsLaunched);
    w.u64(s.threadsCompleted);
    w.u64(s.itemsCompleted);
    w.u64(s.dynamicThreadsSpawned);
    w.u64(s.dynamicWarpsFormed);
    w.u64(s.partialWarpFlushes);
    w.u64(s.dramReadBytes);
    w.u64(s.dramWriteBytes);
    w.u64(s.dramTransactions);
    w.u64(s.onChipReadBytes);
    w.u64(s.onChipWriteBytes);
    w.u64(s.spawnMemReadBytes);
    w.u64(s.spawnMemWriteBytes);
    w.u64(s.bankConflictExtraCycles);
    w.u64(s.texL1Hits);
    w.u64(s.texL1Misses);
    w.u64(s.texL2Hits);
    w.u64(s.texL2Misses);
    writeStallCounters(w, s.stall);
    w.u64(s.windowCycles());
    w.u32(static_cast<uint32_t>(s.windows.size()));
    for (const OccupancyWindow &win : s.windows) {
        w.u64(win.startCycle);
        w.u64(win.cycles);
        for (uint64_t bin : win.bins)
            w.u64(bin);
        w.u64(win.idleIssueSlots);
    }
}

SimStats
readStats(ByteReader &r)
{
    SimStats s;
    s.cycles = r.u64();
    s.outcome = static_cast<RunOutcome>(r.u8());
    s.warpIssues = r.u64();
    s.laneInstructions = r.u64();
    s.committedLaneInstructions = r.u64();
    s.idleIssueSlots = r.u64();
    s.threadsLaunched = r.u64();
    s.threadsCompleted = r.u64();
    s.itemsCompleted = r.u64();
    s.dynamicThreadsSpawned = r.u64();
    s.dynamicWarpsFormed = r.u64();
    s.partialWarpFlushes = r.u64();
    s.dramReadBytes = r.u64();
    s.dramWriteBytes = r.u64();
    s.dramTransactions = r.u64();
    s.onChipReadBytes = r.u64();
    s.onChipWriteBytes = r.u64();
    s.spawnMemReadBytes = r.u64();
    s.spawnMemWriteBytes = r.u64();
    s.bankConflictExtraCycles = r.u64();
    s.texL1Hits = r.u64();
    s.texL1Misses = r.u64();
    s.texL2Hits = r.u64();
    s.texL2Misses = r.u64();
    s.stall = readStallCounters(r);
    s.setWindowCycles(r.u64());     // before any window exists
    const uint32_t numWindows = r.u32();
    s.windows.reserve(numWindows);
    for (uint32_t i = 0; i < numWindows; i++) {
        OccupancyWindow win;
        win.startCycle = r.u64();
        win.cycles = r.u64();
        for (uint64_t &bin : win.bins)
            bin = r.u64();
        win.idleIssueSlots = r.u64();
        s.windows.push_back(win);
    }
    return s;
}

/// Occupancy::limiter must round-trip to the exact interned pointer
/// values computeOccupancy uses, so re-serialization is byte-identical.
const char *
internLimiter(const std::string &s)
{
    static constexpr const char *kLimiters[] = {"", "registers", "threads",
                                                "shared", "blocks"};
    for (const char *l : kLimiters)
        if (s == l)
            return l;
    throw std::runtime_error("corrupt result payload: unknown limiter '" +
                             s + "'");
}

} // anonymous namespace

std::vector<uint8_t>
serializeResult(const ExperimentResult &result)
{
    ByteWriter w;
    w.str(kResultBytesSchema);
    writeStats(w, result.stats);
    w.i32(result.occupancy.warpsPerSm);
    w.i32(result.occupancy.threadsPerSm);
    w.i32(result.occupancy.blocksPerSm);
    w.str(result.occupancy.limiter);
    w.boolean(result.ranToCompletion);
    w.u8(static_cast<uint8_t>(result.outcome));
    w.u32(static_cast<uint32_t>(result.faults.size()));
    for (const SimFault &f : result.faults) {
        w.u8(static_cast<uint8_t>(f.code));
        w.u64(f.cycle);
        w.i32(f.smId);
        w.i32(f.warpSlot);
        w.i32(f.lane);
        w.u32(f.pc);
        w.u64(f.addr);
    }
    w.f64(result.ipc);
    w.f64(result.mraysPerSec);
    w.f64(result.simtEfficiency);
    w.u32(static_cast<uint32_t>(result.hits.size()));
    for (const rt::Hit &h : result.hits) {
        w.f32(h.t);
        w.i32(h.triId);
    }
    w.u32(static_cast<uint32_t>(result.smStalls.size()));
    for (const trace::StallCounters &c : result.smStalls)
        writeStallCounters(w, c);
    return w.take();
}

ExperimentResult
deserializeResult(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload.data(), payload.size());
    if (r.str() != kResultBytesSchema)
        throw std::runtime_error("bad result payload schema");
    ExperimentResult result;
    result.stats = readStats(r);
    result.occupancy.warpsPerSm = r.i32();
    result.occupancy.threadsPerSm = r.i32();
    result.occupancy.blocksPerSm = r.i32();
    result.occupancy.limiter = internLimiter(r.str());
    result.ranToCompletion = r.boolean();
    result.outcome = static_cast<RunOutcome>(r.u8());
    const uint32_t numFaults = r.u32();
    result.faults.reserve(numFaults);
    for (uint32_t i = 0; i < numFaults; i++) {
        SimFault f;
        f.code = static_cast<FaultCode>(r.u8());
        f.cycle = r.u64();
        f.smId = r.i32();
        f.warpSlot = r.i32();
        f.lane = r.i32();
        f.pc = r.u32();
        f.addr = r.u64();
        result.faults.push_back(f);
    }
    result.ipc = r.f64();
    result.mraysPerSec = r.f64();
    result.simtEfficiency = r.f64();
    const uint32_t numHits = r.u32();
    result.hits.reserve(numHits);
    for (uint32_t i = 0; i < numHits; i++) {
        rt::Hit h;
        h.t = r.f32();
        h.triId = r.i32();
        result.hits.push_back(h);
    }
    const uint32_t numSms = r.u32();
    result.smStalls.reserve(numSms);
    for (uint32_t i = 0; i < numSms; i++)
        result.smStalls.push_back(readStallCounters(r));
    if (!r.atEnd())
        throw std::runtime_error("trailing bytes in result payload");
    return result;
}

} // namespace uksim::harness
