/**
 * @file
 * Named experiment configurations and runners shared by every benchmark
 * binary and the examples. One ExperimentConfig corresponds to one bar /
 * line of a paper figure: scene x kernel x scheduler x memory model.
 */

#ifndef UKSIM_HARNESS_EXPERIMENT_HPP
#define UKSIM_HARNESS_EXPERIMENT_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernels/scene_upload.hpp"
#include "rt/cpu_tracer.hpp"
#include "rt/scenes.hpp"
#include "simt/gpu.hpp"
#include "simt/mimd.hpp"
#include "trace/events.hpp"
#include "trace/stall.hpp"

namespace uksim::harness {

/** Which benchmark kernel to run. */
enum class KernelKind {
    Traditional,    ///< 3-loop PDOM baseline (Radius-CUDA style)
    MicroKernel,    ///< dynamic micro-kernel version (naive spawning)
    MicroKernelAdaptive, ///< future-work variant: branch when uniform
    PersistentThreads,  ///< software work-queue baseline (Sec. VIII)
};

/** One experiment point. */
struct ExperimentConfig {
    std::string sceneName = "conference";
    KernelKind kernel = KernelKind::Traditional;
    SchedulingMode scheduling = SchedulingMode::Thread;
    bool spawnBankConflicts = false;    ///< Fig. 9 vs Fig. 7
    bool idealMemory = false;           ///< Fig. 10 theoretical bars
    uint64_t maxCycles = 300000;        ///< paper's simulation window
    rt::SceneParams sceneParams;
    GpuConfig baseConfig;

    // Observability (src/trace/). Both default off; enabling them is
    // guaranteed not to change any simulation statistic.
    bool traceEvents = false;           ///< record the structured event trace
    size_t traceCapacity = trace::EventTrace::kDefaultCapacity;
    bool exportCounters = false;        ///< fill counterCsv / counterJson
    /// Always fill ExperimentResult::flightRecord, even on a clean
    /// Completed run (it is captured automatically otherwise).
    bool captureFlightRecord = false;

    /** Human-readable configuration label ("µ-kernel Warp", ...). */
    std::string label() const;
};

/** Scene + kd-tree built once, shared across experiment points. */
struct PreparedScene {
    rt::Scene scene;
    rt::KdTree tree;
    std::string name;
};

/** Result of one simulated experiment point. */
struct ExperimentResult {
    SimStats stats;
    Occupancy occupancy;
    bool ranToCompletion = false;   ///< all rays finished within maxCycles
    /// Completed / CycleLimit / Deadlock / Faulted (fault.hpp).
    RunOutcome outcome = RunOutcome::Completed;
    /// Guest faults recorded by the run (nonempty under Trap/HaltGrid).
    std::vector<SimFault> faults;
    /// Flight-recorder JSON; captured whenever outcome != Completed.
    std::string flightRecord;
    double ipc = 0.0;
    double mraysPerSec = 0.0;       ///< completed rays/s at the shader clock
    double simtEfficiency = 0.0;
    /// Engine-side fast-forward counters (zeros when disabled). Not part
    /// of SimStats: stats must be bit-identical across FF settings.
    FastForwardStats fastForward;
    bool fastForwardEnabled = false;
    /// Engine-side epoch counters (zeros under the lockstep engine).
    /// Like fastForward, outside the bit-identity contract.
    EpochStats epoch;
    bool epochEngineUsed = false;   ///< epoch engine eligible and enabled
    /// Engine-side superblock execution counters (zeros when disabled).
    /// Like fastForward/epoch, outside the bit-identity contract.
    BlockExecStats blockExec;
    bool blockExecUsed = false;     ///< block-exec engine eligible and enabled
    std::vector<rt::Hit> hits;      ///< downloaded hit records

    // Observability exports (filled per ExperimentConfig flags).
    std::vector<trace::StallCounters> smStalls;   ///< per-SM attribution
    std::string chromeTrace;        ///< Chrome-trace JSON (traceEvents)
    std::string counterCsv;         ///< registry CSV (exportCounters)
    std::string counterJson;        ///< registry JSON (exportCounters)
};

/** Build one of the three benchmark scenes and its kd-tree. */
PreparedScene prepareScene(const std::string &name,
                           const rt::SceneParams &params);

/**
 * Resolve a named configuration "<kernel>_<scene>" where kernel is one
 * of pdom, pdom_block, uk, uk_banked, uk_adaptive, pt and scene is
 * conference, fairyforest or atrium (e.g. "uk_conference").
 * @throws std::invalid_argument for unknown names.
 */
ExperimentConfig namedExperiment(const std::string &name);

/** All valid namedExperiment() names. */
std::vector<std::string> namedExperimentNames();

/**
 * The effective machine configuration an ExperimentConfig resolves to:
 * baseConfig with the scheduling / bank-conflict / ideal-memory /
 * cycle-budget overrides applied, exactly as runExperiment does. The
 * serve subsystem hashes this resolved form so two specs that resolve
 * identically share one cache entry.
 */
GpuConfig resolvedGpuConfig(const ExperimentConfig &config);

/**
 * Optional instrumentation for runExperiment: when chunkCycles > 0 the
 * engine pauses every chunkCycles simulated cycles (landing on the
 * boundary exactly; see Gpu::runUntil) and invokes onChunk with the
 * live machine. Pausing is bit-neutral — the final ExperimentResult is
 * identical to an unhooked run — which is what the serve subsystem's
 * snapshot/resume and progress streaming are built on.
 */
struct RunHooks {
    uint64_t chunkCycles = 0;
    std::function<void(Gpu &gpu, uint64_t cycle)> onChunk;
};

/** Run one experiment point. */
ExperimentResult runExperiment(const PreparedScene &scene,
                               const ExperimentConfig &config);

/** Run one experiment point with pause hooks (bit-identical results). */
ExperimentResult runExperiment(const PreparedScene &scene,
                               const ExperimentConfig &config,
                               const RunHooks &hooks);

/** MIMD-theoretical bound for the scene (traditional kernel). */
MimdResult runMimdBound(const PreparedScene &scene,
                        const GpuConfig &baseConfig,
                        const rt::SceneParams &params);

/**
 * Strict full-string decimal parse with overflow checking: returns
 * nullopt for empty strings, trailing garbage ("12x"), signs, or values
 * that do not fit. Shared by the CLI tools and env-override parsing so
 * malformed numeric flags are rejected loudly instead of truncated.
 */
std::optional<uint64_t> parseU64(const char *text);
/** parseU64 restricted to [0, INT_MAX]. */
std::optional<int> parseInt(const char *text);

/**
 * Apply environment overrides so long benches can be scaled down:
 * UKSIM_CYCLES (max simulated cycles), UKSIM_DETAIL (scene detail),
 * UKSIM_RES (square image resolution), UKSIM_SMS (SM count).
 * @throws std::invalid_argument naming the variable when a set value is
 *         not a well-formed in-range decimal number.
 */
void applyEnvOverrides(ExperimentConfig &config);

/** Format Table I (the simulator configuration) for bench headers. */
std::string describeConfig(const GpuConfig &config);

} // namespace uksim::harness

#endif // UKSIM_HARNESS_EXPERIMENT_HPP
