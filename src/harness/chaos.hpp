/**
 * @file
 * Deterministic, seeded fault injection for the serve stack.
 *
 * Robustness is only testable when failure is reproducible. This
 * harness gives every failure-handling path a *named injection point*
 * (a "site", e.g. "cache.write.enospc" or "worker.kill"): production
 * code asks `chaos::fire("site")` at the place the real fault would
 * strike, and the call returns true exactly when an active rule says
 * the fault fires on this hit. With no configuration the engine is
 * disabled and every query is a single relaxed atomic load returning
 * false — observation-neutral by construction.
 *
 * Determinism: each site draws from its own SplitMix64 stream seeded
 * by (plan seed ^ fnv1a(site name)), and firing depends only on the
 * site's own hit count and stream. Sites therefore never perturb each
 * other, and a fixed seed reproduces the same firing pattern for the
 * same sequence of hits regardless of what other sites do. The engine
 * is bit-deterministic over everything chaos touches (I/O retries,
 * worker crashes, cache corruption), so a batch that survives injected
 * chaos must still produce byte-identical result payloads — which is
 * exactly what tests/test_chaos_e2e.cpp asserts.
 *
 * Configuration surfaces:
 *  - spec string (UKSIM_CHAOS env var or `uksim-serve --chaos`):
 *        "<seed>:<rule>[,<rule>...]"
 *        rule := site=<prob> | site@<nth-hit> | site%<every-n>
 *        with an optional "*<max-fires>" suffix, e.g.
 *        "42:cache.read.corrupt=0.5,worker.kill@2*1"
 *  - JSON chaos plan ("ukchaos-plan-1", serve/chaos_plan.hpp), carried
 *    in a submit request or via `uksim-submit --chaos-plan`.
 *
 * Every firing increments a per-site counter; counters export as
 * `chaos.*` entries in the trace registry (mirrorCounters) and as a
 * JSON summary in batch manifests. Worker child processes inherit the
 * configured engine across fork(), but reinstall it with the seed
 * perturbed by the attempt index: probabilistic child-side faults are
 * redrawn across retries (a transient fault stays transient), while
 * hit-count rules (@N / %N) deliberately replay in every fresh child.
 * Child-side fires are reported back over the worker pipe and absorbed
 * into the parent's tally.
 */

#ifndef UKSIM_HARNESS_CHAOS_HPP
#define UKSIM_HARNESS_CHAOS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace uksim::trace {
class Registry;
}

namespace uksim::chaos {

/// Environment variable the daemon consults for a chaos spec.
inline constexpr const char *kChaosEnvVar = "UKSIM_CHAOS";

/** SplitMix64 step: advances @p state and returns the next value. */
inline uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** One injection rule bound to a single site. */
struct Rule {
    std::string site;       ///< exact injection-point name
    double probability = 0; ///< fire with this per-hit probability
    uint64_t onHit = 0;     ///< fire on exactly this 1-based hit
    uint64_t everyHits = 0; ///< fire every N-th hit
    uint64_t maxFires = 0;  ///< stop firing after this many (0 = unlimited)
};

/** Process-wide fault-injection engine (see file header). */
class ChaosEngine
{
  public:
    /** Saved configuration for scoped install/restore (ScopedChaos). */
    struct Config {
        bool enabled = false;
        uint64_t seed = 0;
        std::vector<Rule> rules;
    };

    static ChaosEngine &instance();

    /**
     * Install @p rules with per-site streams derived from @p seed.
     * Resets all hit/fire counters. At most one rule per site.
     * @throws std::invalid_argument on duplicate or empty sites.
     */
    void configure(uint64_t seed, std::vector<Rule> rules);

    /** Parse "<seed>:<rule>,..."; throws std::invalid_argument. */
    static std::pair<uint64_t, std::vector<Rule>>
    parseSpec(const std::string &spec);

    /** configure(parseSpec(spec)); throws std::invalid_argument. */
    void configureFromSpec(const std::string &spec);

    /**
     * Configure from $UKSIM_CHAOS when set and non-empty.
     * @return true when a spec was installed.
     */
    bool configureFromEnv();

    /** Drop all rules and counters; queries become free again. */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record one hit at @p site and decide whether the fault fires.
     * Sites without a rule never fire (and are not tracked).
     */
    bool shouldFire(std::string_view site);

    uint64_t seed() const { return seed_; }

    /** Fires at one site so far (local + absorbed). */
    uint64_t fires(std::string_view site) const;

    /** Total fires across all sites (local + absorbed). */
    uint64_t totalFires() const;

    /** Per-site fire counts (local + absorbed), name-ordered. */
    std::map<std::string, uint64_t> fireCounts() const;

    /**
     * Merge fire counts reported by another process (a forked worker
     * child). Absorbed counts appear in fireCounts()/totalFires() but
     * never advance local rule state.
     */
    void absorb(const std::map<std::string, uint64_t> &counts);

    /** Counts as a single-line JSON object {"site": n, ...}. */
    static std::string
    countsToJson(const std::map<std::string, uint64_t> &counts);

    /** Mirror fire counts into @p reg as "<prefix>.<site>" counters. */
    void mirrorCounters(trace::Registry &reg,
                        const std::string &prefix = "chaos") const;

    /** Snapshot the active configuration (not the counters). */
    Config exportConfig() const;

    /** Reinstall @p config (fresh counters), or disable. */
    void importConfig(const Config &config);

  private:
    ChaosEngine() = default;

    struct SiteState {
        Rule rule;
        uint64_t rngState = 0;
        uint64_t hits = 0;
        uint64_t fires = 0;
    };

    mutable std::mutex mu_;
    std::atomic<bool> enabled_{false};
    uint64_t seed_ = 0;
    std::map<std::string, SiteState, std::less<>> sites_;
    std::map<std::string, uint64_t> absorbed_;
};

/**
 * The one production query: did the fault at @p site fire on this hit?
 * Free (one relaxed load) when chaos is disabled.
 */
inline bool
fire(const char *site)
{
    ChaosEngine &engine = ChaosEngine::instance();
    return engine.enabled() && engine.shouldFire(site);
}

/**
 * RAII scoped install: configures the engine on construction and
 * restores the previous configuration (with fresh counters) on
 * destruction. Used by per-batch chaos plans and tests.
 */
class ScopedChaos
{
  public:
    ScopedChaos(uint64_t seed, std::vector<Rule> rules)
        : prior_(ChaosEngine::instance().exportConfig())
    {
        ChaosEngine::instance().configure(seed, std::move(rules));
    }

    explicit ScopedChaos(const std::string &spec)
        : prior_(ChaosEngine::instance().exportConfig())
    {
        ChaosEngine::instance().configureFromSpec(spec);
    }

    ~ScopedChaos() { ChaosEngine::instance().importConfig(prior_); }

    ScopedChaos(const ScopedChaos &) = delete;
    ScopedChaos &operator=(const ScopedChaos &) = delete;

  private:
    ChaosEngine::Config prior_;
};

} // namespace uksim::chaos

#endif // UKSIM_HARNESS_CHAOS_HPP
