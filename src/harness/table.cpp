/**
 * @file
 * Table formatting implementation.
 */

#include "harness/table.hpp"

#include <cstdio>
#include <sstream>

namespace uksim::harness {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); i++)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); i++) {
            std::string c = i < cells.size() ? cells[i] : "";
            os << c << std::string(widths[i] - c.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace uksim::harness
