/**
 * @file
 * Fixed-width text table formatting for bench output.
 */

#ifndef UKSIM_HARNESS_TABLE_HPP
#define UKSIM_HARNESS_TABLE_HPP

#include <string>
#include <vector>

namespace uksim::harness {

/** Minimal fixed-width table printer. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting helper ("%.2f"). */
std::string fmt(double value, int decimals = 2);

} // namespace uksim::harness

#endif // UKSIM_HARNESS_TABLE_HPP
