/**
 * @file
 * Fault-injection engine implementation (chaos.hpp).
 */

#include "harness/chaos.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "trace/registry.hpp"

namespace uksim::chaos {

namespace {

uint64_t
fnv1a64(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= uint64_t(uint8_t(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
validSiteName(std::string_view site)
{
    if (site.empty())
        return false;
    for (const char c : site) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

uint64_t
parseU64(const std::string &text, const std::string &what)
{
    size_t pos = 0;
    uint64_t value = 0;
    try {
        value = std::stoull(text, &pos);
    } catch (const std::exception &) {
        throw std::invalid_argument("chaos: malformed " + what + " '" +
                                    text + "'");
    }
    if (pos != text.size())
        throw std::invalid_argument("chaos: malformed " + what + " '" +
                                    text + "'");
    return value;
}

} // anonymous namespace

ChaosEngine &
ChaosEngine::instance()
{
    static ChaosEngine engine;
    return engine;
}

void
ChaosEngine::configure(uint64_t seed, std::vector<Rule> rules)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, SiteState, std::less<>> sites;
    for (Rule &rule : rules) {
        if (!validSiteName(rule.site))
            throw std::invalid_argument("chaos: bad site name '" +
                                        rule.site + "'");
        SiteState state;
        state.rngState = seed ^ fnv1a64(rule.site);
        state.rule = std::move(rule);
        const std::string site = state.rule.site;
        if (!sites.emplace(site, std::move(state)).second)
            throw std::invalid_argument("chaos: duplicate rule for site '" +
                                        site + "'");
    }
    seed_ = seed;
    sites_ = std::move(sites);
    absorbed_.clear();
    enabled_.store(!sites_.empty(), std::memory_order_relaxed);
}

std::pair<uint64_t, std::vector<Rule>>
ChaosEngine::parseSpec(const std::string &spec)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        throw std::invalid_argument(
            "chaos: spec needs '<seed>:<rule>,...' (got '" + spec + "')");
    const uint64_t seed = parseU64(spec.substr(0, colon), "seed");

    std::vector<Rule> rules;
    std::istringstream list(spec.substr(colon + 1));
    std::string item;
    while (std::getline(list, item, ',')) {
        if (item.empty())
            continue;
        Rule rule;
        // Optional "*<max-fires>" suffix first, then the trigger.
        const size_t star = item.find('*');
        if (star != std::string::npos) {
            rule.maxFires = parseU64(item.substr(star + 1), "max-fires");
            item.resize(star);
        }
        const size_t op = item.find_first_of("=@%");
        if (op == std::string::npos)
            throw std::invalid_argument(
                "chaos: rule '" + item +
                "' needs site=<prob>, site@<hit> or site%<every>");
        rule.site = item.substr(0, op);
        if (!validSiteName(rule.site))
            throw std::invalid_argument("chaos: bad site name '" +
                                        rule.site + "'");
        const std::string value = item.substr(op + 1);
        if (item[op] == '=') {
            size_t pos = 0;
            try {
                rule.probability = std::stod(value, &pos);
            } catch (const std::exception &) {
                pos = 0;
            }
            if (pos != value.size() || rule.probability < 0.0 ||
                rule.probability > 1.0)
                throw std::invalid_argument(
                    "chaos: probability '" + value +
                    "' must be a number in [0, 1]");
        } else if (item[op] == '@') {
            rule.onHit = parseU64(value, "hit index");
            if (rule.onHit == 0)
                throw std::invalid_argument("chaos: @hit index is 1-based");
        } else {
            rule.everyHits = parseU64(value, "hit period");
            if (rule.everyHits == 0)
                throw std::invalid_argument("chaos: %period must be > 0");
        }
        rules.push_back(std::move(rule));
    }
    if (rules.empty())
        throw std::invalid_argument("chaos: spec has no rules");
    return {seed, std::move(rules)};
}

void
ChaosEngine::configureFromSpec(const std::string &spec)
{
    auto [seed, rules] = parseSpec(spec);
    configure(seed, std::move(rules));
}

bool
ChaosEngine::configureFromEnv()
{
    const char *spec = std::getenv(kChaosEnvVar);
    if (!spec || !*spec)
        return false;
    configureFromSpec(spec);
    return true;
}

void
ChaosEngine::disable()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    seed_ = 0;
    sites_.clear();
    absorbed_.clear();
}

bool
ChaosEngine::shouldFire(std::string_view site)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end())
        return false;
    SiteState &s = it->second;
    s.hits++;

    bool fire = false;
    const Rule &rule = s.rule;
    if (rule.onHit)
        fire = s.hits == rule.onHit;
    else if (rule.everyHits)
        fire = s.hits % rule.everyHits == 0;
    else if (rule.probability > 0.0)
        fire = double(splitmix64(s.rngState) >> 11) * 0x1.0p-53 <
               rule.probability;
    if (fire && rule.maxFires && s.fires >= rule.maxFires)
        fire = false;
    if (fire)
        s.fires++;
    return fire;
}

uint64_t
ChaosEngine::fires(std::string_view site) const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    if (const auto it = sites_.find(site); it != sites_.end())
        n += it->second.fires;
    if (const auto it = absorbed_.find(std::string(site));
        it != absorbed_.end())
        n += it->second;
    return n;
}

uint64_t
ChaosEngine::totalFires() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const auto &[site, state] : sites_)
        n += state.fires;
    for (const auto &[site, count] : absorbed_)
        n += count;
    return n;
}

std::map<std::string, uint64_t>
ChaosEngine::fireCounts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, uint64_t> counts;
    for (const auto &[site, state] : sites_)
        if (state.fires)
            counts[site] += state.fires;
    for (const auto &[site, count] : absorbed_)
        if (count)
            counts[site] += count;
    return counts;
}

void
ChaosEngine::absorb(const std::map<std::string, uint64_t> &counts)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[site, count] : counts)
        absorbed_[site] += count;
}

std::string
ChaosEngine::countsToJson(const std::map<std::string, uint64_t> &counts)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[site, count] : counts) {
        os << (first ? "" : ", ") << "\"" << site << "\": " << count;
        first = false;
    }
    os << "}";
    return os.str();
}

void
ChaosEngine::mirrorCounters(trace::Registry &reg,
                            const std::string &prefix) const
{
    std::map<std::string, double> values;
    for (const auto &[site, count] : fireCounts())
        values[site] = double(count);
    reg.mergePrefixed(prefix, values);
}

ChaosEngine::Config
ChaosEngine::exportConfig() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Config config;
    config.enabled = enabled_.load(std::memory_order_relaxed);
    config.seed = seed_;
    for (const auto &[site, state] : sites_)
        config.rules.push_back(state.rule);
    return config;
}

void
ChaosEngine::importConfig(const Config &config)
{
    if (!config.enabled)
        disable();
    else
        configure(config.seed, config.rules);
}

} // namespace uksim::chaos
