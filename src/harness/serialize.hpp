/**
 * @file
 * Canonical serialization of experiment configurations and results.
 *
 * The engine is bit-identical at any host thread count and with
 * idle-cycle fast-forward on or off, so a simulation is a pure function
 * of (assembled program, scene + kd-tree build parameters, GpuConfig).
 * This file defines the *canonical byte form* of that triple — the
 * preimage the serve subsystem hashes to key its result cache — and a
 * lossless binary serialization of ExperimentResult so cached results
 * can be returned byte-identically.
 *
 * Canonicalization rules (DESIGN.md "Simulation as a service"):
 *  - every byte is written explicitly little-endian, so hashes and
 *    payloads are identical across host endianness;
 *  - engine knobs that are *proven* not to change results are excluded
 *    from the job preimage: GpuConfig::hostThreads, GpuConfig::fastForward
 *    and the observability switches (traceEvents / exportCounters /
 *    captureFlightRecord / verifyPrograms). Everything else — including
 *    faultPolicy, watchdogCycles and the fault-injection knob — is
 *    semantic and included;
 *  - diagnostic-only program metadata (source line numbers, label
 *    names, entry-point names) is excluded; the executed instruction
 *    stream, entry PCs and resource declarations are included;
 *  - the result payload contains exactly the identity-contract fields
 *    (SimStats, occupancy, outcome, faults, derived rates, hit records,
 *    per-SM stall shards) and none of the engine-side extras
 *    (FastForwardStats, flight record, traces, counter dumps), which
 *    legitimately differ between runs that must share a cache entry.
 *
 * Both byte forms carry a versioned magic ("uksim-job-1",
 * "uksim-result-1"); any field change must bump it.
 */

#ifndef UKSIM_HARNESS_SERIALIZE_HPP
#define UKSIM_HARNESS_SERIALIZE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace uksim::harness {

/// Version tag prefixed to the job-hash preimage.
inline constexpr const char *kJobBytesSchema = "uksim-job-1";
/// Version tag prefixed to the serialized result payload.
inline constexpr const char *kResultBytesSchema = "uksim-result-1";

/** Little-endian append-only byte sink for canonical forms. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { bytes_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void f32(float v);
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** u32 length + raw bytes. */
    void str(std::string_view s);

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Strict reader over a canonical byte form; every accessor throws
 * std::runtime_error("truncated result payload") past the end.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int32_t i32() { return static_cast<int32_t>(u32()); }
    float f32();
    double f64();
    bool boolean() { return u8() != 0; }
    std::string str();

    bool atEnd() const { return pos_ == len_; }

  private:
    void need(size_t n) const;

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

/** The kd-tree build parameters prepareScene uses (part of the job key). */
rt::KdTree::BuildParams sceneBuildParams();

/** Build the assembled program an ExperimentConfig's kernel selects. */
Program kernelProgram(KernelKind kind);

/**
 * Canonical bytes of the executed program image: instruction stream,
 * entry PC, micro-kernel entry table, resource declarations. Excludes
 * diagnostic metadata (line numbers, label/entry names).
 */
std::vector<uint8_t> canonicalProgramBytes(const Program &program);

/**
 * Canonical job preimage: schema tag, program bytes, scene identity
 * (name, SceneParams, kd build parameters) and every semantic GpuConfig
 * / ExperimentConfig field, per the exclusion rules above. Hash this
 * (serve::jobHash) to key the result cache.
 */
std::vector<uint8_t> canonicalJobBytes(const ExperimentConfig &config,
                                       const Program &program);

/** canonicalJobBytes with the program built from config.kernel. */
std::vector<uint8_t> canonicalJobBytes(const ExperimentConfig &config);

/**
 * Serialize the identity-contract portion of @p result. Two runs of the
 * same canonical job produce byte-identical payloads at any thread
 * count and fast-forward setting; the serve tests enforce this.
 */
std::vector<uint8_t> serializeResult(const ExperimentResult &result);

/**
 * Parse a payload produced by serializeResult.
 * @throws std::runtime_error on a bad magic, version, or truncation.
 * Round-trip guarantee: serializeResult(deserializeResult(p)) == p.
 */
ExperimentResult deserializeResult(const std::vector<uint8_t> &payload);

} // namespace uksim::harness

#endif // UKSIM_HARNESS_SERIALIZE_HPP
