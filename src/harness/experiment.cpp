/**
 * @file
 * Experiment runner implementation.
 */

#include "harness/experiment.hpp"

#include <climits>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "harness/chaos.hpp"
#include "harness/serialize.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "trace/export.hpp"

namespace uksim::harness {

std::string
ExperimentConfig::label() const
{
    std::string s = kernel == KernelKind::Traditional ? "PDOM"
                    : kernel == KernelKind::MicroKernel ? "u-kernel"
                    : kernel == KernelKind::MicroKernelAdaptive
                        ? "u-kernel-adaptive"
                        : "persistent-threads";
    s += scheduling == SchedulingMode::Block ? " Block" : " Warp";
    if (kernel != KernelKind::Traditional && spawnBankConflicts)
        s += " +bankconflicts";
    if (idealMemory)
        s += " idealmem";
    return s;
}

PreparedScene
prepareScene(const std::string &name, const rt::SceneParams &params)
{
    PreparedScene p;
    p.name = name;
    p.scene = rt::makeSceneByName(name, params);
    // Radius-CUDA-era trees keep fat leaves: the object-intersection
    // loop (Example 1 line 8) dominates per-ray work and its trip-count
    // variance is the divergence the paper attacks.
    rt::KdTree::BuildParams build;
    build.leafTarget = 14;
    build.maxDepth = 20;
    p.tree = rt::KdTree::build(p.scene.triangles, build);
    return p;
}

namespace {

struct NamedKernel {
    const char *name;
    KernelKind kind;
    SchedulingMode scheduling;
    bool bankConflicts;
};

constexpr NamedKernel kNamedKernels[] = {
    {"pdom", KernelKind::Traditional, SchedulingMode::Thread, false},
    {"pdom_block", KernelKind::Traditional, SchedulingMode::Block, false},
    {"uk", KernelKind::MicroKernel, SchedulingMode::Thread, false},
    {"uk_banked", KernelKind::MicroKernel, SchedulingMode::Thread, true},
    {"uk_adaptive", KernelKind::MicroKernelAdaptive, SchedulingMode::Thread,
     false},
    {"pt", KernelKind::PersistentThreads, SchedulingMode::Thread, false},
};

constexpr const char *kNamedScenes[] = {"conference", "fairyforest",
                                        "atrium"};

} // namespace

ExperimentConfig
namedExperiment(const std::string &name)
{
    for (const NamedKernel &k : kNamedKernels) {
        for (const char *scene : kNamedScenes) {
            if (name != std::string(k.name) + "_" + scene)
                continue;
            ExperimentConfig config;
            config.sceneName = scene;
            config.kernel = k.kind;
            config.scheduling = k.scheduling;
            config.spawnBankConflicts = k.bankConflicts;
            return config;
        }
    }
    throw std::invalid_argument("unknown experiment config: " + name);
}

std::vector<std::string>
namedExperimentNames()
{
    std::vector<std::string> names;
    for (const NamedKernel &k : kNamedKernels)
        for (const char *scene : kNamedScenes)
            names.push_back(std::string(k.name) + "_" + scene);
    return names;
}

GpuConfig
resolvedGpuConfig(const ExperimentConfig &config)
{
    GpuConfig gc = config.baseConfig;
    gc.scheduling = config.scheduling;
    gc.modelSpawnBankConflicts = config.spawnBankConflicts;
    gc.idealMemory = config.idealMemory;
    gc.maxCycles = config.maxCycles;
    return gc;
}

ExperimentResult
runExperiment(const PreparedScene &prepared, const ExperimentConfig &config)
{
    return runExperiment(prepared, config, RunHooks{});
}

ExperimentResult
runExperiment(const PreparedScene &prepared, const ExperimentConfig &config,
              const RunHooks &hooks)
{
    const GpuConfig gc = resolvedGpuConfig(config);

    Gpu gpu(gc);
    gpu.loadProgram(kernelProgram(config.kernel));
    if (config.traceEvents)
        gpu.eventTrace().enable(config.traceCapacity);

    kernels::DeviceScene dev =
        kernels::uploadScene(gpu, prepared.tree, prepared.scene.camera);
    if (config.kernel == KernelKind::PersistentThreads) {
        // Just enough threads to fill the machine; they drain the
        // atomic work queue (Sec. VIII persistent threads).
        uint32_t fill = uint32_t(gpu.occupancy().threadsPerSm) *
                        gc.numSms;
        gpu.launch(std::min(dev.rayCount, fill));
    } else {
        gpu.launch(dev.rayCount);
    }
    if (hooks.chunkCycles > 0) {
        // Chunked execution: pause on exact cycle boundaries so the
        // hook can snapshot / report progress, then continue. The
        // interleaving is bit-identical to one uninterrupted run().
        for (;;) {
            const uint64_t stop =
                std::min(gpu.cycle() + hooks.chunkCycles, gc.maxCycles);
            gpu.runUntil(stop);
            if (gpu.finished() || gpu.deadlocked() ||
                gpu.cycle() >= gc.maxCycles) {
                break;
            }
            if (hooks.onChunk)
                hooks.onChunk(gpu, gpu.cycle());
            // A stop short of the boundary means the engine halted
            // (HaltGrid fault policy) and will not advance further.
            if (gpu.cycle() < stop)
                break;
        }
    }
    gpu.run();      // settles terminal bookkeeping (ranToCompletion)
    const SimStats &stats = gpu.stats();

    ExperimentResult r;
    r.stats = stats;
    if (config.kernel == KernelKind::PersistentThreads) {
        // Items = rays retired through the completion counter, not
        // thread exits.
        uint32_t done = 0;
        gpu.fromGlobal(dev.doneCounterAddr, &done, 4);
        r.stats.itemsCompleted = done;
    }
    const SimStats &finalStats = r.stats;
    r.occupancy = gpu.occupancy();
    r.ranToCompletion = gpu.finished();
    r.outcome = gpu.outcome();
    r.faults = gpu.faults();
    if (config.captureFlightRecord || r.outcome != RunOutcome::Completed) {
        std::ostringstream dump;
        gpu.dumpState(dump);
        r.flightRecord = dump.str();
    }
    r.ipc = finalStats.ipc();
    r.simtEfficiency = finalStats.simtEfficiency(gc.warpSize);
    r.fastForward = gpu.fastForwardStats();
    r.fastForwardEnabled = gpu.fastForwardEnabled();
    r.epoch = gpu.epochStats();
    r.epochEngineUsed = gpu.epochEligible();
    r.blockExec = gpu.blockExecStats();
    r.blockExecUsed = gpu.blockExecEligible();
    r.mraysPerSec = finalStats.itemsPerSecond(gc.clockGhz) / 1e6;
    r.hits = kernels::downloadHits(gpu, dev);
    for (int i = 0; i < gpu.numSms(); i++)
        r.smStalls.push_back(gpu.sm(i).stallCounters());
    if (config.traceEvents) {
        r.chromeTrace = gpu.eventTrace().chromeTraceJson(
            gpu.numSms(), gc.numMemPartitions);
    }
    if (config.exportCounters) {
        trace::Registry reg = trace::buildRegistry(gpu);
        // Fault-injection visibility: every chaos site that fired so
        // far shows up as a chaos.<site> counter. A no-op (and thus
        // observation-neutral) when chaos is disabled.
        chaos::ChaosEngine::instance().mirrorCounters(reg);
        r.counterCsv = reg.csv();
        r.counterJson = reg.json();
    }
    return r;
}

MimdResult
runMimdBound(const PreparedScene &prepared, const GpuConfig &baseConfig,
             const rt::SceneParams &params)
{
    (void)params;
    Gpu gpu(baseConfig);
    gpu.loadProgram(kernels::buildTraditional());
    kernels::DeviceScene dev =
        kernels::uploadScene(gpu, prepared.tree, prepared.scene.camera);
    return runMimdIdeal(gpu, dev.rayCount);
}

std::optional<uint64_t>
parseU64(const char *text)
{
    if (!text || *text == '\0')
        return std::nullopt;
    uint64_t value = 0;
    for (const char *p = text; *p; p++) {
        if (*p < '0' || *p > '9')
            return std::nullopt;
        const uint64_t digit = uint64_t(*p - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return std::nullopt;    // overflow
        value = value * 10 + digit;
    }
    return value;
}

std::optional<int>
parseInt(const char *text)
{
    std::optional<uint64_t> v = parseU64(text);
    if (!v || *v > uint64_t(INT_MAX))
        return std::nullopt;
    return static_cast<int>(*v);
}

namespace {

uint64_t
envU64(const char *name, const char *value)
{
    std::optional<uint64_t> v = parseU64(value);
    if (!v) {
        throw std::invalid_argument(std::string(name) +
                                    ": malformed numeric value '" +
                                    value + "'");
    }
    return *v;
}

int
envInt(const char *name, const char *value)
{
    std::optional<int> v = parseInt(value);
    if (!v) {
        throw std::invalid_argument(std::string(name) +
                                    ": malformed numeric value '" +
                                    value + "'");
    }
    return *v;
}

} // anonymous namespace

void
applyEnvOverrides(ExperimentConfig &config)
{
    if (const char *v = std::getenv("UKSIM_CYCLES"))
        config.maxCycles = envU64("UKSIM_CYCLES", v);
    if (const char *v = std::getenv("UKSIM_DETAIL"))
        config.sceneParams.detail = envInt("UKSIM_DETAIL", v);
    if (const char *v = std::getenv("UKSIM_RES")) {
        int res = envInt("UKSIM_RES", v);
        config.sceneParams.imageWidth = res;
        config.sceneParams.imageHeight = res;
    }
    if (const char *v = std::getenv("UKSIM_SMS"))
        config.baseConfig.numSms = envInt("UKSIM_SMS", v);
}

std::string
describeConfig(const GpuConfig &c)
{
    std::ostringstream os;
    os << "Simulator configuration (Table I): " << c.numSms
       << " SMs, warp " << c.warpSize << ", " << c.spPerSm
       << " SPs/warp, " << c.maxThreadsPerSm << " threads/SM, "
       << c.maxBlocksPerSm << " blocks/SM, " << c.registersPerSm
       << " regs/SM, " << c.onChipBytesPerSm / 1024 << " KB on-chip, "
       << c.spawnLutBytes << " B spawn LUT, " << c.numMemPartitions
       << " memory modules x " << c.bytesPerCyclePerPartition
       << " B/cycle, no caches, " << c.clockGhz << " GHz";
    return os.str();
}

} // namespace uksim::harness
