/**
 * @file
 * Shared strict CLI argument reader for the uksim tools and benches.
 *
 * Every tool in tools/ and bench/ parses the same way: a flat argv walk
 * with `--flag` / `--flag value` pairs, strict full-string numeric
 * parsing (harness::parseU64 / parseInt), and a stable exit-2 usage
 * contract with one-line diagnostics of the exact form the ctest suite
 * pins ("<tool>: <flag> needs a value", "<tool>: <flag>: malformed
 * numeric value '<text>'"). This header is that walk, written once, so
 * a new tool cannot drift from the contract by hand-rolling it.
 */

#ifndef UKSIM_HARNESS_CLI_ARGS_HPP
#define UKSIM_HARNESS_CLI_ARGS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace uksim::harness::cli {

/**
 * Strict argv cursor. Typical use:
 *
 *   cli::ArgReader args("uktool", argc, argv);
 *   while (args.next()) {
 *       if (args.is("--cycles"))      opts.cycles = args.u64();
 *       else if (args.is("--out"))    opts.out = args.value();
 *       else if (args.is("--list"))   opts.list = true;
 *       else if (args.isHelp())       { usage(stdout); return 0; }
 *       else                          args.unknown(&usage);  // exits 2
 *   }
 *
 * value()/u64()/i32() consume the *next* argv entry as the current
 * flag's value and exit 2 with the pinned diagnostic when it is missing
 * or malformed. Numeric parsing is harness::parseU64: full-string
 * decimal with overflow checking, no signs, no trailing garbage.
 */
class ArgReader
{
  public:
    ArgReader(const char *tool, int argc, char **argv)
        : tool_(tool), argc_(argc), argv_(argv)
    {
    }

    /** Advance to the next argument; false when argv is exhausted. */
    bool next()
    {
        return ++i_ < argc_;
    }

    /** The current argument string. */
    const char *arg() const { return argv_[i_]; }

    /** Is the current argument exactly @p flag? */
    bool is(const char *flag) const;

    /** Is the current argument --help or -h? */
    bool isHelp() const { return is("--help") || is("-h"); }

    /** Does the current argument start with "-" (i.e. look like a flag)? */
    bool looksLikeFlag() const { return argv_[i_][0] == '-'; }

    /**
     * Consume and return the current flag's value (the next argv
     * entry). Exits 2 with "<tool>: <flag> needs a value" when argv
     * ends first.
     */
    const char *value();

    /** value() parsed as a strict decimal uint64_t; exits 2 if malformed. */
    uint64_t u64();

    /** value() parsed as a strict decimal int in [0, INT_MAX]. */
    int i32();

    /**
     * value() split on commas, each piece parsed as a strict decimal
     * int. Exits 2 naming the flag when any piece is malformed or the
     * list is empty.
     */
    std::vector<int> intList();

    /**
     * Report the current argument as unknown and exit 2. When @p usage
     * is non-null it is invoked with stderr first.
     */
    [[noreturn]] void unknown(void (*usage)(std::FILE *) = nullptr);

    /**
     * Parse @p text for @p flag with the pinned malformed-value
     * diagnostic (exit 2). Exposed for tools that take numbers from
     * sources other than the next argv slot.
     */
    static uint64_t parseU64OrExit(const char *tool, const char *flag,
                                   const char *text);
    static int parseIntOrExit(const char *tool, const char *flag,
                              const char *text);

    const char *tool() const { return tool_; }

  private:
    const char *tool_;
    int argc_;
    char **argv_;
    int i_ = 0;
};

} // namespace uksim::harness::cli

#endif // UKSIM_HARNESS_CLI_ARGS_HPP
