/**
 * @file
 * Shared strict CLI argument reader (cli_args.hpp).
 */

#include "harness/cli_args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.hpp"

namespace uksim::harness::cli {

bool
ArgReader::is(const char *flag) const
{
    return std::strcmp(argv_[i_], flag) == 0;
}

const char *
ArgReader::value()
{
    const char *flag = argv_[i_];
    if (i_ + 1 >= argc_) {
        std::fprintf(stderr, "%s: %s needs a value\n", tool_, flag);
        std::exit(2);
    }
    return argv_[++i_];
}

uint64_t
ArgReader::u64()
{
    const char *flag = argv_[i_];
    return parseU64OrExit(tool_, flag, value());
}

int
ArgReader::i32()
{
    const char *flag = argv_[i_];
    return parseIntOrExit(tool_, flag, value());
}

std::vector<int>
ArgReader::intList()
{
    const char *flag = argv_[i_];
    const std::string list = value();
    std::vector<int> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string piece = list.substr(pos, comma - pos);
        out.push_back(parseIntOrExit(tool_, flag, piece.c_str()));
        pos = comma + 1;
        if (comma == list.size())
            break;
    }
    if (out.empty()) {
        std::fprintf(stderr, "%s: %s: malformed numeric value ''\n",
                     tool_, flag);
        std::exit(2);
    }
    return out;
}

void
ArgReader::unknown(void (*usage)(std::FILE *))
{
    std::fprintf(stderr, "%s: unknown option '%s'\n", tool_, argv_[i_]);
    if (usage)
        usage(stderr);
    std::exit(2);
}

uint64_t
ArgReader::parseU64OrExit(const char *tool, const char *flag,
                          const char *text)
{
    std::optional<uint64_t> v = parseU64(text);
    if (!v) {
        std::fprintf(stderr, "%s: %s: malformed numeric value '%s'\n",
                     tool, flag, text);
        std::exit(2);
    }
    return *v;
}

int
ArgReader::parseIntOrExit(const char *tool, const char *flag,
                          const char *text)
{
    std::optional<int> v = parseInt(text);
    if (!v) {
        std::fprintf(stderr, "%s: %s: malformed numeric value '%s'\n",
                     tool, flag, text);
        std::exit(2);
    }
    return *v;
}

} // namespace uksim::harness::cli
