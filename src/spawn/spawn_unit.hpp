/**
 * @file
 * Per-SM dynamic thread creation hardware (paper Sec. IV, Figs. 4-5).
 *
 * The spawn unit owns:
 *  - the spawn LUT: one line per micro-kernel, holding a thread counter
 *    and two formation addresses (current warp + overflow warp);
 *  - the new-warp FIFO of completely formed warps awaiting a free
 *    hardware warp slot;
 *  - the ring allocator over the warp-formation half of spawn memory.
 *
 * Executing `spawn $uk, rd` classifies every active lane by the target
 * pc, stores each lane's rd (the parent's state-record pointer) at a
 * unique, sequential formation address — a real modeled store, so it
 * costs on-chip bandwidth and (optionally) bank conflicts — and pushes
 * a warp into the FIFO whenever the counter crosses the warp size.
 */

#ifndef UKSIM_SPAWN_SPAWN_UNIT_HPP
#define UKSIM_SPAWN_SPAWN_UNIT_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/store.hpp"
#include "simt/config.hpp"
#include "simt/program.hpp"
#include "spawn/spawn_layout.hpp"
#include "trace/events.hpp"

namespace uksim {

/** A formed (or force-flushed partial) warp awaiting launch. */
struct FormedWarp {
    uint32_t pc = 0;            ///< micro-kernel entry pc
    uint32_t regionAddr = 0;    ///< formation region base in spawn memory
    int threadCount = 0;        ///< 1..warpSize (warpSize unless flushed)
};

/** Result of executing one spawn instruction. */
struct SpawnIssue {
    /// Per-lane formation store address (~0 for inactive lanes) —
    /// used by the timing model for traffic and bank conflicts.
    std::vector<uint64_t> storeAddrs;
    int warpsCompleted = 0;
    /**
     * Guest fault raised by this spawn (fault.hpp), or None. A faulting
     * spawn is all-or-nothing: no LUT line, formation region, counter or
     * spawn-memory word was touched, so the unit stays consistent and
     * the SM can raise the fault through its trap path.
     */
    FaultCode fault = FaultCode::None;
};

/** Dynamic thread creation unit of one SM. */
class SpawnUnit
{
  public:
    /**
     * @param config machine configuration.
     * @param program program whose micro-kernels define the LUT lines.
     * @param layout spawn memory layout of this SM.
     * @param trace optional event sink (warp formation / flush events).
     *        A per-SM buffer, not the shared ring: the unit may be
     *        called from the parallel phase of the cycle engine.
     * @param smId owning SM id, used as the trace track.
     */
    SpawnUnit(const GpuConfig &config, const Program &program,
              const SpawnMemoryLayout &layout,
              trace::EventBuffer *trace = nullptr, int smId = 0);

    /// allocRegion() sentinel: the formation-region ring is exhausted.
    static constexpr uint32_t kNoRegion = 0xffffffffu;

    /**
     * Execute a spawn instruction for all active lanes.
     *
     * @param targetPc micro-kernel entry (must be a declared entry).
     * @param mask active lanes.
     * @param dataPtrs per-lane state-record pointers (rd values).
     * @param spawnStore the SM's spawn memory backing store.
     * @param now current cycle (only stamps trace events).
     * @return the issue record; on guest misbehavior (unknown target pc,
     *         formation-region exhaustion) SpawnIssue::fault is set and
     *         the unit's state is untouched.
     */
    SpawnIssue spawn(uint32_t targetPc, uint64_t mask,
                     const std::vector<uint32_t> &dataPtrs,
                     Store &spawnStore, uint64_t now = 0);

    bool fifoEmpty() const { return fifo_.empty(); }
    size_t fifoSize() const { return fifo_.size(); }

    /** Pop the oldest fully formed warp. */
    FormedWarp popWarp();

    /** True when some LUT line holds a partially formed warp. */
    bool hasPartialWarps() const;

    /** Total threads parked in partial warps. */
    int partialThreadCount() const;

    /**
     * Force the partial warp with the lowest entry pc out of the pool
     * (Sec. IV-D: only used when nothing else is schedulable).
     * @param now current cycle (only stamps the trace event).
     */
    FormedWarp flushLowestPcPartial(uint64_t now = 0);

    /**
     * Abandon every partially formed warp (zero all LUT counters). Used
     * by the Trap fault policy when a forced flush cannot get a fresh
     * formation region: the parked threads are lost — their state slots
     * stay allocated — but the SM can drain instead of spinning.
     */
    void dropPartialWarps();

    // Formation-region ring occupancy (flight recorder / fillSm guard).
    uint32_t freeRegionCount() const { return freeRegions_; }
    uint32_t numRegions() const { return numRegions_; }

    // Counters for SimStats.
    uint64_t threadsSpawned() const { return threadsSpawned_; }
    uint64_t warpsFormed() const { return warpsFormed_; }
    uint64_t partialFlushes() const { return partialFlushes_; }

    /**
     * Release a formation region after the launched warp has captured
     * its thread pointers, making it reusable by the ring allocator.
     * (The paper sizes the region 2x to avoid clobbering; we track
     * liveness explicitly so reuse is provably safe.)
     */
    void releaseRegion(uint32_t regionAddr);

    /** LUT line inspection for tests. */
    struct LutLine {
        uint32_t pc = 0;
        uint32_t count = 0;     ///< threads in the forming warp
        uint32_t addr1 = 0;     ///< current formation address (next free)
        uint32_t addr2 = 0;     ///< overflow region base
    };
    const LutLine &lutLine(int microKernelIndex) const
    {
        return lut_[microKernelIndex];
    }

  private:
    uint32_t allocRegion();

    const GpuConfig &config_;
    const Program &program_;
    const SpawnMemoryLayout &layout_;
    trace::EventBuffer *trace_;     ///< may be null (untraced unit tests)
    const int smId_;

    std::vector<LutLine> lut_;
    std::deque<FormedWarp> fifo_;
    uint32_t nextRegion_ = 0;       ///< ring cursor (region index)
    uint32_t numRegions_ = 0;
    uint32_t freeRegions_ = 0;      ///< O(1) mirror of regionLive_
    std::vector<bool> regionLive_;

    uint64_t threadsSpawned_ = 0;
    uint64_t warpsFormed_ = 0;
    uint64_t partialFlushes_ = 0;
};

} // namespace uksim

#endif // UKSIM_SPAWN_SPAWN_UNIT_HPP
