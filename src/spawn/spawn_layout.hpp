/**
 * @file
 * Spawn memory space layout (paper Sec. IV-A, Fig. 6).
 *
 * The spawn memory of one SM has two halves:
 *
 *   [dataBase, dataBase + dataSlots * stateBytes)
 *       one fixed-size thread-state record per resident thread, used to
 *       pass state from a parent to the child that continues its work;
 *
 *   [formationBase, formationBase + formationBytes)
 *       warp-formation metadata: consecutive 4-byte pointers, one per
 *       thread of a forming warp, each holding the parent's state-record
 *       address. Sized NumThreads + (SpawnLocations-1) * WarpSize
 *       entries and then doubled so in-flight warps are not clobbered.
 */

#ifndef UKSIM_SPAWN_SPAWN_LAYOUT_HPP
#define UKSIM_SPAWN_SPAWN_LAYOUT_HPP

#include <cstdint>

namespace uksim {

/** Computed layout of one SM's spawn memory. */
struct SpawnMemoryLayout {
    uint32_t stateBytes = 0;        ///< per-thread state record size
    uint32_t dataBase = 0;
    uint32_t dataSlots = 0;         ///< resident-thread capacity
    uint32_t formationBase = 0;
    uint32_t formationEntries = 0;  ///< 4-byte pointer slots (after doubling)
    uint32_t totalBytes = 0;

    /** Address of state record @p slot. */
    uint32_t stateAddr(uint32_t slot) const
    {
        return dataBase + slot * stateBytes;
    }

    /** Slot index of a state-record address. */
    uint32_t slotOf(uint32_t stateAddress) const
    {
        return (stateAddress - dataBase) / stateBytes;
    }

    bool inFormationRegion(uint64_t addr) const
    {
        return addr >= formationBase &&
               addr < formationBase + uint64_t(formationEntries) * 4;
    }

    /**
     * Compute the layout (Sec. IV-A2 sizing rule).
     *
     * @param state_bytes largest state record any micro-kernel passes
     *        (rounded up to a 4-byte multiple; records are word-addressed).
     * @param resident_threads threads that can be resident on the SM.
     * @param spawn_locations number of declared micro-kernels.
     * @param warp_size threads per warp.
     */
    static SpawnMemoryLayout compute(uint32_t state_bytes,
                                     uint32_t resident_threads,
                                     uint32_t spawn_locations,
                                     uint32_t warp_size);
};

} // namespace uksim

#endif // UKSIM_SPAWN_SPAWN_LAYOUT_HPP
