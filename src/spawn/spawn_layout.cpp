/**
 * @file
 * Spawn memory layout computation.
 */

#include "spawn/spawn_layout.hpp"

#include <cassert>

namespace uksim {

SpawnMemoryLayout
SpawnMemoryLayout::compute(uint32_t state_bytes, uint32_t resident_threads,
                           uint32_t spawn_locations, uint32_t warp_size)
{
    assert(state_bytes > 0 && resident_threads > 0 && warp_size > 0);
    SpawnMemoryLayout layout;
    // State records are accessed as 4-byte words; round odd sizes up so
    // neighbouring records never share a word.
    state_bytes = (state_bytes + 3u) & ~3u;
    layout.stateBytes = state_bytes;
    layout.dataBase = 0;
    layout.dataSlots = resident_threads;

    // size = NumThreads + (SpawnLocations - 1) * WarpSize, doubled
    // (Sec. IV-A2). spawn_locations may be 0 for programs without
    // micro-kernels; keep at least one warp's worth of entries.
    uint32_t locations = spawn_locations ? spawn_locations : 1;
    uint32_t entries = resident_threads + (locations - 1) * warp_size;
    entries *= 2;
    // Round up to whole warp regions so the ring allocator stays aligned.
    entries = (entries + warp_size - 1) / warp_size * warp_size;

    layout.formationBase = layout.dataBase + resident_threads * state_bytes;
    layout.formationEntries = entries;
    layout.totalBytes = layout.formationBase + entries * 4;
    return layout;
}

} // namespace uksim
