/**
 * @file
 * Spawn unit implementation.
 */

#include "spawn/spawn_unit.hpp"

#include <bit>
#include <cassert>

namespace uksim {

SpawnUnit::SpawnUnit(const GpuConfig &config, const Program &program,
                     const SpawnMemoryLayout &layout,
                     trace::EventBuffer *trace, int smId)
    : config_(config), program_(program), layout_(layout), trace_(trace),
      smId_(smId)
{
    const uint32_t regionBytes = config.warpSize * 4;
    numRegions_ = layout.formationEntries * 4 / regionBytes;
    if (config.injectMaxFormationRegions > 0 &&
        numRegions_ > config.injectMaxFormationRegions) {
        numRegions_ = config.injectMaxFormationRegions;
    }
    freeRegions_ = numRegions_;
    regionLive_.assign(numRegions_, false);

    // One LUT line per declared micro-kernel; the 1 KB LUT of Table I
    // holds 1024/12 = 85 lines, far more than any of our programs need.
    const size_t lineBytes = 12;    // counter + two addresses
    if (program.microKernels.size() * lineBytes > config.spawnLutBytes) {
        throw GuestFault(
            {FaultCode::SpawnLutOverflow, 0, smId, -1, -1, 0,
             uint64_t(program.microKernels.size())});
    }
    lut_.resize(program.microKernels.size());
    for (size_t i = 0; i < lut_.size(); i++) {
        lut_[i].pc = program.microKernels[i].pc;
        lut_[i].count = 0;
        lut_[i].addr1 = allocRegion();
        lut_[i].addr2 = allocRegion();
        if (lut_[i].addr1 == kNoRegion || lut_[i].addr2 == kNoRegion) {
            // Load-time fault: the ring cannot even seat the LUT's
            // current + overflow regions (only reachable via the
            // injectMaxFormationRegions knob or a degenerate layout).
            throw GuestFault({FaultCode::SpawnRegionExhausted, 0, smId,
                              -1, -1, lut_[i].pc, numRegions_});
        }
    }
}

uint32_t
SpawnUnit::allocRegion()
{
    const uint32_t regionBytes = config_.warpSize * 4;
    assert(numRegions_ > 0);
    for (uint32_t probe = 0; probe < numRegions_; probe++) {
        uint32_t idx = (nextRegion_ + probe) % numRegions_;
        if (!regionLive_[idx]) {
            regionLive_[idx] = true;
            freeRegions_--;
            nextRegion_ = (idx + 1) % numRegions_;
            return layout_.formationBase + idx * regionBytes;
        }
    }
    return kNoRegion;
}

void
SpawnUnit::releaseRegion(uint32_t regionAddr)
{
    const uint32_t regionBytes = config_.warpSize * 4;
    uint32_t idx = (regionAddr - layout_.formationBase) / regionBytes;
    assert(idx < numRegions_ && regionLive_[idx]);
    regionLive_[idx] = false;
    freeRegions_++;
}

SpawnIssue
SpawnUnit::spawn(uint32_t targetPc, uint64_t mask,
                 const std::vector<uint32_t> &dataPtrs, Store &spawnStore,
                 uint64_t now)
{
    SpawnIssue issue;
    issue.storeAddrs.assign(dataPtrs.size(), ~uint64_t{0});

    int index = program_.microKernelIndex(targetPc);
    if (index < 0) {
        issue.fault = FaultCode::SpawnNoLutLine;
        return issue;
    }
    LutLine &line = lut_[index];

    // All-or-nothing exhaustion check: every warp this spawn completes
    // installs one fresh overflow region, so if the ring cannot supply
    // them all, fault before mutating anything — the unit stays
    // consistent and remains usable after the SM traps the warp.
    const uint32_t lanes = uint32_t(std::popcount(mask));
    const uint32_t willComplete =
        (line.count + lanes) / uint32_t(config_.warpSize);
    if (willComplete > freeRegions_) {
        issue.fault = FaultCode::SpawnRegionExhausted;
        return issue;
    }

    const uint64_t warpsBefore = warpsFormed_;
    const uint64_t threadsBefore = threadsSpawned_;

    for (size_t lane = 0; lane < dataPtrs.size(); lane++) {
        if (!(mask >> lane & 1))
            continue;
        // Sequential unique address for this lane (Fig. 5 summation
        // pipeline), plus the metadata store itself.
        issue.storeAddrs[lane] = line.addr1;
        spawnStore.write32(line.addr1, dataPtrs[lane]);
        line.addr1 += 4;
        line.count++;
        threadsSpawned_++;

        if (line.count == static_cast<uint32_t>(config_.warpSize)) {
            // Warp complete: the region holding these warpSize entries
            // starts warpSize words back from the incremented address.
            FormedWarp w;
            w.pc = line.pc;
            w.regionAddr = line.addr1 - config_.warpSize * 4;
            w.threadCount = config_.warpSize;
            fifo_.push_back(w);
            warpsFormed_++;
            if (trace_) {
                trace_->record(trace::EventKind::WarpFormed, now, smId_, 0,
                               w.pc, uint64_t(w.threadCount));
            }
            // Overflow address becomes current; a fresh region is
            // installed as the new overflow (guaranteed free by the
            // pre-check above).
            line.addr1 = line.addr2;
            line.addr2 = allocRegion();
            assert(line.addr2 != kNoRegion);
            line.count = 0;
        }
    }
    issue.warpsCompleted = static_cast<int>(warpsFormed_ - warpsBefore);
    if (trace_) {
        trace_->record(trace::EventKind::Spawn, now, smId_, 0, targetPc,
                       threadsSpawned_ - threadsBefore);
    }
    return issue;
}

void
SpawnUnit::dropPartialWarps()
{
    for (LutLine &line : lut_) {
        if (line.count == 0)
            continue;
        // Rewind the formation cursor so the line's current region is
        // clean again; the parked threads are abandoned for good.
        line.addr1 -= line.count * 4;
        line.count = 0;
    }
}

FormedWarp
SpawnUnit::popWarp()
{
    assert(!fifo_.empty());
    FormedWarp w = fifo_.front();
    fifo_.pop_front();
    return w;
}

bool
SpawnUnit::hasPartialWarps() const
{
    for (const LutLine &line : lut_) {
        if (line.count > 0)
            return true;
    }
    return false;
}

int
SpawnUnit::partialThreadCount() const
{
    int n = 0;
    for (const LutLine &line : lut_)
        n += line.count;
    return n;
}

FormedWarp
SpawnUnit::flushLowestPcPartial(uint64_t now)
{
    LutLine *best = nullptr;
    for (LutLine &line : lut_) {
        if (line.count > 0 && (!best || line.pc < best->pc))
            best = &line;
    }
    assert(best && "flush called without partial warps");

    FormedWarp w;
    w.pc = best->pc;
    w.regionAddr = best->addr1 - best->count * 4;
    w.threadCount = static_cast<int>(best->count);
    best->addr1 = best->addr2;
    // The caller (Gpu::fillSm) guards on freeRegionCount() > 0 and
    // drops partial warps instead of flushing when the ring is dry.
    best->addr2 = allocRegion();
    assert(best->addr2 != kNoRegion);
    best->count = 0;
    partialFlushes_++;
    if (trace_) {
        trace_->record(trace::EventKind::PartialFlush, now, smId_, 0, w.pc,
                       uint64_t(w.threadCount));
    }
    return w;
}

} // namespace uksim
