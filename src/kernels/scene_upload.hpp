/**
 * @file
 * Host-side upload of a built kd-tree scene into simulated device
 * memory, plus the constant-memory parameter block both kernels read.
 */

#ifndef UKSIM_KERNELS_SCENE_UPLOAD_HPP
#define UKSIM_KERNELS_SCENE_UPLOAD_HPP

#include <vector>

#include "rt/camera.hpp"
#include "rt/kdtree.hpp"
#include "simt/gpu.hpp"

namespace uksim::kernels {

/** Device addresses of an uploaded scene. */
struct DeviceScene {
    uint32_t nodesAddr = 0;
    uint32_t trisAddr = 0;
    uint32_t primIdxAddr = 0;
    uint32_t stackBase = 0;
    uint32_t outAddr = 0;
    uint32_t workCounterAddr = 0;   ///< persistent-threads work queue
    uint32_t doneCounterAddr = 0;   ///< persistent-threads completions
    uint32_t rayCount = 0;
    int width = 0;
    int height = 0;
};

/**
 * Upload @p tree and the camera parameter block into @p gpu. Must run
 * after Gpu::loadProgram (the per-ray stack area is sized differently
 * for the traditional kernel — one stack per grid thread — and the
 * micro-kernel program — one stack per resident spawn-state slot).
 */
DeviceScene uploadScene(Gpu &gpu, const rt::KdTree &tree,
                        const rt::Camera &camera);

/** Read back the per-pixel hit records. */
std::vector<rt::Hit> downloadHits(const Gpu &gpu, const DeviceScene &scene);

/** Encode one kd node into its two device words. */
void encodeNode(const rt::KdNode &node, uint32_t &word0, uint32_t &word1);

/** Pack one Wald triangle into the 12-word device record. */
void packTriangle(const rt::WaldTriangle &tri, uint32_t out[12]);

} // namespace uksim::kernels

#endif // UKSIM_KERNELS_SCENE_UPLOAD_HPP
