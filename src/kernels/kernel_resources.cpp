/**
 * @file
 * Kernel resource analysis.
 */

#include "kernels/kernel_resources.hpp"

namespace uksim::kernels {

KernelResourceReport
analyzeProgram(const Program &program, const std::string &name)
{
    KernelResourceReport r;
    r.name = name;
    r.registers = program.measuredRegisterCount();
    r.declaredRegisters = program.resources.registers;
    r.sharedBytes = program.resources.sharedBytes;
    r.globalBytes = program.resources.globalBytes;
    r.constBytes = program.resources.constBytes;
    r.spawnStateBytes = program.resources.spawnStateBytes;
    r.microKernels = static_cast<int>(program.microKernels.size());
    r.instructions = static_cast<int>(program.size());
    return r;
}

} // namespace uksim::kernels
