/**
 * @file
 * Assembly sources for the traditional and micro-kernel ray tracers.
 *
 * The two kernels implement bit-identical arithmetic (same operation
 * order as the host reference tracer in rt/cpu_tracer.*), so a simulated
 * frame must equal the CPU render exactly.
 */

#include "kernels/raytrace_kernels.hpp"

#include <stdexcept>
#include <string>

#include "simt/assembler.hpp"

namespace uksim::kernels {

namespace {

/**
 * Traditional kernel (Example 1): one thread per ray, three
 * data-dependent loops. Per-thread shared layout (36 B at %slot * 36):
 * org.xyz @0, dir.xyz @12, invdir.xyz @24.
 *
 * Register map: r0 tid, r1 shared base, r2 stack base, r3 sp,
 * r8 tmin, r9 tmax, r10 hitT, r11 hitId, r7 node, rest scratch.
 */
const char kTraditionalAsm[] = R"(
.entry main
.reg 24
.shared_per_thread 36
.local_per_thread 384           // per-thread traversal stack
.global_per_thread 8            // hit record
.const 128
main:
    mov.u32  r0, %tid
    ld.param.u32 r4, [32]       // rayCount
    setp.ge.u32 p0, r0, r4
    @p0 exit
    // ---- pixel coordinates ------------------------------------------
    ld.param.u32 r4, [0]        // width
    div.u32  r5, r0, r4         // py
    mul.u32  r6, r5, r4
    sub.u32  r6, r0, r6         // px
    cvt.f32.u32 r12, r6
    add.f32  r12, r12, 0.5      // fx
    cvt.f32.u32 r13, r5
    add.f32  r13, r13, 0.5      // fy
    // ---- shared scratch base ----------------------------------------
    mov.u32  r1, %slot
    mul.u32  r1, r1, 36
    // ---- ray direction: d = fy*dv + (fx*du + ll), per component -----
    ld.param.f32 r4, [76]
    ld.param.f32 r5, [88]
    mad.f32  r4, r12, r5, r4
    ld.param.f32 r5, [100]
    mad.f32  r4, r13, r5, r4    // dir.x
    st.shared.f32 [r1+12], r4
    rcp.f32  r5, r4
    st.shared.f32 [r1+24], r5
    ld.param.f32 r4, [80]
    ld.param.f32 r5, [92]
    mad.f32  r4, r12, r5, r4
    ld.param.f32 r5, [104]
    mad.f32  r4, r13, r5, r4    // dir.y
    st.shared.f32 [r1+16], r4
    rcp.f32  r5, r4
    st.shared.f32 [r1+28], r5
    ld.param.f32 r4, [84]
    ld.param.f32 r5, [96]
    mad.f32  r4, r12, r5, r4
    ld.param.f32 r5, [108]
    mad.f32  r4, r13, r5, r4    // dir.z
    st.shared.f32 [r1+20], r4
    rcp.f32  r5, r4
    st.shared.f32 [r1+32], r5
    // ---- ray origin to shared ----------------------------------------
    ld.param.f32 r4, [64]
    st.shared.f32 [r1+0], r4
    ld.param.f32 r4, [68]
    st.shared.f32 [r1+4], r4
    ld.param.f32 r4, [72]
    st.shared.f32 [r1+8], r4
    // ---- defaults so the miss path can write them --------------------
    mov.f32  r10, 3.402823466e38    // hitT
    mov.u32  r11, -1                // hitId
    // ---- scene bounds slab test --------------------------------------
    mov.f32  r8, 0.0            // tmin
    mov.f32  r9, 3.402823466e38 // tmax
    // x
    ld.shared.f32 r4, [r1+0]
    ld.shared.f32 r5, [r1+24]
    ld.param.f32 r6, [40]
    sub.f32  r6, r6, r4
    mul.f32  r6, r6, r5
    ld.param.f32 r7, [52]
    sub.f32  r7, r7, r4
    mul.f32  r7, r7, r5
    min.f32  r12, r6, r7
    max.f32  r13, r6, r7
    max.f32  r8, r8, r12
    min.f32  r9, r9, r13
    // y
    ld.shared.f32 r4, [r1+4]
    ld.shared.f32 r5, [r1+28]
    ld.param.f32 r6, [44]
    sub.f32  r6, r6, r4
    mul.f32  r6, r6, r5
    ld.param.f32 r7, [56]
    sub.f32  r7, r7, r4
    mul.f32  r7, r7, r5
    min.f32  r12, r6, r7
    max.f32  r13, r6, r7
    max.f32  r8, r8, r12
    min.f32  r9, r9, r13
    // z
    ld.shared.f32 r4, [r1+8]
    ld.shared.f32 r5, [r1+32]
    ld.param.f32 r6, [48]
    sub.f32  r6, r6, r4
    mul.f32  r6, r6, r5
    ld.param.f32 r7, [60]
    sub.f32  r7, r7, r4
    mul.f32  r7, r7, r5
    min.f32  r12, r6, r7
    max.f32  r13, r6, r7
    max.f32  r8, r8, r12
    min.f32  r9, r9, r13
    setp.gt.f32 p0, r8, r9
    @p0 bra write_out           // missed the scene box entirely
    // ---- traversal state ------------------------------------------------
    mov.u32  r7, 0              // node = root
    mov.u32  r3, 0              // sp
down_loop:
    // node words: addr = nodesAddr + node*8
    ld.param.u32 r4, [8]
    shl.u32  r5, r7, 3
    add.u32  r4, r4, r5
    ld.global.v2.u32 r4, [r4+0] // r4 word0, r5 word1
    and.u32  r6, r4, 3
    setp.eq.u32 p0, r6, 3
    @p0 bra leaf
    // internal node: axisOfs = axis*4
    shl.u32  r6, r6, 2
    add.u32  r6, r6, r1         // shared base + axisOfs
    ld.shared.f32 r12, [r6+0]   // org[axis]
    ld.shared.f32 r13, [r6+24]  // invdir[axis]
    sub.f32  r14, r5, r12       // split - org
    mul.f32  r14, r14, r13      // d
    shr.u32  r15, r4, 2         // left child
    add.u32  r16, r15, 1        // right child
    setp.lt.f32 p1, r12, r5     // org < split
    selp.u32 r17, r15, r16, p1  // near
    selp.u32 r18, r16, r15, p1  // far
    setp.gt.f32 p2, r14, r9
    @p2 bra go_near
    setp.le.f32 p2, r14, 0.0
    @p2 bra go_near
    setp.lt.f32 p2, r14, r8
    @p2 bra go_far
    // both children: push (far, d, tmax) on the local-memory stack
    mul.u32  r19, r3, 12
    st.local.u32 [r19+0], r18
    st.local.f32 [r19+4], r14
    st.local.f32 [r19+8], r9
    add.u32  r3, r3, 1
    mov.f32  r9, r14            // tmax = d
    mov.u32  r7, r17
    bra down_loop
go_near:
    mov.u32  r7, r17
    bra down_loop
go_far:
    mov.u32  r7, r18
    bra down_loop
leaf:
    shr.u32  r12, r4, 2         // firstPrim
    ld.param.u32 r13, [16]      // primIdxAddr
    shl.u32  r14, r12, 2
    add.u32  r13, r13, r14      // cursor
    shl.u32  r14, r5, 2
    add.u32  r14, r13, r14      // end
isect_loop:
    setp.ge.u32 p0, r13, r14
    @p0 bra leaf_done
    ld.global.u32 r15, [r13+0]  // prim id
    add.u32  r13, r13, 4
    ld.param.u32 r16, [12]      // trisAddr
    mul.u32  r17, r15, 48
    add.u32  r16, r16, r17      // triangle record
    ld.global.v4.f32 r20, [r16+0]   // nU nV nD kOfs
    add.u32  r17, r1, r23
    ld.shared.f32 r4, [r17+0]   // org[k]
    ld.shared.f32 r5, [r17+12]  // dir[k]
    ld.global.v2.u32 r18, [r16+40]  // kuOfs kvOfs
    add.u32  r17, r1, r18
    ld.shared.f32 r6, [r17+0]   // org[ku]
    ld.shared.f32 r7, [r17+12]  // dir[ku]
    add.u32  r17, r1, r19
    ld.shared.f32 r12, [r17+0]  // org[kv]
    ld.shared.f32 r17, [r17+12] // dir[kv]
    // denom = dir_k + nU*dir_ku + nV*dir_kv
    mad.f32  r5, r20, r7, r5
    mad.f32  r5, r21, r17, r5
    // tnum = nD - org_k - nU*org_ku - nV*org_kv
    sub.f32  r22, r22, r4
    mul.f32  r4, r20, r6
    sub.f32  r22, r22, r4
    mul.f32  r4, r21, r12
    sub.f32  r22, r22, r4
    div.f32  r22, r22, r5       // t
    mad.f32  r6, r22, r7, r6    // hu
    mad.f32  r12, r22, r17, r12 // hv
    setp.ge.f32 p1, r22, 0.0    // accept only t >= tmin (0)
    @!p1 bra isect_loop
    setp.le.f32 p1, r22, r10    // and t <= current hitT
    @!p1 bra isect_loop
    ld.global.v4.f32 r18, [r16+16]  // bNu bNv bD cNu
    mul.f32  r4, r6, r18
    mad.f32  r4, r12, r19, r4
    add.f32  r4, r4, r20        // beta
    setp.lt.f32 p1, r4, 0.0
    @p1 bra isect_loop
    ld.global.v2.f32 r18, [r16+32]  // cNv cD
    mul.f32  r5, r6, r21
    mad.f32  r5, r12, r18, r5
    add.f32  r5, r5, r19        // gamma
    setp.lt.f32 p1, r5, 0.0
    @p1 bra isect_loop
    add.f32  r4, r4, r5
    setp.gt.f32 p1, r4, 1.0
    @p1 bra isect_loop
    mov.f32  r10, r22           // hitT
    mov.u32  r11, r15           // hitId
    bra isect_loop
leaf_done:
    // early termination: hit inside this leaf's parametric span
    setp.ne.u32 p0, r11, -1
    @!p0 bra check_stack
    setp.le.f32 p1, r10, r9
    @p1 bra write_out
check_stack:
    setp.eq.u32 p0, r3, 0
    @p0 bra write_out
    sub.u32  r3, r3, 1
    mul.u32  r19, r3, 12
    ld.local.u32 r7, [r19+0]
    ld.local.f32 r8, [r19+4]
    ld.local.f32 r9, [r19+8]
    bra down_loop
write_out:
    ld.param.u32 r4, [28]       // outAddr
    shl.u32  r5, r0, 3
    add.u32  r4, r4, r5
    st.global.u32 [r4+0], r11
    st.global.f32 [r4+4], r10
    exit
)";

/**
 * Dynamic micro-kernel version. 48-byte state record layout:
 *   +0 dir.xyz | +12 tmin | +16 tmax | +20 node | +24 hitT | +28 hitId
 *   +32 sp | +36 pixel | +40 iter (byte cursor) | +44 end
 * State registers after the three v4 loads: r8..r19 in that order.
 *
 * uk_gen runs once per launch thread (its spawnMemAddr IS the state
 * record); uk_trav / uk_isect / uk_pop are spawn targets whose
 * spawnMemAddr points at the warp-formation word holding the state
 * pointer (Fig. 6).
 */
const char kMicroKernelAsm[] = R"(
.entry uk_gen
.microkernel uk_trav
.microkernel uk_isect
.microkernel uk_pop
.reg 24
.global_per_thread 392          // 384 B slot-interleaved stack + hit record
.const 128
.spawn_state 48

uk_gen:
    mov.u32  r0, %tid
    ld.param.u32 r4, [32]
    setp.ge.u32 p0, r0, r4
    @p0 exit
    ld.param.u32 r4, [0]
    div.u32  r5, r0, r4
    mul.u32  r6, r5, r4
    sub.u32  r6, r0, r6
    cvt.f32.u32 r2, r6
    add.f32  r2, r2, 0.5        // fx
    cvt.f32.u32 r3, r5
    add.f32  r3, r3, 0.5        // fy
    // direction
    ld.param.f32 r8, [76]
    ld.param.f32 r4, [88]
    mad.f32  r8, r2, r4, r8
    ld.param.f32 r4, [100]
    mad.f32  r8, r3, r4, r8     // dir.x
    ld.param.f32 r9, [80]
    ld.param.f32 r4, [92]
    mad.f32  r9, r2, r4, r9
    ld.param.f32 r4, [104]
    mad.f32  r9, r3, r4, r9     // dir.y
    ld.param.f32 r10, [84]
    ld.param.f32 r4, [96]
    mad.f32  r10, r2, r4, r10
    ld.param.f32 r4, [108]
    mad.f32  r10, r3, r4, r10   // dir.z
    // slab test against scene bounds
    mov.f32  r11, 0.0           // tmin
    mov.f32  r12, 3.402823466e38    // tmax
    rcp.f32  r4, r8
    ld.param.f32 r5, [64]
    ld.param.f32 r6, [40]
    sub.f32  r6, r6, r5
    mul.f32  r6, r6, r4
    ld.param.f32 r7, [52]
    sub.f32  r7, r7, r5
    mul.f32  r7, r7, r4
    min.f32  r5, r6, r7
    max.f32  r6, r6, r7
    max.f32  r11, r11, r5
    min.f32  r12, r12, r6
    rcp.f32  r4, r9
    ld.param.f32 r5, [68]
    ld.param.f32 r6, [44]
    sub.f32  r6, r6, r5
    mul.f32  r6, r6, r4
    ld.param.f32 r7, [56]
    sub.f32  r7, r7, r5
    mul.f32  r7, r7, r4
    min.f32  r5, r6, r7
    max.f32  r6, r6, r7
    max.f32  r11, r11, r5
    min.f32  r12, r12, r6
    rcp.f32  r4, r10
    ld.param.f32 r5, [72]
    ld.param.f32 r6, [48]
    sub.f32  r6, r6, r5
    mul.f32  r6, r6, r4
    ld.param.f32 r7, [60]
    sub.f32  r7, r7, r5
    mul.f32  r7, r7, r4
    min.f32  r5, r6, r7
    max.f32  r6, r6, r7
    max.f32  r11, r11, r5
    min.f32  r12, r12, r6
    setp.gt.f32 p0, r11, r12
    @p0 bra gen_miss
    // state init and first spawn
    mov.u32  r13, 0             // node = root
    mov.f32  r14, 3.402823466e38    // hitT
    mov.u32  r15, -1            // hitId
    mov.u32  r16, 0             // sp
    mov.u32  r17, r0            // pixel
    mov.u32  r18, 0             // iter
    mov.u32  r19, 0             // end
    mov.u32  r1, %spawnaddr     // launch thread: state record address
    st.spawn.v4.f32 [r1+0], r8
    st.spawn.v4.f32 [r1+16], r12
    st.spawn.v4.f32 [r1+32], r16
    spawn uk_trav, r1
    exit
gen_miss:
    ld.param.u32 r4, [28]
    shl.u32  r5, r0, 3
    add.u32  r4, r4, r5
    mov.u32  r6, -1
    st.global.u32 [r4+0], r6
    mov.f32  r7, 3.402823466e38
    st.global.f32 [r4+4], r7
    exit

// One down-traversal step (Example 1 line 2, loop body -> micro-kernel).
uk_trav:
    mov.u32  r2, %spawnaddr
    ld.spawn.u32 r1, [r2+0]     // state pointer via formation word
    ld.spawn.v4.f32 r8, [r1+0]
    ld.spawn.v4.f32 r12, [r1+16]
    ld.spawn.v4.f32 r16, [r1+32]
    ld.param.u32 r2, [8]
    shl.u32  r3, r13, 3
    add.u32  r2, r2, r3
    ld.global.v2.u32 r4, [r2+0] // r4 word0, r5 word1
    and.u32  r6, r4, 3
    setp.eq.u32 p0, r6, 3
    @p0 bra trav_leaf
    shl.u32  r6, r6, 2          // axisOfs
    ld.param.f32 r2, [r6+64]    // org[axis]
    setp.eq.u32 p1, r6, 0
    setp.eq.u32 p2, r6, 4
    selp.f32 r3, r9, r10, p2
    selp.f32 r3, r8, r3, p1     // dir[axis]
    rcp.f32  r7, r3
    sub.f32  r3, r5, r2         // split - org
    mul.f32  r3, r3, r7         // d
    shr.u32  r4, r4, 2          // left
    add.u32  r7, r4, 1          // right
    setp.lt.f32 p1, r2, r5
    selp.u32 r2, r4, r7, p1     // near
    selp.u32 r4, r7, r4, p1     // far
    setp.gt.f32 p1, r3, r12
    @p1 bra trav_near
    setp.le.f32 p1, r3, 0.0
    @p1 bra trav_near
    setp.lt.f32 p1, r3, r11
    @p1 bra trav_far
    // push (far, d, tmax): each state slot owns a contiguous 384-byte
    // stack (slot*384 = dataPtr*8 because records are 48 B), so one
    // push touches a single memory segment.
    ld.param.u32 r5, [20]       // stackBase
    ld.param.u32 r6, [112]      // perSmStackBytes
    mov.u32  r7, %smid
    mul.u32  r6, r6, r7
    add.u32  r5, r5, r6         // this SM's stack area
    ld.param.u32 r6, [36]       // spawnDataBase
    sub.u32  r6, r1, r6
    shl.u32  r6, r6, 3          // slot*384 = (dataPtr-base)*8
    add.u32  r5, r5, r6
    mul.u32  r6, r16, 12
    add.u32  r5, r5, r6
    st.global.u32 [r5+0], r4    // far
    st.global.f32 [r5+4], r3    // d
    st.global.f32 [r5+8], r12   // tmax
    add.u32  r16, r16, 1
    mov.f32  r12, r3            // tmax = d
    mov.u32  r13, r2            // node = near
    bra trav_save
trav_near:
    mov.u32  r13, r2
    bra trav_save
trav_far:
    mov.u32  r13, r4
trav_save:
    st.spawn.v4.f32 [r1+0], r8
    st.spawn.v4.f32 [r1+16], r12
    st.spawn.v4.f32 [r1+32], r16
    spawn uk_trav, r1
    exit
trav_leaf:
    shr.u32  r4, r4, 2          // firstPrim
    shl.u32  r4, r4, 2
    ld.param.u32 r2, [16]
    add.u32  r18, r2, r4        // iter (byte cursor)
    shl.u32  r5, r5, 2
    add.u32  r19, r18, r5       // end
    st.spawn.v4.f32 [r1+0], r8
    st.spawn.v4.f32 [r1+16], r12
    st.spawn.v4.f32 [r1+32], r16
    setp.eq.u32 p0, r18, r19    // empty leaf goes straight to pop
    @p0 spawn uk_pop, r1
    @!p0 spawn uk_isect, r1
    exit

// One ray-triangle test (Example 1 line 9 -> micro-kernel).
uk_isect:
    mov.u32  r2, %spawnaddr
    ld.spawn.u32 r1, [r2+0]
    ld.spawn.v4.f32 r8, [r1+0]      // dir.xyz, tmin
    ld.spawn.v4.f32 r12, [r1+16]    // tmax, node, hitT, hitId
    ld.spawn.v4.f32 r16, [r1+32]    // sp, pixel, iter, end
    ld.global.u32 r2, [r18+0]       // prim id
    add.u32  r18, r18, 4            // iter++
    ld.param.u32 r3, [12]
    mul.u32  r4, r2, 48
    add.u32  r3, r3, r4             // triangle record
    ld.global.v4.f32 r20, [r3+0]    // nU nV nD kOfs
    ld.global.v2.u32 r6, [r3+40]    // kuOfs kvOfs
    // Select dir[k], dir[ku], dir[kv] while r8..r10 still hold dir.
    setp.eq.u32 p1, r23, 0
    setp.eq.u32 p2, r23, 4
    selp.f32 r4, r9, r10, p2
    selp.f32 r4, r8, r4, p1         // dir[k]
    setp.eq.u32 p1, r6, 0
    setp.eq.u32 p2, r6, 4
    selp.f32 r5, r9, r10, p2
    selp.f32 r5, r8, r5, p1         // dir[ku]
    setp.eq.u32 p1, r7, 0
    setp.eq.u32 p2, r7, 4
    selp.f32 r11, r9, r10, p2
    selp.f32 r11, r8, r11, p1       // dir[kv]
    // This micro-kernel never changes dir/tmin: save that quarter of
    // the state now and reuse its registers as scratch.
    st.spawn.v4.f32 [r1+0], r8
    ld.param.f32 r8, [r23+64]       // org[k]
    ld.param.f32 r9, [r6+64]        // org[ku]
    ld.param.f32 r10, [r7+64]       // org[kv]
    mad.f32  r4, r20, r5, r4
    mad.f32  r4, r21, r11, r4       // denom
    sub.f32  r22, r22, r8
    mul.f32  r8, r20, r9
    sub.f32  r22, r22, r8
    mul.f32  r8, r21, r10
    sub.f32  r22, r22, r8           // tnum
    div.f32  r4, r22, r4            // t
    mad.f32  r9, r4, r5, r9         // hu
    mad.f32  r10, r4, r11, r10      // hv
    setp.ge.f32 p1, r4, 0.0
    @!p1 bra isect_done
    setp.le.f32 p1, r4, r14
    @!p1 bra isect_done
    ld.global.v4.f32 r20, [r3+16]   // bNu bNv bD cNu
    mul.f32  r5, r9, r20
    mad.f32  r5, r10, r21, r5
    add.f32  r5, r5, r22            // beta
    setp.lt.f32 p1, r5, 0.0
    @p1 bra isect_done
    ld.global.v2.f32 r20, [r3+32]   // cNv cD
    mul.f32  r11, r9, r23
    mad.f32  r11, r10, r20, r11
    add.f32  r11, r11, r21          // gamma
    setp.lt.f32 p1, r11, 0.0
    @p1 bra isect_done
    add.f32  r5, r5, r11
    setp.gt.f32 p1, r5, 1.0
    @p1 bra isect_done
    mov.f32  r14, r4                // hitT
    mov.u32  r15, r2                // hitId
isect_done:
    st.spawn.v4.f32 [r1+16], r12
    st.spawn.v4.f32 [r1+32], r16
    setp.lt.u32 p0, r18, r19
    @p0 spawn uk_isect, r1
    @!p0 spawn uk_pop, r1
    exit

// Pop / early termination (Example 1 lines 1 and 11 -> micro-kernel).
uk_pop:
    mov.u32  r2, %spawnaddr
    ld.spawn.u32 r1, [r2+0]
    ld.spawn.v4.f32 r8, [r1+0]
    ld.spawn.v4.f32 r12, [r1+16]
    ld.spawn.v4.f32 r16, [r1+32]
    setp.ne.u32 p0, r15, -1
    @!p0 bra pop_check
    setp.le.f32 p1, r14, r12    // hit within current span: done
    @p1 bra pop_out
pop_check:
    setp.eq.u32 p0, r16, 0
    @p0 bra pop_out
    sub.u32  r16, r16, 1
    ld.param.u32 r5, [20]
    ld.param.u32 r6, [112]
    mov.u32  r7, %smid
    mul.u32  r6, r6, r7
    add.u32  r5, r5, r6
    ld.param.u32 r6, [36]
    sub.u32  r6, r1, r6
    shl.u32  r6, r6, 3          // slot*384
    add.u32  r5, r5, r6
    mul.u32  r6, r16, 12
    add.u32  r5, r5, r6
    ld.global.u32 r13, [r5+0]   // node
    ld.global.f32 r11, [r5+4]   // tmin
    ld.global.f32 r12, [r5+8]   // tmax
    st.spawn.v4.f32 [r1+0], r8
    st.spawn.v4.f32 [r1+16], r12
    st.spawn.v4.f32 [r1+32], r16
    spawn uk_trav, r1
    exit
pop_out:
    ld.param.u32 r4, [28]
    shl.u32  r5, r17, 3
    add.u32  r4, r4, r5
    st.global.u32 [r4+0], r15
    st.global.f32 [r4+4], r14
    exit
)";

} // anonymous namespace

const char *
traditionalSource()
{
    return kTraditionalAsm;
}

const char *
microKernelSource()
{
    return kMicroKernelAsm;
}

Program
buildTraditional()
{
    return assemble(kTraditionalAsm);
}

Program
buildMicroKernel()
{
    return assemble(kMicroKernelAsm);
}

namespace {

/** Replace exactly one occurrence of @p from in @p text. */
void
patchOnce(std::string &text, const std::string &from,
          const std::string &to)
{
    size_t pos = text.find(from);
    if (pos == std::string::npos ||
        text.find(from, pos + 1) != std::string::npos) {
        throw std::logic_error("adaptive kernel patch did not match: " +
                               from.substr(0, 40));
    }
    text.replace(pos, from.size(), to);
}

} // anonymous namespace

Program
buildPersistentThreads()
{
    // Derived from the traditional kernel: the per-thread ray id comes
    // from an atomic work-queue pop instead of %tid, and finished rays
    // loop back for more work (Sec. VIII persistent threads).
    std::string src = kTraditionalAsm;
    patchOnce(src,
              "main:\n"
              "    mov.u32  r0, %tid\n"
              "    ld.param.u32 r4, [32]       // rayCount\n"
              "    setp.ge.u32 p0, r0, r4\n"
              "    @p0 exit\n",
              "main:\n"
              "pt_fetch:\n"
              "    ld.param.u32 r4, [116]      // work-queue counter\n"
              "    atom.add.u32 r0, [r4+0], 1  // pop next ray index\n"
              "    ld.param.u32 r4, [32]       // rayCount\n"
              "    setp.ge.u32 p0, r0, r4\n"
              "    @p0 exit                    // queue drained\n");
    patchOnce(src,
              "    st.global.u32 [r4+0], r11\n"
              "    st.global.f32 [r4+4], r10\n"
              "    exit\n",
              "    st.global.u32 [r4+0], r11\n"
              "    st.global.f32 [r4+4], r10\n"
              "    ld.param.u32 r4, [120]      // completion counter\n"
              "    atom.add.u32 r5, [r4+0], 1\n"
              "    bra pt_fetch\n");
    return assemble(src);
}

Program
buildMicroKernelAdaptive()
{
    // Derived from the naive source so the two variants cannot drift:
    // each patch inserts a warp-uniformity vote plus a local loop.
    std::string src = kMicroKernelAsm;

    // uk_trav: vote on "whole warp still at internal nodes" right after
    // the node type is known ...
    patchOnce(src,
              "    ld.param.u32 r2, [8]\n"
              "    shl.u32  r3, r13, 3\n",
              "trav_top:\n"
              "    ld.param.u32 r2, [8]\n"
              "    shl.u32  r3, r13, 3\n");
    patchOnce(src,
              "    and.u32  r6, r4, 3\n"
              "    setp.eq.u32 p0, r6, 3\n"
              "    @p0 bra trav_leaf\n",
              "    and.u32  r6, r4, 3\n"
              "    setp.ne.u32 p1, r6, 3\n"
              "    vote.all p3, p1            // whole warp internal?\n"
              "    setp.eq.u32 p0, r6, 3\n"
              "    @p0 bra trav_leaf\n");
    // ... and loop locally (state stays in registers) while it holds.
    patchOnce(src,
              "trav_save:\n"
              "    st.spawn.v4.f32 [r1+0], r8\n",
              "trav_save:\n"
              "    @p3 bra trav_top           // uniform: branch, do not spawn\n"
              "    st.spawn.v4.f32 [r1+0], r8\n");

    // uk_isect: after one test, if every lane still has primitives
    // left, reload the immutable state quarter and test the next one
    // locally instead of re-spawning.
    patchOnce(src,
              "    ld.global.u32 r2, [r18+0]       // prim id\n",
              "isect_body:\n"
              "    ld.global.u32 r2, [r18+0]       // prim id\n");
    patchOnce(src,
              "isect_done:\n"
              "    st.spawn.v4.f32 [r1+16], r12\n"
              "    st.spawn.v4.f32 [r1+32], r16\n"
              "    setp.lt.u32 p0, r18, r19\n"
              "    @p0 spawn uk_isect, r1\n"
              "    @!p0 spawn uk_pop, r1\n"
              "    exit\n",
              "isect_done:\n"
              "    setp.lt.u32 p0, r18, r19\n"
              "    vote.all p3, p0            // whole warp keeps testing?\n"
              "    @!p3 bra isect_finish\n"
              "    ld.spawn.v4.f32 r8, [r1+0] // restore dir scratch\n"
              "    bra isect_body\n"
              "isect_finish:\n"
              "    st.spawn.v4.f32 [r1+16], r12\n"
              "    st.spawn.v4.f32 [r1+32], r16\n"
              "    @p0 spawn uk_isect, r1\n"
              "    @!p0 spawn uk_pop, r1\n"
              "    exit\n");

    return assemble(src);
}

} // namespace uksim::kernels
