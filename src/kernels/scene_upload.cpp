/**
 * @file
 * Scene upload implementation.
 */

#include "kernels/scene_upload.hpp"

#include <cstring>

#include "kernels/raytrace_kernels.hpp"

namespace uksim::kernels {

namespace {

uint32_t
f2u(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

} // anonymous namespace

void
encodeNode(const rt::KdNode &node, uint32_t &word0, uint32_t &word1)
{
    if (node.leaf) {
        word0 = 3u | (node.firstPrim << 2);
        word1 = node.primCount;
    } else {
        word0 = uint32_t(node.axis) | (node.left << 2);
        word1 = f2u(node.split);
    }
}

void
packTriangle(const rt::WaldTriangle &tri, uint32_t out[12])
{
    static const uint32_t mod3[5] = {0, 1, 2, 0, 1};
    out[0] = f2u(tri.nU);
    out[1] = f2u(tri.nV);
    out[2] = f2u(tri.nD);
    out[3] = tri.k * 4;                 // byte offset of axis k
    out[4] = f2u(tri.bNu);
    out[5] = f2u(tri.bNv);
    out[6] = f2u(tri.bD);
    out[7] = f2u(tri.cNu);
    out[8] = f2u(tri.cNv);
    out[9] = f2u(tri.cD);
    out[10] = mod3[tri.k + 1] * 4;      // byte offset of axis u
    out[11] = mod3[tri.k + 2] * 4;      // byte offset of axis v
}

DeviceScene
uploadScene(Gpu &gpu, const rt::KdTree &tree, const rt::Camera &camera)
{
    DeviceScene scene;
    scene.width = camera.width();
    scene.height = camera.height();
    scene.rayCount = uint32_t(scene.width) * uint32_t(scene.height);

    // --- kd nodes -----------------------------------------------------------
    const auto &nodes = tree.nodes();
    std::vector<uint32_t> nodeWords(nodes.size() * 2);
    for (size_t i = 0; i < nodes.size(); i++)
        encodeNode(nodes[i], nodeWords[i * 2], nodeWords[i * 2 + 1]);
    scene.nodesAddr = gpu.mallocGlobal(nodeWords.size() * 4);
    gpu.toGlobal(scene.nodesAddr, nodeWords.data(), nodeWords.size() * 4);

    // --- Wald triangles ------------------------------------------------------
    const auto &wald = tree.waldTriangles();
    std::vector<uint32_t> triWords(wald.size() * 12);
    for (size_t i = 0; i < wald.size(); i++)
        packTriangle(wald[i], &triWords[i * 12]);
    scene.trisAddr = gpu.mallocGlobal(
        std::max<size_t>(triWords.size() * 4, 4));
    if (!triWords.empty()) {
        gpu.toGlobal(scene.trisAddr, triWords.data(), triWords.size() * 4);
    }

    // --- leaf primitive index array -------------------------------------------
    const auto &primIdx = tree.primIndices();
    scene.primIdxAddr = gpu.mallocGlobal(
        std::max<size_t>(primIdx.size() * 4, 4));
    if (!primIdx.empty()) {
        gpu.toGlobal(scene.primIdxAddr, primIdx.data(), primIdx.size() * 4);
    }

    // --- per-ray traversal stacks -----------------------------------------------
    // The traditional kernel keeps its stack in (word-interleaved)
    // local memory, sized by its .local_per_thread declaration. The
    // micro-kernel program needs a stack that outlives any single
    // thread: one per spawn-state slot, in global memory, with words
    // interleaved across slots so lock-step pushes coalesce.
    const bool spawnMode = !gpu.program().microKernels.empty();
    uint32_t perSmStackBytes = 0;
    uint32_t stackWordStride = kStackBytesPerRay;
    if (spawnMode) {
        const uint32_t slots = uint32_t(gpu.occupancy().threadsPerSm);
        perSmStackBytes = slots * kStackBytesPerRay;
        stackWordStride = slots * 4;
        scene.stackBase = gpu.mallocGlobal(
            uint64_t(perSmStackBytes) * gpu.config().numSms);
    }

    // --- output hit records --------------------------------------------------------
    scene.outAddr = gpu.mallocGlobal(
        uint64_t(scene.rayCount) * kHitRecordBytes);

    // --- persistent-threads work/done counters ------------------------------------------
    scene.workCounterAddr = gpu.mallocGlobal(4);
    scene.doneCounterAddr = gpu.mallocGlobal(4);

    // --- constant parameter block ----------------------------------------------------
    uint32_t params[param::kBlockBytes / 4] = {};
    params[param::kWidth / 4] = uint32_t(scene.width);
    params[param::kHeight / 4] = uint32_t(scene.height);
    params[param::kNodesAddr / 4] = scene.nodesAddr;
    params[param::kTrisAddr / 4] = scene.trisAddr;
    params[param::kPrimIdxAddr / 4] = scene.primIdxAddr;
    params[param::kStackBase / 4] = scene.stackBase;
    params[param::kStackStride / 4] = stackWordStride;
    params[param::kOutAddr / 4] = scene.outAddr;
    params[param::kRayCount / 4] = scene.rayCount;
    params[param::kSpawnDataBase / 4] = 0;  // state records start at 0
    const rt::Aabb &b = tree.bounds();
    for (int a = 0; a < 3; a++) {
        params[param::kSceneLo / 4 + a] = f2u(b.lo[a]);
        params[param::kSceneHi / 4 + a] = f2u(b.hi[a]);
        params[param::kCamOrigin / 4 + a] = f2u(camera.origin[a]);
        params[param::kCamLowerLeft / 4 + a] = f2u(camera.lowerLeft[a]);
        params[param::kCamDu / 4 + a] = f2u(camera.du[a]);
        params[param::kCamDv / 4 + a] = f2u(camera.dv[a]);
    }
    params[param::kPerSmStackBytes / 4] = perSmStackBytes;
    params[param::kWorkCounterAddr / 4] = scene.workCounterAddr;
    params[param::kDoneCounterAddr / 4] = scene.doneCounterAddr;
    gpu.toConst(0, params, sizeof(params));
    return scene;
}

std::vector<rt::Hit>
downloadHits(const Gpu &gpu, const DeviceScene &scene)
{
    std::vector<uint32_t> raw(size_t(scene.rayCount) * 2);
    gpu.fromGlobal(scene.outAddr, raw.data(), raw.size() * 4);
    std::vector<rt::Hit> hits(scene.rayCount);
    for (uint32_t i = 0; i < scene.rayCount; i++) {
        hits[i].triId = static_cast<int32_t>(raw[i * 2]);
        float t;
        std::memcpy(&t, &raw[i * 2 + 1], 4);
        hits[i].t = t;
    }
    return hits;
}

} // namespace uksim::kernels
