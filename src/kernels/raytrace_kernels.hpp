/**
 * @file
 * The two benchmark device kernels (paper Sec. VI-A).
 *
 * Both implement the identical kd-tree traversal algorithm (Example 1):
 * clip the ray to the scene bounds, descend to leaves with a short
 * stack, Wald-test every triangle in a leaf, pop until a hit inside the
 * current span or the stack empties.
 *
 *  - The traditional kernel keeps all three data-dependent loops inside
 *    one thread (the PDOM/MIMD baseline, Radius-CUDA style).
 *  - The micro-kernel version removes all three loops: each traversal
 *    step, each intersection test and each pop runs as its own
 *    dynamically spawned thread, passing the 48-byte ray state through
 *    spawn memory with three 4-wide vector loads/stores (the paper's
 *    naive every-iteration spawning).
 *
 * Shared constant-memory parameter block (byte offsets):
 *
 *   0 width | 4 height | 8 nodesAddr | 12 trisAddr | 16 primIdxAddr
 *   20 stackBase | 24 stackWordStride | 28 outAddr | 32 rayCount
 *   36 spawnDataBase | 40..48 sceneLo.xyz | 52..60 sceneHi.xyz
 *   64..72 camOrigin | 76..84 camLowerLeft | 88..96 camDu
 *   100..108 camDv | 112 perSmStackBytes
 */

#ifndef UKSIM_KERNELS_RAYTRACE_KERNELS_HPP
#define UKSIM_KERNELS_RAYTRACE_KERNELS_HPP

#include "simt/program.hpp"

namespace uksim::kernels {

/** Constant-memory offsets of the kernel parameter block. */
namespace param {
constexpr uint32_t kWidth = 0;
constexpr uint32_t kHeight = 4;
constexpr uint32_t kNodesAddr = 8;
constexpr uint32_t kTrisAddr = 12;
constexpr uint32_t kPrimIdxAddr = 16;
constexpr uint32_t kStackBase = 20;
constexpr uint32_t kStackStride = 24;
constexpr uint32_t kOutAddr = 28;
constexpr uint32_t kRayCount = 32;
constexpr uint32_t kSpawnDataBase = 36;
constexpr uint32_t kSceneLo = 40;
constexpr uint32_t kSceneHi = 52;
constexpr uint32_t kCamOrigin = 64;
constexpr uint32_t kCamLowerLeft = 76;
constexpr uint32_t kCamDu = 88;
constexpr uint32_t kCamDv = 100;
constexpr uint32_t kPerSmStackBytes = 112;
constexpr uint32_t kWorkCounterAddr = 116;  ///< persistent-threads queue
constexpr uint32_t kDoneCounterAddr = 120;
constexpr uint32_t kBlockBytes = 128;
} // namespace param

/** Per-ray traversal stack bytes (32 entries x 12 bytes). */
constexpr uint32_t kStackBytesPerRay = 384;
/** Output record bytes per ray (hit id + t). */
constexpr uint32_t kHitRecordBytes = 8;
/** Micro-kernel thread-state record bytes. */
constexpr uint32_t kSpawnStateBytes = 48;
/** Device bytes per Wald triangle record. */
constexpr uint32_t kTriangleBytes = 48;
/** Device bytes per kd node. */
constexpr uint32_t kNodeBytes = 8;

/** Assembly source of the traditional (3-loop) kernel. */
const char *traditionalSource();

/** Assembly source of the dynamic micro-kernel version. */
const char *microKernelSource();

/** Assembled traditional program. */
Program buildTraditional();

/** Assembled micro-kernel program (entry uk_gen; 3 spawnable kernels). */
Program buildMicroKernel();

/**
 * Persistent-threads variant of the traditional kernel (the software
 * alternative discussed in the paper's Related Work, Sec. VIII, after
 * Aila & Laine): exactly enough threads to fill the machine are
 * launched and each fetches ray indices from a global atomic work
 * queue until the frame is drained, then bumps a completion counter.
 */
Program buildPersistentThreads();

/**
 * The paper's future-work variant (Sec. IX): identical micro-kernels,
 * but when a `vote.all` shows every thread of the warp would re-spawn
 * the same micro-kernel, the warp branches back locally (state stays in
 * registers) instead of paying the save/spawn/restore round trip.
 * Spawning only happens when the warp actually diverges.
 */
Program buildMicroKernelAdaptive();

} // namespace uksim::kernels

#endif // UKSIM_KERNELS_RAYTRACE_KERNELS_HPP
