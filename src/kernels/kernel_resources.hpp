/**
 * @file
 * Static per-thread resource analysis of assembled kernels (Table II).
 */

#ifndef UKSIM_KERNELS_KERNEL_RESOURCES_HPP
#define UKSIM_KERNELS_KERNEL_RESOURCES_HPP

#include <string>

#include "simt/program.hpp"

namespace uksim::kernels {

/** One Table II row. */
struct KernelResourceReport {
    std::string name;
    int registers = 0;          ///< measured (max register index + 1)
    int declaredRegisters = 0;  ///< from the .reg directive
    uint32_t sharedBytes = 0;
    uint32_t globalBytes = 0;
    uint32_t constBytes = 0;
    uint32_t spawnStateBytes = 0;
    int microKernels = 0;
    int instructions = 0;
};

/** Analyze an assembled program. */
KernelResourceReport analyzeProgram(const Program &program,
                                    const std::string &name);

} // namespace uksim::kernels

#endif // UKSIM_KERNELS_KERNEL_RESOURCES_HPP
