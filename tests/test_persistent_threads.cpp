/**
 * @file
 * Persistent-threads baseline (paper Sec. VIII): correctness against
 * the CPU reference and work-queue accounting.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "test_common.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

TEST(PersistentThreads, ProgramShape)
{
    Program p = kernels::buildPersistentThreads();
    int atomics = 0;
    for (const auto &inst : p.code)
        atomics += inst.op == Opcode::AtomAdd ? 1 : 0;
    EXPECT_EQ(atomics, 2);      // work-queue pop + completion bump
    EXPECT_TRUE(p.microKernels.empty());
    EXPECT_LE(p.measuredRegisterCount(), 24);
}

TEST(PersistentThreads, MatchesCpuReference)
{
    ExperimentConfig cfg;
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::PersistentThreads;
    cfg.sceneParams.detail = 1;
    cfg.sceneParams.imageWidth = 48;
    cfg.sceneParams.imageHeight = 48;
    cfg.baseConfig = test::smallConfig();
    cfg.baseConfig.numSms = 1;  // machine fill < ray count
    cfg.maxCycles = cfg.baseConfig.maxCycles;

    PreparedScene prepared = prepareScene(cfg.sceneName, cfg.sceneParams);
    rt::RenderResult ref =
        rt::renderReference(prepared.tree, prepared.scene.camera);

    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion);
    // Every ray retired through the completion counter exactly once.
    EXPECT_EQ(r.stats.itemsCompleted, 48u * 48u);
    // Far fewer threads than rays were launched.
    EXPECT_LT(r.stats.threadsLaunched, 48u * 48u);
    for (size_t i = 0; i < r.hits.size(); i++) {
        ASSERT_EQ(r.hits[i].triId, ref.hits[i].triId) << "pixel " << i;
        if (ref.hits[i].valid()) {
            ASSERT_EQ(r.hits[i].t, ref.hits[i].t) << "pixel " << i;
        }
    }
}

TEST(PersistentThreads, LoadBalancesAcrossUnevenWork)
{
    // With static assignment a tail of expensive rays serializes; the
    // queue keeps all threads busy. Verify the run completes and that
    // the queue accounting is consistent when the grid is tiny.
    ExperimentConfig cfg;
    cfg.sceneName = "fairyforest";
    cfg.kernel = KernelKind::PersistentThreads;
    cfg.sceneParams.detail = 1;
    cfg.sceneParams.imageWidth = 32;
    cfg.sceneParams.imageHeight = 32;
    cfg.baseConfig = test::smallConfig();
    cfg.baseConfig.numSms = 1;
    cfg.maxCycles = cfg.baseConfig.maxCycles;

    PreparedScene prepared = prepareScene(cfg.sceneName, cfg.sceneParams);
    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion);
    EXPECT_EQ(r.stats.itemsCompleted, 32u * 32u);
}

} // namespace
