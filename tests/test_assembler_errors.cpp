/**
 * @file
 * Negative-path assembler tests: a table of malformed sources, each
 * asserting that AssemblerError::line() points at the offending source
 * line (the verifier and ukverify both surface these to users, so the
 * attribution has to be right).
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"

using namespace uksim;

namespace {

struct BadSource {
    const char *name;
    const char *source;
    int line;                   ///< expected AssemblerError::line()
    const char *needle;         ///< substring expected in what()
};

// Line numbers are 1-based and count the leading newline of the raw
// string literal, so the first source line below is line 2.
const BadSource kTable[] = {
    {"bad opcode", R"(main:
        mov.u32 r1, 0;
        frobnicate.u32 r2, r1;
        exit;)",
     3, "unknown instruction"},

    {"bad opcode suffix", R"(main:
        mov.q64 r1, 0;
        exit;)",
     2, "bad type"},

    {"missing type suffix", R"(main:
        add r1, r2, r3;
        exit;)",
     2, "type suffix"},

    {"undeclared spawn target", R"(
        .entry gen
        .spawn_state 16
        gen:
            mov.u32 r1, %spawnaddr;
            spawn helper, r1;
            exit;
        helper:
            exit;)",
     6, "not declared .microkernel"},

    {"undefined branch label", R"(main:
        mov.u32 r1, 0;
        bra nowhere;
        exit;)",
     3, "undefined label"},

    {"register out of .reg range", R"(
        .reg 4
        main:
            mov.u32 r2, 0;
            mov.u32 r7, 1;
            exit;)",
     5, "beyond declared .reg"},

    {"duplicate label", R"(main:
        mov.u32 r1, 0;
    main:
        exit;)",
     3, "duplicate label"},

    {"undefined entry", R"(
        .entry ghost
        main:
            exit;)",
     2, "undefined entry"},

    {"undefined microkernel", R"(
        .entry main
        .microkernel ghost
        .spawn_state 8
        main:
            exit;)",
     3, "undefined microkernel"},

    {"bad register", R"(main:
        mov.u32 r99, 0;
        exit;)",
     2, "bad register"},

    {"unknown directive", R"(
        .wibble 7
        main:
            exit;)",
     2, "unknown directive"},

    {"guard without instruction", R"(main:
        mov.u32 r1, 0;
        @p0;
        exit;)",
     3, "guard without instruction"},
};

TEST(AssemblerErrors, TableOfMalformedSources)
{
    for (const BadSource &c : kTable) {
        SCOPED_TRACE(c.name);
        try {
            assemble(c.source);
            ADD_FAILURE() << c.name << ": expected AssemblerError";
        } catch (const AssemblerError &e) {
            EXPECT_EQ(e.line(), c.line)
                << c.name << ": " << e.what();
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << c.name << ": " << e.what();
        }
    }
}

TEST(AssemblerErrors, WhatIncludesLineNumber)
{
    try {
        assemble("main:\n bogus.u32 r1;\n");
        ADD_FAILURE() << "expected AssemblerError";
    } catch (const AssemblerError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
    }
}

} // anonymous namespace
