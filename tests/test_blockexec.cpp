/**
 * @file
 * Superblock execution engine: basic blocks compile at program load
 * into pre-bound host operations, and the engine executes whole fusible
 * runs for a warp in one call (plus pure-idle chip spans), bulk-
 * accounting cycles, stalls and windows exactly like the per-cycle
 * path. The contract mirrors fast-forward and the epoch engine: every
 * observable — SimStats, stall sums, fault records, outcomes, flight-
 * recorder dumps, memory images — is bit-identical to the
 * per-instruction engine at any UKSIM_THREADS, with fastForward and
 * epochEngine each on or off. Only BlockExecStats (how the run was
 * simulated) may differ.
 *
 * Also the unit tests of the fusion-legality pass: blocks with a
 * mid-block memory op, a non-uniform branch, a spawn or a bar must be
 * rejected (classified with the matching exit reason) and the
 * executable BlockTable must agree with the analysis pass.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "simt/analysis/fusion.hpp"
#include "simt/analysis/liveness.hpp"
#include "simt/analysis/uniformity.hpp"
#include "simt/assembler.hpp"
#include "simt/blockexec.hpp"
#include "simt/cfg.hpp"
#include "simt/decode.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/** A long straight ALU run before each round trip: the fused-run shape. */
const char kAluMem[] = R"(
    .entry main
    main:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        add.u32 r3, r2, 17;
        mul.u32 r3, r3, 5;
        xor.u32 r3, r3, r2;
        and.u32 r3, r3, 255;
        ld.global.u32 r0, [r1+0];
        add.u32 r0, r0, r3;
        sub.u32 r0, r0, r2;
        or.u32 r0, r0, 1;
        st.global.u32 [r1+0], r0;
        exit;
)";

/** Spawn + global memory: formation, FIFO pops and drain flushes. */
const char kSpawnMem[] = R"(
    .entry main
    .microkernel mk
    .spawn_state 16
    main:
        mov.u32 r5, %spawnaddr;
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        add.u32 r3, r2, 3;
        mul.u32 r3, r3, 7;
        ld.global.u32 r0, [r1+0];
        spawn mk, r5;
        exit;
    mk:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        xor.u32 r3, r2, 21;
        add.u32 r3, r3, r2;
        ld.global.u32 r0, [r1+0];
        exit;
)";

/** Divergent control flow: fused runs must respect reconvergence. */
const char kDivergent[] = R"(
    .entry main
    main:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        and.u32 r3, r2, 3;
        setp.lt.u32 p0, r3, 2;
        @p0 bra skip;
        add.u32 r4, r2, 11;
        mul.u32 r4, r4, 13;
        xor.u32 r4, r4, r2;
        st.global.u32 [r1+0], r4;
        skip:
        ld.global.u32 r0, [r1+0];
        exit;
)";

/** Lane-dependent out-of-bounds load: a guest fault mid-run. */
const char kFaulting[] = R"(
    .entry main
    main:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        add.u32 r3, r2, 9;
        mul.u32 r3, r3, 3;
        ld.global.u32 r0, [r1+0];
        mov.u32 r1, 4026531840;
        ld.global.u32 r0, [r1+0];
        exit;
)";

struct SimRun {
    RunOutcome outcome = RunOutcome::Completed;
    std::vector<SimFault> faults;
    SimStats stats;
    std::string dump;
    std::vector<uint8_t> image;     ///< final global-memory image
    BlockExecStats bx;
    bool blockUsed = false;
    uint64_t cycle = 0;
};

/**
 * The "fast_forward" dump block reports how the engine ran, not what it
 * simulated; the block-exec engine changes how idle spans are covered.
 * Remove it before comparing dumps for bit-identity.
 */
std::string
stripFastForwardBlock(std::string dump)
{
    const size_t start = dump.find("  \"fast_forward\": ");
    if (start == std::string::npos)
        return dump;
    const size_t end = dump.find('\n', start);
    dump.erase(start, end == std::string::npos ? std::string::npos
                                               : end - start + 1);
    return dump;
}

SimRun
runProgram(const char *source, const GpuConfig &cfg, uint32_t threads,
           uint64_t chunk = 0)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(source));
    gpu.mallocGlobal(4096);
    gpu.launch(threads);
    try {
        if (chunk == 0) {
            gpu.run();
        } else {
            // Chunked pause/resume: every runUntil boundary must land
            // on the exact cycle even when it splits a span.
            uint64_t stop = chunk;
            while (!gpu.finished() && gpu.cycle() < cfg.maxCycles &&
                   gpu.outcome() != RunOutcome::Deadlock) {
                gpu.runUntil(stop);
                if (gpu.cycle() < stop)
                    break;   // halted early (fault policy)
                stop += chunk;
            }
        }
    } catch (const GuestFault &) {
        // Throw policy: fault recorded before the throw.
    }
    SimRun r;
    r.outcome = gpu.outcome();
    r.faults = gpu.faults();
    r.stats = gpu.stats();
    r.bx = gpu.blockExecStats();
    r.blockUsed = gpu.blockExecEligible();
    r.cycle = gpu.cycle();
    r.image.resize(4096);
    gpu.fromGlobal(0, r.image.data(), r.image.size());
    std::ostringstream os;
    gpu.dumpState(os);
    r.dump = os.str();
    return r;
}

void
expectSameRun(const SimRun &a, const SimRun &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.cycle, b.cycle);
    EXPECT_TRUE(a.stats == b.stats);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (size_t i = 0; i < a.faults.size(); i++) {
        EXPECT_EQ(a.faults[i].code, b.faults[i].code) << "fault " << i;
        EXPECT_EQ(a.faults[i].cycle, b.faults[i].cycle) << "fault " << i;
        EXPECT_EQ(a.faults[i].smId, b.faults[i].smId) << "fault " << i;
        EXPECT_EQ(a.faults[i].pc, b.faults[i].pc) << "fault " << i;
    }
    EXPECT_TRUE(a.image == b.image) << "memory image diverged";
    EXPECT_EQ(stripFastForwardBlock(a.dump), stripFastForwardBlock(b.dump));
}

/** Neutralize the CI matrix's env overrides; tests pin the knobs. */
class BlockExec : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saveEnv("UKSIM_THREADS");
        saveEnv("UKSIM_FASTFWD");
        saveEnv("UKSIM_EPOCHS");
        saveEnv("UKSIM_BLOCKEXEC");
        config_ = test::smallConfig();
        config_.maxCycles = 500'000;
    }

    void TearDown() override
    {
        for (const auto &[name, value] : saved_) {
            if (value.has_value())
                setenv(name.c_str(), value->c_str(), 1);
            else
                unsetenv(name.c_str());
        }
    }

    GpuConfig config_;

  private:
    void saveEnv(const char *name)
    {
        const char *env = std::getenv(name);
        saved_.emplace_back(name, env ? std::optional<std::string>(env)
                                      : std::nullopt);
        unsetenv(name);
    }

    std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// ---------------------------------------------------------------------
// Full engine matrix: blockExec x epochEngine x fastForward x threads
// 1/2/4, all against the block-exec-off serial reference. A numeric
// UKSIM_THREADS is set per leg because the no-env default clamps to the
// hardware concurrency (small CI hosts would silently collapse the
// thread legs to 1).
// ---------------------------------------------------------------------

TEST_F(BlockExec, FullEngineMatrixIsByteIdentical)
{
    for (const char *prog : {kAluMem, kSpawnMem, kDivergent}) {
        GpuConfig ref = config_;
        ref.blockExec = false;
        ref.epochEngine = false;
        ref.fastForward = false;
        ref.hostThreads = 1;
        SimRun base = runProgram(prog, ref, 256);
        ASSERT_EQ(base.outcome, RunOutcome::Completed);
        EXPECT_EQ(base.bx.spans, 0u);
        for (int threads : {1, 2, 4}) {
            setenv("UKSIM_THREADS", std::to_string(threads).c_str(), 1);
            for (bool epochs : {false, true}) {
                for (bool ff : {false, true}) {
                    GpuConfig cfg = ref;
                    cfg.blockExec = true;
                    cfg.hostThreads = threads;
                    cfg.epochEngine = epochs;
                    cfg.fastForward = ff;
                    SimRun r = runProgram(prog, cfg, 256);
                    EXPECT_TRUE(r.blockUsed);
                    expectSameRun(base, r,
                                  "threads=" + std::to_string(threads) +
                                      " epochs=" + (epochs ? "on" : "off") +
                                      " ff=" + (ff ? "on" : "off"));
                }
            }
        }
        unsetenv("UKSIM_THREADS");
    }
}

TEST_F(BlockExec, ChunkedRunUntilMatchesUninterrupted)
{
    GpuConfig cfg = config_;
    cfg.blockExec = true;
    cfg.epochEngine = false;
    cfg.fastForward = false;
    SimRun whole = runProgram(kAluMem, cfg, 256);
    SimRun chunked = runProgram(kAluMem, cfg, 256, 97);
    expectSameRun(whole, chunked, "chunk=97");
}

// Block-exec on-vs-off within each cycle engine: on run-interrupting
// policies (Throw, HaltGrid) the lockstep and epoch engines attribute
// the interrupted cycle's stalls differently — a pre-existing engine
// property pinned by the epoch suite — so the reference leg here always
// uses the same engine as the leg under test.
TEST_F(BlockExec, FaultPolicyDeterminism)
{
    for (FaultPolicy policy : {FaultPolicy::Throw, FaultPolicy::Trap,
                               FaultPolicy::HaltGrid}) {
        for (bool epochs : {false, true}) {
            GpuConfig ref = config_;
            ref.faultPolicy = policy;
            ref.blockExec = false;
            ref.epochEngine = epochs;
            ref.fastForward = false;
            ref.hostThreads = 1;
            SimRun base = runProgram(kFaulting, ref, 256);
            ASSERT_FALSE(base.faults.empty());
            for (int threads : {1, 2}) {
                setenv("UKSIM_THREADS", std::to_string(threads).c_str(),
                       1);
                GpuConfig cfg = ref;
                cfg.blockExec = true;
                cfg.hostThreads = threads;
                SimRun r = runProgram(kFaulting, cfg, 256);
                expectSameRun(base, r,
                              "policy=" + std::to_string(int(policy)) +
                                  " threads=" + std::to_string(threads) +
                                  " epochs=" + (epochs ? "on" : "off"));
            }
            unsetenv("UKSIM_THREADS");
        }
    }
}

// ---------------------------------------------------------------------
// Eligibility, kill switch, counters.
// ---------------------------------------------------------------------

TEST_F(BlockExec, WatchdogConfigFallsBackToPerInstruction)
{
    GpuConfig cfg = config_;
    cfg.watchdogCycles = 1000;
    Gpu gpu(cfg);
    EXPECT_TRUE(gpu.blockExecEnabled());
    gpu.loadProgram(assemble(kAluMem));
    EXPECT_FALSE(gpu.blockExecEligible());
    gpu.mallocGlobal(4096);
    gpu.launch(64);
    gpu.run();
    EXPECT_EQ(gpu.outcome(), RunOutcome::Completed);
    EXPECT_EQ(gpu.blockExecStats().spans, 0u);
    EXPECT_EQ(gpu.blockExecStats().fusedRuns, 0u);
}

TEST_F(BlockExec, EnvOverrideControlsTheSwitch)
{
    setenv("UKSIM_BLOCKEXEC", "0", 1);
    SimRun off = runProgram(kAluMem, config_, 64);
    EXPECT_FALSE(off.blockUsed);
    EXPECT_EQ(off.bx.spans, 0u);
    EXPECT_EQ(off.bx.blocksCompiled, 0u);
    setenv("UKSIM_BLOCKEXEC", "1", 1);
    SimRun on = runProgram(kAluMem, config_, 64);
    EXPECT_TRUE(on.blockUsed);
    EXPECT_GT(on.bx.blocksCompiled, 0u);
    unsetenv("UKSIM_BLOCKEXEC");
    expectSameRun(off, on, "env off vs on");
}

// The observability claim: on the uk spawn workload the engine commits
// spans, fuses runs, and every probe that could not fuse lands in the
// fallback-reason histogram (the CSV export exposes the same fields).
TEST_F(BlockExec, CountersPopulatedOnUkWorkload)
{
    GpuConfig cfg = config_;
    cfg.blockExec = true;
    cfg.epochEngine = false;
    cfg.fastForward = false;
    SimRun r = runProgram(kSpawnMem, cfg, 256);
    ASSERT_TRUE(r.blockUsed);
    EXPECT_GT(r.bx.blocksCompiled, 0u);
    EXPECT_GT(r.bx.fusibleBlocks, 0u);
    EXPECT_GT(r.bx.spans, 0u);
    EXPECT_GE(r.bx.largestSpan, 2u);
    EXPECT_GT(r.bx.fusedRuns, 0u);
    EXPECT_GE(r.bx.fusedOps, 2 * r.bx.fusedRuns);
    uint64_t fallbacks = 0;
    for (uint64_t c : r.bx.fallbacks)
        fallbacks += c;
    EXPECT_GT(fallbacks, 0u) << "fallback histogram must be non-empty";
}

// ---------------------------------------------------------------------
// Fusion-legality pass: per-block classification and the executable
// table must agree.
// ---------------------------------------------------------------------

analysis::FusionResult
fuse(const Program &p)
{
    Cfg cfg(p);
    analysis::UniformityResult u = analysis::analyzeUniformity(p, cfg);
    return analysis::analyzeFusion(p, cfg, u,
                                   analysis::analyzeLiveness(p, cfg));
}

const analysis::BlockFusion *
blockAt(const analysis::FusionResult &r, uint32_t pc)
{
    for (const analysis::BlockFusion &b : r.blocks)
        if (b.first <= pc && pc <= b.last)
            return &b;
    return nullptr;
}

TEST(BlockExecFusion, MidBlockMemoryOpEndsTheRun)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        add.u32 r2, r1, 1;
        mul.u32 r2, r2, 3;
        ld.global.u32 r3, [r1+0];
        add.u32 r3, r3, r2;
        exit;
    )");
    analysis::FusionResult r = fuse(p);
    const analysis::BlockFusion *b = blockAt(r, 0);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->exit, analysis::FusionExit::Memory);
    EXPECT_EQ(b->fusibleOps, 3u);
    EXPECT_TRUE(b->fusible);
}

TEST(BlockExecFusion, SpawnAndBarrierAreRejected)
{
    Program spawn = assemble(R"(
        .entry main
        .microkernel mk
        .spawn_state 16
        main:
            mov.u32 r5, %spawnaddr;
            mov.u32 r1, %tid;
            spawn mk, r5;
            exit;
        mk:
            exit;
    )");
    analysis::FusionResult rs = fuse(spawn);
    const analysis::BlockFusion *bs = blockAt(rs, 0);
    ASSERT_NE(bs, nullptr);
    EXPECT_EQ(bs->exit, analysis::FusionExit::Spawn);

    Program barrier = assemble(R"(main:
        mov.u32 r1, %tid;
        add.u32 r2, r1, 1;
        bar;
        exit;
    )");
    analysis::FusionResult rb = fuse(barrier);
    const analysis::BlockFusion *bb = blockAt(rb, 0);
    ASSERT_NE(bb, nullptr);
    EXPECT_EQ(bb->exit, analysis::FusionExit::Barrier);
    EXPECT_EQ(bb->fusibleOps, 2u);
}

TEST(BlockExecFusion, NonUniformBranchBlocksAreNotUniform)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra skip;
        add.u32 r2, r1, 1;
        mul.u32 r2, r2, 3;
        xor.u32 r2, r2, r1;
        st.global.u32 [r1+0], r2;
        skip:
        exit;
    )");
    analysis::FusionResult r = fuse(p);
    // The branch block itself exits via the SIMT stack.
    const analysis::BlockFusion *head = blockAt(r, 2);
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->exit, analysis::FusionExit::Branch);
    // The guarded region is inside a divergent influence region: its
    // blocks must not be marked uniform.
    const analysis::BlockFusion *then = blockAt(r, 3);
    ASSERT_NE(then, nullptr);
    EXPECT_FALSE(then->uniform);
}

TEST(BlockExecFusion, TableAgreesWithAnalysis)
{
    Program p = assemble(kAluMem);
    GpuConfig cfg;
    DecodedProgram decoded;
    decoded.build(p, cfg);
    BlockTable table;
    table.build(p, decoded, cfg);
    ASSERT_FALSE(table.empty());

    analysis::FusionResult r = fuse(p);
    ASSERT_EQ(table.blocks().size(), r.blocks.size());
    for (size_t i = 0; i < r.blocks.size(); i++) {
        const analysis::BlockFusion &ab = r.blocks[i];
        const CompiledBlock &tb = table.blocks()[i];
        EXPECT_EQ(tb.first, ab.first) << "block " << i;
        EXPECT_EQ(tb.last, ab.last) << "block " << i;
        EXPECT_EQ(tb.fusibleOps, ab.fusibleOps) << "block " << i;
        EXPECT_EQ(tb.uniform, ab.uniform) << "block " << i;
        // fusibleLen at a block's first pc is exactly its prefix.
        EXPECT_EQ(table.fusibleLen(ab.first), ab.fusibleOps)
            << "block " << i;
    }
}

} // namespace
