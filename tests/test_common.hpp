/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef UKSIM_TESTS_TEST_COMMON_HPP
#define UKSIM_TESTS_TEST_COMMON_HPP

#include "simt/config.hpp"

namespace uksim::test {

/** Small, fast machine for unit tests (same warp/partition structure). */
inline GpuConfig
smallConfig()
{
    GpuConfig c;
    c.numSms = 4;
    c.maxCycles = 200'000'000;   // tests run to completion
    c.statsWindowCycles = 1000;
    return c;
}

} // namespace uksim::test

#endif // UKSIM_TESTS_TEST_COMMON_HPP
