/**
 * @file
 * Read-only texture-path cache and touched-bytes coalescing tests.
 */

#include <gtest/gtest.h>

#include "mem/coalescer.hpp"
#include "mem/rocache.hpp"

using namespace uksim;

namespace {

TEST(RoCache, HitAfterFill)
{
    ReadOnlyCache c(1024, 32, 2);
    EXPECT_FALSE(c.probe(0));
    c.fill(0);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(31));      // same line
    EXPECT_FALSE(c.probe(32));     // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(RoCache, LruEviction)
{
    // 2 ways, 32B lines, 128B total => 2 sets. Addresses 0, 128, 256
    // all map to set 0.
    ReadOnlyCache c(128, 32, 2);
    c.fill(0);
    c.fill(128);
    EXPECT_TRUE(c.probe(0));       // refresh 0: 128 becomes LRU
    c.fill(256);                   // evicts 128
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(128));
    EXPECT_TRUE(c.probe(256));
}

TEST(RoCache, InvalidateDropsLine)
{
    ReadOnlyCache c(1024, 32, 4);
    c.fill(64);
    EXPECT_TRUE(c.probe(64));
    c.invalidate(64);
    EXPECT_FALSE(c.probe(64));
    c.invalidate(9999);            // not present: no-op
}

TEST(RoCache, DoubleFillIsIdempotent)
{
    ReadOnlyCache c(256, 32, 2);
    c.fill(0);
    c.fill(0);
    c.fill(32);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(32));
}

TEST(RoCache, TinyCacheStillWorks)
{
    ReadOnlyCache c(32, 32, 4);    // fewer lines than ways: 1 set
    c.fill(0);
    EXPECT_TRUE(c.probe(0));
}

// ---- touched-byte accounting in the coalescer -----------------------------

TEST(CoalescerTouched, ContiguousWarpTouchesWholeSegment)
{
    std::vector<uint64_t> a(8);
    for (int i = 0; i < 8; i++)
        a[i] = i * 4;
    auto segs = coalesce(a, 0xff, 4, 32);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].touched, 32u);
}

TEST(CoalescerTouched, ScatteredScalarsTouchOnlyTheirBytes)
{
    // 4 lanes, 4B each, 128B apart: 4 segments, 4 touched bytes each —
    // the paper's byte-granular bandwidth accounting.
    std::vector<uint64_t> a = {0, 128, 256, 384};
    auto segs = coalesce(a, 0xf, 4, 32);
    ASSERT_EQ(segs.size(), 4u);
    for (const Segment &s : segs) {
        EXPECT_EQ(s.bytes, 32u);
        EXPECT_EQ(s.touched, 4u);
    }
}

TEST(CoalescerTouched, BroadcastCountsOnce)
{
    std::vector<uint64_t> a(32, 512);
    auto segs = coalesce(a, 0xffffffff, 4, 32);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].touched, 4u);
}

TEST(CoalescerTouched, StraddleSplitsTouchedBytes)
{
    // 16B access starting 8 bytes before a 32B boundary.
    std::vector<uint64_t> a = {24};
    auto segs = coalesce(a, 1, 16, 32);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].touched, 8u);
    EXPECT_EQ(segs[1].touched, 8u);
}

TEST(CoalescerTouched, TouchedNeverExceedsSegment)
{
    // Overlapping vector accesses at 8B stride: dedup keeps touched
    // within the line size.
    std::vector<uint64_t> a(8);
    for (int i = 0; i < 8; i++)
        a[i] = i * 8;
    auto segs = coalesce(a, 0xff, 16, 32);
    for (const Segment &s : segs)
        EXPECT_LE(s.touched, s.bytes);
}

} // namespace
