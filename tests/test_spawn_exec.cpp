/**
 * @file
 * End-to-end dynamic micro-kernel execution on the cycle model: spawn
 * chains, state passing through spawn memory, warp re-formation,
 * partial-warp flushing, slot recycling.
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/**
 * Collatz-style data-dependent chain: each thread starts from
 * (tid % 19) + 3 and iterates n -> n/2 or 3n+1 until n == 1, counting
 * steps. Every iteration is its own spawned micro-kernel thread; the
 * step count accumulates in the 16-byte state record.
 * State: +0 n, +4 steps, +8 tid, +12 pad.
 */
const char kCollatzSpawn[] = R"(
    .entry gen
    .microkernel step
    .spawn_state 16
    gen:
        mov.u32 r1, %tid;
        ld.param.u32 r2, [4]
        setp.ge.u32 p0, r1, r2;
        @p0 exit;
        rem.u32 r3, r1, 19;
        add.u32 r3, r3, 3;          // n
        mov.u32 r4, 0;              // steps
        mov.u32 r5, %spawnaddr;
        st.spawn.u32 [r5+0], r3;
        st.spawn.u32 [r5+4], r4;
        st.spawn.u32 [r5+8], r1;
        spawn step, r5;
        exit;
    step:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r1, [r2+0];    // state pointer
        ld.spawn.u32 r3, [r1+0];    // n
        ld.spawn.u32 r4, [r1+4];    // steps
        setp.eq.u32 p0, r3, 1;
        @p0 bra finish;
        and.u32 r5, r3, 1;
        setp.eq.u32 p1, r5, 0;
        @p1 bra even;
        mul.u32 r3, r3, 3;
        add.u32 r3, r3, 1;
        bra cont;
    even:
        shr.u32 r3, r3, 1;
    cont:
        add.u32 r4, r4, 1;
        st.spawn.u32 [r1+0], r3;
        st.spawn.u32 [r1+4], r4;
        spawn step, r1;
        exit;
    finish:
        ld.spawn.u32 r5, [r1+8];    // tid
        ld.param.u32 r6, [0];
        shl.u32 r7, r5, 2;
        add.u32 r6, r6, r7;
        st.global.u32 [r6+0], r4;
        exit;
)";

uint32_t
collatzSteps(uint32_t n)
{
    uint32_t steps = 0;
    while (n != 1) {
        n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
        steps++;
    }
    return steps;
}

struct SpawnRun {
    std::vector<uint32_t> result;
    SimStats stats;
    Occupancy occupancy;
};

SpawnRun
runCollatz(uint32_t threads, GpuConfig cfg)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kCollatzSpawn));
    uint32_t out = gpu.mallocGlobal(uint64_t(threads) * 4);
    uint32_t params[2] = {out, threads};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(threads);
    SpawnRun r;
    r.stats = gpu.run();
    r.occupancy = gpu.occupancy();
    EXPECT_TRUE(gpu.finished()) << "spawn chain did not drain";
    r.result.resize(threads);
    gpu.fromGlobal(out, r.result.data(), threads * 4);
    return r;
}

TEST(SpawnExec, CollatzChainsProduceCorrectCounts)
{
    SpawnRun r = runCollatz(256, test::smallConfig());
    for (uint32_t i = 0; i < 256; i++)
        ASSERT_EQ(r.result[i], collatzSteps(i % 19 + 3)) << "tid " << i;
    EXPECT_GT(r.stats.dynamicThreadsSpawned, 256u);
    EXPECT_GT(r.stats.dynamicWarpsFormed, 0u);
    // Every ray ... item completes exactly once.
    EXPECT_EQ(r.stats.itemsCompleted, 256u);
}

TEST(SpawnExec, SingleWarpNeedsPartialFlushes)
{
    // With only 13 threads nothing can ever fill a 32-wide warp: the
    // run can only finish through forced partial-warp flushes.
    SpawnRun r = runCollatz(13, test::smallConfig());
    for (uint32_t i = 0; i < 13; i++)
        EXPECT_EQ(r.result[i], collatzSteps(i % 19 + 3));
    EXPECT_GT(r.stats.partialWarpFlushes, 0u);
}

TEST(SpawnExec, GridFarLargerThanStateSlots)
{
    // Grid is much larger than resident threads: launch-time threads
    // must wait for freed spawn-state slots (Sec. IV-A1) and every item
    // must still complete.
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    SpawnRun r = runCollatz(4096, cfg);
    for (uint32_t i = 0; i < 4096; i += 97)
        ASSERT_EQ(r.result[i], collatzSteps(i % 19 + 3)) << i;
    EXPECT_EQ(r.stats.itemsCompleted, 4096u);
    EXPECT_EQ(r.stats.threadsLaunched, 4096u);
}

TEST(SpawnExec, BankConflictModelingOnlyChangesTiming)
{
    GpuConfig base = test::smallConfig();
    SpawnRun clean = runCollatz(512, base);

    GpuConfig conflicted = base;
    conflicted.modelSpawnBankConflicts = true;
    SpawnRun banked = runCollatz(512, conflicted);

    EXPECT_EQ(clean.result, banked.result);
    EXPECT_GT(banked.stats.bankConflictExtraCycles, 0u);
    EXPECT_GE(banked.stats.cycles, clean.stats.cycles);
}

TEST(SpawnExec, DynamicWarpsReuseFreedSlots)
{
    // Total hardware threads is tiny (1 SM); chains are long; the
    // number of dynamic threads vastly exceeds resident capacity.
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    SpawnRun r = runCollatz(1024, cfg);
    uint64_t resident = uint64_t(r.occupancy.threadsPerSm);
    EXPECT_GT(r.stats.dynamicThreadsSpawned, resident * 4);
    EXPECT_EQ(r.stats.itemsCompleted, 1024u);
}

TEST(SpawnExec, SpawnMemoryTrafficCounted)
{
    SpawnRun r = runCollatz(256, test::smallConfig());
    EXPECT_GT(r.stats.spawnMemWriteBytes, 0u);
    EXPECT_GT(r.stats.spawnMemReadBytes, 0u);
    // Each spawned thread writes one 4-byte formation pointer in
    // addition to its state stores.
    EXPECT_GE(r.stats.spawnMemWriteBytes,
              r.stats.dynamicThreadsSpawned * 4);
}

TEST(SpawnExec, MissingSpawnStateDeclarationThrows)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    EXPECT_THROW(gpu.loadProgram(assemble(R"(
        .entry main
        .microkernel mk
        main:
            spawn mk, r1;
            exit;
        mk:
            exit;
    )")),
                 std::runtime_error);
}

TEST(SpawnExec, IdealMemorySpawnStillCorrect)
{
    GpuConfig cfg = test::smallConfig();
    cfg.idealMemory = true;
    SpawnRun r = runCollatz(256, cfg);
    for (uint32_t i = 0; i < 256; i++)
        ASSERT_EQ(r.result[i], collatzSteps(i % 19 + 3));
}

} // namespace
