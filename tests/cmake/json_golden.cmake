# Golden-file test for `ukverify --json`: the emitted document must
# match the checked-in expectation byte for byte. Schema changes are
# deliberate: regenerate with
#     ukverify --json tests/data/analysis_clean.uk \
#         > tests/data/analysis_clean.expected.json
# (from the repository root, so the embedded "name" stays relative)
# and bump kJsonSchema when a field changes meaning.
#
# Usage:
#   cmake -DTOOL=<exe> -DINPUT=<rel path> -DEXPECTED=<abs path>
#         -DWORKDIR=<repo root> -P json_golden.cmake
foreach(var TOOL INPUT EXPECTED WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "json_golden.cmake needs -D${var}")
    endif()
endforeach()
execute_process(
    COMMAND ${TOOL} --json ${INPUT}
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE got
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} --json ${INPUT} exited ${rc}\n${err}")
endif()
file(READ ${EXPECTED} want)
if(NOT got STREQUAL want)
    message(FATAL_ERROR
            "JSON output drifted from ${EXPECTED}.\n"
            "--- expected ---\n${want}\n--- got ---\n${got}")
endif()
