# Golden-file test for the flight-recorder dump schema: a pinned tiny
# run's `ukdump` output must match the checked-in expectation byte for
# byte (the engine's identity contract makes the dump deterministic;
# the schema field "ukdump-json-1" versions the format). Regenerate
# deliberately after a schema bump with:
#     UKSIM_SMS=2 UKSIM_RES=16 UKSIM_DETAIL=2 UKSIM_FASTFWD=1 \
#     UKSIM_THREADS=1 UKSIM_EPOCHS=0 UKSIM_BLOCKEXEC=0 \
#     build/tools/ukdump \
#         --config uk_conference --cycles 3000 \
#         --out tests/data/ukdump_small.expected.json
#
# Usage:
#   cmake -DTOOL=<ukdump> -DEXPECTED=<abs path> -DWORKDIR=<dir>
#         -P dump_golden.cmake
foreach(var TOOL EXPECTED WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "dump_golden.cmake needs -D${var}")
    endif()
endforeach()

set(ENV{UKSIM_SMS} 2)
set(ENV{UKSIM_RES} 16)
set(ENV{UKSIM_DETAIL} 2)
# The dump's fast_forward block reports engine-side FF counters, which
# are legitimately outside the identity contract — pin the knobs the
# CI matrix varies so the bytes stay golden in every leg.
set(ENV{UKSIM_FASTFWD} 1)
set(ENV{UKSIM_THREADS} 1)
set(ENV{UKSIM_EPOCHS} 0)
set(ENV{UKSIM_BLOCKEXEC} 0)
execute_process(
    COMMAND ${TOOL} --config uk_conference --cycles 3000
            --out ${WORKDIR}/ukdump_golden_test.dump.json
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} exited ${rc}\n${out}\n${err}")
endif()

file(READ ${WORKDIR}/ukdump_golden_test.dump.json got)
file(READ ${EXPECTED} want)
if(NOT got STREQUAL want)
    message(FATAL_ERROR
            "flight-recorder dump drifted from ${EXPECTED} — if the "
            "schema changed deliberately, bump kDumpSchema and "
            "regenerate (see header of this script).")
endif()

# Belt and braces: the schema marker itself must be present and first.
string(FIND "${got}" "\"schema\": \"ukdump-json-1\"" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR "dump is missing the ukdump-json-1 schema field")
endif()
