# Run a command and require an exact exit code (ctest's WILL_FAIL can
# only distinguish zero from nonzero; the ukverify contract
# distinguishes 1 "findings" from 2 "usage/load error").
#
# Usage:
#   cmake -DTOOL=<exe> -DTOOL_ARGS=<;-list> -DEXPECT_RC=<n>
#         [-DWORKDIR=<dir>] -P expect_exit.cmake
if(NOT DEFINED TOOL OR NOT DEFINED EXPECT_RC)
    message(FATAL_ERROR "expect_exit.cmake needs -DTOOL and -DEXPECT_RC")
endif()
if(NOT DEFINED WORKDIR)
    set(WORKDIR ".")
endif()
execute_process(
    COMMAND ${TOOL} ${TOOL_ARGS}
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL ${EXPECT_RC})
    message(FATAL_ERROR
            "${TOOL} ${TOOL_ARGS}: exit code ${rc}, expected "
            "${EXPECT_RC}\nstdout:\n${out}\nstderr:\n${err}")
endif()
