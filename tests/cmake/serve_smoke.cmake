# End-to-end serve smoke over pipe mode: compose a 3-job batch with
# one duplicate via `uksim-submit --emit`, feed it to `uksim-serve
# --pipe` against a fresh cache, and assert the manifest reports
# exactly one cache hit, two computed jobs, zero failures, and that
# the session ended with a clean shutdown event.
#
# Usage:
#   cmake -DSUBMIT=<exe> -DSERVE=<exe> -DWORKDIR=<dir> [-DWORKERS=<n>]
#         -P serve_smoke.cmake
foreach(var SUBMIT SERVE WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "serve_smoke.cmake needs -D${var}")
    endif()
endforeach()
if(NOT DEFINED WORKERS)
    set(WORKERS 0)
endif()

set(scratch ${WORKDIR}/serve_smoke_w${WORKERS})
file(REMOVE_RECURSE ${scratch})
file(MAKE_DIRECTORY ${scratch})

# A deliberately tiny job (2 SMs, 16x16 rays, 6000-cycle cap); the
# third entry repeats the first with a different label, so it must
# dedupe to a cache hit, not a third simulation.
set(job --cycles 6000 --detail 2 --res 16 --sms 2)
execute_process(
    COMMAND ${SUBMIT} --emit --batch-id smoke --shutdown
            --job uk_conference ${job}
            --job pdom_conference ${job}
            --job uk_conference --label uk_conference_again ${job}
    OUTPUT_FILE ${scratch}/request.ndjson
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "uksim-submit --emit exited ${rc}\n${err}")
endif()

execute_process(
    COMMAND ${SERVE} --pipe --cache ${scratch}/cache
            --workers ${WORKERS} --snapshot-cycles 2000
    INPUT_FILE ${scratch}/request.ndjson
    OUTPUT_VARIABLE out
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "uksim-serve --pipe exited ${rc}\n${err}\n${out}")
endif()

foreach(needle
        "\"cache_hits\": 1"
        "\"computed\": 2"
        "\"failed\": 0"
        "{\"event\": \"shutdown\"}")
    string(FIND "${out}" "${needle}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "serve smoke output is missing '${needle}':\n${out}")
    endif()
endforeach()

# The duplicate's job_done must be a hit with the same result digest
# as the job it duplicates — count job_done hit events, not just the
# manifest tally.
string(REGEX MATCHALL "\"event\": \"job_done\"[^\n]*\"cache\": \"hit\""
       hits "${out}")
list(LENGTH hits nhits)
if(NOT nhits EQUAL 1)
    message(FATAL_ERROR
            "expected exactly 1 job_done cache hit, got ${nhits}:\n${out}")
endif()
