/**
 * @file
 * Structured guest-fault model, fault policies, forward-progress
 * watchdog and flight recorder: every injected fault class must be
 * caught and attributed (never a silent wrong answer or a raw abort),
 * under every FaultPolicy, with bit-identical results at any host
 * thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/** Minimal spawn program: every launch thread spawns one child. */
const char kSpawnOnce[] = R"(
    .entry main
    .microkernel mk
    .spawn_state 16
    main:
        mov.u32 r5, %spawnaddr;
        spawn mk, r5;
        exit;
    mk:
        exit;
)";

/**
 * Two warps of one block; warp 0 parks at a barrier before warp 1
 * (delayed by the nop slide) exits without ever reaching it. Warp 0 can
 * then never be released: a genuine deadlock, not a long-latency wait.
 */
const char kBarrierDeadlock[] = R"(
    .entry main
    main:
        mov.u32 r0, %tid;
        setp.lt.u32 p0, r0, 32;
        @p0 bra waiter;
        nop;
        nop;
        nop;
        nop;
        nop;
        nop;
        exit;
    waiter:
        bar;
        exit;
)";

struct FaultRun {
    RunOutcome outcome = RunOutcome::Completed;
    std::vector<SimFault> faults;
    SimStats stats;
    std::string dump;
};

FaultRun
runProgram(Program program, const GpuConfig &cfg, uint32_t threads)
{
    Gpu gpu(cfg);
    gpu.loadProgram(std::move(program));
    gpu.launch(threads);
    gpu.run();
    FaultRun r;
    r.outcome = gpu.outcome();
    r.faults = gpu.faults();
    r.stats = gpu.stats();
    std::ostringstream os;
    gpu.dumpState(os);
    r.dump = os.str();
    return r;
}

/**
 * The CI matrix exports UKSIM_THREADS, which overrides
 * GpuConfig::hostThreads inside Gpu. These tests pin thread counts and
 * fault policies explicitly, so neutralize the override.
 */
class FaultModel : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *env = std::getenv("UKSIM_THREADS")) {
            saved_ = env;
            hadEnv_ = true;
            unsetenv("UKSIM_THREADS");
        }
        config_ = test::smallConfig();
    }

    void TearDown() override
    {
        if (hadEnv_)
            setenv("UKSIM_THREADS", saved_.c_str(), 1);
    }

    // --- Deterministic fault injectors ---------------------------------

    /** Warp runs off the end of the program (no exit). */
    static Program runOffEnd()
    {
        return assemble(R"(
            .entry main
            main:
                nop;
        )");
    }

    /** Branch target poisoned to a pc far outside the program. */
    static Program poisonedBranch()
    {
        Program p = assemble(R"(
            .entry main
            main:
                bra dead;
            dead:
                exit;
        )");
        for (Instruction &inst : p.code)
            if (inst.op == Opcode::Bra)
                inst.target = 0xFFFF;
        return p;
    }

    /** Corrupt operand-kind encoding on an arithmetic instruction. */
    static Program badOperandKind()
    {
        Program p = assemble(R"(
            .entry main
            main:
                add.u32 r0, r1, r2;
                exit;
        )");
        for (Instruction &inst : p.code)
            if (inst.op == Opcode::Add)
                inst.src[0].kind = static_cast<OperandKind>(0x7F);
        return p;
    }

    /** Corrupt memory-space encoding on a load. */
    static Program badMemSpace()
    {
        Program p = assemble(R"(
            .entry main
            main:
                mov.u32 r1, 0;
                ld.global.u32 r0, [r1+0];
                exit;
        )");
        for (Instruction &inst : p.code)
            if (inst.op == Opcode::Ld)
                inst.space = static_cast<MemSpace>(0x7F);
        return p;
    }

    /** Global load far beyond the allocated store. */
    static Program memOutOfBounds()
    {
        return assemble(R"(
            .entry main
            main:
                mov.u32 r1, 4026531840;
                ld.global.u32 r0, [r1+0];
                exit;
        )");
    }

    /** Spawn instruction retargeted at a pc with no LUT line. */
    static Program spawnNoLutLine()
    {
        Program p = assemble(kSpawnOnce);
        for (Instruction &inst : p.code)
            if (inst.op == Opcode::Spawn)
                inst.target = p.entryPc;
        return p;
    }

    GpuConfig config_;

  private:
    std::string saved_;
    bool hadEnv_ = false;
};

// ---------------------------------------------------------------------
// Throw policy (legacy default): mid-cycle aborts become typed
// GuestFault exceptions carrying the attribution record.
// ---------------------------------------------------------------------

TEST_F(FaultModel, ThrowPolicyRaisesTypedGuestFault)
{
    struct Case {
        const char *name;
        Program program;
        FaultCode expect;
    };
    Case cases[] = {
        {"run-off-end", runOffEnd(), FaultCode::PcOutOfRange},
        {"poisoned-branch", poisonedBranch(), FaultCode::PcOutOfRange},
        {"bad-operand", badOperandKind(), FaultCode::BadOperandKind},
        {"bad-space", badMemSpace(), FaultCode::BadMemSpace},
        {"mem-oob", memOutOfBounds(), FaultCode::MemOutOfBounds},
        {"spawn-no-lut", spawnNoLutLine(), FaultCode::SpawnNoLutLine},
    };
    for (Case &c : cases) {
        SCOPED_TRACE(c.name);
        Gpu gpu(config_);    // faultPolicy defaults to Throw
        gpu.loadProgram(std::move(c.program));
        gpu.launch(32);
        try {
            gpu.run();
            FAIL() << "expected a GuestFault";
        } catch (const GuestFault &e) {
            EXPECT_EQ(e.fault().code, c.expect);
            EXPECT_GE(e.fault().smId, 0);
            EXPECT_STRNE(e.what(), "");
        }
        // The fault was recorded before the throw.
        ASSERT_FALSE(gpu.faults().empty());
        EXPECT_EQ(gpu.faults().front().code, c.expect);
        EXPECT_EQ(gpu.outcome(), RunOutcome::Faulted);
    }
}

TEST_F(FaultModel, GuestFaultIsStillARuntimeError)
{
    // Legacy callers catch std::runtime_error; the typed fault must
    // keep satisfying that contract, message phrases included.
    Gpu gpu(config_);
    gpu.loadProgram(runOffEnd());
    gpu.launch(32);
    try {
        gpu.run();
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("ran off the end"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Trap policy: kill the offending warp, keep simulating, report
// Faulted with full attribution. The engine stays usable.
// ---------------------------------------------------------------------

TEST_F(FaultModel, TrapPolicyAttributesAndKeepsRunning)
{
    config_.faultPolicy = FaultPolicy::Trap;
    struct Case {
        const char *name;
        Program program;
        FaultCode expect;
    };
    Case cases[] = {
        {"run-off-end", runOffEnd(), FaultCode::PcOutOfRange},
        {"poisoned-branch", poisonedBranch(), FaultCode::PcOutOfRange},
        {"bad-operand", badOperandKind(), FaultCode::BadOperandKind},
        {"bad-space", badMemSpace(), FaultCode::BadMemSpace},
        {"mem-oob", memOutOfBounds(), FaultCode::MemOutOfBounds},
        {"spawn-no-lut", spawnNoLutLine(), FaultCode::SpawnNoLutLine},
    };
    for (Case &c : cases) {
        SCOPED_TRACE(c.name);
        FaultRun r = runProgram(std::move(c.program), config_, 32);
        EXPECT_EQ(r.outcome, RunOutcome::Faulted);
        ASSERT_FALSE(r.faults.empty());
        const SimFault &f = r.faults.front();
        EXPECT_EQ(f.code, c.expect);
        EXPECT_GE(f.smId, 0);
        EXPECT_LT(f.smId, config_.numSms);
        EXPECT_GE(f.warpSlot, 0);
        // The dump names the fault and the outcome.
        EXPECT_NE(r.dump.find(faultCodeName(c.expect)), std::string::npos);
        EXPECT_NE(r.dump.find("\"outcome\": \"faulted\""),
                  std::string::npos);
    }
}

TEST_F(FaultModel, TrapAttributionCarriesPcAndCycle)
{
    config_.faultPolicy = FaultPolicy::Trap;
    config_.numSms = 1;
    FaultRun r = runProgram(poisonedBranch(), config_, 32);
    ASSERT_FALSE(r.faults.empty());
    const SimFault &f = r.faults.front();
    EXPECT_EQ(f.code, FaultCode::PcOutOfRange);
    EXPECT_EQ(f.pc, 0xFFFFu);       // the poisoned target
    EXPECT_GT(f.cycle, 0u);
    EXPECT_EQ(f.smId, 0);
    // describe() renders the attribution for humans.
    std::string d = f.describe();
    EXPECT_NE(d.find("pc_out_of_range"), std::string::npos);
    EXPECT_NE(d.find("sm=0"), std::string::npos);
}

TEST_F(FaultModel, EngineReusableAfterTrap)
{
    config_.faultPolicy = FaultPolicy::Trap;
    Gpu gpu(config_);
    gpu.loadProgram(runOffEnd());
    gpu.launch(32);
    gpu.run();
    EXPECT_EQ(gpu.outcome(), RunOutcome::Faulted);

    // Same engine, fresh program: fault state resets and a clean kernel
    // completes.
    gpu.loadProgram(assemble(R"(
        .entry main
        main:
            exit;
    )"));
    gpu.launch(64);
    gpu.run();
    EXPECT_TRUE(gpu.finished());
    EXPECT_EQ(gpu.outcome(), RunOutcome::Completed);
    EXPECT_TRUE(gpu.faults().empty());
}

// ---------------------------------------------------------------------
// HaltGrid policy: stop cleanly at the end of the faulting cycle.
// ---------------------------------------------------------------------

TEST_F(FaultModel, HaltGridStopsAtFaultCycle)
{
    config_.faultPolicy = FaultPolicy::HaltGrid;
    config_.maxCycles = 100000;
    FaultRun r = runProgram(runOffEnd(), config_, 32);
    EXPECT_EQ(r.outcome, RunOutcome::Faulted);
    ASSERT_FALSE(r.faults.empty());
    // The grid stopped at the fault, far short of the cycle budget.
    EXPECT_LT(r.stats.cycles, 1000u);
    EXPECT_GE(r.stats.cycles, r.faults.front().cycle);
}

// ---------------------------------------------------------------------
// Spawn-resource exhaustion (satellite: exhaustion vs clean cycle-cap).
// ---------------------------------------------------------------------

TEST_F(FaultModel, SpawnRegionExhaustionTrapsAtExec)
{
    // Two regions seat the LUT line's current+overflow pair and nothing
    // else: the first warp-completing spawn finds the ring dry.
    config_.faultPolicy = FaultPolicy::Trap;
    config_.numSms = 1;
    config_.injectMaxFormationRegions = 2;
    FaultRun r = runProgram(assemble(kSpawnOnce), config_, 32);
    EXPECT_EQ(r.outcome, RunOutcome::Faulted);
    ASSERT_FALSE(r.faults.empty());
    EXPECT_EQ(r.faults.front().code, FaultCode::SpawnRegionExhausted);
    EXPECT_GE(r.faults.front().warpSlot, 0);
}

TEST_F(FaultModel, FlushExhaustionIsAChipLevelFault)
{
    // A partial warp parks with the ring dry and the grid exhausted:
    // the forced flush cannot allocate, so the drain path raises a
    // chip-level (no-warp) exhaustion fault instead of spinning.
    config_.faultPolicy = FaultPolicy::Trap;
    config_.numSms = 1;
    config_.injectMaxFormationRegions = 2;
    FaultRun r = runProgram(assemble(kSpawnOnce), config_, 8);
    EXPECT_EQ(r.outcome, RunOutcome::Faulted);
    ASSERT_FALSE(r.faults.empty());
    EXPECT_EQ(r.faults.front().code, FaultCode::SpawnRegionExhausted);
    EXPECT_EQ(r.faults.front().warpSlot, -1);   // not one warp's doing
    // Trap drops the unflushable partials so the run still terminates.
    EXPECT_LT(r.stats.cycles, config_.maxCycles);
}

TEST_F(FaultModel, ShrunkLutOverflowsAtLoad)
{
    // 12 LUT bytes hold one line; two micro-kernels cannot fit. This is
    // a load-time configuration fault, raised typed under any policy.
    config_.spawnLutBytes = 12;
    Gpu gpu(config_);
    try {
        gpu.loadProgram(assemble(R"(
            .entry main
            .microkernel mk_a
            .microkernel mk_b
            .spawn_state 16
            main:
                exit;
            mk_a:
                exit;
            mk_b:
                exit;
        )"));
        FAIL() << "expected a GuestFault";
    } catch (const GuestFault &e) {
        EXPECT_EQ(e.fault().code, FaultCode::SpawnLutOverflow);
        EXPECT_NE(std::string(e.what()).find("spawn LUT"),
                  std::string::npos);
    }
}

TEST_F(FaultModel, CleanCycleCapIsNotAFault)
{
    // A healthy kernel that merely runs out of cycle budget must be
    // classified CycleLimit with no fault record — distinguishable from
    // every exhaustion case above.
    config_.faultPolicy = FaultPolicy::Trap;
    config_.numSms = 1;
    config_.maxCycles = 3;      // too few cycles for 512 threads
    FaultRun r = runProgram(assemble(kSpawnOnce), config_, 512);
    EXPECT_EQ(r.outcome, RunOutcome::CycleLimit);
    EXPECT_TRUE(r.faults.empty());
    EXPECT_NE(r.dump.find("\"outcome\": \"cycle_limit\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Forward-progress watchdog.
// ---------------------------------------------------------------------

TEST_F(FaultModel, WatchdogClassifiesBarrierDeadlock)
{
    config_.scheduling = SchedulingMode::Block;
    config_.blockSizeThreads = 64;
    config_.watchdogCycles = 1000;
    config_.maxCycles = 100000;
    FaultRun r = runProgram(assemble(kBarrierDeadlock), config_, 64);
    EXPECT_EQ(r.outcome, RunOutcome::Deadlock);
    EXPECT_TRUE(r.faults.empty());
    // Stopped within watchdog range of the hang, not at the cycle cap.
    EXPECT_LT(r.stats.cycles, 5000u);
    EXPECT_NE(r.dump.find("\"outcome\": \"deadlock\""), std::string::npos);
}

TEST_F(FaultModel, WatchdogOffDeadlockIsSilentCycleLimit)
{
    // The pre-watchdog behavior, preserved when the knob is 0: the hang
    // burns the whole budget and reports only CycleLimit.
    config_.scheduling = SchedulingMode::Block;
    config_.blockSizeThreads = 64;
    config_.watchdogCycles = 0;
    config_.maxCycles = 20000;
    FaultRun r = runProgram(assemble(kBarrierDeadlock), config_, 64);
    EXPECT_EQ(r.outcome, RunOutcome::CycleLimit);
    EXPECT_EQ(r.stats.cycles, 20000u);
}

TEST_F(FaultModel, WatchdogToleratesLongMemoryLatency)
{
    // A DRAM round trip (~220 + interconnect cycles) with a tiny
    // watchdog window: in-flight memory counts as pending progress, so
    // the run must NOT be misclassified as deadlocked.
    config_.numSms = 1;
    config_.watchdogCycles = 50;
    Gpu gpu(config_);
    gpu.loadProgram(assemble(R"(
        .entry main
        main:
            mov.u32 r1, 0;
            ld.global.u32 r0, [r1+0];
            exit;
    )"));
    gpu.mallocGlobal(4096);     // make address 0 a legal load
    gpu.launch(32);
    gpu.run();
    EXPECT_EQ(gpu.outcome(), RunOutcome::Completed);
}

TEST_F(FaultModel, WatchdogIsObservationNeutral)
{
    // Arming a watchdog that never fires must not change a single
    // statistic relative to the default-off run.
    GpuConfig off = config_;
    GpuConfig on = config_;
    on.watchdogCycles = 1'000'000;
    FaultRun a = runProgram(assemble(kSpawnOnce), off, 256);
    FaultRun b = runProgram(assemble(kSpawnOnce), on, 256);
    EXPECT_EQ(a.outcome, RunOutcome::Completed);
    EXPECT_EQ(b.outcome, RunOutcome::Completed);
    EXPECT_TRUE(a.stats == b.stats);
}

// ---------------------------------------------------------------------
// Determinism: traps apply in the serial merge phase, so outcomes,
// fault records, statistics and dumps are bit-identical at any host
// thread count.
// ---------------------------------------------------------------------

TEST_F(FaultModel, FaultsBitIdenticalAcrossHostThreads)
{
    config_.faultPolicy = FaultPolicy::Trap;
    config_.injectMaxFormationRegions = 2;

    auto runAt = [&](int threads) {
        GpuConfig cfg = config_;
        cfg.hostThreads = threads;
        return runProgram(assemble(kSpawnOnce), cfg, 128);
    };
    FaultRun serial = runAt(1);
    EXPECT_EQ(serial.outcome, RunOutcome::Faulted);
    ASSERT_FALSE(serial.faults.empty());
    for (int threads : {2, 4}) {
        SCOPED_TRACE("hostThreads=" + std::to_string(threads));
        FaultRun r = runAt(threads);
        EXPECT_EQ(r.outcome, serial.outcome);
        EXPECT_EQ(r.faults, serial.faults);
        EXPECT_TRUE(r.stats == serial.stats);
        EXPECT_EQ(r.dump, serial.dump);
    }
}

TEST_F(FaultModel, MixedFaultOrderDeterministicAcrossThreads)
{
    // PcOutOfRange raised independently on every SM in the parallel
    // phase: the merge applies them in SM-id order regardless of which
    // host thread stepped which shard.
    config_.faultPolicy = FaultPolicy::Trap;
    auto runAt = [&](int threads) {
        GpuConfig cfg = config_;
        cfg.hostThreads = threads;
        return runProgram(runOffEnd(), cfg, 512);
    };
    FaultRun serial = runAt(1);
    ASSERT_GT(serial.faults.size(), 1u);
    for (size_t i = 1; i < serial.faults.size(); i++) {
        EXPECT_LE(serial.faults[i - 1].cycle, serial.faults[i].cycle);
        if (serial.faults[i - 1].cycle == serial.faults[i].cycle) {
            EXPECT_LT(serial.faults[i - 1].smId, serial.faults[i].smId);
        }
    }
    for (int threads : {2, 4}) {
        SCOPED_TRACE("hostThreads=" + std::to_string(threads));
        FaultRun r = runAt(threads);
        EXPECT_EQ(r.faults, serial.faults);
        EXPECT_EQ(r.dump, serial.dump);
    }
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

TEST_F(FaultModel, DumpStateIsWellFormedAnytime)
{
    Gpu gpu(config_);
    gpu.loadProgram(assemble(kSpawnOnce));
    gpu.launch(64);
    for (int i = 0; i < 10; i++)
        gpu.stepCycle();

    std::ostringstream os;
    gpu.dumpState(os);
    std::string dump = os.str();
    EXPECT_NE(dump.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(dump.find("\"sms\""), std::string::npos);
    EXPECT_NE(dump.find("\"spawn\""), std::string::npos);
    EXPECT_NE(dump.find("\"stall\""), std::string::npos);
    // Balanced braces — cheap structural sanity for hand-built JSON.
    long depth = 0;
    for (char ch : dump) {
        if (ch == '{' || ch == '[')
            depth++;
        if (ch == '}' || ch == ']')
            depth--;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
