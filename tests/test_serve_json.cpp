/**
 * @file
 * Strict JSON parser tests (src/serve/json.hpp).
 *
 * The parser reads protocol lines and snapshot files the repo writes
 * itself, so the tests lean on strictness: anything malformed must
 * throw JsonError with a useful offset, never parse loosely.
 */

#include <gtest/gtest.h>

#include "serve/json.hpp"

using namespace uksim::serve;

TEST(ServeJson, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_DOUBLE_EQ(parseJson("42").number, 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e2").number, -150.0);
    EXPECT_EQ(parseJson("\"hi\"").string, "hi");
}

TEST(ServeJson, ParsesNestedObject)
{
    const JsonValue v = parseJson(
        "{\"op\": \"submit\", \"batch\": [{\"name\": \"uk_conference\", "
        "\"cycles\": 6000}], \"deep\": {\"a\": [1, 2, 3]}}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.stringAt("op"), "submit");
    const JsonValue *batch = v.find("batch");
    ASSERT_NE(batch, nullptr);
    ASSERT_TRUE(batch->isArray());
    ASSERT_EQ(batch->array.size(), 1u);
    EXPECT_EQ(batch->array[0].stringAt("name"), "uk_conference");
    EXPECT_EQ(batch->array[0].u64Or("cycles", 0), 6000u);
    const JsonValue *deep = v.find("deep");
    ASSERT_NE(deep, nullptr);
    ASSERT_EQ(deep->at("a").array.size(), 3u);
}

TEST(ServeJson, StringEscapes)
{
    EXPECT_EQ(parseJson("\"a\\n\\t\\\"\\\\b\"").string, "a\n\t\"\\b");
    // BMP \uXXXX escapes decode to UTF-8.
    EXPECT_EQ(parseJson("\"\\u00e9\"").string, "\xc3\xa9");
    EXPECT_EQ(parseJson("\"\\u0041\"").string, "A");
}

TEST(ServeJson, EscapeRoundTrip)
{
    const std::string nasty = "quote\" slash\\ newline\n tab\t";
    const std::string doc = "\"" + jsonEscape(nasty) + "\"";
    EXPECT_EQ(parseJson(doc).string, nasty);
}

TEST(ServeJson, RejectsTrailingContent)
{
    EXPECT_THROW(parseJson("{} garbage"), JsonError);
    EXPECT_THROW(parseJson("1 2"), JsonError);
}

TEST(ServeJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseJson(""), JsonError);
    EXPECT_THROW(parseJson("{\"a\": }"), JsonError);
    EXPECT_THROW(parseJson("[1, 2,]"), JsonError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), JsonError);
    EXPECT_THROW(parseJson("nul"), JsonError);
}

TEST(ServeJson, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 80; i++)
        deep += "[";
    EXPECT_THROW(parseJson(deep), JsonError);
}

TEST(ServeJson, ErrorCarriesOffset)
{
    try {
        parseJson("{\"ok\": true, \"bad\": !}");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_GT(e.offset(), 0u);
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
}

TEST(ServeJson, TypedAccessorsWithDefaults)
{
    const JsonValue v = parseJson(
        "{\"s\": \"x\", \"n\": 7, \"b\": true, \"big\": 123456789012}");
    EXPECT_EQ(v.stringOr("s", "d"), "x");
    EXPECT_EQ(v.stringOr("missing", "d"), "d");
    EXPECT_DOUBLE_EQ(v.numberOr("n", 0), 7.0);
    EXPECT_TRUE(v.boolOr("b", false));
    EXPECT_EQ(v.u64Or("big", 0), 123456789012u);
    EXPECT_EQ(v.u64Or("missing", 9), 9u);
    EXPECT_THROW(v.at("missing"), JsonError);
    EXPECT_THROW(v.stringAt("n"), JsonError);
}
