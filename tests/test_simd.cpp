/**
 * @file
 * Bit-identity of the SIMD lane-loop kernels (simd.hpp): the AVX2
 * paths must produce exactly the bytes of the scalar loops they
 * replace — on random register/predicate images op by op, and end to
 * end on a full simulation. On hosts without AVX2 the kernels fall
 * back to scalar and these tests degenerate to self-comparison.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "simt/assembler.hpp"
#include "simt/decode.hpp"
#include "simt/executor.hpp"
#include "simt/gpu.hpp"
#include "simt/simd.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

class Simd : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *env = std::getenv("UKSIM_SIMD")) {
            saved_ = env;
            hadEnv_ = true;
            unsetenv("UKSIM_SIMD");
        }
    }

    void TearDown() override
    {
        simd::setForTest(-1);
        if (hadEnv_)
            setenv("UKSIM_SIMD", saved_.c_str(), 1);
    }

  private:
    std::string saved_;
    bool hadEnv_ = false;
};

TEST_F(Simd, PredLaneMaskMatchesScalar)
{
    std::mt19937 rng(12345);
    const int threads = 96;
    std::vector<uint8_t> preds(size_t(threads) * kNumPredicates);
    for (auto &b : preds)
        b = (rng() & 3) == 0 ? 1 : 0;

    for (int baseSlot : {0, 32, 64}) {
        for (int pred = 0; pred < kNumPredicates; pred++) {
            for (int nLanes : {1, 3, 8, 31, 32}) {
                uint64_t scalar = 0;
                for (int l = 0; l < nLanes; l++) {
                    if (preds[size_t(baseSlot + l) * kNumPredicates +
                              pred] != 0)
                        scalar |= uint64_t{1} << l;
                }
                simd::setForTest(1);
                const uint64_t vec = simd::predLaneMask(
                    preds.data(), baseSlot, pred, nLanes);
                simd::setForTest(0);
                const uint64_t fallback = simd::predLaneMask(
                    preds.data(), baseSlot, pred, nLanes);
                EXPECT_EQ(scalar, vec)
                    << "base=" << baseSlot << " pred=" << pred
                    << " lanes=" << nLanes;
                EXPECT_EQ(scalar, fallback);
            }
        }
    }
}

TEST_F(Simd, WarpAluMatchesScalarEvalAlu)
{
    std::mt19937 rng(99);
    const int warpSize = 32;
    const int baseSlot = 32;   // second warp's register window
    std::vector<uint32_t> init(size_t(96) * kMaxRegisters);
    for (auto &r : init) {
        // Mix of small ints, float-looking bits and raw noise.
        switch (rng() % 3) {
          case 0: r = rng() % 64; break;
          case 1: r = floatBits(float(int(rng() % 2048) - 1024) * 0.5f);
                  break;
          default: r = rng(); break;
        }
    }

    struct Case {
        Opcode op;
        DataType type;
        bool immB;
        bool readsB;
        bool readsC;
    };
    const std::vector<Case> cases = {
        {Opcode::Add, DataType::U32, false, true, false},
        {Opcode::Add, DataType::F32, false, true, false},
        {Opcode::Sub, DataType::S32, true, true, false},
        {Opcode::Sub, DataType::F32, false, true, false},
        {Opcode::Mul, DataType::U32, false, true, false},
        {Opcode::Mul, DataType::F32, false, true, false},
        {Opcode::Mad, DataType::U32, false, true, true},
        {Opcode::Mad, DataType::F32, false, true, true},
        {Opcode::Min, DataType::S32, false, true, false},
        {Opcode::Max, DataType::U32, false, true, false},
        {Opcode::And, DataType::U32, true, true, false},
        {Opcode::Or, DataType::U32, false, true, false},
        {Opcode::Xor, DataType::U32, false, true, false},
        {Opcode::Not, DataType::U32, false, false, false},
        {Opcode::Shl, DataType::U32, false, true, false},
        {Opcode::Shr, DataType::S32, false, true, false},
        {Opcode::Shr, DataType::U32, true, true, false},
        {Opcode::Neg, DataType::S32, false, false, false},
        {Opcode::Neg, DataType::F32, false, false, false},
        {Opcode::Abs, DataType::S32, false, false, false},
        {Opcode::Abs, DataType::F32, false, false, false},
        {Opcode::Mov, DataType::U32, false, false, false},
        {Opcode::Div, DataType::F32, false, true, false},
        {Opcode::Rcp, DataType::F32, false, false, false},
        {Opcode::Sqrt, DataType::F32, false, false, false},
    };

    for (const Case &c : cases) {
        Instruction inst;
        inst.op = c.op;
        inst.type = c.type;
        inst.dst = 10;
        inst.src[0] = Operand::makeReg(1);
        if (c.readsB) {
            inst.src[1] = c.immB ? Operand::makeImm(rng())
                                 : Operand::makeReg(2);
        }
        if (c.readsC)
            inst.src[2] = Operand::makeReg(3);
        DecodedInst d;
        d.inst = &inst;
        d.readsB = c.readsB;
        d.readsC = c.readsC;

        for (uint64_t mask :
             {uint64_t{0xFFFFFFFF}, uint64_t{0x80000001},
              uint64_t{0x0F0F0F0F}, uint64_t{0}}) {
            std::vector<uint32_t> scalarRegs = init;
            for (uint64_t m = mask; m; m &= m - 1) {
                const int lane = __builtin_ctzll(m);
                const size_t slot = size_t(baseSlot + lane);
                const uint32_t a =
                    scalarRegs[slot * kMaxRegisters + inst.src[0].reg];
                const uint32_t b =
                    !c.readsB ? 0
                    : c.immB  ? inst.src[1].imm
                              : scalarRegs[slot * kMaxRegisters +
                                           inst.src[1].reg];
                const uint32_t cc =
                    c.readsC ? scalarRegs[slot * kMaxRegisters +
                                          inst.src[2].reg]
                             : 0;
                scalarRegs[slot * kMaxRegisters + inst.dst] =
                    evalAlu(inst, a, b, cc);
            }

            std::vector<uint32_t> vecRegs = init;
            simd::setForTest(1);
            const bool handled = simd::warpAlu(d, vecRegs.data(),
                                               baseSlot, mask, warpSize);
            simd::setForTest(-1);
            ASSERT_TRUE(handled)
                << "op " << int(c.op) << " unexpectedly unsupported";
            EXPECT_EQ(scalarRegs, vecRegs)
                << "op=" << int(c.op) << " type=" << int(c.type)
                << " mask=" << std::hex << mask;
        }
    }
}

TEST_F(Simd, UnsupportedShapesFallBack)
{
    Instruction inst;
    inst.op = Opcode::Min;
    inst.type = DataType::F32;   // fmin NaN semantics: scalar only
    inst.dst = 1;
    inst.src[0] = Operand::makeReg(1);
    inst.src[1] = Operand::makeReg(2);
    DecodedInst d;
    d.inst = &inst;
    d.readsB = true;
    std::vector<uint32_t> regs(size_t(32) * kMaxRegisters, 0);
    simd::setForTest(1);
    EXPECT_FALSE(simd::warpAlu(d, regs.data(), 0, ~uint64_t{0}, 32));

    inst.op = Opcode::Add;
    inst.type = DataType::U32;
    inst.src[0] = Operand::makeSpecial(SpecialReg::Tid);
    EXPECT_FALSE(simd::warpAlu(d, regs.data(), 0, ~uint64_t{0}, 32));
    // Warp sizes that are not a multiple of eight stay scalar.
    inst.src[0] = Operand::makeReg(1);
    EXPECT_FALSE(simd::warpAlu(d, regs.data(), 0, 0xF, 4));
}

TEST_F(Simd, EndToEndRunBitIdentical)
{
    const char kProgram[] = R"(
        .entry main
        main:
            mov.u32 r2, %tid;
            shl.u32 r1, r2, 2;
            ld.global.u32 r0, [r1+0];
            add.u32 r0, r0, r2;
            mul.u32 r3, r0, r2;
            setp.lt.u32 p0, r3, 1024;
            @p0 add.u32 r3, r3, 7;
            vote.all p1, p0;
            st.global.u32 [r1+0], r3;
            exit;
    )";
    auto runOnce = [&](int force) {
        simd::setForTest(force);
        GpuConfig cfg = test::smallConfig();
        Gpu gpu(cfg);
        gpu.loadProgram(assemble(kProgram));
        gpu.mallocGlobal(4096);
        gpu.launch(256);
        gpu.run();
        std::ostringstream os;
        gpu.dumpState(os);
        simd::setForTest(-1);
        return os.str();
    };
    EXPECT_EQ(runOnce(0), runOnce(1));
}

} // namespace
