/**
 * @file
 * Dataflow-engine edge cases: the solver must converge (and visit the
 * right blocks) on self-loops, unreachable code, irreducible loops,
 * fall-off-end blocks and blocks whose only successor is the virtual
 * exit — the CFG shapes a structural (nesting-based) analysis would
 * mishandle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "simt/analysis/dataflow.hpp"
#include "simt/assembler.hpp"
#include "simt/cfg.hpp"

using namespace uksim;
using namespace uksim::analysis;

namespace {

/**
 * Minimal gen-set domain: the state is the set of pcs whose transfer
 * has executed on some path. Merge is set union — a finite lattice, so
 * widening is never required and any fixpoint reached is exact.
 */
struct VisitedDomain {
    struct State {
        std::set<uint32_t> pcs;
    };
    State boundary() const { return {}; }
    bool merge(State &into, const State &from, bool) const
    {
        const size_t before = into.pcs.size();
        into.pcs.insert(from.pcs.begin(), from.pcs.end());
        return into.pcs.size() != before;
    }
    void transfer(uint32_t pc, const Instruction &, State &s) const
    {
        s.pcs.insert(pc);
    }
};

/**
 * Infinite-height counting domain: the state grows by one per loop
 * iteration, so without widening a loop never converges. Widened
 * merges jump to the lattice top (kCap).
 */
struct CountDomain {
    static constexpr int kCap = 1000000;
    struct State {
        int n = 0;
    };
    State boundary() const { return {}; }
    bool merge(State &into, const State &from, bool widen) const
    {
        int next = std::max(into.n, from.n);
        if (widen && next > into.n)
            next = kCap;
        const bool changed = next != into.n;
        into.n = next;
        return changed;
    }
    void transfer(uint32_t, const Instruction &inst, State &s) const
    {
        if (inst.op == Opcode::Add && s.n < kCap)
            s.n++;
    }
};

std::set<uint32_t>
forwardPcs(const Program &p, uint32_t entryPc)
{
    Cfg cfg(p);
    VisitedDomain dom;
    DataflowSolver<VisitedDomain> solver(p, cfg, dom);
    solver.solveForward(entryPc);
    std::set<uint32_t> pcs;
    for (int b : solver.reachable()) {
        const auto &st = solver.stateAt(b);
        pcs.insert(st.pcs.begin(), st.pcs.end());
        // Include the block's own instructions (IN state excludes them).
        for (uint32_t pc = solver.firstPc(b); pc <= cfg.blocks()[b].last;
             pc++) {
            pcs.insert(pc);
        }
    }
    return pcs;
}

TEST(Dataflow, SelfLoopConverges)
{
    // A single-block loop that branches to itself: the block is its own
    // predecessor and successor.
    Program p = assemble(R"(main:
        mov.u32 r1, 0;
        loop:
        add.u32 r1, r1, 1;
        setp.lt.u32 p0, r1, 10;
        @p0 bra loop;
        exit;
    )");
    Cfg cfg(p);
    const int loopBlock = cfg.blockOf(p.labels.at("loop"));
    const auto &preds = cfg.predecessors(loopBlock);
    ASSERT_NE(std::find(preds.begin(), preds.end(), loopBlock),
              preds.end())
        << "fixture regression: the loop block must be a self-loop";

    const std::set<uint32_t> pcs = forwardPcs(p, p.entryPc);
    for (uint32_t pc = 0; pc < p.code.size(); pc++)
        EXPECT_TRUE(pcs.count(pc)) << "pc " << pc << " never visited";
}

TEST(Dataflow, UnreachableBlockGetsNoState)
{
    Program p = assemble(R"(main:
        mov.u32 r1, 1;
        bra out;
        dead:
        mov.u32 r2, 2;      // no edge leads here
        out:
        exit;
    )");
    Cfg cfg(p);
    VisitedDomain dom;
    DataflowSolver<VisitedDomain> solver(p, cfg, dom);
    solver.solveForward(p.entryPc);
    const int deadBlock = cfg.blockOf(p.labels.at("dead"));
    EXPECT_FALSE(solver.reachable().count(deadBlock));
    EXPECT_FALSE(solver.hasState(deadBlock));
    // ...and the same for the backward solve.
    solver.solveBackward(p.entryPc);
    EXPECT_FALSE(solver.reachable().count(deadBlock));
}

TEST(Dataflow, IrreducibleLoopConverges)
{
    // Two entries into the same cycle (a -> b -> a, entered at both a
    // and b): no natural-loop header exists, so only an iterative
    // engine handles this.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 bra b;
        a:
        add.u32 r1, r1, 1;
        setp.lt.u32 p1, r1, 100;
        @p1 bra b;
        bra out;
        b:
        add.u32 r1, r1, 2;
        setp.lt.u32 p2, r1, 100;
        @p2 bra a;
        out:
        exit;
    )");
    const std::set<uint32_t> pcs = forwardPcs(p, p.entryPc);
    EXPECT_TRUE(pcs.count(p.labels.at("a")));
    EXPECT_TRUE(pcs.count(p.labels.at("b")));
    EXPECT_TRUE(pcs.count(p.labels.at("out")));
}

TEST(Dataflow, WideningTerminatesInfiniteHeightDomain)
{
    // The counter grows by one per trip around the loop; only the
    // widened merge (jump to top) lets the fixpoint terminate.
    Program p = assemble(R"(main:
        mov.u32 r1, 0;
        loop:
        add.u32 r1, r1, 1;
        setp.lt.u32 p0, r1, 10;
        @p0 bra loop;
        exit;
    )");
    Cfg cfg(p);
    CountDomain dom;
    DataflowSolver<CountDomain> solver(p, cfg, dom);
    solver.solveForward(p.entryPc);      // must not hang
    const int loopBlock = cfg.blockOf(p.labels.at("loop"));
    EXPECT_GE(solver.stateAt(loopBlock).n, 1);
}

TEST(Dataflow, FallOffEndBlockIsSolved)
{
    // The last block has no terminator at all — its successor set is
    // empty (not even the virtual exit on the fall-through path).
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 exit;
        mov.u32 r2, 1;
    )");
    Cfg cfg(p);
    VisitedDomain dom;
    DataflowSolver<VisitedDomain> solver(p, cfg, dom);
    solver.solveForward(p.entryPc);
    const int lastBlock = cfg.blockOf(uint32_t(p.code.size() - 1));
    EXPECT_TRUE(solver.reachable().count(lastBlock));

    // Backward: the fall-off block has no successors, so it takes the
    // boundary state as its OUT and still participates.
    solver.solveBackward(p.entryPc);
    EXPECT_TRUE(solver.hasState(lastBlock));
}

TEST(Dataflow, BackwardSeedsVirtualExitOnlyBlocks)
{
    // Both sides exit directly: every leaf block's only successor is
    // the virtual exit, so the backward solve must seed each with the
    // boundary state rather than waiting for a successor to supply one.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 bra other;
        mov.u32 r2, 1;
        exit;
        other:
        mov.u32 r2, 2;
        exit;
    )");
    Cfg cfg(p);
    VisitedDomain dom;
    DataflowSolver<VisitedDomain> solver(p, cfg, dom);
    solver.solveBackward(p.entryPc);
    for (int b : solver.reachable())
        EXPECT_TRUE(solver.hasState(b)) << "block " << b;
    // The entry block's backward state has seen the instructions of
    // both exit paths' predecessors... at minimum it converged; check
    // the branch block saw its own successors' pcs.
    const int entryBlock = cfg.blockOf(p.entryPc);
    const auto &st = solver.stateAt(entryBlock);
    EXPECT_TRUE(st.pcs.count(p.labels.at("other")));
}

TEST(Dataflow, MidBlockEntryStartsAtEntryPc)
{
    // A µ-kernel entry mid-stream: the entry pc shares a block with the
    // launch kernel's preceding instructions; the solve must start at
    // the entry pc, not the block's first pc.
    Program p = assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 4
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        st.spawn.u32 [r6+0], r1;
        spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        exit;
    )");
    Cfg cfg(p);
    const uint32_t ukPc = p.microKernels.at(0).pc;
    VisitedDomain dom;
    DataflowSolver<VisitedDomain> solver(p, cfg, dom);
    solver.solveForward(ukPc);
    EXPECT_EQ(solver.firstPc(cfg.blockOf(ukPc)), ukPc);
    const std::set<uint32_t> pcs = forwardPcs(p, ukPc);
    EXPECT_FALSE(pcs.count(p.entryPc))
        << "launch-kernel pcs leaked into the µ-kernel solve";
}

} // namespace
