/**
 * @file
 * Spawn-placement advisor tests: divergent regions without a spawn are
 * flagged as spawn candidates, uniform-guarded spawns are flagged as
 * paying overhead for nothing, meldable then/else diamonds are
 * suggested, and trivial regions stay quiet.
 */

#include <gtest/gtest.h>

#include "example_kernels.hpp"
#include "simt/analysis/advisor.hpp"
#include "simt/analysis/uniformity.hpp"
#include "simt/assembler.hpp"
#include "simt/cfg.hpp"

using namespace uksim;
using namespace uksim::analysis;

namespace {

AdvisorResult
adviseOn(const Program &p)
{
    Cfg cfg(p);
    return advise(p, cfg, analyzeUniformity(p, cfg));
}

const Advice *
findAdvice(const AdvisorResult &r, const std::string &kind)
{
    for (const Advice &a : r.advice) {
        if (a.kind == kind)
            return &a;
    }
    return nullptr;
}

TEST(Advisor, DivergentRegionWithoutSpawnIsACandidate)
{
    // A tid-divergent branch guarding a non-trivial rejoining region:
    // the paper's motivating shape for a µ-kernel continuation.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra skip;
        add.u32 r2, r1, 1;
        mul.u32 r2, r2, 3;
        xor.u32 r2, r2, r1;
        st.global.u32 [r1+0], r2;
        skip:
        st.global.u32 [r1+4], r1;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    const Advice *a = findAdvice(r, "spawn-candidate");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->pc, 2u);
}

TEST(Advisor, TinyRegionGetsNoSpawnAdvice)
{
    // The divergent region is below kSpawnAdviceMinInsts: spawning
    // would cost more than the divergence it removes.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra skip;
        add.u32 r2, r1, 1;
        skip:
        st.global.u32 [r1+0], r1;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    EXPECT_EQ(findAdvice(r, "spawn-candidate"), nullptr);
}

TEST(Advisor, UniformBranchGetsNoSpawnAdvice)
{
    // Param-bounded loop: warp-uniform, nothing to re-form.
    Program p = assemble(R"(
        .const 8
        main:
        mov.u32 r9, %tid;
        ld.param.u32 r1, [0];
        mov.u32 r2, 0;
        loop:
        add.u32 r2, r2, 1;
        mul.u32 r3, r2, 3;
        xor.u32 r4, r3, r2;
        st.global.u32 [r9+0], r4;
        setp.lt.u32 p0, r2, r1;
        @p0 bra loop;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    EXPECT_EQ(findAdvice(r, "spawn-candidate"), nullptr);
}

TEST(Advisor, RegionContainingSpawnIsNotACandidate)
{
    // The divergence-spawn example already restructured its divergent
    // loop as a µ-kernel: the advisor has nothing to add.
    Program p = assemble(examples::divergenceSpawnSource(64));
    AdvisorResult r = adviseOn(p);
    EXPECT_EQ(findAdvice(r, "spawn-candidate"), nullptr);
}

TEST(Advisor, DivergenceLoopExampleIsACandidate)
{
    // ...while the plain divergence-loop example (same computation, no
    // spawn) is exactly what the advisor exists to flag.
    Program p = assemble(examples::divergenceLoopSource(64));
    AdvisorResult r = adviseOn(p);
    EXPECT_NE(findAdvice(r, "spawn-candidate"), nullptr);
}

TEST(Advisor, UniformGuardedSpawnIsFlagged)
{
    // The spawn's guard comes from a parameter: every lane takes it
    // together, so the spawn pays overhead without removing divergence.
    Program p = assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 4
        .const 4
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        st.spawn.u32 [r6+0], r1;
        ld.param.u32 r2, [0];
        setp.eq.u32 p0, r2, 1;
        @p0 spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r3, [r2+0];
        ld.spawn.u32 r4, [r3+0];
        st.global.u32 [r4+0], r4;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    const Advice *a = findAdvice(r, "spawn-on-uniform");
    ASSERT_NE(a, nullptr);
}

TEST(Advisor, DivergentGuardedSpawnIsNotFlagged)
{
    Program p = assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 4
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        st.spawn.u32 [r6+0], r1;
        setp.lt.u32 p0, r1, 7;
        @p0 spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r3, [r2+0];
        ld.spawn.u32 r4, [r3+0];
        st.global.u32 [r4+0], r4;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    EXPECT_EQ(findAdvice(r, "spawn-on-uniform"), nullptr);
}

TEST(Advisor, DisjointDiamondIsAMeldCandidate)
{
    // Classic if/else diamond with self-contained arms and no
    // spawn/barrier: meldable DARM-style.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra then;
        add.u32 r2, r1, 1;
        mul.u32 r2, r2, 3;
        xor.u32 r2, r2, r1;
        add.u32 r2, r2, 9;
        bra join;
        then:
        sub.u32 r2, r1, 1;
        join:
        st.global.u32 [r1+0], r2;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    const Advice *a = findAdvice(r, "meld-candidate");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->pc, 2u);
}

TEST(Advisor, BarrierInArmBlocksMelding)
{
    // bar.sync inside an arm must not be pulled under lane predication.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra then;
        add.u32 r2, r1, 1;
        mul.u32 r2, r2, 3;
        xor.u32 r2, r2, r1;
        add.u32 r2, r2, 9;
        bra join;
        then:
        bar;
        sub.u32 r2, r1, 1;
        join:
        st.global.u32 [r1+0], r2;
        exit;
    )");
    AdvisorResult r = adviseOn(p);
    EXPECT_EQ(findAdvice(r, "meld-candidate"), nullptr);
}

TEST(Advisor, AdviceIsSortedByPc)
{
    Program p = assemble(examples::divergenceLoopSource(64));
    AdvisorResult r = adviseOn(p);
    for (size_t i = 1; i < r.advice.size(); i++)
        EXPECT_LE(r.advice[i - 1].pc, r.advice[i].pc);
}

} // namespace
