/**
 * @file
 * The paper's future-work variant (Sec. IX): vote.all semantics and
 * the adaptive micro-kernel that branches locally when the whole warp
 * stays uniform instead of spawning every iteration.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

TEST(VoteAll, AssemblesAndDisassembles)
{
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        vote.all p1, p0;
        exit;
    )");
    EXPECT_EQ(p.code[1].op, Opcode::VoteAll);
    EXPECT_EQ(p.code[1].dst, 1);
    EXPECT_EQ(p.code[1].src[0].kind, OperandKind::Pred);
    EXPECT_NE(disassemble(p.code[1]).find("vote.all"),
              std::string::npos);
    EXPECT_THROW(assemble("vote.any p0, p1;\nexit;"), AssemblerError);
}

/** Warp-wide vote: out[tid] = vote.all(tid % div == tid % div). */
std::vector<uint32_t>
runVote(uint32_t modulus)
{
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, )" + std::to_string(modulus) + R"(;
            setp.eq.u32 p0, r2, 0;
            vote.all p1, p0;
            mov.u32 r3, 0;
            @p1 mov.u32 r3, 1;
            ld.param.u32 r4, [0];
            shl.u32 r5, r1, 2;
            add.u32 r4, r4, r5;
            st.global.u32 [r4+0], r3;
            exit;
    )"));
    uint32_t out = gpu.mallocGlobal(64 * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(64);
    gpu.run();
    std::vector<uint32_t> result(64);
    gpu.fromGlobal(out, result.data(), 256);
    return result;
}

TEST(VoteAll, UnanimousWarpVotesTrue)
{
    // modulus 1: every lane's predicate holds -> vote true everywhere.
    auto r = runVote(1);
    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(r[i], 1u);
}

TEST(VoteAll, SplitWarpVotesFalseForAllLanes)
{
    // modulus 2: half the lanes fail -> vote false, including for the
    // lanes whose own predicate held.
    auto r = runVote(2);
    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(r[i], 0u);
}

TEST(AdaptiveUk, ProgramBuildsWithVotes)
{
    Program p = kernels::buildMicroKernelAdaptive();
    int votes = 0;
    for (const auto &inst : p.code)
        votes += inst.op == Opcode::VoteAll ? 1 : 0;
    EXPECT_EQ(votes, 2);    // one in uk_trav, one in uk_isect
    EXPECT_EQ(p.microKernels.size(), 3u);
    // Same register budget as the naive version.
    EXPECT_LE(p.measuredRegisterCount(), 24);
}

class AdaptiveRender : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AdaptiveRender, MatchesCpuReference)
{
    ExperimentConfig cfg;
    cfg.sceneName = GetParam();
    cfg.kernel = KernelKind::MicroKernelAdaptive;
    cfg.sceneParams.detail = 1;
    cfg.sceneParams.imageWidth = 48;
    cfg.sceneParams.imageHeight = 48;
    cfg.baseConfig = test::smallConfig();
    cfg.maxCycles = cfg.baseConfig.maxCycles;

    PreparedScene prepared = prepareScene(cfg.sceneName, cfg.sceneParams);
    rt::RenderResult ref =
        rt::renderReference(prepared.tree, prepared.scene.camera);

    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion);
    for (size_t i = 0; i < r.hits.size(); i++) {
        ASSERT_EQ(r.hits[i].triId, ref.hits[i].triId) << "pixel " << i;
        if (ref.hits[i].valid()) {
            ASSERT_EQ(r.hits[i].t, ref.hits[i].t) << "pixel " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Scenes, AdaptiveRender,
                         ::testing::Values("conference", "fairyforest"),
                         [](const auto &info) { return info.param; });

TEST(AdaptiveUk, SpawnsFewerThreadsThanNaive)
{
    ExperimentConfig cfg;
    cfg.sceneName = "conference";
    cfg.sceneParams.detail = 2;
    cfg.sceneParams.imageWidth = 64;
    cfg.sceneParams.imageHeight = 64;
    cfg.baseConfig = test::smallConfig();
    cfg.maxCycles = cfg.baseConfig.maxCycles;

    PreparedScene prepared = prepareScene(cfg.sceneName, cfg.sceneParams);
    cfg.kernel = KernelKind::MicroKernel;
    ExperimentResult naive = runExperiment(prepared, cfg);
    cfg.kernel = KernelKind::MicroKernelAdaptive;
    ExperimentResult adaptive = runExperiment(prepared, cfg);

    ASSERT_TRUE(naive.ranToCompletion);
    ASSERT_TRUE(adaptive.ranToCompletion);
    // The whole point: uniform warps loop instead of re-spawning.
    EXPECT_LT(adaptive.stats.dynamicThreadsSpawned,
              naive.stats.dynamicThreadsSpawned);
    // And both render the same image.
    ASSERT_EQ(naive.hits.size(), adaptive.hits.size());
    for (size_t i = 0; i < naive.hits.size(); i++)
        ASSERT_EQ(naive.hits[i].triId, adaptive.hits[i].triId);
}

} // namespace
