/**
 * @file
 * Chaos soak tests: the serve stack under deterministic fault injection
 * (ISSUE acceptance criteria).
 *
 * The contract under test is the strongest one the chaos harness makes:
 * a batch that *survives* injected faults — cache corruption, torn
 * writes, disk-full, dropped snapshots, fork failures, killed and hung
 * workers — must produce result payloads byte-identical to a chaos-free
 * run. Recovery is not allowed to change the answer. Each scenario also
 * pins the failure-policy surface: timeout classification, jittered
 * backoff retries, typed backpressure rejections, pool degradation down
 * to in-process execution, and the manifest's decision log.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/chaos.hpp"
#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"
#include "serve/sha256.hpp"

using namespace uksim;
using namespace uksim::harness;
using namespace uksim::serve;

namespace fs = std::filesystem;

namespace {

JobSpec
tinySpec(uint64_t cycles = 6000)
{
    JobSpec spec;
    spec.name = "uk_conference";
    spec.cycles = cycles;
    spec.detail = 2;
    spec.res = 16;
    spec.sms = 2;
    return spec;
}

/// Chaos-free baseline sha for a spec, computed once per distinct job
/// hash via a direct runExperiment (no serve stack involved).
const std::string &
baselineSha(const JobSpec &spec)
{
    static std::map<std::string, std::string> byHash;
    const ExperimentConfig config = resolveJobSpec(spec);
    const std::string hash = jobHash(config);
    auto it = byHash.find(hash);
    if (it == byHash.end()) {
        const PreparedScene scene =
            prepareScene(config.sceneName, config.sceneParams);
        it = byHash
                 .emplace(hash, sha256Hex(serializeResult(
                                    runExperiment(scene, config))))
                 .first;
    }
    return it->second;
}

std::vector<std::string>
runBatchCollect(ServerEngine &engine, const std::vector<JobSpec> &jobs,
                BatchManifest &manifest)
{
    std::vector<std::string> events;
    manifest = engine.runBatch(
        jobs, [&](const std::string &line) { events.push_back(line); });
    return events;
}

int
countContaining(const std::vector<std::string> &lines,
                const std::string &needle)
{
    int n = 0;
    for (const std::string &line : lines)
        if (line.find(needle) != std::string::npos)
            n++;
    return n;
}

class ChaosE2eTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        chaos::ChaosEngine::instance().disable();
        dir_ = fs::temp_directory_path() /
               ("uksim_chaos_e2e_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        chaos::ChaosEngine::instance().disable();
        fs::remove_all(dir_);
    }

    EngineOptions fastRetryOptions(const fs::path &sub, int workers,
                                   uint64_t snapshotCycles) const
    {
        EngineOptions opts;
        opts.cacheDir = (dir_ / sub / "cache").string();
        opts.workers = workers;
        opts.snapshotCycles = snapshotCycles;
        if (workers == 0)
            opts.spoolDir = (dir_ / sub / "spool").string();
        // Tests must not sleep for real: millisecond-scale backoff.
        opts.backoffBaseMs = 1;
        opts.backoffMaxMs = 8;
        return opts;
    }

    fs::path dir_;
};

} // anonymous namespace

// The headline acceptance test: several seeds, a broad mix of fault
// rules across every serve layer, and the batch must still converge to
// byte-identical payloads — then a chaos-free engine over the same
// (possibly tattered) cache directory must agree.
TEST_F(ChaosE2eTest, SoakSeededChaosYieldsByteIdenticalPayloads)
{
    const std::vector<JobSpec> jobs = {tinySpec(6000), tinySpec(4000)};
    const std::string sha0 = baselineSha(jobs[0]);
    const std::string sha1 = baselineSha(jobs[1]);

    for (uint64_t seed : {101u, 202u, 303u}) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const fs::path sub = "soak_" + std::to_string(seed);

        EngineOptions opts =
            fastRetryOptions(sub, /*workers=*/2, /*snapshotCycles=*/2000);
        opts.maxAttempts = 8;
        opts.retrySeed = seed;
        opts.degradeAfterFailures = 3;

        BatchManifest chaotic;
        {
            chaos::ScopedChaos plan(
                std::to_string(seed) +
                ":cache.read.miss=0.25,cache.read.corrupt=0.25,"
                "cache.write.torn=0.4,cache.write.enospc=0.2,"
                "snapshot.write.torn=0.25,snapshot.read.drop=0.25,"
                "spool.write.fail=0.15,fork.fail=0.2,worker.kill@1*1,"
                "stream.read.eintr=0.2,stream.write.short=0.2");
            ServerEngine engine(opts);
            const std::vector<std::string> events =
                runBatchCollect(engine, jobs, chaotic);
            // The first spawn is always sabotaged (worker.kill@1*1), so
            // at least one crash-and-retry definitely happened.
            EXPECT_GE(countContaining(events, "\"worker_crashed\""), 1);
        }
        ASSERT_EQ(chaotic.jobs.size(), 2u);
        EXPECT_EQ(chaotic.failed, 0);
        EXPECT_EQ(chaotic.rejected, 0);
        EXPECT_EQ(chaotic.jobs[0].resultSha256, sha0);
        EXPECT_EQ(chaotic.jobs[1].resultSha256, sha1);
        // The manifest accounts for the injected faults.
        EXPECT_NE(chaotic.chaosJson.find("worker.kill"),
                  std::string::npos);

        // Chaos-free verification over the same cache directory: torn
        // or missing entries recompute and self-heal; the answers are
        // the same bytes either way.
        BatchManifest clean;
        ServerEngine verify(opts);
        runBatchCollect(verify, jobs, clean);
        EXPECT_EQ(clean.failed, 0);
        EXPECT_EQ(clean.jobs[0].resultSha256, sha0);
        EXPECT_EQ(clean.jobs[1].resultSha256, sha1);
        EXPECT_TRUE(clean.chaosJson.empty());
    }
}

// A worker that goes silent (worker.hang) must be SIGKILLed by the
// heartbeat monitor, classified job_timeout, and retried to success.
TEST_F(ChaosE2eTest, HungWorkerIsKilledAndClassifiedTimeout)
{
    chaos::ScopedChaos plan("7:worker.hang@1*1");
    EngineOptions opts =
        fastRetryOptions("hang", /*workers=*/1, /*snapshotCycles=*/2000);
    opts.maxAttempts = 4;
    opts.heartbeatMs = 200;

    ServerEngine engine(opts);
    BatchManifest m;
    const std::vector<std::string> events =
        runBatchCollect(engine, {tinySpec()}, m);

    EXPECT_EQ(m.failed, 0);
    EXPECT_GE(m.timeouts, 1);
    EXPECT_GE(countContaining(events, "\"job_timeout\""), 1);
    EXPECT_GE(countContaining(events, "\"reason\": \"heartbeat\""), 1);
    EXPECT_GE(countContaining(events, "\"job_retried\""), 1);
    EXPECT_FALSE(m.decisions.empty());
    EXPECT_EQ(m.jobs[0].resultSha256, baselineSha(tinySpec()));
}

// The job.deadline site forces a JobTimeout at a chunk boundary; the
// retry (with the rule exhausted by max-fires) completes bit-exact.
TEST_F(ChaosE2eTest, InjectedDeadlineRetriesInProcess)
{
    chaos::ScopedChaos plan("9:job.deadline@1*1");
    EngineOptions opts =
        fastRetryOptions("deadline", /*workers=*/0,
                         /*snapshotCycles=*/2000);
    opts.maxAttempts = 3;

    ServerEngine engine(opts);
    BatchManifest m;
    const std::vector<std::string> events =
        runBatchCollect(engine, {tinySpec()}, m);

    EXPECT_EQ(m.failed, 0);
    EXPECT_EQ(m.timeouts, 1);
    EXPECT_EQ(countContaining(events, "\"job_timeout\""), 1);
    EXPECT_EQ(countContaining(events, "\"reason\": \"deadline\""), 1);
    EXPECT_EQ(m.jobs[0].attempts, 2);
    EXPECT_EQ(m.jobs[0].resultSha256, baselineSha(tinySpec()));
    EXPECT_NE(m.chaosJson.find("job.deadline"), std::string::npos);
}

// A real wall-clock deadline (no chaos): 1 ms is unmeetable for this
// job, so the single allowed attempt times out and the job fails with
// a deadline error — not a crash, not a hang.
TEST_F(ChaosE2eTest, WallClockDeadlineFailsJobWhenBudgetExhausted)
{
    EngineOptions opts =
        fastRetryOptions("wallclock", /*workers=*/0,
                         /*snapshotCycles=*/500);
    opts.maxAttempts = 1;
    opts.jobDeadlineMs = 1;

    ServerEngine engine(opts);
    BatchManifest m;
    const std::vector<std::string> events =
        runBatchCollect(engine, {tinySpec()}, m);

    EXPECT_EQ(m.failed, 1);
    EXPECT_EQ(m.timeouts, 1);
    EXPECT_EQ(countContaining(events, "\"job_failed\""), 1);
    EXPECT_EQ(m.jobs[0].outcome, "error");
    EXPECT_NE(m.jobs[0].error.find("deadline"), std::string::npos);
}

// Bounded queue: compute jobs beyond the depth limit are rejected with
// the typed job_rejected event, never silently dropped or failed.
TEST_F(ChaosE2eTest, QueueBackpressureRejectsTyped)
{
    EngineOptions opts =
        fastRetryOptions("queue", /*workers=*/0, /*snapshotCycles=*/0);
    opts.maxQueueDepth = 1;

    ServerEngine engine(opts);
    BatchManifest m;
    const std::vector<std::string> events = runBatchCollect(
        engine, {tinySpec(6000), tinySpec(4000), tinySpec(3000)}, m);

    EXPECT_EQ(m.computed, 1);
    EXPECT_EQ(m.rejected, 2);
    EXPECT_EQ(m.failed, 0);
    EXPECT_EQ(countContaining(events, "\"job_rejected\""), 2);
    EXPECT_EQ(m.jobs[0].resultSha256, baselineSha(tinySpec()));
    EXPECT_EQ(m.jobs[1].outcome, "rejected");
    EXPECT_EQ(m.jobs[2].outcome, "rejected");
    EXPECT_FALSE(m.decisions.empty());
}

// With fork() failing 100% of the time, consecutive environmental
// failures shrink the pool step by step to zero and the batch drains
// in-process — degraded, but correct to the byte.
TEST_F(ChaosE2eTest, PoolDegradesToInProcessAndCompletes)
{
    chaos::ScopedChaos plan("5:fork.fail=1.0");
    EngineOptions opts =
        fastRetryOptions("degrade", /*workers=*/2,
                         /*snapshotCycles=*/2000);
    opts.maxAttempts = 3;
    opts.degradeAfterFailures = 2;

    ServerEngine engine(opts);
    BatchManifest m;
    const std::vector<std::string> events =
        runBatchCollect(engine, {tinySpec()}, m);

    EXPECT_EQ(m.failed, 0);
    EXPECT_GE(countContaining(events, "\"fork_failed\""), 4);
    EXPECT_EQ(countContaining(events, "\"pool_degraded\""), 2);
    EXPECT_EQ(m.jobs[0].resultSha256, baselineSha(tinySpec()));
    EXPECT_FALSE(m.decisions.empty());
    EXPECT_NE(m.chaosJson.find("fork.fail"), std::string::npos);
}

// Observation neutrality: with chaos disabled, nothing chaotic leaks
// into events, manifests, or exported counters, and the payload is the
// chaos-free baseline by construction.
TEST_F(ChaosE2eTest, DisabledChaosIsObservationNeutral)
{
    ASSERT_FALSE(chaos::ChaosEngine::instance().enabled());
    EngineOptions opts =
        fastRetryOptions("neutral", /*workers=*/0, /*snapshotCycles=*/0);

    ServerEngine engine(opts);
    JobSpec spec = tinySpec();
    spec.counters = true;
    BatchManifest m;
    const std::vector<std::string> events =
        runBatchCollect(engine, {spec}, m);

    EXPECT_EQ(m.failed, 0);
    EXPECT_TRUE(m.chaosJson.empty());
    EXPECT_EQ(countContaining(events, "chaos"), 0);
    EXPECT_EQ(m.jobs[0].counterJson.find("chaos"), std::string::npos);
    EXPECT_EQ(m.jobs[0].resultSha256, baselineSha(spec));
    EXPECT_EQ(chaos::ChaosEngine::instance().totalFires(), 0u);
}
