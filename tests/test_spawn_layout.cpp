/**
 * @file
 * Edge-case tests for SpawnMemoryLayout::compute (paper Sec. IV-A2
 * sizing rule) and the inFormationRegion address classifier.
 */

#include <gtest/gtest.h>

#include "spawn/spawn_layout.hpp"

using namespace uksim;

namespace {

TEST(SpawnLayout, ZeroSpawnLocationsStillGetsFormationEntries)
{
    // Programs without .microkernel declarations still get at least one
    // warp's worth of (doubled) formation entries.
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(16, 64, 0, 32);
    EXPECT_EQ(l.dataSlots, 64u);
    // entries = (64 + 0 * 32) * 2 = 128, already warp-aligned.
    EXPECT_EQ(l.formationEntries, 128u);
    EXPECT_EQ(l.formationBase, 64u * 16u);
    EXPECT_EQ(l.totalBytes, l.formationBase + 128u * 4u);
}

TEST(SpawnLayout, UnalignedStateBytesRoundUpToWord)
{
    // 13-byte records would make neighbouring records share a 4-byte
    // word; compute() rounds the record size up.
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(13, 8, 1, 32);
    EXPECT_EQ(l.stateBytes, 16u);
    EXPECT_EQ(l.stateAddr(1), 16u);
    EXPECT_EQ(l.slotOf(l.stateAddr(7)), 7u);
    EXPECT_EQ(l.formationBase, 8u * 16u);
}

TEST(SpawnLayout, FormationRegionDoubling)
{
    // Sec. IV-A2: NumThreads + (SpawnLocations-1) * WarpSize entries,
    // then doubled so in-flight warps are not clobbered by the ring
    // allocator wrapping around.
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(48, 256, 3, 32);
    const uint32_t base = 256 + (3 - 1) * 32;   // 320
    EXPECT_EQ(l.formationEntries, base * 2);    // 640, warp-aligned
    // Doubling happens before warp rounding; an odd base still rounds.
    SpawnMemoryLayout o = SpawnMemoryLayout::compute(48, 100, 2, 32);
    const uint32_t raw = (100 + 32) * 2;        // 264
    EXPECT_EQ(o.formationEntries, (raw + 31) / 32 * 32);
}

TEST(SpawnLayout, InFormationRegionBoundaries)
{
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(16, 8, 1, 4);
    const uint64_t lo = l.formationBase;
    const uint64_t hi = l.formationBase + uint64_t(l.formationEntries) * 4;
    EXPECT_FALSE(l.inFormationRegion(lo - 1));  // last state-record byte
    EXPECT_TRUE(l.inFormationRegion(lo));       // first formation byte
    EXPECT_TRUE(l.inFormationRegion(hi - 1));   // last formation byte
    EXPECT_FALSE(l.inFormationRegion(hi));      // one past the end
    EXPECT_FALSE(l.inFormationRegion(0));       // state region proper
}

TEST(SpawnLayout, StateAddrSlotRoundTrip)
{
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(48, 800, 4, 32);
    for (uint32_t slot : {0u, 1u, 799u}) {
        EXPECT_EQ(l.slotOf(l.stateAddr(slot)), slot);
        EXPECT_FALSE(l.inFormationRegion(l.stateAddr(slot)));
    }
}

} // anonymous namespace
